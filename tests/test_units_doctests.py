"""Run the repro.units doctests as part of the regular suite.

CI also runs ``python -m pytest --doctest-modules src/repro/units.py``;
this test keeps the examples exercised under a plain ``pytest`` run.
"""

from __future__ import annotations

import doctest

from repro import units


def test_units_doctests_pass() -> None:
    results = doctest.testmod(units)
    assert results.attempted >= 15
    assert results.failed == 0
