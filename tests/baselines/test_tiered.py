"""Tests for the temperature-driven tiered lifecycle policy."""

from __future__ import annotations

import dataclasses

from repro import units
from repro.baselines.tiered import TieredLifecyclePolicy
from repro.config import DEFAULT_CONFIG
from repro.experiments.runner import run_tiered_cell
from repro.experiments.testbed import build_workload
from repro.simulation import build_tiered_context


def lifecycle_config(**overrides):
    """DEFAULT_CONFIG with thresholds tuned so a handful of synthetic
    accesses walks an item through the whole HOT→COLD→FROZEN ladder."""
    values = dict(
        tier_monitoring_period=600.0,
        tier_half_life=60.0,
        tier_hot_temperature=4.0,
        tier_cold_temperature=1.0,
        tier_frozen_periods=2,
    )
    values.update(overrides)
    return dataclasses.replace(DEFAULT_CONFIG, **values)


def build_system(config, items=2):
    context = build_tiered_context(config, 2)
    for index in range(items):
        context.virtualization.add_item(
            f"item-{index}", 64 * units.MB, f"vol/enc-{index % 2:02d}"
        )
    return context


def bound_policy(context, **kwargs):
    policy = TieredLifecyclePolicy(**kwargs)
    policy.bind(context)
    policy.on_start(0.0)
    return policy


def touch(policy, item, count, at=0.0):
    for _ in range(count):
        policy.after_io_fast(at, item, 0, 4096, True, False, 0.001)


class TestConfiguration:
    def test_period_and_half_life_default_from_config(self):
        context = build_system(lifecycle_config())
        policy = bound_policy(context)
        assert policy.monitoring_period == 600.0
        assert policy.half_life == 60.0
        assert policy.next_checkpoint() == 600.0

    def test_archive_shelf_armed_for_power_off_on_start(self):
        context = build_system(lifecycle_config())
        bound_policy(context)
        virt = context.virtualization
        assert virt.enclosure("arc-00").power_off_enabled
        assert not virt.enclosure("flash-00").power_off_enabled


class TestLifecycleLadder:
    def test_hot_item_promotes_to_flash(self):
        context = build_system(lifecycle_config())
        policy = bound_policy(context)
        touch(policy, "item-0", 10)
        plan = policy.on_checkpoint(600.0)
        assert plan is not None
        assert context.virtualization.tier_of_item("item-0").name == "flash"
        # item-1 saw nothing; it stays on HDD.
        assert context.virtualization.tier_of_item("item-1").name == "hdd"

    def test_cooled_item_demotes_back_to_hdd(self):
        context = build_system(lifecycle_config())
        policy = bound_policy(context)
        touch(policy, "item-0", 10)
        policy.on_checkpoint(600.0)
        # A silent window: the 60 s half-life erodes the temperature
        # far below cold over the 600 s period.
        policy.on_checkpoint(1200.0)
        assert context.virtualization.tier_of_item("item-0").name == "hdd"

    def test_frozen_needs_consecutive_cold_windows(self):
        context = build_system(lifecycle_config(tier_frozen_periods=2))
        policy = bound_policy(context)
        touch(policy, "item-0", 10)
        policy.on_checkpoint(600.0)
        policy.on_checkpoint(1200.0)  # COLD streak 1 → demote, not archive
        virt = context.virtualization
        assert virt.tier_of_item("item-0").name == "hdd"
        policy.on_checkpoint(1800.0)  # COLD streak 2 → FROZEN → archive
        assert virt.tier_of_item("item-0").name == "archive"

    def test_warm_access_resets_the_cold_streak(self):
        context = build_system(lifecycle_config(tier_frozen_periods=2))
        policy = bound_policy(context)
        touch(policy, "item-0", 10)
        policy.on_checkpoint(600.0)
        policy.on_checkpoint(1200.0)  # streak 1
        touch(policy, "item-0", 2, at=1500.0)  # WARM again
        policy.on_checkpoint(1800.0)  # streak resets
        policy.on_checkpoint(2400.0)  # streak 1 again — still not frozen
        assert context.virtualization.tier_of_item("item-0").name == "hdd"

    def test_replicate_hot_keeps_an_hdd_copy_of_the_hottest(self):
        context = build_system(lifecycle_config())
        policy = bound_policy(context, replicate_hot=True)
        touch(policy, "item-0", 10)
        policy.on_checkpoint(600.0)
        virt = context.virtualization
        # First checkpoint promoted it; the replica is planned once the
        # item is flash-resident, at the next hot classification.
        assert virt.tier_of_item("item-0").name == "flash"
        assert virt.replicas_of("item-0") == ()
        touch(policy, "item-0", 10, at=900.0)
        policy.on_checkpoint(1200.0)
        assert virt.tier_of_item("item-0").name == "flash"
        assert len(virt.replicas_of("item-0")) == 1
        replica_device = virt.replicas_of("item-0")[0]
        assert virt.tier_of_device(replica_device).name == "hdd"


class TestEndToEnd:
    def test_fileserver_smoke_with_auditor(self):
        cell = run_tiered_cell(
            build_workload("fileserver", False),
            TieredLifecyclePolicy(),
            audit=True,
        )
        assert cell.result.audit_checks > 0
        assert cell.result.replay.io_count > 0
        assert cell.energy_joules > 0
        assert cell.capacity_cost > 0
        by_name = {report.tier: report for report in cell.tier_reports}
        assert set(by_name) == {"flash", "hdd", "archive"}
        # Data actually moved through the lifecycle...
        assert by_name["flash"].bytes_in > 0
        # ...and every tier's ledger identity holds at end of run.
        for report in cell.tier_reports:
            assert report.net_bytes == report.placed_bytes

    def test_tpcc_smoke_with_auditor_and_replication(self):
        cell = run_tiered_cell(
            build_workload("tpcc", False),
            TieredLifecyclePolicy(replicate_hot=True),
            audit=True,
        )
        assert cell.result.audit_checks > 0
        for report in cell.tier_reports:
            assert report.net_bytes == report.placed_bytes
