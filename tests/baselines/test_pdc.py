"""Tests for the PDC baseline."""

import pytest

from repro import units
from repro.baselines.pdc import PDCPolicy
from repro.config import DEFAULT_CONFIG
from repro.simulation import build_context, default_volume
from repro.trace.records import IOType, LogicalIORecord
from repro.trace.replay import TraceReplayer


def build_system(items_per_enclosure=2, enclosures=3, size=10 * units.MB):
    context = build_context(DEFAULT_CONFIG, enclosures)
    names = context.enclosure_names()
    for e in range(enclosures):
        for k in range(items_per_enclosure):
            item = f"item-{e}-{k}"
            context.virtualization.add_item(
                item, size, default_volume(names[e])
            )
            context.app_monitor.register_item(item, default_volume(names[e]))
    return context


def stream(item, start, end, gap):
    t = start
    records = []
    while t < end:
        records.append(LogicalIORecord(t, item, 0, 4096, IOType.READ))
        t += gap
    return records


class TestPDCConfiguration:
    def test_period_defaults_from_config(self, small_context):
        policy = PDCPolicy()
        policy.bind(small_context)
        policy.on_start(0.0)
        assert policy.monitoring_period == DEFAULT_CONFIG.pdc_monitoring_period
        assert policy.next_checkpoint() == DEFAULT_CONFIG.pdc_monitoring_period

    def test_explicit_period(self, small_context):
        policy = PDCPolicy(monitoring_period=60.0)
        policy.bind(small_context)
        policy.on_start(0.0)
        assert policy.next_checkpoint() == 60.0

    def test_invalid_fill_fraction(self):
        with pytest.raises(ValueError):
            PDCPolicy(load_fill_fraction=0.0)

    def test_all_enclosures_power_off_enabled(self, small_context):
        policy = PDCPolicy()
        policy.bind(small_context)
        policy.on_start(0.0)
        assert all(e.power_off_enabled for e in small_context.enclosures)


class TestPDCBehaviour:
    def test_popular_items_concentrate_on_first_enclosures(self):
        context = build_system()
        policy = PDCPolicy(monitoring_period=500.0)
        records = stream("item-2-0", 0.0, 1000.0, gap=5.0)  # very popular
        records += stream("item-1-0", 3.0, 1000.0, gap=50.0)  # mildly popular
        TraceReplayer(context, policy).run(sorted(records), duration=1000.0)
        # The most popular item ends up on the first enclosure.
        assert context.virtualization.enclosure_of("item-2-0").name == "enc-00"

    def test_determination_per_checkpoint(self):
        context = build_system()
        policy = PDCPolicy(monitoring_period=300.0)
        records = stream("item-0-0", 0.0, 1000.0, gap=10.0)
        result = TraceReplayer(context, policy).run(records, duration=1000.0)
        assert result.determinations == 3

    def test_migration_counted(self):
        context = build_system()
        policy = PDCPolicy(monitoring_period=500.0)
        records = stream("item-2-0", 0.0, 600.0, gap=5.0)
        result = TraceReplayer(context, policy).run(records, duration=600.0)
        assert result.migrated_bytes > 0

    def test_popularity_resets_each_window(self):
        context = build_system()
        policy = PDCPolicy(monitoring_period=300.0)
        policy.bind(context)
        policy.on_start(0.0)
        policy.after_io(
            LogicalIORecord(1.0, "item-0-0", 0, 4096, IOType.READ), 0.1
        )
        assert policy._popularity["item-0-0"] == 1
        policy.on_checkpoint(300.0)
        assert not policy._popularity

    def test_oversized_popular_item_placed_alone(self):
        # An item whose measured load alone exceeds the budget must not
        # push every subsequent item onto the last enclosure.
        context = build_system()
        policy = PDCPolicy(monitoring_period=400.0)
        records = stream("item-0-0", 0.0, 400.0, gap=0.5)  # 2 IOPS > budget
        records += stream("item-1-0", 0.3, 400.0, gap=10.0)
        TraceReplayer(context, policy).run(sorted(records), duration=400.0)
        first = context.virtualization.enclosure_of("item-0-0").name
        second = context.virtualization.enclosure_of("item-1-0").name
        assert first == "enc-00"
        assert second == "enc-01"
