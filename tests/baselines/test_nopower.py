"""Tests for the no-power-saving reference policy."""

import pytest

from repro.baselines.nopower import NoPowerSavingPolicy
from repro.storage.power import PowerState
from repro.trace.records import IOType, LogicalIORecord
from repro.trace.replay import TraceReplayer


def rec(t):
    return LogicalIORecord(t, "item-0", 0, 4096, IOType.READ)


class TestNoPowerSaving:
    def test_has_no_checkpoints(self):
        assert NoPowerSavingPolicy().next_checkpoint() is None

    def test_enclosures_never_spin_down(self, small_context):
        replayer = TraceReplayer(small_context, NoPowerSavingPolicy())
        result = replayer.run([rec(1.0)], duration=5000.0)
        assert result.spin_down_count == 0
        for enclosure in small_context.enclosures:
            assert enclosure.time_in_state(PowerState.OFF) == 0.0

    def test_zero_migration(self, small_context):
        replayer = TraceReplayer(small_context, NoPowerSavingPolicy())
        result = replayer.run([rec(1.0)], duration=100.0)
        assert result.migrated_bytes == 0
        assert result.determinations == 0

    def test_unbound_policy_raises(self):
        policy = NoPowerSavingPolicy()
        with pytest.raises(RuntimeError):
            policy._require_context()

    def test_power_near_idle_for_quiet_trace(self, small_context):
        replayer = TraceReplayer(small_context, NoPowerSavingPolicy())
        result = replayer.run([rec(1.0)], duration=10_000.0)
        idle = small_context.config.enclosure_power.idle_watts
        per_enclosure = result.power.enclosure_watts / 3
        assert per_enclosure == pytest.approx(idle, rel=0.01)
