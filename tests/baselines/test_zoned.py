"""Tests for the zoned multi-policy (paper §IX future work)."""

import pytest

from repro import units
from repro.baselines.ddr import DDRPolicy
from repro.baselines.nopower import NoPowerSavingPolicy
from repro.baselines.zoned import Zone, ZonedPolicy
from repro.config import DEFAULT_CONFIG
from repro.core.manager import EnergyEfficientPolicy
from repro.errors import ConfigurationError
from repro.simulation import build_context, default_volume
from repro.trace.records import IOType, LogicalIORecord
from repro.trace.replay import TraceReplayer


def build_system():
    """Four enclosures: zone A (0-1) busy OLTP-ish, zone B (2-3) archive."""
    context = build_context(DEFAULT_CONFIG, 4)
    names = context.enclosure_names()
    for idx, item in (
        (0, "db-0"),
        (1, "db-1"),
        (2, "archive-0"),
        (3, "archive-1"),
    ):
        context.virtualization.add_item(
            item, 200 * units.MB, default_volume(names[idx])
        )
        context.app_monitor.register_item(item, default_volume(names[idx]))
    return context


def trace(duration=2000.0):
    records = []
    t = 0.0
    while t < duration:
        records.append(LogicalIORecord(t, "db-0", 0, 4096, IOType.READ))
        records.append(
            LogicalIORecord(t + 5.0, "db-1", 0, 4096, IOType.WRITE)
        )
        t += 20.0
    # The archive is touched once near the start, then never again.
    records.append(LogicalIORecord(1.0, "archive-0", 0, 4096, IOType.READ))
    return sorted(records)


def zoned_policy():
    return ZonedPolicy(
        [
            Zone("db", ("enc-00", "enc-01"), NoPowerSavingPolicy()),
            Zone("archive", ("enc-02", "enc-03"), EnergyEfficientPolicy()),
        ]
    )


class TestValidation:
    def test_requires_zones(self):
        with pytest.raises(ConfigurationError):
            ZonedPolicy([])

    def test_overlapping_zones_rejected(self):
        with pytest.raises(ConfigurationError):
            ZonedPolicy(
                [
                    Zone("a", ("enc-00",), NoPowerSavingPolicy()),
                    Zone("b", ("enc-00",), NoPowerSavingPolicy()),
                ]
            )

    def test_unknown_enclosures_rejected_at_bind(self):
        context = build_system()
        policy = ZonedPolicy(
            [Zone("ghost", ("enc-99",), NoPowerSavingPolicy())]
        )
        with pytest.raises(ConfigurationError):
            policy.bind(context)


class TestZonedBehaviour:
    def test_archive_zone_sleeps_while_db_zone_stays_up(self):
        context = build_system()
        result = TraceReplayer(context, zoned_policy()).run(
            trace(), duration=2000.0
        )
        by_name = {e.name: e for e in context.enclosures}
        # The managed archive zone turned its enclosures off...
        assert by_name["enc-02"].spin_down_count >= 1
        assert by_name["enc-03"].spin_down_count >= 1
        # ...while the no-power-saving DB zone never did.
        assert by_name["enc-00"].spin_down_count == 0
        assert by_name["enc-01"].spin_down_count == 0

    def test_no_cross_zone_migration(self):
        context = build_system()
        TraceReplayer(context, zoned_policy()).run(trace(), duration=2000.0)
        virt = context.virtualization
        assert virt.enclosure_of("db-0").name in ("enc-00", "enc-01")
        assert virt.enclosure_of("archive-0").name in ("enc-02", "enc-03")

    def test_determinations_aggregate_sub_policies(self):
        context = build_system()
        result = TraceReplayer(context, zoned_policy()).run(
            trace(), duration=2000.0
        )
        # Only the archive zone's manager runs checkpoints.
        assert result.determinations >= 2

    def test_mixed_ddr_and_proposed(self):
        context = build_system()
        policy = ZonedPolicy(
            [
                Zone("db", ("enc-00", "enc-01"), DDRPolicy()),
                Zone(
                    "archive",
                    ("enc-02", "enc-03"),
                    EnergyEfficientPolicy(),
                ),
            ]
        )
        result = TraceReplayer(context, policy).run(
            trace(), duration=2000.0
        )
        assert result.io_count == len(trace())

    def test_checkpoint_is_min_across_zones(self):
        context = build_system()
        policy = ZonedPolicy(
            [
                Zone("a", ("enc-00", "enc-01"), DDRPolicy()),  # 0.25 s
                Zone(
                    "b", ("enc-02", "enc-03"), EnergyEfficientPolicy()
                ),  # 520 s
            ]
        )
        policy.bind(context)
        policy.on_start(0.0)
        assert policy.next_checkpoint() == pytest.approx(
            DEFAULT_CONFIG.ddr_monitoring_period
        )

    def test_all_none_checkpoints(self):
        context = build_system()
        policy = ZonedPolicy(
            [
                Zone("a", ("enc-00", "enc-01"), NoPowerSavingPolicy()),
                Zone("b", ("enc-02", "enc-03"), NoPowerSavingPolicy()),
            ]
        )
        policy.bind(context)
        policy.on_start(0.0)
        assert policy.next_checkpoint() is None
