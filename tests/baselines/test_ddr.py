"""Tests for the DDR baseline."""

import pytest

from repro import units
from repro.baselines.ddr import DDRPolicy
from repro.config import DEFAULT_CONFIG
from repro.simulation import build_context, default_volume
from repro.trace.records import IOType, LogicalIORecord
from repro.trace.replay import TraceReplayer


def build_system(enclosures=3, item_size=4 * units.GB):
    context = build_context(DEFAULT_CONFIG, enclosures)
    names = context.enclosure_names()
    for e in range(enclosures):
        item = f"item-{e}"
        context.virtualization.add_item(
            item, item_size, default_volume(names[e])
        )
        context.app_monitor.register_item(item, default_volume(names[e]))
    return context


def stream(item, start, end, gap):
    """Physical traffic: rotating offsets defeat the read cache (DDR
    judges enclosures by their *physical* IOPS)."""
    t = start
    offset = 0
    records = []
    while t < end:
        records.append(LogicalIORecord(t, item, offset, 4096, IOType.READ))
        offset = (offset + 512 * 1024) % (4 * units.GB - units.MB)
        t += gap
    return records


class TestDDRConfiguration:
    def test_defaults_from_config(self, small_context):
        policy = DDRPolicy()
        policy.bind(small_context)
        policy.on_start(0.0)
        assert policy.monitoring_period == DEFAULT_CONFIG.ddr_monitoring_period
        assert policy.target_th == DEFAULT_CONFIG.ddr_target_th
        assert policy.low_th == DEFAULT_CONFIG.ddr_target_th / 2

    def test_nothing_cold_at_start(self, small_context):
        policy = DDRPolicy()
        policy.bind(small_context)
        policy.on_start(0.0)
        assert not any(e.power_off_enabled for e in small_context.enclosures)

    def test_invalid_smoothing_rejected(self):
        with pytest.raises(ValueError):
            DDRPolicy(iops_smoothing_seconds=0.0)


class TestDDRBehaviour:
    def test_sub_second_determination_count(self):
        context = build_system()
        policy = DDRPolicy(monitoring_period=0.25)
        records = stream("item-0", 0.0, 10.0, gap=1.0)
        result = TraceReplayer(context, policy).run(records, duration=10.0)
        assert result.determinations == 40

    def test_busy_enclosures_never_marked_cold(self):
        context = build_system()
        policy = DDRPolicy(monitoring_period=1.0, iops_smoothing_seconds=10.0)
        # 1 IOPS on every enclosure, far above LowTH (0.25).
        records = []
        for e in range(3):
            records += stream(f"item-{e}", 0.1 * e, 300.0, gap=1.0)
        result = TraceReplayer(context, policy).run(
            sorted(records), duration=300.0
        )
        assert result.spin_down_count == 0
        assert result.migrated_bytes == 0

    def test_idle_enclosure_marked_cold_and_spins_down(self):
        context = build_system()
        policy = DDRPolicy(monitoring_period=1.0, iops_smoothing_seconds=10.0)
        # Only enclosure 0 busy; 1 and 2 silent -> cold -> off.
        records = stream("item-0", 0.0, 600.0, gap=1.0)
        result = TraceReplayer(context, policy).run(records, duration=600.0)
        assert result.spin_down_count >= 2

    def test_access_to_cold_enclosure_migrates_blocks(self):
        context = build_system()
        policy = DDRPolicy(monitoring_period=1.0, iops_smoothing_seconds=5.0)
        # Enclosure 1 quiet for a long time, then accessed.
        records = stream("item-0", 0.0, 400.0, gap=1.0)
        records.append(
            LogicalIORecord(300.0, "item-1", 0, 8192, IOType.READ)
        )
        result = TraceReplayer(context, policy).run(
            sorted(records), duration=400.0
        )
        assert policy.blocks_migrated >= 1
        assert result.migrated_bytes >= 8192

    def test_no_block_migration_without_hot_targets(self):
        # Single enclosure: even if cold, there is nowhere to migrate.
        context = build_context(DEFAULT_CONFIG, 1)
        context.virtualization.add_item(
            "only", units.MB, default_volume("enc-00")
        )
        context.app_monitor.register_item("only", default_volume("enc-00"))
        policy = DDRPolicy(monitoring_period=1.0, iops_smoothing_seconds=5.0)
        records = [
            LogicalIORecord(200.0, "only", 0, 4096, IOType.READ),
        ]
        result = TraceReplayer(context, policy).run(records, duration=300.0)
        assert policy.blocks_migrated == 0

    def test_smoothing_resists_momentary_quiet(self):
        context = build_system()
        policy = DDRPolicy(monitoring_period=0.5, iops_smoothing_seconds=60.0)
        policy.bind(context)
        policy.on_start(0.0)
        # Simulate sustained traffic then one quiet window.
        monitor = context.storage_monitor
        from repro.trace.records import PhysicalIORecord

        clock = 0.0
        for _ in range(200):
            clock += 0.5
            monitor.on_physical(
                PhysicalIORecord(clock, "enc-00", 0, 1, IOType.READ)
            )
            policy.on_checkpoint(clock)
        assert "enc-00" not in policy._cold
        # One empty window barely dents the smoothed estimate.
        clock += 0.5
        policy.on_checkpoint(clock)
        assert "enc-00" not in policy._cold
