"""Tests for the §VIII-A cache-only interval-control baseline."""

import pytest

from repro import units
from repro.baselines.cacheonly import CacheOnlyPolicy
from repro.config import DEFAULT_CONFIG
from repro.simulation import build_context, default_volume
from repro.trace.records import IOType, LogicalIORecord
from repro.trace.replay import TraceReplayer


def build_system():
    context = build_context(DEFAULT_CONFIG, 2)
    for index in range(2):
        name = context.enclosure_names()[index]
        context.virtualization.add_item(
            f"item-{index}", 100 * units.MB, default_volume(name)
        )
        context.app_monitor.register_item(
            f"item-{index}", default_volume(name)
        )
    return context


class TestCacheOnly:
    def test_everything_write_delayed(self):
        context = build_system()
        policy = CacheOnlyPolicy()
        policy.bind(context)
        policy.on_start(0.0)
        assert context.cache.write_delay.selected_items() == {
            "item-0",
            "item-1",
        }

    def test_all_enclosures_may_spin_down(self):
        context = build_system()
        policy = CacheOnlyPolicy()
        policy.bind(context)
        policy.on_start(0.0)
        assert all(e.power_off_enabled for e in context.enclosures)

    def test_writes_absorbed_by_cache(self):
        context = build_system()
        policy = CacheOnlyPolicy()
        records = [
            LogicalIORecord(float(t), "item-0", t * 4096, 4096, IOType.WRITE)
            for t in range(1, 20)
        ]
        result = TraceReplayer(context, policy).run(records, duration=100.0)
        assert result.cache_hit_ratio > 0.9  # write-behind absorbed them

    def test_no_migration_no_determinations(self):
        context = build_system()
        policy = CacheOnlyPolicy()
        records = [
            LogicalIORecord(float(t), "item-0", 0, 4096, IOType.READ)
            for t in range(1, 10)
        ]
        result = TraceReplayer(context, policy).run(records, duration=700.0)
        assert result.migrated_bytes == 0
        assert result.determinations == 0

    def test_checkpoints_resweep(self):
        context = build_system()
        policy = CacheOnlyPolicy(refresh_period=100.0)
        policy.bind(context)
        policy.on_start(0.0)
        context.virtualization.add_item(
            "late", units.MB, default_volume("enc-00")
        )
        policy.on_checkpoint(100.0)
        assert "late" in context.cache.write_delay.selected_items()
        assert policy.next_checkpoint() == 200.0

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            CacheOnlyPolicy(refresh_period=0.0)
