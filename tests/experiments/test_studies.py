"""Tests for the SSD and scaling studies (smoke-speed checks)."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.experiments.ssd_study import rows_for, run_study, savings, ssd_config
from repro.storage.power import SSD_POWER_MODEL


class TestSsdConfig:
    def test_break_even_follows_hardware(self):
        config = ssd_config()
        assert config.break_even_time == pytest.approx(
            SSD_POWER_MODEL.break_even_time
        )
        assert config.break_even_time < 10.0

    def test_period_scales_with_break_even(self):
        config = ssd_config()
        assert config.initial_monitoring_period == pytest.approx(
            10 * config.break_even_time
        )

    def test_other_parameters_preserved(self):
        config = ssd_config()
        assert config.storage_cache_bytes == DEFAULT_CONFIG.storage_cache_bytes
        assert config.max_iops_random == DEFAULT_CONFIG.max_iops_random

    def test_validation_passes(self):
        # The config's break-even consistency check must accept the
        # SSD model (the algorithmic value is derived from it).
        ssd_config()


class TestSsdStudy:
    def test_four_cells(self):
        results = run_study()
        assert set(results) == {
            "hdd/none",
            "hdd/proposed",
            "ssd/none",
            "ssd/proposed",
        }

    def test_flash_baseline_is_cheap(self):
        results = run_study()
        assert (
            results["ssd/none"].enclosure_watts
            < results["hdd/none"].enclosure_watts / 3
        )

    def test_savings_keys(self):
        assert set(savings(run_study())) == {"hdd", "ssd"}

    def test_rows_render(self):
        rows = rows_for()
        assert len(rows) == 4
        assert all("W" in row.measured for row in rows)


class TestScalingStudy:
    def test_sweep_shape(self):
        from repro.experiments.scaling import ENCLOSURE_SWEEP, run_point

        base, ours = run_point(ENCLOSURE_SWEEP[0])
        assert 0 < ours <= base
