"""Tests for the CLI's top-level error mapping.

``main()`` turns every *domain* error — bad traces, invalid arguments,
API misuse, audit failures, unusable snapshots — into exit status 2
with a one-line ``ecostor: error: ...`` diagnostic on stderr.  Anything
else is a bug and must still propagate as a traceback.
"""

import pytest

import repro.cli as cli
from repro.cli import main
from repro.core.placement import HotSetTooSmall
from repro.errors import AuditError, PlacementError


class TestDomainErrorsExitTwo:
    def test_usage_error_from_mismatched_snapshot_flags(self, capsys):
        status = main(
            ["run", "fileserver", "proposed", "--snapshot-every", "100"]
        )
        assert status == 2
        err = capsys.readouterr().err
        assert err.startswith("ecostor: error: ")
        assert "--snapshot-dir" in err

    def test_validation_error_from_negative_snapshot_every(
        self, capsys, tmp_path
    ):
        status = main(
            [
                "run", "fileserver", "proposed",
                "--snapshot-every", "-5",
                "--snapshot-dir", str(tmp_path),
            ]
        )
        assert status == 2
        assert "non-negative" in capsys.readouterr().err

    def test_snapshot_error_from_corrupt_snapshot(self, capsys, tmp_path):
        bad = tmp_path / "snap-0000000001.ecsn"
        bad.write_bytes(b"torn")
        assert main(["resume", str(bad)]) == 2
        assert "truncated" in capsys.readouterr().err

    def test_trace_error_from_corrupt_ecot(self, capsys, tmp_path):
        bad = tmp_path / "bad.ecot"
        bad.write_bytes(b"garbage bytes")
        assert main(["trace", "info", str(bad)]) == 2
        assert ".ecot" in capsys.readouterr().err

    def test_audit_error_maps_to_exit_two(self, capsys, monkeypatch):
        def fail(args):
            raise AuditError("invariant violated at t=120.0\n  - detail")

        monkeypatch.setattr(cli, "_cmd_run", fail)
        assert main(["run", "fileserver", "proposed"]) == 2
        err = capsys.readouterr().err
        # Only the first line of a multi-line error is printed.
        assert "invariant violated at t=120.0" in err
        assert "detail" not in err

    @pytest.mark.parametrize("shards", ["0", "-3"])
    def test_non_positive_shards_rejected_before_load(
        self, capsys, tmp_path, shards
    ):
        # The guard fires before the trace is opened, so the file's
        # content (or existence) never matters.
        status = main(
            ["trace", "info", str(tmp_path / "any.ecot"), "--shards", shards]
        )
        assert status == 2
        err = capsys.readouterr().err
        assert err.startswith("ecostor: error: ")
        assert "--shards must be a positive array count" in err

    def test_placement_error_maps_to_exit_two(self, capsys, monkeypatch):
        def fail(args):
            raise PlacementError("no feasible hot/cold split")

        monkeypatch.setattr(cli, "_cmd_run", fail)
        assert main(["run", "fileserver", "proposed"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("ecostor: error: ")
        assert "no feasible hot/cold split" in err

    def test_hot_set_too_small_maps_to_exit_two(self, capsys, monkeypatch):
        def fail(args):
            raise HotSetTooSmall("2 hot enclosures cannot absorb the load")

        monkeypatch.setattr(cli, "_cmd_run", fail)
        assert main(["run", "fileserver", "proposed"]) == 2
        assert "hot enclosures" in capsys.readouterr().err

    def test_empty_message_falls_back_to_class_name(
        self, capsys, monkeypatch
    ):
        def fail(args):
            raise AuditError()

        monkeypatch.setattr(cli, "_cmd_run", fail)
        assert main(["run", "fileserver", "proposed"]) == 2
        assert "AuditError" in capsys.readouterr().err


class TestBugsStillPropagate:
    def test_unexpected_errors_are_not_swallowed(self, monkeypatch):
        def explode(args):
            raise RuntimeError("a genuine bug")

        monkeypatch.setattr(cli, "_cmd_run", explode)
        with pytest.raises(RuntimeError, match="a genuine bug"):
            main(["run", "fileserver", "proposed"])


class TestSnapshotCliRoundTrip:
    def test_run_resume_reports_match(self, capsys, tmp_path):
        assert main(
            [
                "run", "tpcc", "pdc",
                "--snapshot-every", "6000",
                "--snapshot-dir", str(tmp_path),
            ]
        ) == 0
        run_out = capsys.readouterr().out
        assert "snapshots:" in run_out
        snapshots = sorted(tmp_path.glob("snap-*.ecsn"))
        assert snapshots
        assert main(["resume", str(snapshots[0])]) == 0
        resume_out = capsys.readouterr().out
        # Every measured line of the resumed report equals the original
        # run's (the snapshot count line exists only on the run side).
        resumed_lines = resume_out.strip().splitlines()
        assert all(line in run_out for line in resumed_lines)
        assert "enclosure power" in resume_out
