"""Smoke tests for every figure module (short workloads).

These verify the harness mechanics — rows produced, labels well-formed,
conversions applied.  The *shape* assertions against the paper's results
live in benchmarks/ where the full-length workloads run.
"""

import pytest

from repro.experiments import (
    ablations,
    fig06_patterns,
    fig08_10_fileserver,
    fig11_13_tpcc,
    fig14_16_tpch,
    fig17_19_intervals,
    tables,
)


class TestFig06:
    def test_rows_for_each_workload(self):
        rows = fig06_patterns.rows_for("tpcc", full=False)
        assert len(rows) == 4
        assert all("%" in row.measured for row in rows)

    def test_run_renders(self):
        text = fig06_patterns.run(full=False)
        assert "Fig 6" in text
        assert "fileserver P1" in text


class TestFileServerFigures:
    def test_fig8_has_four_policies(self):
        rows = fig08_10_fileserver.fig8_rows(full=False)
        assert len(rows) == 4
        assert any("proposed" in row.label for row in rows)

    def test_fig9_response_rows(self):
        rows = fig08_10_fileserver.fig9_rows(full=False)
        assert len(rows) == 4
        proposed = next(r for r in rows if "proposed" in r.label)
        assert proposed.paper == "17.1 ms"

    def test_fig10_migration_and_determinations(self):
        rows = fig08_10_fileserver.fig10_rows(full=False)
        labels = [row.label for row in rows]
        assert any("migrated" in label for label in labels)
        assert any("determinations" in label for label in labels)


class TestTpccFigures:
    def test_fig11_rows(self):
        rows = fig11_13_tpcc.fig11_rows(full=False)
        assert len(rows) == 4

    def test_fig12_throughput_ordering(self):
        tpmc = fig11_13_tpcc.measured_tpmc(full=False)
        assert tpmc["no-power-saving"] == pytest.approx(1859.5)
        # Every power-saving method costs some throughput.
        assert tpmc["proposed"] <= tpmc["no-power-saving"]

    def test_fig13_rows(self):
        rows = fig11_13_tpcc.fig13_rows(full=False)
        assert len(rows) == 6


class TestTpchFigures:
    def test_fig14_rows(self):
        rows = fig14_16_tpch.fig14_rows(full=False)
        assert len(rows) == 4

    def test_fig15_query_responses(self):
        responses = fig14_16_tpch.query_responses(
            full=False, queries=("Q2", "Q21")
        )
        assert "proposed" in responses
        assert set(responses["proposed"]) <= {"Q2", "Q21"}
        for value in responses["proposed"].values():
            assert value > 0

    def test_fig16_rows(self):
        rows = fig14_16_tpch.fig16_rows(full=False)
        assert len(rows) == 6


class TestIntervalFigures:
    def test_totals_per_policy(self):
        totals = fig17_19_intervals.total_lengths("tpcc", full=False)
        assert set(totals) == {
            "no-power-saving",
            "proposed",
            "pdc",
            "ddr",
        }

    def test_rows_render(self):
        rows = fig17_19_intervals.rows_for("fileserver", full=False)
        assert len(rows) == 4


class TestTables:
    def test_table1_rows(self):
        rows = tables.table1_rows(full=False)
        assert len(rows) == 6

    def test_table2_contains_parameters(self):
        text = "\n".join(
            f"{r.label}={r.measured}" for r in tables.table2_rows()
        )
        assert "break-even time=52 sec" in text
        assert "alpha=1.2" in text
        assert "dirty block rate=50 %" in text


class TestAblations:
    def test_unknown_ablation_rejected(self):
        with pytest.raises(ValueError):
            ablations.run_ablation("tpcc", "no-such-knob")

    def test_rows_include_every_knob(self):
        rows = ablations.rows_for("tpcc", full=False)
        labels = " ".join(row.label for row in rows)
        for name in ablations.ABLATIONS:
            if name != "full":
                assert name in labels
