"""Tests for the ecostor CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_command_parses(self):
        args = build_parser().parse_args(["run", "tpcc", "proposed"])
        assert args.workload == "tpcc"
        assert args.policy == "proposed"
        assert not args.full

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "mysql", "proposed"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "tpcc", "magic"])

    def test_figures_only_choices(self):
        args = build_parser().parse_args(["figures", "--only", "fig06"])
        assert args.only == ["fig06"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--only", "fig99"])


class TestExecution:
    def test_patterns_command(self, capsys):
        assert main(["patterns", "tpcc"]) == 0
        out = capsys.readouterr().out
        assert "P3" in out
        assert "tpcc" in out

    def test_run_command(self, capsys):
        assert main(["run", "tpcc", "no-power-saving"]) == 0
        out = capsys.readouterr().out
        assert "enclosure power" in out
        assert "mean response" in out

    def test_figures_subset(self, capsys):
        assert main(["figures", "--only", "fig06"]) == 0
        out = capsys.readouterr().out
        assert "Fig 6" in out
