"""Tests for the ecostor CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_command_parses(self):
        args = build_parser().parse_args(["run", "tpcc", "proposed"])
        assert args.workload == "tpcc"
        assert args.policy == "proposed"
        assert not args.full

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "mysql", "proposed"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "tpcc", "magic"])

    def test_figures_only_choices(self):
        args = build_parser().parse_args(["figures", "--only", "fig06"])
        assert args.only == ["fig06"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--only", "fig99"])


class TestExperimentsCommand:
    def test_parses_engine_flags(self):
        args = build_parser().parse_args(
            ["experiments", "--workloads", "tpcc", "--policies", "pdc",
             "--jobs", "4", "--cache-dir", "/tmp/c", "--verify-serial"]
        )
        assert args.workloads == ["tpcc"]
        assert args.policies == ["pdc"]
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.verify_serial

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "--workloads", "mysql"])

    def test_sweep_verifies_against_serial(self, capsys, tmp_path):
        argv = [
            "experiments", "--workloads", "tpcc",
            "--policies", "no-power-saving", "pdc",
            "--jobs", "2", "--cache-dir", str(tmp_path), "--verify-serial",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Experiments — tpcc" in out
        assert "cells: 2 total, 0 cached, 2 replayed, 0 failed" in out
        assert "verify-serial: parallel results identical to serial replay" in out
        # Second invocation hits the warm cache: zero replays.
        assert main(argv[:-1]) == 0
        out = capsys.readouterr().out
        assert "cells: 2 total, 2 cached, 0 replayed, 0 failed" in out


class TestExecution:
    def test_patterns_command(self, capsys):
        assert main(["patterns", "tpcc"]) == 0
        out = capsys.readouterr().out
        assert "P3" in out
        assert "tpcc" in out

    def test_run_command(self, capsys):
        assert main(["run", "tpcc", "no-power-saving"]) == 0
        out = capsys.readouterr().out
        assert "enclosure power" in out
        assert "mean response" in out

    def test_figures_subset(self, capsys):
        assert main(["figures", "--only", "fig06"]) == 0
        out = capsys.readouterr().out
        assert "Fig 6" in out
