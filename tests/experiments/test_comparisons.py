"""Tests for the shared paper-vs-measured row builders."""

import pytest

from repro.experiments.comparisons import (
    POLICY_ORDER,
    determination_rows,
    migration_rows,
    power_rows,
    response_rows,
    saving_percentages,
)
from repro.experiments.paper_values import (
    DETERMINATIONS,
    FIG6_PATTERN_MIX,
    MIGRATED_BYTES,
    POWER_SAVING_PERCENT,
    POWER_WATTS,
)
from repro.experiments.testbed import comparison


@pytest.fixture(scope="module")
def results():
    return comparison("tpcc", full=False)


class TestRowBuilders:
    def test_power_rows_cover_all_policies(self, results):
        rows = power_rows("tpcc", results)
        assert len(rows) == 4
        labels = " ".join(row.label for row in rows)
        for policy in POLICY_ORDER:
            assert policy in labels

    def test_power_rows_quote_paper_values(self, results):
        rows = power_rows("tpcc", results)
        baseline_row = next(r for r in rows if "no-power-saving" in r.label)
        assert baseline_row.paper == "2656.4 W"

    def test_saving_percentages_excludes_baseline(self, results):
        savings = saving_percentages(results)
        assert set(savings) == {"proposed", "pdc", "ddr"}

    def test_migration_rows(self, results):
        rows = migration_rows("tpcc", results)
        assert len(rows) == 3
        assert all("GB" in row.measured for row in rows)

    def test_determination_rows(self, results):
        rows = determination_rows("tpcc", results)
        by_policy = {row.label.split()[-1]: row for row in rows}
        assert by_policy["pdc"].paper == "3"
        assert by_policy["ddr"].paper == "90000"

    def test_response_rows_with_and_without_paper_values(self, results):
        with_paper = response_rows(
            "tpcc", results, {"proposed": 0.010}
        )
        proposed = next(r for r in with_paper if "proposed" in r.label)
        assert proposed.paper == "10.0 ms"
        without = response_rows("tpcc", results)
        assert all(row.paper == "-" for row in without)


class TestPaperValues:
    """The transcribed constants must stay self-consistent."""

    def test_pattern_mixes_sum_to_100(self):
        for name, mix in FIG6_PATTERN_MIX.items():
            assert sum(mix.values()) == pytest.approx(100.0, abs=1.0), name

    def test_savings_match_watts(self):
        for workload, watts in POWER_WATTS.items():
            base = watts["no-power-saving"]
            for policy, value in watts.items():
                if policy == "no-power-saving":
                    continue
                derived = 100.0 * (base - value) / base
                assert derived == pytest.approx(
                    POWER_SAVING_PERCENT[workload][policy], abs=0.6
                ), (workload, policy)

    def test_every_workload_has_all_tables(self):
        for table in (POWER_WATTS, MIGRATED_BYTES, DETERMINATIONS):
            assert set(table) == {"fileserver", "tpcc", "tpch"}
