"""Tests for the experiment runner and testbed catalog."""

import pytest

from repro.baselines.nopower import NoPowerSavingPolicy
from repro.core.manager import EnergyEfficientPolicy
from repro.experiments.runner import (
    STANDARD_POLICIES,
    run_cell,
    run_comparison,
)
from repro.experiments.testbed import (
    SMOKE_QUERIES,
    WORKLOAD_NAMES,
    build_workload,
    comparison,
)
from repro.workloads import build_oltp_workload


@pytest.fixture(scope="module")
def tiny_workload():
    return build_oltp_workload(duration=1300.0)


class TestRunCell:
    def test_produces_complete_result(self, tiny_workload):
        result = run_cell(tiny_workload, NoPowerSavingPolicy())
        assert result.workload_name == "tpcc"
        assert result.policy_name == "no-power-saving"
        assert result.replay.io_count == len(tiny_workload.records)
        assert result.enclosure_watts > 0
        assert result.controller_watts > 0

    def test_interval_curve_attached(self, tiny_workload):
        result = run_cell(tiny_workload, EnergyEfficientPolicy())
        assert result.interval_curve is not None

    def test_fresh_context_per_cell(self, tiny_workload):
        first = run_cell(tiny_workload, NoPowerSavingPolicy())
        second = run_cell(tiny_workload, NoPowerSavingPolicy())
        assert first.enclosure_watts == pytest.approx(second.enclosure_watts)


class TestRunComparison:
    def test_all_four_policies(self, tiny_workload):
        results = run_comparison(tiny_workload)
        assert set(results) == set(STANDARD_POLICIES)

    def test_custom_policy_subset(self, tiny_workload):
        results = run_comparison(
            tiny_workload, {"only": NoPowerSavingPolicy}
        )
        assert set(results) == {"only"}


class TestWorkloadCatalog:
    def test_names(self):
        assert WORKLOAD_NAMES == ("fileserver", "tpcc", "tpch")

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_smoke_workloads_build(self, name):
        workload = build_workload(name, full=False)
        assert workload.io_count > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_workload("mysql")

    def test_memoization(self):
        a = build_workload("tpcc", full=False)
        b = build_workload("tpcc", full=False)
        assert a is b

    def test_smoke_queries_subset_of_spec(self):
        from repro.workloads.dss import QUERY_TABLES

        assert set(SMOKE_QUERIES) <= set(QUERY_TABLES)

    def test_comparison_memoized(self):
        first = comparison("tpcc", full=False)
        second = comparison("tpcc", full=False)
        assert first is second
