"""Tests for the extended CLI commands."""

import json

import pytest

from repro.cli import build_parser, main


class TestTraceCommands:
    def test_export_then_replay(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        assert main(["export-trace", "tpcc", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()
        assert (
            main(
                [
                    "replay-trace",
                    str(path),
                    "no-power-saving",
                    "--enclosures",
                    "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "enclosure power" in out
        assert "inferred data items" in out

    def test_replay_msr_format(self, tmp_path, capsys):
        msr = tmp_path / "trace.msr"
        msr.write_text(
            "128166372003061629,usr,0,Read,7014609920,24576,41286\n"
            "128166372016382155,usr,0,Write,2517254144,4096,703880\n"
        )
        assert (
            main(
                [
                    "replay-trace",
                    str(msr),
                    "no-power-saving",
                    "--enclosures",
                    "2",
                    "--msr",
                ]
            )
            == 0
        )
        assert "usr.0" not in capsys.readouterr().err


class TestStudyCommands:
    def test_ssd_study_parses(self):
        args = build_parser().parse_args(["ssd-study"])
        assert not args.full

    def test_scaling_study_parses(self):
        build_parser().parse_args(["scaling-study"])

    def test_intervals_command(self, capsys):
        assert main(["intervals", "tpcc", "proposed"]) == 0
        out = capsys.readouterr().out
        assert "interval length" in out
        assert "proposed" in out

    def test_intervals_requires_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["intervals", "tpcc"])


class TestTiersCommand:
    def test_tiers_run_reports_every_tier_and_writes_json(
        self, tmp_path, capsys
    ):
        out_path = tmp_path / "tiers.json"
        assert (
            main(["tiers", "fileserver", "--audit", "--out", str(out_path)])
            == 0
        )
        out = capsys.readouterr().out
        for tier in ("flash", "hdd", "archive"):
            assert tier in out
        assert "capacity cost" in out
        document = json.loads(out_path.read_text())
        assert document["format"] == 1
        assert document["workload"] == "fileserver"
        assert document["policy"] == "tiered-lifecycle"
        assert document["audit_checks"] > 0
        assert {row["tier"] for row in document["tiers"]} == {
            "flash",
            "hdd",
            "archive",
        }
        # The JSON is the artifact CI archives; its books must satisfy
        # the ledger identity like the in-process reports do.
        for row in document["tiers"]:
            assert (
                row["bytes_in"] - row["bytes_out"]
                == row["used_bytes"] + row["replica_bytes"]
            )

    def test_tiers_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tiers", "no-such-workload"])
