"""Tests for the extended CLI commands."""

import pytest

from repro.cli import build_parser, main


class TestTraceCommands:
    def test_export_then_replay(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        assert main(["export-trace", "tpcc", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()
        assert (
            main(
                [
                    "replay-trace",
                    str(path),
                    "no-power-saving",
                    "--enclosures",
                    "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "enclosure power" in out
        assert "inferred data items" in out

    def test_replay_msr_format(self, tmp_path, capsys):
        msr = tmp_path / "trace.msr"
        msr.write_text(
            "128166372003061629,usr,0,Read,7014609920,24576,41286\n"
            "128166372016382155,usr,0,Write,2517254144,4096,703880\n"
        )
        assert (
            main(
                [
                    "replay-trace",
                    str(msr),
                    "no-power-saving",
                    "--enclosures",
                    "2",
                    "--msr",
                ]
            )
            == 0
        )
        assert "usr.0" not in capsys.readouterr().err


class TestStudyCommands:
    def test_ssd_study_parses(self):
        args = build_parser().parse_args(["ssd-study"])
        assert not args.full

    def test_scaling_study_parses(self):
        build_parser().parse_args(["scaling-study"])

    def test_intervals_command(self, capsys):
        assert main(["intervals", "tpcc", "proposed"]) == 0
        out = capsys.readouterr().out
        assert "interval length" in out
        assert "proposed" in out

    def test_intervals_requires_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["intervals", "tpcc"])
