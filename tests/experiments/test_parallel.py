"""Tests for the parallel experiment engine and its result cache.

The acceptance criteria from the engine's design live here verbatim:
a four-policy smoke TPC-C grid run with ``jobs=4`` must produce
*numerically identical* ``ExperimentResult``s to the serial path, and a
second invocation against a warm cache must perform **zero replays**.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.baselines.nopower import NoPowerSavingPolicy
from repro.config import DEFAULT_CONFIG
from repro.errors import ExperimentError, ValidationError
from repro.experiments import parallel
from repro.faults import CacheBatteryFailure, FaultPlan
from repro.experiments.parallel import (
    CellOutcome,
    ExperimentCell,
    ExperimentEngine,
    PolicySpec,
    WorkloadSpec,
    standard_cells,
    workload_fingerprint,
)
from repro.experiments.runner import STANDARD_POLICIES, run_cell
from repro.experiments.serialize import (
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)
from repro.experiments.testbed import build_workload, comparison


@pytest.fixture(scope="module")
def grid_cells() -> list[ExperimentCell]:
    """The acceptance grid: smoke TPC-C under all four paper policies."""
    return [
        ExperimentCell(workload=WorkloadSpec(name="tpcc"), policy=PolicySpec(name=p))
        for p in STANDARD_POLICIES
    ]


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("ecostor-cache")


@pytest.fixture(scope="module")
def parallel_run(grid_cells, cache_dir):
    """Cold-cache multiprocess run of the acceptance grid."""
    engine = ExperimentEngine(jobs=4, cache_dir=cache_dir)
    return engine, engine.run_cells(grid_cells)


@pytest.fixture(scope="module")
def serial_run(grid_cells):
    """Uncached in-process run of the same grid."""
    engine = ExperimentEngine(jobs=1)
    return engine, engine.run_cells(grid_cells)


def small_cell(policy: str = "no-power-saving") -> ExperimentCell:
    """A fast single cell for tests that need their own replay."""
    return ExperimentCell(
        workload=WorkloadSpec(name="tpcc", overrides=(("duration", 1300.0),)),
        policy=PolicySpec(name=policy),
    )


class TestAcceptance:
    def test_parallel_identical_to_serial(self, parallel_run, serial_run):
        _, par = parallel_run
        _, ser = serial_run
        assert all(o.ok for o in par)
        assert all(o.ok for o in ser)
        assert [o.result for o in par] == [o.result for o in ser]

    def test_cold_run_replays_every_cell(self, parallel_run):
        engine, outcomes = parallel_run
        assert engine.cache_hits == 0
        assert engine.replays == len(outcomes) == 4
        assert engine.failures == 0
        assert not any(o.from_cache for o in outcomes)

    def test_warm_cache_performs_zero_replays(
        self, grid_cells, cache_dir, parallel_run, monkeypatch
    ):
        _, cold = parallel_run
        # Prove no execution path is even reachable on the warm run.
        monkeypatch.setattr(
            parallel, "_execute_cell_safe",
            lambda cell: pytest.fail("warm run replayed a cell"),
        )
        engine = ExperimentEngine(jobs=4, cache_dir=cache_dir)
        warm = engine.run_cells(grid_cells)
        assert engine.replays == 0
        assert engine.cache_hits == 4
        assert all(o.from_cache for o in warm)
        assert [o.result for o in warm] == [o.result for o in cold]

    def test_engine_matches_direct_run_cell(self, serial_run):
        _, outcomes = serial_run
        direct = run_cell(build_workload("tpcc", full=False), NoPowerSavingPolicy())
        assert outcomes[0].cell.policy.name == "no-power-saving"
        assert outcomes[0].result == direct

    def test_outcomes_come_back_in_input_order(self, parallel_run, grid_cells):
        _, outcomes = parallel_run
        assert [o.cell for o in outcomes] == grid_cells


class TestRouting:
    def test_comparison_results_maps_policy_names(self, cache_dir, parallel_run):
        _, outcomes = parallel_run
        engine = ExperimentEngine(jobs=1, cache_dir=cache_dir)
        results = parallel.comparison_results("tpcc", full=False, engine=engine)
        assert engine.replays == 0  # same cells: answered from the warm cache
        assert results == {o.cell.policy.name: o.result for o in outcomes}

    def test_testbed_comparison_routes_through_engine(self, parallel_run):
        _, outcomes = parallel_run
        results = comparison("tpcc", full=False)
        assert set(results) == set(STANDARD_POLICIES)
        for outcome in outcomes:
            assert results[outcome.cell.policy.name] == outcome.result

    def test_standard_cells_figure_order(self):
        cells = standard_cells(WorkloadSpec(name="tpcc"))
        assert [c.policy.name for c in cells] == list(STANDARD_POLICIES)


class TestSerialization:
    def test_json_round_trip_is_exact(self, serial_run):
        _, outcomes = serial_run
        for outcome in outcomes:
            result = outcome.result
            restored = result_from_json(result_to_json(result))
            assert restored == result
            assert isinstance(restored.interval_curve.lengths, tuple)
            assert isinstance(restored.interval_curve.cumulative, tuple)
            assert isinstance(restored.window_responses, list)

    def test_result_methods_round_trip(self, serial_run):
        _, outcomes = serial_run
        result = outcomes[0].result
        assert type(result).from_dict(result.to_dict()) == result

    def test_format_mismatch_rejected(self, serial_run):
        _, outcomes = serial_run
        data = result_to_dict(outcomes[0].result)
        data["format"] = 999
        with pytest.raises(ExperimentError):
            result_from_dict(data)


class TestCacheKey:
    def test_stable_across_calls(self):
        cell = small_cell()
        assert cell.cache_key() == cell.cache_key()

    def test_config_change_invalidates(self):
        cell = small_cell()
        other = replace(cell, config=replace(DEFAULT_CONFIG, spin_down_timeout=60.0))
        assert cell.cache_key() != other.cache_key()

    def test_policy_options_invalidate(self):
        cell = ExperimentCell(
            workload=small_cell().workload,
            policy=PolicySpec(name="proposed"),
        )
        other = replace(
            cell,
            policy=PolicySpec(name="proposed", options=(("enable_migration", False),)),
        )
        assert cell.cache_key() != other.cache_key()

    def test_workload_change_invalidates(self):
        cell = small_cell()
        other = replace(
            cell, workload=WorkloadSpec(name="tpcc", overrides=(("duration", 2600.0),))
        )
        seeded = replace(cell, workload=WorkloadSpec(name="tpcc", seed=7))
        assert len({cell.cache_key(), other.cache_key(), seeded.cache_key()}) == 3

    def test_audit_flag_invalidates(self):
        cell = small_cell()
        assert cell.cache_key() != replace(cell, audit=True).cache_key()

    def test_empty_fault_plan_shares_key_with_no_plan(self):
        # An empty plan replays bit-identically to a fault-free run, so
        # the two deliberately share one cache entry.
        cell = small_cell()
        assert replace(cell, faults=FaultPlan()).cache_key() == cell.cache_key()

    def test_fault_plan_invalidates(self):
        cell = small_cell()
        faulted = replace(
            cell, faults=FaultPlan(events=(CacheBatteryFailure(time=100.0),))
        )
        moved = replace(
            cell, faults=FaultPlan(events=(CacheBatteryFailure(time=200.0),))
        )
        assert len(
            {cell.cache_key(), faulted.cache_key(), moved.cache_key()}
        ) == 3

    def test_unfingerprintable_fault_plan_rejected(self):
        cell = replace(small_cell(), faults={"events": ()})
        with pytest.raises(ExperimentError, match="un-fingerprintable"):
            cell.cache_key()

    def test_fingerprint_reflects_trace_content(self):
        spec = WorkloadSpec(name="tpcc", overrides=(("duration", 1300.0),))
        same = WorkloadSpec(name="tpcc", overrides=(("duration", 1300.0),))
        longer = WorkloadSpec(name="tpcc", overrides=(("duration", 2600.0),))
        assert workload_fingerprint(spec) == workload_fingerprint(same)
        assert workload_fingerprint(spec) != workload_fingerprint(longer)


class TestCacheRobustness:
    def test_corrupt_entry_is_a_miss_and_gets_rewritten(self, tmp_path):
        cell = small_cell()
        first = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        (result,) = (o.require() for o in first.run_cells([cell]))
        path = tmp_path / f"{cell.cache_key()}.json"
        assert path.exists()
        path.write_text("{ not json", encoding="utf-8")
        second = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        (again,) = (o.require() for o in second.run_cells([cell]))
        assert second.cache_hits == 0 and second.replays == 1
        assert again == result
        third = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        third.run_cells([cell])
        assert third.cache_hits == 1 and third.replays == 0

    def test_wrong_key_entry_is_a_miss(self, tmp_path):
        cell = small_cell()
        first = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        first.run_cells([cell])
        path = tmp_path / f"{cell.cache_key()}.json"
        # Simulate a hash collision / renamed file: stored key disagrees.
        text = path.read_text(encoding="utf-8").replace(cell.cache_key(), "0" * 64)
        path.write_text(text, encoding="utf-8")
        second = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        second.run_cells([cell])
        assert second.cache_hits == 0 and second.replays == 1


class TestFailureIsolation:
    def test_one_bad_cell_does_not_kill_the_sweep(self, monkeypatch):
        def boom() -> None:
            raise RuntimeError("policy factory exploded")

        monkeypatch.setitem(STANDARD_POLICIES, "boom", boom)
        cells = [small_cell(), small_cell("boom")]
        engine = ExperimentEngine(jobs=1)
        good, bad = engine.run_cells(cells)
        assert good.ok and good.result is not None
        assert not bad.ok and bad.from_cache is False
        assert "policy factory exploded" in bad.error
        assert engine.failures == 1 and engine.replays == 2
        with pytest.raises(ExperimentError, match="boom"):
            bad.require()

    def test_require_on_success_returns_result(self, serial_run):
        _, outcomes = serial_run
        assert outcomes[0].require() is outcomes[0].result


class TestSpecs:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ExperimentError, match="unknown policy"):
            PolicySpec(name="magic").build()

    def test_unknown_workload_rejected(self):
        with pytest.raises(ExperimentError, match="unknown workload"):
            WorkloadSpec(name="mysql", overrides=(("duration", 1.0),)).build()

    def test_labels(self):
        cell = ExperimentCell(
            workload=WorkloadSpec(name="tpcc", seed=3),
            policy=PolicySpec(name="proposed", options=(("enable_migration", False),)),
        )
        assert cell.label == "tpcc[smoke,seed=3] x proposed(enable_migration=False)"

    def test_cells_are_picklable(self):
        import pickle

        cell = small_cell()
        assert pickle.loads(pickle.dumps(cell)) == cell


class TestEngineConfiguration:
    @pytest.fixture
    def restore_defaults(self):
        saved = (
            parallel._DEFAULTS.jobs,
            parallel._DEFAULTS.cache_dir,
            parallel._DEFAULTS.progress,
        )
        yield
        (
            parallel._DEFAULTS.jobs,
            parallel._DEFAULTS.cache_dir,
            parallel._DEFAULTS.progress,
        ) = saved

    def test_configure_feeds_default_engine(self, restore_defaults, tmp_path):
        lines: list[str] = []
        parallel.configure(jobs=2, cache_dir=tmp_path, progress=lines.append)
        engine = parallel.default_engine()
        assert engine.jobs == 2
        assert engine.cache_dir == tmp_path
        assert engine.progress == lines.append

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentEngine(jobs=0)
        with pytest.raises(ValidationError):
            parallel.configure(jobs=0)

    def test_progress_reports_cache_hits(self, grid_cells, cache_dir, parallel_run):
        lines: list[str] = []
        engine = ExperimentEngine(jobs=1, cache_dir=cache_dir, progress=lines.append)
        engine.run_cells(grid_cells)
        assert len(lines) == 4
        assert lines[0] == "[1/4] tpcc[smoke] x no-power-saving: cached"
        assert all(line.endswith("cached") for line in lines)


class TestOutcome:
    def test_ok_flags(self):
        cell = small_cell()
        assert CellOutcome(cell=cell, result=None, error="trace").ok is False
        assert CellOutcome(cell=cell).ok is True
