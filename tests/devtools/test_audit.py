"""Tests for the runtime invariant auditor."""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.manager import EnergyEfficientPolicy
from repro.devtools.audit import InvariantAuditor
from repro.errors import AuditError, ReproError
from repro.experiments.runner import run_cell
from repro.simulation import SimulationContext, build_context
from repro.storage.controller import StorageController
from repro.storage.meter import PowerMeter, PowerReading
from repro.workloads.fileserver import build_fileserver_workload

#: Long enough to cover several monitoring periods, fast to generate.
SHORT = 2600.0


class _CorruptMeter(PowerMeter):
    """A power meter whose enclosure total drifts by a whole kilojoule."""

    def read(
        self, now: float, controller: StorageController | None = None
    ) -> PowerReading:
        """Return the true reading with the enclosure books inflated."""
        true = super().read(now, controller)
        return PowerReading(
            duration_seconds=true.duration_seconds,
            enclosure_watts=true.enclosure_watts,
            controller_watts=true.controller_watts,
            enclosure_joules=true.enclosure_joules + 1000.0,
            controller_joules=true.controller_joules,
        )


def _fresh_context() -> SimulationContext:
    return build_context(DEFAULT_CONFIG, enclosure_count=2)


def test_clean_context_passes() -> None:
    context = _fresh_context()
    auditor = InvariantAuditor(context)
    auditor.check(0.0)
    auditor.check(60.0)
    assert auditor.checks_run == 2


def test_corrupted_meter_total_raises_audit_error() -> None:
    context = _fresh_context()
    context.meter = _CorruptMeter(
        context.enclosures, context.meter.controller_model
    )
    auditor = InvariantAuditor(context)
    auditor.check(0.0)  # meter not consulted at t=0: books still empty
    with pytest.raises(AuditError, match="power meter disagrees"):
        auditor.check(60.0)


def test_audit_error_is_repro_error_with_state_dump() -> None:
    context = _fresh_context()
    context.meter = _CorruptMeter(
        context.enclosures, context.meter.controller_model
    )
    auditor = InvariantAuditor(context)
    with pytest.raises(ReproError) as excinfo:
        auditor.check(120.0)
    message = str(excinfo.value)
    assert "state dump at t=120.000s" in message
    assert "enc-00" in message
    assert "cache:" in message


def test_placement_drift_raises_audit_error() -> None:
    context = _fresh_context()
    virt = context.virtualization
    volume = virt.volume_names[0]
    virt.add_item("item-x", 4096, volume)
    auditor = InvariantAuditor(context)
    auditor.check(1.0)
    # Corrupt the used-byte counter behind the API's back.
    enclosure = virt.volume(volume).enclosure
    virt._used_bytes[enclosure] += 4096
    with pytest.raises(AuditError, match="placement accounting drift"):
        auditor.check(2.0)


def test_time_moving_backwards_raises_audit_error() -> None:
    context = _fresh_context()
    auditor = InvariantAuditor(context)
    auditor.check(100.0)
    with pytest.raises(AuditError, match="audit time moved backwards"):
        auditor.check(50.0)


@pytest.mark.integration
def test_clean_fileserver_run_audits_clean() -> None:
    workload = build_fileserver_workload(duration=SHORT)
    result = run_cell(workload, EnergyEfficientPolicy(), audit=True)
    assert result.audit_checks > 0
    assert result.replay.power.total_joules > 0


def test_audit_disabled_by_default() -> None:
    workload = build_fileserver_workload(duration=SHORT)
    result = run_cell(workload, EnergyEfficientPolicy())
    assert result.audit_checks == 0
