"""Tests for D1 — dimensional consistency (D101–D104)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.analysis import checks  # noqa: F401  (registers checkers)
from repro.devtools.analysis.dimensions import Dim, combine_div, combine_mul
from repro.devtools.analysis.framework import resolve_checkers, run_checkers
from repro.devtools.analysis.symbols import index_paths

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "analysis"

_PRELUDE = "from repro.units import Bytes, Joules, Rate, Seconds, Watts\n\n\n"


def _dimension_findings(tmp_path: Path, body: str) -> list:
    module = tmp_path / "probe.py"
    module.write_text(_PRELUDE + body, encoding="utf-8")
    checkers = resolve_checkers(["D101", "D102", "D103", "D104"])
    return run_checkers(index_paths([module]), checkers)


# ----------------------------------------------------------------------
# dimension algebra
# ----------------------------------------------------------------------
def test_multiplication_algebra() -> None:
    assert combine_mul(Dim.WATTS, Dim.SECONDS) is Dim.JOULES
    assert combine_mul(Dim.SECONDS, Dim.WATTS) is Dim.JOULES
    assert combine_mul(Dim.RATE, Dim.SECONDS) is Dim.BYTES
    assert combine_mul(Dim.SCALAR, Dim.JOULES) is Dim.JOULES
    assert combine_mul(Dim.JOULES, Dim.JOULES) is None
    assert combine_mul(None, Dim.SECONDS) is None


def test_division_algebra() -> None:
    assert combine_div(Dim.JOULES, Dim.SECONDS) is Dim.WATTS
    assert combine_div(Dim.JOULES, Dim.WATTS) is Dim.SECONDS
    assert combine_div(Dim.BYTES, Dim.SECONDS) is Dim.RATE
    assert combine_div(Dim.BYTES, Dim.RATE) is Dim.SECONDS
    assert combine_div(Dim.SECONDS, Dim.SECONDS) is Dim.SCALAR
    assert combine_div(Dim.SCALAR, Dim.SECONDS) is None


# ----------------------------------------------------------------------
# checks on synthesized modules
# ----------------------------------------------------------------------
def test_clean_power_arithmetic_is_silent(tmp_path: Path) -> None:
    findings = _dimension_findings(
        tmp_path,
        "def energy(power: Watts, elapsed: Seconds) -> Joules:\n"
        "    return power * elapsed\n"
        "\n"
        "\n"
        "def mean_power(total: Joules, elapsed: Seconds) -> Watts:\n"
        "    return total / elapsed\n"
        "\n"
        "\n"
        "def duration(size: Bytes, bandwidth: Rate) -> Seconds:\n"
        "    return size / bandwidth\n",
    )
    assert findings == []


def test_d101_flags_mixed_addition(tmp_path: Path) -> None:
    findings = _dimension_findings(
        tmp_path,
        "def bad(total: Joules, elapsed: Seconds) -> float:\n"
        "    return total + elapsed\n",
    )
    assert [f.check_id for f in findings] == ["D101"]
    assert "joules + seconds" in findings[0].message


def test_d101_propagates_through_assignment(tmp_path: Path) -> None:
    findings = _dimension_findings(
        tmp_path,
        "def bad(power: Watts, elapsed: Seconds) -> None:\n"
        "    energy = power * elapsed\n"
        "    wrong = energy - power\n",
    )
    assert [f.check_id for f in findings] == ["D101"]
    assert "joules - watts" in findings[0].message


def test_d102_flags_cross_dimension_compare(tmp_path: Path) -> None:
    findings = _dimension_findings(
        tmp_path,
        "def bad(power: Watts, budget: Joules) -> bool:\n"
        "    return power < budget\n",
    )
    assert [f.check_id for f in findings] == ["D102"]


def test_d103_flags_wrong_return_dimension(tmp_path: Path) -> None:
    findings = _dimension_findings(
        tmp_path,
        "def bad(elapsed: Seconds) -> Watts:\n"
        "    return elapsed\n",
    )
    assert [f.check_id for f in findings] == ["D103"]


def test_d104_flags_wrong_argument_dimension(tmp_path: Path) -> None:
    findings = _dimension_findings(
        tmp_path,
        "def wait(delay: Seconds) -> Seconds:\n"
        "    return delay\n"
        "\n"
        "\n"
        "def bad(energy: Joules) -> Seconds:\n"
        "    return wait(energy)\n",
    )
    assert [f.check_id for f in findings] == ["D104"]
    assert "parameter 'delay'" in findings[0].message


def test_unknown_dimensions_stay_silent(tmp_path: Path) -> None:
    findings = _dimension_findings(
        tmp_path,
        "def opaque(a, b):\n"
        "    return a + b\n"
        "\n"
        "\n"
        "def half_known(elapsed: Seconds, other) -> float:\n"
        "    return elapsed + other\n",
    )
    assert findings == []


def test_scalar_combines_freely(tmp_path: Path) -> None:
    findings = _dimension_findings(
        tmp_path,
        "def scaled(elapsed: Seconds) -> Seconds:\n"
        "    return elapsed * 2 + 0.5 * elapsed\n",
    )
    assert findings == []


def test_division_by_same_dimension_gives_scalar(tmp_path: Path) -> None:
    findings = _dimension_findings(
        tmp_path,
        "def utilisation(busy: Seconds, span: Seconds) -> float:\n"
        "    ratio = busy / span\n"
        "    return ratio + 1.0\n",
    )
    assert findings == []


def test_dimension_constants_from_units_module(tmp_path: Path) -> None:
    module = tmp_path / "probe.py"
    module.write_text(
        "from repro import units\n"
        "from repro.units import HOUR, Joules\n"
        "\n"
        "\n"
        "def bad(total: Joules) -> float:\n"
        "    return total + HOUR\n",
        encoding="utf-8",
    )
    checkers = resolve_checkers(["D101"])
    findings = run_checkers(index_paths([module]), checkers)
    assert [f.check_id for f in findings] == ["D101"]


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
def test_d1_fixture_trips_each_check_once() -> None:
    checkers = resolve_checkers(["D101", "D102", "D103", "D104"])
    findings = run_checkers(
        index_paths([FIXTURES / "d1_dimensions.py"]), checkers
    )
    assert [f.check_id for f in findings] == ["D101", "D102", "D103", "D104"]
    contexts = [f.context.rsplit(".", 1)[-1] for f in findings]
    assert contexts == [
        "d101_mixed_sum",
        "d102_mixed_compare",
        "d103_wrong_return",
        "d104_wrong_argument",
    ]


def test_annotated_src_surfaces_are_dimension_clean() -> None:
    paths = [
        Path("src/repro/units.py"),
        Path("src/repro/storage/power.py"),
        Path("src/repro/storage/meter.py"),
        Path("src/repro/storage/enclosure.py"),
        Path("src/repro/monitoring/timeline.py"),
        Path("src/repro/engine/clock.py"),
        Path("src/repro/actions/records.py"),
    ]
    for path in paths:
        assert path.exists(), path
    checkers = resolve_checkers(["D101", "D102", "D103", "D104"])
    findings = run_checkers(index_paths(paths), checkers)
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"dimension findings in annotated core:\n{rendered}"
