"""Tests for D205 — unsnapshottable policy state."""

from __future__ import annotations

from pathlib import Path

from repro.devtools.analysis import checks  # noqa: F401  (registers checkers)
from repro.devtools.analysis.framework import resolve_checkers, run_checkers
from repro.devtools.analysis.symbols import index_paths

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "analysis"


def _findings(paths: list[Path]) -> list:
    return run_checkers(index_paths(paths), resolve_checkers(["D205"]))


def _fixture_findings() -> list:
    return _findings([FIXTURES / "d205_snapshots.py"])


def test_d205_flags_hidden_state() -> None:
    findings = _fixture_findings()
    contexts = {f.context for f in findings}
    assert "d205_snapshots.ForgetfulPolicy" in contexts
    (finding,) = [
        f for f in findings if f.context == "d205_snapshots.ForgetfulPolicy"
    ]
    assert finding.check_id == "D205"
    assert finding.check_name == "unsnapshottable-state"
    assert "self.last_checkpoint" in finding.message
    assert "self.windows" in finding.message
    assert "on_checkpoint()" in finding.message


def test_d205_flags_half_protocol() -> None:
    findings = _fixture_findings()
    (finding,) = [
        f
        for f in findings
        if f.context == "d205_snapshots.HalfProtocolPolicy.snapshot_state"
    ]
    assert "not restore_state()" in finding.message


def test_d205_passes_stateless_and_durable_policies() -> None:
    contexts = {f.context for f in _fixture_findings()}
    assert not any("StatelessPolicy" in c for c in contexts)
    assert not any("DurablePolicy" in c for c in contexts)
    assert len(_fixture_findings()) == 2


def test_d205_ignores_non_policy_classes(tmp_path: Path) -> None:
    module = tmp_path / "plain.py"
    module.write_text(
        "class Accumulator:\n"
        "    def bump(self) -> None:\n"
        "        self.total = 1\n",
        encoding="utf-8",
    )
    assert _findings([module]) == []


def test_d205_real_policies_are_snapshottable() -> None:
    findings = _findings([Path("src/repro")])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"unsnapshottable policy state:\n{rendered}"
