"""Tests for the analyzer's pass-1 indexer (symbol table + call graph)."""

from __future__ import annotations

from pathlib import Path

import ast

from repro.devtools.analysis.symbols import (
    _annotation_text,
    annotation_terminal,
    index_paths,
    module_name_for,
)

REPO_ROOT = Path(__file__).resolve().parents[3]
FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "analysis"
SRC = REPO_ROOT / "src" / "repro"


def test_module_name_recovered_from_init_chain() -> None:
    assert module_name_for(SRC / "storage" / "meter.py") == (
        "repro.storage.meter"
    )
    assert module_name_for(SRC / "__init__.py") == "repro"


def test_module_name_outside_any_package_is_the_stem() -> None:
    assert module_name_for(FIXTURES / "d1_dimensions.py") == "d1_dimensions"
    assert module_name_for(FIXTURES / "d2_purity" / "policy.py") == (
        "d2_purity.policy"
    )


def test_annotation_terminal_takes_last_dotted_component() -> None:
    assert annotation_terminal("Seconds") == "Seconds"
    assert annotation_terminal("units.Seconds") == "Seconds"
    assert annotation_terminal("dict[str, Joules]") == "dict"
    assert annotation_terminal(None) is None


def _annotation_of(source: str) -> str | None:
    node = ast.parse(source, mode="eval").body
    return _annotation_text(node)


def test_annotation_text_unwraps_optional_and_quotes() -> None:
    assert _annotation_of("Seconds") == "Seconds"
    assert _annotation_of("Optional[Seconds]") == "Seconds"
    assert _annotation_of("Seconds | None") == "Seconds"
    assert _annotation_of("'Joules'") == "Joules"
    assert _annotation_of("Final[Watts]") == "Watts"


def test_index_builds_classes_functions_and_calls() -> None:
    program = index_paths([FIXTURES / "d2_purity"])
    policy = program.classes["d2_purity.policy.LeakyPolicy"]
    assert "on_checkpoint" in policy.methods
    helper = program.functions["d2_purity.helpers.drain_everything"]
    assert "flush_write_delay" in {site.method for site in helper.calls}


def test_inherits_from_follows_cross_module_bases() -> None:
    program = index_paths([FIXTURES / "d2_purity"])
    leaky = program.classes["d2_purity.policy.LeakyPolicy"]
    assert program.inherits_from(leaky, "PowerPolicy")
    base = program.classes["d2_purity.base.PowerPolicy"]
    assert not program.inherits_from(base, "PowerPolicy")


def test_resolve_name_follows_imports() -> None:
    program = index_paths([FIXTURES / "d2_purity"])
    module = program.modules["d2_purity.policy"]
    assert program.resolve_name(module, "drain_everything") == (
        "d2_purity.helpers.drain_everything"
    )
    assert program.resolve_name(module, "PowerPolicy") == (
        "d2_purity.base.PowerPolicy"
    )
    assert program.resolve_name(module, "no_such_symbol") is None


def test_instance_attributes_inferred_from_init() -> None:
    program = index_paths([SRC / "storage" / "enclosure.py"])
    enclosure = program.classes["repro.storage.enclosure.DiskEnclosure"]
    assert enclosure.attributes.get("_clock") == "Seconds"
    assert enclosure.attributes.get("spin_down_timeout") == "Seconds"
    assert enclosure.attributes.get("_energy_by_state") == (
        "dict[PowerState, Joules]"
    )


def test_parse_errors_are_collected_not_raised(tmp_path: Path) -> None:
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n", encoding="utf-8")
    program = index_paths([bad])
    assert str(bad) in program.parse_errors
    assert not program.modules
