"""Tests for the analyzer's committed-baseline support."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.analysis.baseline import (
    BASELINE_FORMAT,
    load_baseline,
    partition_findings,
    write_baseline,
)
from repro.devtools.analysis.framework import Finding
from repro.errors import ValidationError


def _finding(line: int = 7, message: str = "reads the wall clock") -> Finding:
    return Finding(
        check_id="D203",
        check_name="wall-clock",
        path="src/x.py",
        line=line,
        col=4,
        context="x.f",
        message=message,
    )


def test_write_then_load_round_trips(tmp_path: Path) -> None:
    path = tmp_path / "baseline.json"
    count = write_baseline([_finding(), _finding(line=9)], path)
    assert count == 1  # same identity, count folded to 2
    table = load_baseline(path)
    resolved = str(Path("src/x.py").resolve())
    key = ("D203", resolved, "x.f", "reads the wall clock")
    assert table == {key: 2}
    document = json.loads(path.read_text())
    assert document["format"] == BASELINE_FORMAT
    assert document["entries"][0]["path"] == "src/x.py"  # stored as reported
    assert document["entries"][0]["count"] == 2


def test_partition_is_line_independent(tmp_path: Path) -> None:
    path = tmp_path / "baseline.json"
    write_baseline([_finding(line=7)], path)
    moved = _finding(line=321)
    new, grandfathered = partition_findings([moved], load_baseline(path))
    assert new == []
    assert grandfathered == [moved]


def test_partition_flags_count_growth(tmp_path: Path) -> None:
    path = tmp_path / "baseline.json"
    write_baseline([_finding()], path)
    first, second = _finding(line=7), _finding(line=8)
    new, grandfathered = partition_findings(
        [first, second], load_baseline(path)
    )
    assert grandfathered == [first]
    assert new == [second]  # the extra occurrence is a new finding


def test_partition_flags_changed_message(tmp_path: Path) -> None:
    path = tmp_path / "baseline.json"
    write_baseline([_finding()], path)
    changed = _finding(message="something else entirely")
    new, _ = partition_findings([changed], load_baseline(path))
    assert new == [changed]


def test_partition_without_baseline_passes_through() -> None:
    finding = _finding()
    new, grandfathered = partition_findings([finding], None)
    assert new == [finding]
    assert grandfathered == []


def test_load_rejects_malformed_documents(tmp_path: Path) -> None:
    path = tmp_path / "bad.json"
    path.write_text("not json", encoding="utf-8")
    with pytest.raises(ValidationError, match="unreadable baseline"):
        load_baseline(path)
    path.write_text('{"no_entries": true}', encoding="utf-8")
    with pytest.raises(ValidationError, match="not an analyzer baseline"):
        load_baseline(path)
    path.write_text('{"entries": [{"check": "D203"}]}', encoding="utf-8")
    with pytest.raises(ValidationError, match="malformed entry"):
        load_baseline(path)


def test_committed_baseline_is_loadable_and_current() -> None:
    repo_baseline = Path("analysis-baseline.json")
    assert repo_baseline.exists()
    table = load_baseline(repo_baseline)
    assert table, "committed baseline should demonstrate real entries"
    for check, path, _context, _message in table:
        assert check.startswith("D")
        assert Path(path).exists(), f"baselined file vanished: {path}"
