"""Tests for the analysis framework: registry, suppressions, reports."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.analysis import checks  # noqa: F401  (registers checkers)
from repro.devtools.analysis.framework import (
    CHECKERS,
    Checker,
    Finding,
    register_checker,
    resolve_checkers,
    run_checkers,
)
from repro.devtools.analysis.symbols import index_paths
from repro.errors import ValidationError


def _finding(**overrides: object) -> Finding:
    values: dict = dict(
        check_id="D203",
        check_name="wall-clock",
        path="src/x.py",
        line=7,
        col=4,
        context="x.f",
        message="reads the wall clock",
    )
    values.update(overrides)
    return Finding(**values)


def test_finding_render_and_baseline_key() -> None:
    finding = _finding()
    assert finding.render() == (
        "src/x.py:7:4: D203[wall-clock] [x.f] reads the wall clock"
    )
    assert finding.baseline_key() == {
        "check": "D203",
        "path": "src/x.py",
        "context": "x.f",
        "message": "reads the wall clock",
    }


def test_registry_covers_all_documented_checks() -> None:
    ids = {cid for checker in CHECKERS for cid in checker.check_ids}
    assert {
        "D101",
        "D102",
        "D103",
        "D104",
        "D201",
        "D202",
        "D203",
        "D204",
    } <= ids


def test_register_checker_rejects_duplicate_ids() -> None:
    class Dupe(Checker):
        check_ids = {"D203": "wall-clock-again"}

    with pytest.raises(ValidationError, match="duplicate check ids"):
        register_checker(Dupe)
    assert all(type(c).__name__ != "Dupe" for c in CHECKERS)


def test_resolve_checkers_by_id_and_name() -> None:
    by_id = resolve_checkers(["D203"])
    by_name = resolve_checkers(["wall-clock"])
    assert by_id == by_name
    assert len(by_id) == 1
    with pytest.raises(ValidationError, match="unknown check"):
        resolve_checkers(["D999"])


def test_suppression_comment_silences_one_check(tmp_path: Path) -> None:
    module = tmp_path / "suppressed.py"
    module.write_text(
        "import time\n"
        "\n"
        "\n"
        "def stamp() -> float:\n"
        "    return time.time()  # analysis: ignore[D203]\n"
        "\n"
        "\n"
        "def stamp_again() -> float:\n"
        "    return time.time()\n",
        encoding="utf-8",
    )
    findings = run_checkers(index_paths([module]))
    assert [f.line for f in findings if f.check_id == "D203"] == [9]


def test_bare_suppression_silences_every_check(tmp_path: Path) -> None:
    module = tmp_path / "bare.py"
    module.write_text(
        "import random\n"
        "import time\n"
        "\n"
        "jitter = random.random() + time.time()  # analysis: ignore\n",
        encoding="utf-8",
    )
    assert run_checkers(index_paths([module])) == []


def test_findings_sorted_by_location(tmp_path: Path) -> None:
    module = tmp_path / "multi.py"
    module.write_text(
        "import time\n"
        "\n"
        "b = time.time()\n"
        "a = time.perf_counter()\n",
        encoding="utf-8",
    )
    findings = run_checkers(index_paths([module]))
    assert [f.line for f in findings] == [3, 4]


def test_report_json_round_trips(tmp_path: Path) -> None:
    from repro.devtools.analysis.cli import analyze_paths

    module = tmp_path / "clocky.py"
    module.write_text("import time\nnow = time.time()\n", encoding="utf-8")
    report = analyze_paths([module])
    document = json.loads(report.render_json())
    assert document["files_indexed"] == 1
    assert document["new_findings"][0]["check_id"] == "D203"
    assert not report.clean
    assert "1 new finding(s)" in report.render_text()


def test_parse_error_reported_not_raised(tmp_path: Path) -> None:
    from repro.devtools.analysis.cli import analyze_paths

    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n", encoding="utf-8")
    report = analyze_paths([bad])
    assert not report.clean
    assert "E0[parse-error]" in report.render_text()
