"""Tests for D2 — planner purity (D201) and determinism (D202–D204)."""

from __future__ import annotations

from pathlib import Path

from repro.devtools.analysis import checks  # noqa: F401  (registers checkers)
from repro.devtools.analysis.framework import resolve_checkers, run_checkers
from repro.devtools.analysis.symbols import index_paths

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "analysis"


def _findings(paths: list[Path], select: list[str]) -> list:
    return run_checkers(index_paths(paths), resolve_checkers(select))


# ----------------------------------------------------------------------
# D201 — planner purity
# ----------------------------------------------------------------------
def test_d201_flags_transitive_mutation_with_chain() -> None:
    findings = _findings([FIXTURES / "d2_purity"], ["D201"])
    assert len(findings) == 1
    finding = findings[0]
    assert finding.check_id == "D201"
    assert finding.context == "d2_purity.policy.LeakyPolicy.on_checkpoint"
    assert "flush_write_delay" in finding.message
    assert "on_checkpoint -> _tidy -> drain_everything" in finding.message


def test_d201_executor_gateway_is_sanctioned() -> None:
    findings = _findings([FIXTURES / "d2_purity"], ["D201"])
    assert all("PurePolicy" not in f.context for f in findings)


def test_d201_recursion_terminates(tmp_path: Path) -> None:
    module = tmp_path / "recursive.py"
    module.write_text(
        "class PowerPolicy:\n"
        "    pass\n"
        "\n"
        "\n"
        "class Looper(PowerPolicy):\n"
        "    def on_checkpoint(self, now: float) -> None:\n"
        "        self._spin(now)\n"
        "\n"
        "    def _spin(self, now: float) -> None:\n"
        "        self._spin(now)\n",
        encoding="utf-8",
    )
    assert _findings([module], ["D201"]) == []


def test_d201_real_policies_are_pure() -> None:
    findings = _findings([Path("src/repro")], ["D201"])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"impure policy paths:\n{rendered}"


# ----------------------------------------------------------------------
# D202 / D203 / D204
# ----------------------------------------------------------------------
def test_d2_determinism_fixture_findings() -> None:
    findings = _findings([FIXTURES / "d2_determinism.py"], ["D202", "D203", "D204"])
    assert [f.check_id for f in findings] == ["D202", "D203", "D204", "D204"]


def test_d202_seeded_random_instance_is_fine(tmp_path: Path) -> None:
    module = tmp_path / "seeded.py"
    module.write_text(
        "import random\n"
        "\n"
        "rng = random.Random(11)\n"
        "value = rng.uniform(0.0, 1.0)\n"
        "random.seed(11)\n",
        encoding="utf-8",
    )
    assert _findings([module], ["D202"]) == []


def test_d202_from_import_alias_detected(tmp_path: Path) -> None:
    module = tmp_path / "aliased.py"
    module.write_text(
        "from random import shuffle\n"
        "\n"
        "deck = [1, 2, 3]\n"
        "shuffle(deck)\n",
        encoding="utf-8",
    )
    findings = _findings([module], ["D202"])
    assert [f.check_id for f in findings] == ["D202"]


def test_d203_datetime_now_detected(tmp_path: Path) -> None:
    module = tmp_path / "stamped.py"
    module.write_text(
        "import datetime\n"
        "\n"
        "stamp = datetime.datetime.now()\n",
        encoding="utf-8",
    )
    findings = _findings([module], ["D203"])
    assert [f.check_id for f in findings] == ["D203"]


def test_d204_sorted_set_is_fine(tmp_path: Path) -> None:
    module = tmp_path / "ordered.py"
    module.write_text(
        "names = {'b', 'a'}\n"
        "ordered = sorted(names)\n"
        "listed = list(sorted(names))\n"
        "for name in sorted(names):\n"
        "    pass\n",
        encoding="utf-8",
    )
    assert _findings([module], ["D204"]) == []


def test_d204_set_operations_detected(tmp_path: Path) -> None:
    module = tmp_path / "setops.py"
    module.write_text(
        "current = {'a', 'b'}\n"
        "wanted = {'b', 'c'}\n"
        "for stale in current - wanted:\n"
        "    pass\n",
        encoding="utf-8",
    )
    findings = _findings([module], ["D204"])
    assert [f.check_id for f in findings] == ["D204"]
