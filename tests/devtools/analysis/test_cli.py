"""Tests for the analyzer CLI (`ecostor analyze`) and its fixture matrix."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as ecostor_main
from repro.devtools.analysis.cli import analyze_paths, main
from repro.devtools.analysis.framework import CHECKERS

REPO_ROOT = Path(__file__).resolve().parents[3]
FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "analysis"

#: Analysis fixture → exact finding ids it must produce, in order.
FIXTURE_CHECKS = [
    ("d1_dimensions.py", ["D101", "D102", "D103", "D104"]),
    ("d2_determinism.py", ["D202", "D203", "D204", "D204"]),
    ("d2_purity", ["D201"]),
    ("d205_snapshots.py", ["D205", "D205"]),
]


@pytest.mark.parametrize("fixture,expected", FIXTURE_CHECKS)
def test_fixture_produces_expected_finding_ids(
    fixture: str, expected: list[str]
) -> None:
    report = analyze_paths([FIXTURES / fixture])
    assert [f.check_id for f in report.findings] == expected


def test_every_check_id_has_a_fixture() -> None:
    """Adding a check without a fixture proving it fires must fail."""
    registered = {cid for checker in CHECKERS for cid in checker.check_ids}
    covered = {cid for _, expected in FIXTURE_CHECKS for cid in expected}
    missing = sorted(registered - covered)
    assert not missing, (
        "every analysis check needs a tests/devtools/fixtures/analysis/ "
        f"fixture proving it fires; missing: {missing}"
    )


def test_src_tree_analyzes_clean_with_committed_baseline() -> None:
    report = analyze_paths(
        [REPO_ROOT / "src" / "repro"],
        baseline_path=REPO_ROOT / "analysis-baseline.json",
    )
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.clean, f"src/repro has unbaselined findings:\n{rendered}"
    assert report.files_indexed > 90
    assert report.baselined, "committed baseline entries should still match"


def test_main_exit_codes(capsys: pytest.CaptureFixture) -> None:
    assert main([str(FIXTURES / "d2_purity"), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "D201[planner-purity]" in out
    assert main([str(FIXTURES / "d2_purity"), "--select", "D203"]) == 0
    assert main(["--list-checks"]) == 0
    assert "D101" in capsys.readouterr().out


def test_main_rejects_unknown_check(capsys: pytest.CaptureFixture) -> None:
    assert main(["--select", "D999"]) == 2
    assert "unknown check" in capsys.readouterr().err


def test_main_json_format(capsys: pytest.CaptureFixture) -> None:
    status = main(
        [str(FIXTURES / "d1_dimensions.py"), "--format", "json", "--no-baseline"]
    )
    assert status == 1
    document = json.loads(capsys.readouterr().out)
    assert [f["check_id"] for f in document["new_findings"]] == [
        "D101",
        "D102",
        "D103",
        "D104",
    ]


def test_write_baseline_then_clean(tmp_path: Path, capsys: pytest.CaptureFixture) -> None:
    baseline = tmp_path / "baseline.json"
    target = str(FIXTURES / "d2_determinism.py")
    assert main([target, "--write-baseline", "--baseline", str(baseline)]) == 0
    assert baseline.exists()
    assert main([target, "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "baselined finding(s) suppressed" in out


def test_ecostor_analyze_subcommand(capsys: pytest.CaptureFixture) -> None:
    status = ecostor_main(
        ["analyze", str(FIXTURES / "d1_dimensions.py"), "--no-baseline"]
    )
    assert status == 1
    assert "D101[mixed-dimension-arith]" in capsys.readouterr().out
    assert ecostor_main(["analyze", "--list-checks"]) == 0
