"""Fixture: trips D202 (unseeded random), D203 (wall clock), D204 (set order).

Indexed by the analyzer in tests — never imported at runtime.
"""

import random
import time


def d202_unseeded_jitter() -> float:
    """D202: draws from the process-global generator."""
    return random.uniform(0.0, 1.0)


def d203_wall_clock_timestamp() -> float:
    """D203: stamps simulation state with the wall clock."""
    return time.time()


def d204_sink_over_set() -> list[str]:
    """D204: materialises a set in hash order."""
    item_ids = {"b", "a", "c"}
    return list(item_ids)


def d204_loop_over_set() -> str:
    """D204: iteration order feeds an order-sensitive accumulator."""
    names = {"x", "y"}
    out = ""
    for name in names:
        out += name
    return out
