"""Fixture: trips D101–D104 (dimensional consistency), one finding each.

Indexed by the analyzer in tests — never imported at runtime.  The
``window_power`` helper is dimensionally clean; each ``d1xx_*`` function
below it contains exactly one provable dimension clash.
"""

from repro.units import Joules, Seconds, Watts


def window_power(energy: Joules, elapsed: Seconds) -> Watts:
    """Clean: joules / seconds = watts."""
    return energy / elapsed


def d101_mixed_sum(energy: Joules, elapsed: Seconds) -> float:
    """D101: adds an energy to a time."""
    return energy + elapsed


def d102_mixed_compare(power: Watts, budget: Joules) -> bool:
    """D102: compares a power against an energy."""
    return power < budget


def d103_wrong_return(elapsed: Seconds) -> Watts:
    """D103: declared to return watts, returns seconds."""
    return elapsed


def d104_wrong_argument(energy: Joules, power: Watts) -> Watts:
    """D104: passes watts where ``window_power`` expects seconds."""
    return window_power(energy, power)
