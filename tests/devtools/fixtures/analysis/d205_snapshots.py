"""Fixture for D205 — policy state invisible to snapshot/restore."""


class PowerPolicy:
    """Planner base class (matched by bare name, like the real one)."""

    def on_checkpoint(self, now: float) -> None:
        """Entry point invoked at each monitoring checkpoint."""

    def snapshot_state(self) -> dict:
        """Base capture (stateless planners rely on this)."""
        return {}

    def restore_state(self, state: dict) -> None:
        """Base restore."""


class ForgetfulPolicy(PowerPolicy):
    """D205: grows window state the persistence layer never sees."""

    def __init__(self) -> None:
        self.windows = 0
        self.last_checkpoint = 0.0

    def on_checkpoint(self, now: float) -> None:
        self.windows += 1
        self.last_checkpoint = now


class HalfProtocolPolicy(PowerPolicy):
    """D205: a capture nobody can restore."""

    def snapshot_state(self) -> dict:
        return {"half": True}


class StatelessPolicy(PowerPolicy):
    """No finding: nothing mutates, the base capture suffices."""

    def on_checkpoint(self, now: float) -> None:
        return None


class DurablePolicy(PowerPolicy):
    """No finding: mutable state with the full protocol alongside."""

    def __init__(self) -> None:
        self.windows = 0

    def on_checkpoint(self, now: float) -> None:
        self.windows += 1

    def snapshot_state(self) -> dict:
        return {"windows": self.windows}

    def restore_state(self, state: dict) -> None:
        self.windows = state["windows"]
