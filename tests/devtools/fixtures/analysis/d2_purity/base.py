"""Stand-in planner contract and storage surface for the purity fixture."""


class ActionPlan:
    """A batch of planned actions (payload irrelevant to the analysis)."""

    def add(self, action: object) -> None:
        """Append one action."""


class ActionExecutor:
    """The one sanctioned gateway from plans to storage mutation."""

    def apply(self, now: float, plan: ActionPlan) -> None:
        """Apply a plan (opaque to the purity walk)."""


class StorageController:
    """Storage surface exposing a mutator method."""

    def flush_write_delay(self, now: float) -> float:
        """Mutator: bulk-flush the write-delay partition."""
        return now


class PowerPolicy:
    """Planner base class (matched by bare name, like the real one)."""

    def on_checkpoint(self, now: float) -> None:
        """Entry point invoked at each monitoring checkpoint."""
