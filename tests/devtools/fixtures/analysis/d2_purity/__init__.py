"""Fixture package: D201 planner purity across a helper-call chain.

Indexed by the analyzer in tests — never imported at runtime.  The
package mirrors the real layering in miniature: ``base`` declares the
planner contract and the storage surface, ``helpers`` stands between,
and ``policy`` holds one pure policy (plans through the executor
gateway) and one leaky policy that reaches a storage mutator two helper
hops below its entry point — exactly the transitive hole lint rule R9
cannot see.
"""
