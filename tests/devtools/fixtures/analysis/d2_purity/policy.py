"""Policies: one pure (via the executor), one leaking a direct mutation."""

from d2_purity.base import ActionPlan, PowerPolicy
from d2_purity.helpers import drain_everything, submit_plan


class PurePolicy(PowerPolicy):
    """Plans only: applies its plan through the executor gateway."""

    def on_checkpoint(self, now: float) -> None:
        submit_plan(now, ActionPlan())


class LeakyPolicy(PowerPolicy):
    """Reaches a storage mutator two helper hops below the entry point."""

    def on_checkpoint(self, now: float) -> None:
        self._tidy(now)

    def _tidy(self, now: float) -> None:
        drain_everything(now)
