"""Helper chain standing between the policies and the storage layer."""

from d2_purity.base import ActionExecutor, ActionPlan, StorageController

_EXECUTOR = ActionExecutor()
_CONTROLLER = StorageController()


def submit_plan(now: float, plan: ActionPlan) -> None:
    """Legal path: the plan goes through the executor gateway."""
    _EXECUTOR.apply(now, plan)


def drain_everything(now: float) -> None:
    """Illegal path: calls a storage mutator directly."""
    _CONTROLLER.flush_write_delay(now)
