"""Fixture: trips only R11 (tier placement mutated outside repro.actions)."""

storage_controller = object()
virtualization = object()

storage_controller.promote_item(0.0, "item", "flash")
storage_controller.demote_item(0.0, "item", "hdd")
storage_controller.archive_item(0.0, "item")
storage_controller.replicate_item(0.0, "item", "hdd")
virtualization.add_replica("item", "enc-01", 512)
virtualization.remove_replica("item", "enc-01")
