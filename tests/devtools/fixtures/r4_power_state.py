"""Fixture: trips R4 (illegal power-state transition pair) only."""

from repro.storage.power import PowerState

#: OFF -> ACTIVE skips the mandatory spin-up: not an edge of
#: storage.power.LEGAL_TRANSITIONS.
_SHORTCUT = (PowerState.OFF, PowerState.ACTIVE)
