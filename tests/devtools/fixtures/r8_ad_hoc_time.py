"""Fixture: trips only R8 (ad-hoc virtual-time calls)."""

power_timeline = object()
storage_controller = object()

power_timeline.sample(1.0)
power_timeline.sample_due(1.0)
storage_controller.on_time(1.0)
