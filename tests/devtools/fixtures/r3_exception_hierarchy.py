"""Fixture: trips R3 (raising a banned builtin exception) only."""


def _require_positive(value: int) -> int:
    """Raise builtin ValueError instead of repro.errors.ValidationError."""
    if value <= 0:
        raise ValueError("value must be positive")
    return value
