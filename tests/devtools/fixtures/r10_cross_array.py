"""Fixture: trips only R10 (hardcoded cross-array component names)."""

virtualization = object()

virtualization.enclosure("array-01:enc-00")
virtualization.enclosure_of("array-02:enc-03")
virtualization.items_on("array-00:enc-05")
virtualization.used_bytes(name="array-03:enc-01")
virtualization.free_bytes("array-01:enc-07")
virtualization.create_volume("vol/array-01:enc-00", "array-01:enc-00")
virtualization.add_item("item-7", 4097, "array-02:fsvol-03")
