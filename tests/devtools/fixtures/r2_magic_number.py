"""Fixture: trips R2 (magic number shadowing a units constant) only."""


def _cache_budget_bytes() -> int:
    """Spell 16 KiB with a bare 1024 instead of ``units.KB``."""
    return 16 * 1024
