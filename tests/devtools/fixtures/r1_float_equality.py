"""Fixture: trips R1 (float equality on a time-valued expression) only."""


def _deadline_passed(elapsed_seconds: float, deadline: float) -> bool:
    """Compare two time quantities with ``==`` — exactly what R1 forbids."""
    return elapsed_seconds == deadline
