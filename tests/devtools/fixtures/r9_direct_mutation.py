"""Fixture: trips only R9 (storage mutation outside repro.actions)."""

storage_controller = object()
disk_enclosure = object()

storage_controller.migrate_item(0.0, "item", "enc-01")
storage_controller.preload_item(0.0, "item")
storage_controller.unpin_item("item")
storage_controller.select_write_delay(0.0, {"item"})
storage_controller.flush_write_delay(0.0)
storage_controller.flush_item(0.0, "item")
storage_controller.charge_block_migration(0.0, "item", 512, "a", "b")
disk_enclosure.enable_power_off(0.0)
disk_enclosure.disable_power_off(0.0)
