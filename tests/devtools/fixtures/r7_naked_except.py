"""Fixture: naked exception handlers (R7)."""

try:
    PARSED = int("3")
except Exception:
    PARSED = 0

try:
    PARSED = int("4")
except (TypeError, BaseException):
    PARSED = 0

try:
    PARSED = int("5")
except:
    PARSED = 0
