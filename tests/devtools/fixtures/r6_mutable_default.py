"""Fixture: trips R6 (mutable default argument) only."""


def _merge(extra: list[str] = []) -> tuple[str, ...]:
    """Use a shared list literal as a default value."""
    return tuple(extra)
