"""Fixture: trips R5 (undocumented/unannotated public function) only."""


def compute(value):
    return value + value
