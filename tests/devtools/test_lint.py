"""Tests for the repro.devtools domain linter."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.lint import LintReport, lint_file, lint_paths, main
from repro.devtools.rules import (
    RULES,
    legal_transition_names,
    resolve_rules,
)
from repro.errors import ValidationError
from repro.storage.power import LEGAL_TRANSITIONS

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"

FIXTURE_RULES = [
    ("r1_float_equality.py", "R1"),
    ("r2_magic_number.py", "R2"),
    ("r3_exception_hierarchy.py", "R3"),
    ("r4_power_state.py", "R4"),
    ("r5_public_api.py", "R5"),
    ("r6_mutable_default.py", "R6"),
    ("r7_naked_except.py", "R7"),
    ("r8_ad_hoc_time.py", "R8"),
    ("r9_direct_mutation.py", "R9"),
    ("r10_cross_array.py", "R10"),
    ("r11_tier_mutation.py", "R11"),
]


@pytest.mark.parametrize("fixture,rule_id", FIXTURE_RULES)
def test_fixture_trips_exactly_its_rule(fixture: str, rule_id: str) -> None:
    path = FIXTURES / fixture
    violations = lint_file(path)
    assert violations, f"{fixture} should trip {rule_id}"
    assert {v.rule_id for v in violations} == {rule_id}
    rendered = violations[0].render()
    assert rendered.startswith(f"{path}:{violations[0].line}:")
    assert f"{rule_id}[" in rendered


def test_src_tree_lints_clean() -> None:
    report = lint_paths([REPO_ROOT / "src" / "repro"])
    offenders = "\n".join(v.render() for v in report.violations)
    assert report.clean, f"src/repro has lint violations:\n{offenders}"
    assert report.files_checked > 50


def test_registry_has_all_rules() -> None:
    assert sorted(RULES, key=lambda r: int(r[1:])) == [
        f"R{i}" for i in range(1, 12)
    ]
    for rule in RULES.values():
        assert rule.name and rule.summary


def test_resolve_rules_accepts_ids_and_names() -> None:
    by_id = resolve_rules(["R2"])
    by_name = resolve_rules(["magic-number"])
    assert by_id == by_name
    assert resolve_rules(["r3", "R3", "exception-hierarchy"]) == resolve_rules(
        ["R3"]
    )
    with pytest.raises(ValidationError):
        resolve_rules(["R99"])


def test_select_limits_rules_applied() -> None:
    path = FIXTURES / "r3_exception_hierarchy.py"
    assert lint_file(path, resolve_rules(["R3"]))
    assert not lint_file(path, resolve_rules(["R1", "R6"]))


def test_suppression_by_id_name_and_bare(tmp_path: Path) -> None:
    cases = {
        "by_id.py": 'raise ValueError("x")  # lint: ignore[R3]\n',
        "by_name.py": 'raise ValueError("x")  # lint: ignore[exception-hierarchy]\n',
        "bare.py": 'raise ValueError("x")  # lint: ignore\n',
    }
    for name, body in cases.items():
        target = tmp_path / name
        target.write_text(body)
        assert not lint_file(target), f"{name} should be suppressed"
    wrong = tmp_path / "wrong_rule.py"
    wrong.write_text('raise ValueError("x")  # lint: ignore[R2]\n')
    assert [v.rule_id for v in lint_file(wrong)] == ["R3"]


def test_parse_error_reported_as_pseudo_rule(tmp_path: Path) -> None:
    broken = tmp_path / "broken.py"
    broken.write_text("def incomplete(:\n")
    violations = lint_file(broken)
    assert [v.rule_id for v in violations] == ["E0"]
    assert violations[0].rule_name == "parse-error"


def test_every_rule_has_a_fixture() -> None:
    """Adding a lint rule without a fixture proving it fires must fail."""
    covered = {rule_id for _, rule_id in FIXTURE_RULES}
    missing = sorted(set(RULES) - covered)
    assert not missing, (
        "every lint rule needs a tests/devtools/fixtures/ fixture proving "
        f"it fires; missing: {missing}"
    )


def test_json_report_round_trips() -> None:
    # Only the r*.py rule fixtures: fixtures/analysis/ holds the analyzer's
    # own fixtures, which deliberately contain lint-style violations too.
    report = lint_paths(sorted(FIXTURES.glob("r*.py")))
    payload = json.loads(report.render_json())
    assert payload["files_checked"] == len(FIXTURE_RULES)
    seen = {v["rule_id"] for v in payload["violations"]}
    assert seen == {f"R{i}" for i in range(1, 12)}
    for violation in payload["violations"]:
        assert violation["line"] >= 1
        assert violation["message"]


def test_report_rendering_counts() -> None:
    clean = LintReport(violations=(), files_checked=3)
    assert clean.clean
    assert clean.render_text() == "clean: 3 files checked"
    dirty = lint_paths([FIXTURES / "r1_float_equality.py"])
    assert not dirty.clean
    assert dirty.render_text().endswith("1 violation in 1 file checked")


def test_main_exit_codes(capsys: pytest.CaptureFixture[str]) -> None:
    assert main([str(FIXTURES / "r6_mutable_default.py")]) == 1
    out = capsys.readouterr().out
    assert "R6[mutable-default]" in out
    assert main([str(REPO_ROOT / "src" / "repro" / "units.py")]) == 0
    assert main(["--select", "R99", str(FIXTURES)]) == 2
    assert main(["--list-rules"]) == 0
    assert "R4" in capsys.readouterr().out
    assert main([str(FIXTURES / "no_such_file.py")]) == 2


def test_r4_table_matches_state_machine() -> None:
    extracted = legal_transition_names()
    runtime = {(a.name, b.name) for a, b in LEGAL_TRANSITIONS}
    assert extracted == runtime
