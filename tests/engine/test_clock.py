"""Tests for repro.engine.clock — SimClock and Throttle."""

import pytest

from repro.engine.clock import SimClock, Throttle
from repro.errors import ReplayError, ValidationError


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_moves_forward_and_returns(self):
        clock = SimClock()
        assert clock.advance(10.0) == 10.0
        assert clock.now == 10.0

    def test_advance_to_same_time_is_allowed(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance(10.0)
        assert clock.now == 10.0

    def test_advance_backwards_raises(self):
        clock = SimClock()
        clock.advance(10.0)
        with pytest.raises(ReplayError):
            clock.advance(9.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValidationError):
            SimClock(-1.0)


class TestThrottle:
    def test_ready_immediately_after_reset(self):
        throttle = Throttle(13.0)
        throttle.reset(100.0)
        assert throttle.ready(100.0)
        assert not throttle.ready(99.0)

    def test_arm_closes_gate_for_one_interval(self):
        throttle = Throttle(13.0)
        throttle.arm(100.0)
        assert not throttle.ready(112.0)
        assert throttle.ready(113.0)
        assert throttle.next_allowed == 113.0

    def test_defer_until_overrides_interval(self):
        throttle = Throttle(13.0)
        throttle.arm(100.0)
        throttle.defer_until(500.0)
        assert not throttle.ready(499.0)
        assert throttle.ready(500.0)

    def test_non_positive_interval_rejected(self):
        with pytest.raises(ValidationError):
            Throttle(0.0)
        with pytest.raises(ValidationError):
            Throttle(-5.0)
