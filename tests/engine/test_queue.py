"""Tests for repro.engine.queue — deterministic ordering + cancellation."""

import pytest

from repro.engine.events import (
    Event,
    FaultBookkeepingEvent,
    FlushDeadlineEvent,
    PolicyCheckpointEvent,
    TimelineSampleEvent,
)
from repro.engine.queue import EventQueue
from repro.errors import UsageError, ValidationError

#: One constructor per priority class, lowest class first.
EVENT_KINDS = [
    TimelineSampleEvent,
    FaultBookkeepingEvent,
    PolicyCheckpointEvent,
    FlushDeadlineEvent,
]


def drain(queue):
    out = []
    while True:
        event = queue.pop()
        if event is None:
            return out
        out.append(event)


class TestOrdering:
    def test_time_order_dominates(self):
        queue = EventQueue()
        late = queue.push(TimelineSampleEvent(20.0))
        early = queue.push(FlushDeadlineEvent(10.0))
        assert drain(queue) == [early, late]

    def test_priority_class_breaks_time_ties(self):
        queue = EventQueue()
        # Push in reverse class order; pops must follow the documented
        # class order regardless.
        events = [kind(50.0) for kind in reversed(EVENT_KINDS)]
        for event in events:
            queue.push(event)
        assert drain(queue) == list(reversed(events))

    def test_fifo_within_same_time_and_class(self):
        queue = EventQueue()
        first = queue.push(PolicyCheckpointEvent(50.0))
        second = queue.push(PolicyCheckpointEvent(50.0))
        assert drain(queue) == [first, second]

    def test_peek_key_matches_next_pop(self):
        queue = EventQueue()
        queue.push(PolicyCheckpointEvent(50.0))
        queue.push(TimelineSampleEvent(50.0))
        key = queue.peek_key()
        event = queue.pop()
        assert key[:2] == (event.time, event.priority)
        assert isinstance(event, TimelineSampleEvent)


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        queue = EventQueue()
        doomed = queue.push(PolicyCheckpointEvent(10.0))
        kept = queue.push(PolicyCheckpointEvent(20.0))
        queue.cancel(doomed)
        assert len(queue) == 1
        assert drain(queue) == [kept]

    def test_peek_discards_cancelled_head(self):
        queue = EventQueue()
        doomed = queue.push(TimelineSampleEvent(10.0))
        queue.cancel(doomed)
        assert queue.peek_key() is None
        assert queue.pop() is None

    def test_cancel_after_pop_is_harmless(self):
        queue = EventQueue()
        event = queue.push(PolicyCheckpointEvent(10.0))
        assert queue.pop() is event
        queue.cancel(event)  # already out of the queue: no-op
        assert len(queue) == 0
        assert not event.cancelled

    def test_double_push_rejected(self):
        queue = EventQueue()
        event = queue.push(PolicyCheckpointEvent(10.0))
        with pytest.raises(UsageError):
            queue.push(event)
        queue.cancel(event)
        with pytest.raises(UsageError):
            queue.push(event)


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValidationError):
            TimelineSampleEvent(-1.0)

    def test_base_event_fire_is_abstract(self):
        queue = EventQueue()
        event = queue.push(Event(1.0))
        with pytest.raises(NotImplementedError):
            queue.pop().fire(None)

    def test_repr_shows_time_and_cancel_state(self):
        event = TimelineSampleEvent(5.0)
        assert "TimelineSampleEvent" in repr(event)
        assert "t=5.0" in repr(event)
