"""Tests for repro.engine.kernel — hooks, pairing, online operation."""

import pytest

from repro import units
from repro.baselines.base import PowerPolicy
from repro.baselines.nopower import NoPowerSavingPolicy
from repro.config import DEFAULT_CONFIG
from repro.engine.events import TraceRecordEvent
from repro.engine.kernel import SimulationKernel
from repro.errors import ReplayError, UsageError
from repro.faults.plan import CacheBatteryFailure, FaultPlan
from repro.simulation import build_context, default_volume
from repro.trace.records import IOType, LogicalIORecord


class PeriodicPolicy(PowerPolicy):
    """Minimal checkpointing policy: fixed period, records every call."""

    name = "periodic-spy"

    def __init__(self, period=60.0):
        super().__init__()
        self.period = period
        self.checkpoints = []
        self.io_seen = []

    def on_start(self, now):
        self._next = now + self.period

    def next_checkpoint(self):
        return self._next

    def on_checkpoint(self, now):
        self.checkpoints.append(now)
        self._next = now + self.period

    def after_io(self, record, response_time):
        self.io_seen.append(record.timestamp)


def make_context(faults=None):
    context = build_context(DEFAULT_CONFIG, 2, faults=faults)
    context.virtualization.add_item("a", units.MB, default_volume("enc-00"))
    context.app_monitor.register_item("a", default_volume("enc-00"))
    return context


def record(ts: float) -> LogicalIORecord:
    return LogicalIORecord(ts, "a", 0, 4096, IOType.READ)


class TestHooks:
    def test_checkpoint_and_finish_hooks_fire_in_order(self):
        context = make_context()
        policy = PeriodicPolicy(period=60.0)
        policy.bind(context)
        kernel = SimulationKernel(context, policy)
        seen = []
        kernel.add_checkpoint_hook(lambda t: seen.append(("checkpoint", t)))
        kernel.add_finish_hook(lambda t: seen.append(("finish", t)))
        outcome = kernel.replay([record(5.0), record(100.0)], duration=150.0)
        assert seen == [
            ("checkpoint", 60.0),
            ("checkpoint", 120.0),
            ("finish", outcome.final),
        ]
        assert policy.checkpoints == [60.0, 120.0]

    def test_outcome_reports_io_count_and_window(self):
        context = make_context()
        policy = NoPowerSavingPolicy()
        policy.bind(context)
        kernel = SimulationKernel(context, policy)
        outcome = kernel.replay([record(5.0), record(10.0)], duration=50.0)
        assert outcome.io_count == 2
        assert outcome.end == 50.0
        assert outcome.final >= outcome.end


class TestFaultPairing:
    def test_bookkeeping_events_drive_battery_failure(self):
        # No records at all: the only on_time() calls come from the
        # kernel's FaultBookkeepingEvents paired with each checkpoint,
        # so the battery failure can only be noticed if they fire.
        faults = FaultPlan(events=(CacheBatteryFailure(time=100.0),))
        context = make_context(faults=faults)
        policy = PeriodicPolicy(period=60.0)
        policy.bind(context)
        kernel = SimulationKernel(context, policy)
        kernel.replay([], duration=300.0)
        assert context.controller.battery_failed

    def test_without_fault_clock_no_bookkeeping_is_scheduled(self):
        context = make_context()
        policy = PeriodicPolicy(period=60.0)
        policy.bind(context)
        kernel = SimulationKernel(context, policy)
        kernel.replay([], duration=300.0)
        assert context.fault_clock is None
        assert not context.controller.battery_failed


class TestOnlineMode:
    def test_posted_records_are_served_by_run_until(self):
        context = make_context()
        policy = PeriodicPolicy(period=60.0)
        policy.bind(context)
        kernel = SimulationKernel(context, policy)
        policy.on_start(0.0)
        context.app_monitor.begin_window(0.0)
        context.storage_monitor.begin_window(0.0)
        kernel.post(TraceRecordEvent(record(5.0)))
        kernel.post(TraceRecordEvent(record(70.0)))
        kernel.run_until(50.0)
        assert policy.io_seen == [5.0]
        kernel.run_until(200.0)
        assert policy.io_seen == [5.0, 70.0]
        # Serving the first record synced the checkpoint schedule, so
        # checkpoints interleave with posted records in time order.
        assert policy.checkpoints == [60.0, 120.0, 180.0]
        assert kernel.clock.now == 200.0

    def test_checkpoints_fire_between_posted_records(self):
        context = make_context()
        policy = PeriodicPolicy(period=60.0)
        policy.bind(context)
        kernel = SimulationKernel(context, policy)
        policy.on_start(0.0)
        context.app_monitor.begin_window(0.0)
        context.storage_monitor.begin_window(0.0)
        kernel._sync_checkpoint()
        kernel.post(TraceRecordEvent(record(5.0)))
        kernel.post(TraceRecordEvent(record(130.0)))
        kernel.run_until(200.0)
        assert policy.checkpoints == [60.0, 120.0, 180.0]
        assert policy.io_seen == [5.0, 130.0]

    def test_posting_into_the_past_raises_on_pump(self):
        context = make_context()
        policy = NoPowerSavingPolicy()
        policy.bind(context)
        kernel = SimulationKernel(context, policy)
        kernel.run_until(100.0)
        kernel.post(TraceRecordEvent(record(50.0)))
        with pytest.raises(ReplayError):
            kernel.run_until(200.0)


class TestReplayValidation:
    def test_unordered_records_raise(self):
        context = make_context()
        policy = NoPowerSavingPolicy()
        policy.bind(context)
        kernel = SimulationKernel(context, policy)
        with pytest.raises(ReplayError):
            kernel.replay([record(10.0), record(5.0)])

    def test_non_positive_duration_raises(self):
        context = make_context()
        policy = NoPowerSavingPolicy()
        policy.bind(context)
        with pytest.raises(ReplayError):
            SimulationKernel(context, policy).replay([], duration=0.0)


class TestFinishedKernelMisuse:
    """A settled kernel is single-use: further driving is a UsageError."""

    def _finished_kernel(self):
        context = make_context()
        policy = NoPowerSavingPolicy()
        policy.bind(context)
        kernel = SimulationKernel(context, policy)
        kernel.replay([record(5.0)], duration=50.0)
        assert kernel.finished
        return kernel

    def test_post_after_finish_raises_usage_error(self):
        kernel = self._finished_kernel()
        with pytest.raises(UsageError, match="finished kernel"):
            kernel.post(TraceRecordEvent(record(60.0)))

    def test_run_until_after_finish_raises_usage_error(self):
        kernel = self._finished_kernel()
        with pytest.raises(UsageError, match="finished kernel"):
            kernel.run_until(100.0)

    def test_resume_replay_after_finish_raises_usage_error(self):
        kernel = self._finished_kernel()
        with pytest.raises(UsageError, match="finished kernel"):
            kernel.resume_replay([], duration=100.0, start_count=1,
                                 start_ts=5.0)

    def test_run_until_into_the_past_raises_usage_error(self):
        context = make_context()
        policy = NoPowerSavingPolicy()
        policy.bind(context)
        kernel = SimulationKernel(context, policy)
        kernel.run_until(100.0)
        with pytest.raises(UsageError, match="in the past"):
            kernel.run_until(50.0)
        # The clock did not move: the misuse left no trace.
        assert kernel.clock.now == 100.0

    def test_run_until_current_time_is_allowed(self):
        context = make_context()
        policy = NoPowerSavingPolicy()
        policy.bind(context)
        kernel = SimulationKernel(context, policy)
        kernel.run_until(100.0)
        assert kernel.run_until(100.0) == 100.0
