"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in (
            "ConfigurationError",
            "StorageError",
            "CapacityError",
            "MappingError",
            "PowerStateError",
            "TraceError",
            "ReplayError",
            "PlacementError",
            "WorkloadError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_storage_sub_hierarchy(self):
        assert issubclass(errors.CapacityError, errors.StorageError)
        assert issubclass(errors.MappingError, errors.StorageError)
        assert issubclass(errors.PowerStateError, errors.StorageError)

    def test_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.CapacityError("full")

    def test_placement_error_carries_item(self):
        from repro.core.placement import HotSetTooSmall

        error = HotSetTooSmall("log overflows", item_id="tpcc/log")
        assert error.item_id == "tpcc/log"
        assert isinstance(error, errors.PlacementError)

    def test_hot_set_too_small_default_item(self):
        from repro.core.placement import HotSetTooSmall

        assert HotSetTooSmall("empty hot set").item_id is None
