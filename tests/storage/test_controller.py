"""Tests for repro.storage.controller."""

import pytest

from repro import units
from repro.errors import MappingError
from repro.storage.cache import PAGE_BYTES, StorageCache
from repro.storage.controller import CACHE_HIT_LATENCY, StorageController
from repro.storage.enclosure import DiskEnclosure
from repro.storage.power import PowerState
from repro.storage.virtualization import BlockVirtualization
from repro.trace.records import IOType, LogicalIORecord, PhysicalIORecord


def build(enclosures=2, cache_kwargs=None):
    encs = [
        DiskEnclosure(
            f"e{i}", iops_random=2.0, iops_sequential=6.0,
            capacity_bytes=10 * units.GB,
        )
        for i in range(enclosures)
    ]
    virt = BlockVirtualization(encs)
    for i in range(enclosures):
        virt.create_volume(f"v{i}", f"e{i}")
    virt.add_item("a", 100 * units.MB, "v0")
    virt.add_item("b", 100 * units.MB, "v1")
    cache = StorageCache(**(cache_kwargs or {}))
    taps: list[PhysicalIORecord] = []
    controller = StorageController(virt, cache, physical_tap=taps.append)
    return controller, virt, cache, taps


def read(t, item="a", offset=0, size=8192, seq=False):
    return LogicalIORecord(t, item, offset, size, IOType.READ, seq)


def write(t, item="a", offset=0, size=8192, seq=False):
    return LogicalIORecord(t, item, offset, size, IOType.WRITE, seq)


class TestReadPath:
    def test_cold_read_goes_physical(self):
        controller, _, _, taps = build()
        response = controller.submit(read(1.0))
        assert response == pytest.approx(0.5)
        assert len(taps) == 1
        assert taps[0].enclosure == "e0"
        assert taps[0].io_type is IOType.READ

    def test_repeat_read_hits_lru(self):
        controller, _, _, taps = build()
        controller.submit(read(1.0))
        response = controller.submit(read(2.0))
        assert response == CACHE_HIT_LATENCY
        assert len(taps) == 1

    def test_multi_page_read_requires_all_pages(self):
        controller, _, _, _ = build()
        # Two pages: first read misses and inserts both.
        first = controller.submit(read(1.0, size=2 * PAGE_BYTES))
        assert first > CACHE_HIT_LATENCY
        second = controller.submit(read(2.0, size=2 * PAGE_BYTES))
        assert second == CACHE_HIT_LATENCY

    def test_preloaded_item_reads_hit(self):
        controller, _, cache, taps = build()
        controller.preload_item(0.0, "a")
        taps.clear()
        response = controller.submit(read(1.0, offset=50 * units.MB))
        assert response == CACHE_HIT_LATENCY
        assert taps == []

    def test_sequential_hint_uses_sequential_rate(self):
        controller, _, _, _ = build()
        response = controller.submit(read(1.0, seq=True))
        assert response == pytest.approx(1.0 / 6.0)

    def test_unknown_item_rejected(self):
        controller, _, _, _ = build()
        with pytest.raises(MappingError):
            controller.submit(read(1.0, item="ghost"))


class TestWritePath:
    def test_normal_write_goes_physical(self):
        controller, _, _, taps = build()
        response = controller.submit(write(1.0))
        assert response == pytest.approx(0.5)
        assert taps[0].io_type is IOType.WRITE

    def test_write_delayed_item_absorbs(self):
        controller, _, cache, taps = build()
        controller.select_write_delay(0.0, {"a"})
        response = controller.submit(write(1.0))
        assert response == CACHE_HIT_LATENCY
        assert taps == []
        assert cache.write_delay.dirty_pages == 1

    def test_dirty_threshold_triggers_bulk_flush(self):
        controller, _, cache, taps = build(
            cache_kwargs=dict(
                total_bytes=4 * units.MB,
                preload_bytes=units.MB,
                write_delay_bytes=units.MB,  # 4 pages, threshold 2
                dirty_block_rate=0.5,
            )
        )
        controller.select_write_delay(0.0, {"a"})
        controller.submit(write(1.0, offset=0))
        assert taps == []
        controller.submit(write(2.0, offset=PAGE_BYTES))
        # Threshold reached: a bulk write burst went to e0.
        assert any(t.io_type is IOType.WRITE for t in taps)
        assert cache.write_delay.dirty_pages == 0
        assert controller.flushed_bytes == 2 * PAGE_BYTES

    def test_deselection_flushes_dirty_data(self):
        controller, _, cache, taps = build()
        controller.select_write_delay(0.0, {"a"})
        controller.submit(write(1.0))
        taps.clear()
        controller.select_write_delay(10.0, set())
        assert len(taps) == 1
        assert controller.flushed_bytes == PAGE_BYTES


class TestPreload:
    def test_preload_pins_and_costs_a_read_burst(self):
        controller, _, cache, taps = build()
        completion = controller.preload_item(5.0, "a")
        assert cache.preload.is_pinned("a")
        assert completion > 5.0
        assert controller.preloaded_bytes == 100 * units.MB
        assert taps and taps[0].io_type is IOType.READ

    def test_preload_is_idempotent(self):
        controller, _, _, _ = build()
        controller.preload_item(0.0, "a")
        before = controller.preloaded_bytes
        controller.preload_item(1.0, "a")
        assert controller.preloaded_bytes == before

    def test_unpin(self):
        controller, _, cache, _ = build()
        controller.preload_item(0.0, "a")
        controller.unpin_item("a")
        assert not cache.preload.is_pinned("a")

    def test_unpin_never_pinned_item_is_a_noop(self):
        controller, _, cache, taps = build()
        used_before = cache.preload.used_bytes
        controller.unpin_item("a")
        assert not cache.preload.is_pinned("a")
        assert cache.preload.used_bytes == used_before
        assert taps == []

    def test_flush_item_with_zero_dirty_bytes_costs_no_io(self):
        controller, _, cache, taps = build()
        controller.select_write_delay(0.0, {"a"})
        completion = controller.flush_item(5.0, "a")
        assert completion == 5.0
        assert taps == []
        assert controller.flushed_bytes == 0
        assert cache.write_delay.is_selected("a")

    def test_flush_item_drains_only_that_item(self):
        controller, _, cache, taps = build()
        controller.select_write_delay(0.0, {"a", "b"})
        controller.submit(write(1.0, item="a"))
        controller.submit(write(2.0, item="b"))
        taps.clear()
        completion = controller.flush_item(3.0, "a")
        assert completion > 3.0
        assert cache.write_delay.dirty_bytes_of("a") == 0
        assert cache.write_delay.dirty_bytes_of("b") == PAGE_BYTES
        assert len(taps) == 1


class TestMigration:
    def test_migrate_updates_mapping_and_counters(self):
        controller, virt, _, _ = build()
        completion = controller.migrate_item(10.0, "a", "e1")
        assert virt.enclosure_of("a").name == "e1"
        assert controller.migrated_bytes == 100 * units.MB
        assert controller.migration_count == 1
        expected = 10.0 + 100 * units.MB / controller.migration_throughput_bps
        assert completion == pytest.approx(expected)

    def test_migrate_to_same_place_is_noop(self):
        controller, _, _, _ = build()
        assert controller.migrate_item(10.0, "a", "e0") == 10.0
        assert controller.migrated_bytes == 0

    def test_migration_does_not_block_application_io(self):
        controller, _, _, _ = build()
        controller.migrate_item(10.0, "a", "e1")
        response = controller.submit(read(11.0, item="b"))
        assert response == pytest.approx(0.5)

    def test_migration_emits_interval_markers(self):
        controller, _, _, taps = build()
        controller.migrate_item(0.0, "a", "e1")
        reads = [t for t in taps if t.io_type is IOType.READ]
        writes = [t for t in taps if t.io_type is IOType.WRITE]
        assert reads and writes
        assert {t.enclosure for t in reads} == {"e0"}
        assert {t.enclosure for t in writes} == {"e1"}

    def test_migration_holds_enclosures_awake(self):
        controller, virt, _, _ = build()
        controller.migration_throughput_bps = 1.0 * units.MB  # 100 s copy
        src = virt.enclosure("e0")
        src.enable_power_off(0.0)
        controller.migrate_item(0.0, "a", "e1")
        src.settle(60.0)  # past the idle timeout but inside the copy
        assert src.state is PowerState.IDLE
        src.settle(200.0)  # copy done at 100 s; timeout then elapses
        assert src.state is PowerState.OFF

    def test_charge_block_migration(self):
        controller, _, _, taps = build()
        completion = controller.charge_block_migration(
            1.0, "a", 64 * units.KB, "e0", "e1"
        )
        assert controller.migrated_bytes == 64 * units.KB
        assert completion > 1.0
        assert len(taps) == 2

    def test_charge_block_migration_rejects_bad_size(self):
        controller, _, _, _ = build()
        with pytest.raises(ValueError):
            controller.charge_block_migration(1.0, "a", 0, "e0", "e1")


class TestFinish:
    def test_finish_flushes_dirty_data(self):
        controller, _, cache, _ = build()
        controller.select_write_delay(0.0, {"a"})
        controller.submit(write(1.0))
        controller.finish(100.0)
        assert cache.write_delay.dirty_pages == 0

    def test_finish_settles_enclosures(self):
        controller, virt, _, _ = build()
        controller.finish(500.0)
        for enclosure in virt.enclosures():
            assert enclosure.clock >= 500.0


class TestStats:
    def test_cache_hit_ratio(self):
        controller, _, _, _ = build()
        controller.submit(read(1.0))
        controller.submit(read(2.0))
        assert controller.cache_hit_ratio == pytest.approx(0.5)

    def test_hit_ratio_empty(self):
        controller, _, _, _ = build()
        assert controller.cache_hit_ratio == 0.0
