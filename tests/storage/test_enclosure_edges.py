"""Edge-case tests for the enclosure state machine."""

import pytest

from repro.storage.enclosure import DiskEnclosure
from repro.storage.power import PowerState


def enclosure(**kwargs):
    defaults = dict(name="e0", iops_random=2.0, spin_down_timeout=52.0)
    defaults.update(kwargs)
    return DiskEnclosure(**defaults)


class TestTransitionEdges:
    def test_disable_during_spin_down_completes_the_transition(self):
        enc = enclosure()
        enc.enable_power_off(0.0)
        enc.settle(53.0)
        assert enc.state is PowerState.SPIN_DOWN
        enc.disable_power_off(53.0)
        enc.settle(500.0)
        # Physics: a started spin-down finishes; the policy change only
        # prevents *future* spin-downs.
        assert enc.state is PowerState.OFF

    def test_io_during_spin_up_queues_behind_it(self):
        enc = enclosure()
        enc.enable_power_off(0.0)
        enc.settle(500.0)
        first = enc.submit(500.0)  # triggers the spin-up
        second = enc.submit(501.0)  # arrives mid-spin-up
        assert second.start >= first.completion
        assert enc.spin_up_count == 1

    def test_occupy_wakes_an_off_enclosure(self):
        enc = enclosure()
        enc.enable_power_off(0.0)
        enc.settle(500.0)
        assert enc.state is PowerState.OFF
        result = enc.occupy(500.0, 2.0)
        assert result.wait_time == pytest.approx(
            enc.power_model.spin_up_seconds
        )

    def test_zero_timeout_spins_down_immediately_after_service(self):
        enc = enclosure(spin_down_timeout=0.0)
        enc.enable_power_off(0.0)
        done = enc.submit(1.0).completion
        enc.settle(done + enc.power_model.spin_down_seconds + 0.01)
        assert enc.state is PowerState.OFF

    def test_hold_awake_with_power_off_disabled_is_harmless(self):
        enc = enclosure()
        enc.background_transfer(0.0, 100.0, 1.0, count=1, read=True)
        enc.settle(1000.0)
        assert enc.state is PowerState.IDLE

    def test_repeated_enable_disable_cycles(self):
        enc = enclosure()
        clock = 0.0
        for _ in range(5):
            clock += 100.0
            enc.enable_power_off(clock)
            clock += 100.0
            enc.disable_power_off(clock)
        # One spin-down per enabled stretch (100 s > timeout 52 s).
        assert enc.spin_down_count >= 1
        total = sum(enc.time_in_state(s) for s in PowerState)
        assert total == pytest.approx(enc.clock)

    def test_average_watts_before_any_settle(self):
        enc = enclosure()
        assert enc.average_watts() == enc.power_model.idle_watts

    def test_submit_in_settled_past_queues_at_clock(self):
        enc = enclosure()
        enc.settle(100.0)
        result = enc.submit(50.0)  # arrival in the settled past
        assert result.start >= 50.0
        assert result.completion > result.start


class TestLastIoTime:
    def test_background_transfer_does_not_regress_last_io(self):
        enc = enclosure()
        enc.submit(100.0)
        enc.background_transfer(50.0, 10.0, 1.0, count=1, read=True)
        assert enc.last_io_time == 100.0

    def test_background_transfer_advances_last_io(self):
        enc = enclosure()
        enc.submit(100.0)
        enc.background_transfer(200.0, 10.0, 1.0, count=1, read=True)
        assert enc.last_io_time == 200.0
