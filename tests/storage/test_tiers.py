"""Tests for repro.storage.tiers and the tiered virtualization layer."""

import pytest

from repro import units
from repro.errors import ValidationError
from repro.storage.enclosure import DiskEnclosure
from repro.storage.power import PowerState
from repro.storage.tiers import (
    ARCHIVE_COST_PER_BYTE,
    FLASH_COST_PER_BYTE,
    HDD_COST_PER_BYTE,
    ArchiveTier,
    FlashTier,
    StorageTier,
    TierKind,
    TierLedger,
)
from repro.storage.virtualization import BlockVirtualization


def make_tiered_virt(capacity=units.GB):
    """Two HDDs + one flash + one archive device, one volume each."""
    devices = [
        DiskEnclosure("hdd-0", capacity_bytes=capacity),
        DiskEnclosure("hdd-1", capacity_bytes=capacity),
        FlashTier("flash-0", capacity_bytes=capacity),
        ArchiveTier("arc-0", capacity_bytes=capacity),
    ]
    tiers = (
        StorageTier(
            name="flash",
            kind=TierKind.FLASH,
            devices=("flash-0",),
            cost_per_byte=FLASH_COST_PER_BYTE,
        ),
        StorageTier(
            name="hdd",
            kind=TierKind.HDD,
            devices=("hdd-0", "hdd-1"),
            cost_per_byte=HDD_COST_PER_BYTE,
        ),
        StorageTier(
            name="archive",
            kind=TierKind.ARCHIVE,
            devices=("arc-0",),
            cost_per_byte=ARCHIVE_COST_PER_BYTE,
        ),
    )
    virt = BlockVirtualization(devices, tiers=tiers)
    for device in devices:
        virt.create_volume(f"vol/{device.name}", device.name)
    return virt


class TestTierKind:
    def test_ranks_order_fastest_to_coldest(self):
        assert TierKind.FLASH.rank < TierKind.HDD.rank < TierKind.ARCHIVE.rank

    def test_costs_order_matches_technology(self):
        assert FLASH_COST_PER_BYTE > HDD_COST_PER_BYTE > ARCHIVE_COST_PER_BYTE


class TestStorageTier:
    def test_rejects_empty_name_and_devices(self):
        with pytest.raises(ValidationError):
            StorageTier(
                name="", kind=TierKind.HDD, devices=("d",), cost_per_byte=1.0
            )
        with pytest.raises(ValidationError):
            StorageTier(
                name="hdd", kind=TierKind.HDD, devices=(), cost_per_byte=1.0
            )

    def test_rejects_duplicate_devices_and_bad_cost(self):
        with pytest.raises(ValidationError):
            StorageTier(
                name="hdd",
                kind=TierKind.HDD,
                devices=("d", "d"),
                cost_per_byte=1.0,
            )
        with pytest.raises(ValidationError):
            StorageTier(
                name="hdd", kind=TierKind.HDD, devices=("d",), cost_per_byte=0.0
            )


class TestFlashTier:
    def test_power_off_enablement_is_ignored(self):
        flash = FlashTier("flash-0", capacity_bytes=units.GB)
        flash.enable_power_off(0.0)
        flash.settle(units.HOUR)
        assert flash.state in (PowerState.ACTIVE, PowerState.IDLE)
        assert flash.state is not PowerState.OFF

    def test_faster_than_default_hdd(self):
        flash = FlashTier("flash-0")
        hdd = DiskEnclosure("hdd-0")
        assert flash.iops_random > hdd.iops_random


class TestArchiveTier:
    def test_spins_down_once_enabled(self):
        archive = ArchiveTier("arc-0", capacity_bytes=units.GB)
        archive.enable_power_off(0.0)
        archive.settle(units.HOUR)
        assert archive.state is PowerState.OFF

    def test_slower_than_default_hdd(self):
        archive = ArchiveTier("arc-0")
        hdd = DiskEnclosure("hdd-0")
        assert archive.iops_random < hdd.iops_random


class TestTierLedger:
    def test_net_bytes_is_exact_integer_arithmetic(self):
        ledger = TierLedger()
        ledger.register_tier("hdd")
        ledger.record_in("hdd", 512)
        ledger.record_in("hdd", 256)
        ledger.record_out("hdd", 128)
        assert ledger.net_bytes("hdd") == 640

    def test_rejects_negative_sizes(self):
        ledger = TierLedger()
        ledger.register_tier("hdd")
        with pytest.raises(ValidationError):
            ledger.record_in("hdd", -1)
        with pytest.raises(ValidationError):
            ledger.record_out("hdd", -1)

    def test_snapshot_restore_round_trip(self):
        ledger = TierLedger()
        ledger.register_tier("hdd")
        ledger.record_in("hdd", 1024)
        ledger.record_out("hdd", 512)
        state = ledger.snapshot_state()
        other = TierLedger()
        other.register_tier("hdd")
        other.restore_state(state)
        assert other.net_bytes("hdd") == ledger.net_bytes("hdd")
        assert other.snapshot_state() == state


class TestTieredVirtualization:
    def test_legacy_construction_gets_implicit_hdd_tier(self):
        virt = BlockVirtualization(
            [DiskEnclosure("e0", capacity_bytes=units.GB)]
        )
        assert not virt.is_tiered
        assert virt.tier_names == ["hdd"]
        assert virt.tier_of_device("e0").kind is TierKind.HDD

    def test_tier_lookups(self):
        virt = make_tiered_virt()
        assert virt.is_tiered
        assert virt.devices_in_tier("hdd") == ("hdd-0", "hdd-1")
        assert virt.tier_of_device("flash-0").name == "flash"
        virt.add_item("a", 10 * units.MB, "vol/hdd-0")
        assert virt.tier_of_item("a").name == "hdd"

    def test_cross_tier_move_records_ledger(self):
        virt = make_tiered_virt()
        virt.add_item("a", 10 * units.MB, "vol/hdd-0")
        size = virt.item_size("a")
        hdd_net = virt.tier_ledger.net_bytes("hdd")
        virt.move_item("a", "flash-0")
        assert virt.tier_of_item("a").name == "flash"
        assert virt.tier_ledger.net_bytes("hdd") == hdd_net - size
        assert virt.tier_ledger.net_bytes("flash") == size

    def test_same_tier_move_leaves_ledger_unchanged(self):
        virt = make_tiered_virt()
        virt.add_item("a", 10 * units.MB, "vol/hdd-0")
        before = virt.tier_ledger.net_bytes("hdd")
        virt.move_item("a", "hdd-1")
        assert virt.tier_ledger.net_bytes("hdd") == before

    def test_replicas_tracked_separately_from_placement(self):
        virt = make_tiered_virt()
        virt.add_item("a", 10 * units.MB, "vol/flash-0")
        size = virt.item_size("a")
        used_before = virt.used_bytes("hdd-0")
        assert virt.add_replica("a", "hdd-0") == size
        assert virt.replicas_of("a") == ("hdd-0",)
        assert virt.replica_bytes_on("hdd-0") == size
        # Replica bytes are accounted next to, never inside, used_bytes.
        assert virt.used_bytes("hdd-0") == used_before
        assert virt.remove_replica("a", "hdd-0") == size
        assert virt.replicas_of("a") == ()
        assert virt.replica_bytes_on("hdd-0") == 0

    def test_snapshot_restore_preserves_replicas_and_ledger(self):
        virt = make_tiered_virt()
        virt.add_item("a", 10 * units.MB, "vol/hdd-0")
        virt.move_item("a", "flash-0")
        virt.add_replica("a", "hdd-1")
        state = virt.snapshot_state()
        other = make_tiered_virt()
        other.restore_state(state)
        assert other.tier_of_item("a").name == "flash"
        assert other.replicas_of("a") == ("hdd-1",)
        assert other.tier_ledger.net_bytes("flash") == virt.item_size("a")
        assert other.snapshot_state() == state
