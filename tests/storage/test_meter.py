"""Tests for repro.storage.meter."""

import pytest

from repro import units
from repro.storage.cache import StorageCache
from repro.storage.controller import StorageController
from repro.storage.enclosure import DiskEnclosure
from repro.storage.meter import PowerMeter
from repro.storage.power import ControllerPowerModel, PowerState
from repro.storage.virtualization import BlockVirtualization


def make_meter(count=2):
    encs = [
        DiskEnclosure(f"e{i}", capacity_bytes=units.GB) for i in range(count)
    ]
    return PowerMeter(encs, ControllerPowerModel(base_watts=100.0)), encs


class TestPowerMeter:
    def test_requires_enclosures(self):
        with pytest.raises(ValueError):
            PowerMeter([])

    def test_idle_reading(self):
        meter, encs = make_meter()
        reading = meter.read(100.0)
        idle = encs[0].power_model.idle_watts
        assert reading.enclosure_watts == pytest.approx(2 * idle)
        assert reading.controller_watts == pytest.approx(100.0)

    def test_total_is_sum(self):
        meter, _ = make_meter()
        reading = meter.read(50.0)
        assert reading.total_watts == pytest.approx(
            reading.enclosure_watts + reading.controller_watts
        )
        assert reading.total_joules == pytest.approx(
            reading.enclosure_joules + reading.controller_joules
        )

    def test_reading_settles_enclosures(self):
        meter, encs = make_meter()
        meter.read(123.0)
        assert all(e.clock >= 123.0 for e in encs)

    def test_controller_io_counted(self):
        meter, encs = make_meter(1)
        virt = BlockVirtualization(encs)
        virt.create_volume("v0", "e0")
        virt.add_item("a", units.MB, "v0")
        controller = StorageController(virt, StorageCache())
        from repro.trace.records import IOType, LogicalIORecord

        controller.submit(LogicalIORecord(1.0, "a", 0, 4096, IOType.READ))
        with_io = meter.read(10.0, controller)
        fresh_meter, _ = make_meter(1)
        without_io = fresh_meter.read(10.0)
        assert with_io.controller_joules > without_io.controller_joules

    def test_non_positive_duration_rejected(self):
        meter, _ = make_meter()
        with pytest.raises(ValueError):
            meter.read(0.0)

    def test_state_breakdown_sums_to_duration(self):
        meter, encs = make_meter(3)
        encs[0].submit(1.0)
        encs[1].enable_power_off(0.0)
        breakdown = meter.state_breakdown(1000.0)
        assert sum(breakdown.values()) == pytest.approx(3 * 1000.0)
        assert breakdown[PowerState.OFF] > 0  # enc 1 slept
