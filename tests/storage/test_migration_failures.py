"""Failure-injection tests: migration under capacity pressure."""

import pytest

from repro import units
from repro.errors import CapacityError
from repro.storage.cache import StorageCache
from repro.storage.controller import StorageController
from repro.storage.enclosure import DiskEnclosure
from repro.storage.migration import MigrationEngine, PlacementPlan
from repro.storage.virtualization import BlockVirtualization


def build(capacity=100 * units.MB):
    encs = [
        DiskEnclosure(f"e{i}", capacity_bytes=capacity) for i in range(3)
    ]
    virt = BlockVirtualization(encs)
    for i in range(3):
        virt.create_volume(f"v{i}", f"e{i}")
    controller = StorageController(virt, StorageCache())
    return MigrationEngine(controller), virt, controller


class TestCapacityPressure:
    def test_migrate_item_precheck_raises_before_charging(self):
        engine, virt, controller = build()
        virt.add_item("a", 80 * units.MB, "v0")
        virt.add_item("b", 80 * units.MB, "v1")
        src = virt.enclosure("e0")
        energy_before = src.energy_joules()
        with pytest.raises(CapacityError):
            controller.migrate_item(10.0, "a", "e1")
        # The failed move charged nothing and moved nothing.
        assert controller.migrated_bytes == 0
        assert src.energy_joules() == energy_before
        assert virt.enclosure_of("a").name == "e0"

    def test_engine_skips_infeasible_moves_and_continues(self):
        engine, virt, _ = build()
        virt.add_item("a", 80 * units.MB, "v0")
        virt.add_item("b", 80 * units.MB, "v1")
        virt.add_item("c", 10 * units.MB, "v0")
        plan = PlacementPlan()
        plan.add("a", "e1")  # cannot fit (b occupies e1)
        plan.add("c", "e2")  # fits
        report = engine.execute(0.0, plan)
        assert report.moves_skipped == 1
        assert report.moves_executed == 1
        assert virt.enclosure_of("a").name == "e0"
        assert virt.enclosure_of("c").name == "e2"

    def test_skipped_moves_do_not_count_bytes(self):
        engine, virt, _ = build()
        virt.add_item("a", 80 * units.MB, "v0")
        virt.add_item("b", 80 * units.MB, "v1")
        plan = PlacementPlan()
        plan.add("a", "e1")
        report = engine.execute(0.0, plan)
        assert report.bytes_moved == 0
        assert engine.total_bytes_moved == 0

    def test_sequential_dependent_moves(self):
        # Move b away first, then a fits: plan order matters and the
        # engine honours it.
        engine, virt, _ = build()
        virt.add_item("a", 80 * units.MB, "v0")
        virt.add_item("b", 80 * units.MB, "v1")
        plan = PlacementPlan()
        plan.add("b", "e2", evacuation=True)  # executes first
        plan.add("a", "e1")
        report = engine.execute(0.0, plan)
        assert report.moves_skipped == 0
        assert virt.enclosure_of("a").name == "e1"
        assert virt.enclosure_of("b").name == "e2"
