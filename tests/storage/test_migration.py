"""Tests for repro.storage.migration."""

import pytest

from repro import units
from repro.storage.cache import StorageCache
from repro.storage.controller import StorageController
from repro.storage.enclosure import DiskEnclosure
from repro.storage.migration import MigrationEngine, Move, PlacementPlan
from repro.storage.virtualization import BlockVirtualization


def build_engine(items=3):
    encs = [
        DiskEnclosure(f"e{i}", capacity_bytes=10 * units.GB) for i in range(3)
    ]
    virt = BlockVirtualization(encs)
    for i in range(3):
        virt.create_volume(f"v{i}", f"e{i}")
    for k in range(items):
        virt.add_item(f"item-{k}", 10 * units.MB, "v0")
    controller = StorageController(virt, StorageCache())
    return MigrationEngine(controller), virt


class TestPlacementPlan:
    def test_empty_plan_is_falsy(self):
        assert not PlacementPlan()

    def test_add_and_len(self):
        plan = PlacementPlan()
        plan.add("a", "e1")
        plan.add("b", "e2", evacuation=True)
        assert len(plan) == 2

    def test_ordered_puts_evacuations_first(self):
        plan = PlacementPlan()
        plan.add("late", "e1")
        plan.add("evac", "e2", evacuation=True)
        ordered = plan.ordered()
        assert ordered[0].item_id == "evac"
        assert ordered[1].item_id == "late"

    def test_ordered_preserves_within_class_order(self):
        plan = PlacementPlan()
        plan.add("a", "e1")
        plan.add("b", "e1")
        assert [m.item_id for m in plan.ordered()] == ["a", "b"]


class TestMigrationEngine:
    def test_executes_moves_and_reports(self):
        engine, virt = build_engine()
        plan = PlacementPlan()
        plan.add("item-0", "e1")
        plan.add("item-1", "e2")
        report = engine.execute(100.0, plan)
        assert report.moves_executed == 2
        assert report.bytes_moved == 20 * units.MB
        assert virt.enclosure_of("item-0").name == "e1"
        assert virt.enclosure_of("item-1").name == "e2"

    def test_moves_are_serialized(self):
        engine, _ = build_engine()
        plan = PlacementPlan()
        plan.add("item-0", "e1")
        plan.add("item-1", "e1")
        report = engine.execute(0.0, plan)
        per_item = 10 * units.MB / engine.controller.migration_throughput_bps
        assert report.duration == pytest.approx(2 * per_item)

    def test_skips_items_already_on_target(self):
        engine, _ = build_engine()
        plan = PlacementPlan()
        plan.add("item-0", "e0")
        report = engine.execute(0.0, plan)
        assert report.moves_executed == 0
        assert report.bytes_moved == 0

    def test_skips_unknown_items(self):
        engine, _ = build_engine()
        plan = PlacementPlan()
        plan.add("ghost", "e1")
        report = engine.execute(0.0, plan)
        assert report.moves_executed == 0

    def test_totals_accumulate_across_plans(self):
        engine, _ = build_engine()
        for target in ("e1", "e2"):
            plan = PlacementPlan()
            plan.add("item-0", target)
            engine.execute(0.0, plan)
        assert engine.total_moves == 2
        assert engine.total_bytes_moved == 20 * units.MB

    def test_empty_plan_report(self):
        engine, _ = build_engine()
        report = engine.execute(5.0, PlacementPlan())
        assert report.moves_executed == 0
        assert report.started_at == report.completed_at == 5.0


class TestMove:
    def test_move_is_frozen(self):
        move = Move("a", "e1")
        with pytest.raises(AttributeError):
            move.item_id = "b"  # type: ignore[misc]
