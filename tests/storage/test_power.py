"""Tests for repro.storage.power."""

import pytest

from repro.errors import ConfigurationError
from repro.storage.power import (
    ControllerPowerModel,
    PowerModel,
    PowerState,
)


class TestPowerState:
    def test_active_and_idle_are_on(self):
        assert PowerState.ACTIVE.is_on
        assert PowerState.IDLE.is_on

    def test_off_and_transitions_are_not_on(self):
        assert not PowerState.OFF.is_on
        assert not PowerState.SPIN_UP.is_on
        assert not PowerState.SPIN_DOWN.is_on


class TestPowerModelValidation:
    def test_default_is_valid(self):
        PowerModel()

    def test_off_above_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModel(idle_watts=100, off_watts=200)

    def test_idle_above_active_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModel(active_watts=100, idle_watts=200)

    def test_idle_equal_off_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModel(idle_watts=50, off_watts=50)

    def test_negative_transition_time_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModel(spin_up_seconds=-1)


class TestWatts:
    def test_each_state_has_configured_watts(self):
        model = PowerModel()
        assert model.watts(PowerState.ACTIVE) == model.active_watts
        assert model.watts(PowerState.IDLE) == model.idle_watts
        assert model.watts(PowerState.OFF) == model.off_watts
        assert model.watts(PowerState.SPIN_UP) == model.spin_up_watts
        assert model.watts(PowerState.SPIN_DOWN) == model.spin_down_watts

    def test_ordering(self):
        model = PowerModel()
        assert model.off_watts < model.idle_watts < model.active_watts


class TestBreakEven:
    def test_default_near_52s(self):
        assert PowerModel().break_even_time == pytest.approx(52.0, rel=0.05)

    def test_formula(self):
        model = PowerModel(
            active_watts=200,
            idle_watts=100,
            off_watts=0,
            spin_up_watts=1000,
            spin_up_seconds=10,
            spin_down_watts=0,
            spin_down_seconds=0,
        )
        # transition energy 10_000 J at 100 W idle-off delta => 100 s
        assert model.break_even_time == pytest.approx(100.0)

    def test_energy_if_idle_linear(self):
        model = PowerModel()
        assert model.energy_if_idle(10) == pytest.approx(
            10 * model.idle_watts
        )

    def test_energy_if_cycled_includes_transition(self):
        model = PowerModel()
        energy = model.energy_if_power_cycled(1000)
        expected = model.transition_energy + model.off_watts * (
            1000 - model.transition_seconds
        )
        assert energy == pytest.approx(expected)

    def test_cycling_a_tiny_gap_still_charges_full_transition(self):
        model = PowerModel()
        assert model.energy_if_power_cycled(1.0) >= model.transition_energy

    def test_power_off_saves_above_break_even(self):
        model = PowerModel()
        be = model.break_even_time
        assert model.power_off_saves(be * 1.5)
        assert not model.power_off_saves(be * 0.5)

    def test_break_even_is_the_indifference_point(self):
        model = PowerModel()
        be = model.break_even_time
        assert model.energy_if_idle(be) == pytest.approx(
            model.energy_if_power_cycled(be), rel=1e-9
        )

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            PowerModel().energy_if_idle(-1)
        with pytest.raises(ValueError):
            PowerModel().energy_if_power_cycled(-1)


class TestControllerPowerModel:
    def test_energy_accumulates_base_and_per_io(self):
        model = ControllerPowerModel(base_watts=100, joules_per_io=0.5)
        assert model.energy(10, 20) == pytest.approx(1000 + 10)

    def test_average_watts(self):
        model = ControllerPowerModel(base_watts=100, joules_per_io=0.0)
        assert model.average_watts(100, 0) == pytest.approx(100)

    def test_average_watts_zero_duration_returns_base(self):
        model = ControllerPowerModel(base_watts=100)
        assert model.average_watts(0, 0) == 100

    def test_negative_inputs_rejected(self):
        model = ControllerPowerModel()
        with pytest.raises(ValueError):
            model.energy(-1, 0)
        with pytest.raises(ValueError):
            model.energy(1, -1)
