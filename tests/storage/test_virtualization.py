"""Tests for repro.storage.virtualization."""

import pytest

from repro import units
from repro.errors import CapacityError, MappingError
from repro.storage.enclosure import DiskEnclosure
from repro.storage.virtualization import BlockVirtualization


def make_virt(count=2, capacity=units.GB) -> BlockVirtualization:
    enclosures = [
        DiskEnclosure(f"e{i}", capacity_bytes=capacity) for i in range(count)
    ]
    virt = BlockVirtualization(enclosures)
    for i in range(count):
        virt.create_volume(f"v{i}", f"e{i}")
    return virt


class TestConstruction:
    def test_requires_enclosures(self):
        with pytest.raises(ValueError):
            BlockVirtualization([])

    def test_duplicate_names_rejected(self):
        encs = [DiskEnclosure("same"), DiskEnclosure("same")]
        with pytest.raises(ValueError):
            BlockVirtualization(encs)

    def test_enclosure_lookup(self):
        virt = make_virt()
        assert virt.enclosure("e0").name == "e0"
        with pytest.raises(MappingError):
            virt.enclosure("ghost")


class TestVolumes:
    def test_create_and_lookup(self):
        virt = make_virt()
        volume = virt.volume("v0")
        assert volume.enclosure == "e0"

    def test_duplicate_volume_rejected(self):
        virt = make_virt()
        with pytest.raises(MappingError):
            virt.create_volume("v0", "e0")

    def test_volume_on_unknown_enclosure_rejected(self):
        virt = make_virt()
        with pytest.raises(MappingError):
            virt.create_volume("vx", "ghost")


class TestItems:
    def test_add_and_resolve(self):
        virt = make_virt()
        virt.add_item("a", 10 * units.MB, "v0")
        enclosure, block = virt.resolve("a", 0)
        assert enclosure == "e0"
        assert block == 0

    def test_items_get_disjoint_extents(self):
        virt = make_virt()
        virt.add_item("a", 10 * units.MB, "v0")
        virt.add_item("b", 10 * units.MB, "v0")
        ext_a = virt.extent_of("a")
        ext_b = virt.extent_of("b")
        assert ext_b.base_block >= ext_a.base_block + ext_a.blocks

    def test_resolve_offset_maps_to_block(self):
        virt = make_virt()
        virt.add_item("a", 10 * units.MB, "v0")
        _, block = virt.resolve("a", 2 * units.BLOCK_SIZE)
        assert block == 2

    def test_resolve_out_of_range_rejected(self):
        virt = make_virt()
        virt.add_item("a", units.MB, "v0")
        with pytest.raises(MappingError):
            virt.resolve("a", 2 * units.MB)
        with pytest.raises(MappingError):
            virt.resolve("a", -1)

    def test_duplicate_item_rejected(self):
        virt = make_virt()
        virt.add_item("a", units.MB, "v0")
        with pytest.raises(MappingError):
            virt.add_item("a", units.MB, "v1")

    def test_capacity_enforced(self):
        virt = make_virt(capacity=units.MB)
        with pytest.raises(CapacityError):
            virt.add_item("big", 2 * units.MB, "v0")

    def test_used_and_free_bytes(self):
        virt = make_virt(capacity=units.GB)
        virt.add_item("a", 100 * units.MB, "v0")
        assert virt.used_bytes("e0") == 100 * units.MB
        assert virt.free_bytes("e0") == units.GB - 100 * units.MB
        assert virt.used_bytes("e1") == 0

    def test_remove_item(self):
        virt = make_virt()
        virt.add_item("a", units.MB, "v0")
        virt.remove_item("a")
        assert not virt.has_item("a")
        assert virt.used_bytes("e0") == 0

    def test_remove_unknown_rejected(self):
        with pytest.raises(MappingError):
            make_virt().remove_item("ghost")

    def test_items_on(self):
        virt = make_virt()
        virt.add_item("a", units.MB, "v0")
        virt.add_item("b", units.MB, "v1")
        assert virt.items_on("e0") == ["a"]
        assert virt.items_on("e1") == ["b"]

    def test_item_size(self):
        virt = make_virt()
        virt.add_item("a", 5 * units.MB, "v0")
        assert virt.item_size("a") == 5 * units.MB
        with pytest.raises(MappingError):
            virt.item_size("ghost")

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            make_virt().add_item("a", 0, "v0")


class TestMoveItem:
    def test_move_updates_mapping_and_accounting(self):
        virt = make_virt()
        virt.add_item("a", 100 * units.MB, "v0")
        src, dst = virt.move_item("a", "e1")
        assert (src, dst) == ("e0", "e1")
        assert virt.enclosure_of("a").name == "e1"
        assert virt.used_bytes("e0") == 0
        assert virt.used_bytes("e1") == 100 * units.MB

    def test_move_to_same_enclosure_is_noop(self):
        virt = make_virt()
        virt.add_item("a", units.MB, "v0")
        assert virt.move_item("a", "e0") == ("e0", "e0")

    def test_move_respects_capacity(self):
        virt = make_virt(capacity=100 * units.MB)
        virt.add_item("a", 80 * units.MB, "v0")
        virt.add_item("b", 80 * units.MB, "v1")
        with pytest.raises(CapacityError):
            virt.move_item("a", "e1")

    def test_move_to_unknown_enclosure_rejected(self):
        virt = make_virt()
        virt.add_item("a", units.MB, "v0")
        with pytest.raises(MappingError):
            virt.move_item("a", "ghost")

    def test_resolve_after_move(self):
        virt = make_virt()
        virt.add_item("a", units.MB, "v0")
        virt.move_item("a", "e1")
        enclosure, _ = virt.resolve("a", 0)
        assert enclosure == "e1"

    def test_repeated_moves(self):
        virt = make_virt()
        virt.add_item("a", units.MB, "v0")
        virt.move_item("a", "e1")
        virt.move_item("a", "e0")
        assert virt.enclosure_of("a").name == "e0"
        assert virt.used_bytes("e1") == 0
