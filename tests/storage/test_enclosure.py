"""Tests for repro.storage.enclosure — the power-state machine."""

import pytest

from repro.storage.enclosure import DiskEnclosure, IOResult
from repro.storage.power import PowerModel, PowerState


def enclosure(**kwargs) -> DiskEnclosure:
    defaults = dict(
        name="e0",
        iops_random=2.0,
        iops_sequential=6.0,
        capacity_bytes=10**12,
        spin_down_timeout=52.0,
    )
    defaults.update(kwargs)
    return DiskEnclosure(**defaults)


class TestConstruction:
    def test_initial_state_idle(self):
        assert enclosure().state is PowerState.IDLE

    def test_power_off_disabled_initially(self):
        assert not enclosure().power_off_enabled

    def test_invalid_iops_rejected(self):
        with pytest.raises(ValueError):
            enclosure(iops_random=0)

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            enclosure(spin_down_timeout=-1)


class TestServiceTime:
    def test_random_rate(self):
        assert enclosure().service_time(1, sequential=False) == 0.5

    def test_sequential_rate(self):
        assert enclosure().service_time(3, sequential=True) == pytest.approx(0.5)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            enclosure().service_time(0, sequential=False)


class TestSubmit:
    def test_response_is_service_time_when_idle(self):
        enc = enclosure()
        result = enc.submit(10.0)
        assert result.response_time == pytest.approx(0.5)
        assert result.wait_time == 0.0

    def test_queueing_behind_prior_io(self):
        enc = enclosure()
        first = enc.submit(10.0)
        second = enc.submit(10.0)
        assert second.start == pytest.approx(first.completion)
        assert second.response_time == pytest.approx(1.0)

    def test_no_queueing_across_wide_gaps(self):
        enc = enclosure()
        enc.submit(10.0)
        later = enc.submit(100.0)
        assert later.wait_time == 0.0

    def test_read_write_counters(self):
        enc = enclosure()
        enc.submit(1.0, read=True)
        enc.submit(2.0, read=False)
        enc.submit(3.0, read=False)
        assert enc.read_count == 1
        assert enc.write_count == 2
        assert enc.io_count == 3

    def test_batch_mean_response(self):
        enc = enclosure()
        result = enc.submit(0.0, count=4)
        # wait 0, service 2.0 => mean = 2.0 * 5 / 8
        assert result.mean_response_time == pytest.approx(2.0 * 5 / 8)

    def test_non_positive_count_rejected(self):
        with pytest.raises(ValueError):
            enclosure().submit(0.0, count=0)


class TestSpinDown:
    def test_no_spin_down_when_disabled(self):
        enc = enclosure()
        enc.submit(0.0)
        enc.settle(10_000.0)
        assert enc.state is PowerState.IDLE
        assert enc.spin_down_count == 0

    def test_spin_down_after_timeout_when_enabled(self):
        enc = enclosure()
        enc.submit(0.0)
        enc.enable_power_off(1.0)
        enc.settle(200.0)
        assert enc.state is PowerState.OFF
        assert enc.spin_down_count == 1

    def test_spin_down_happens_at_timeout_boundary(self):
        enc = enclosure()
        result = enc.submit(0.0)
        enc.enable_power_off(result.completion)
        # Just before the timeout elapses: still idle.
        enc.settle(result.completion + 51.9)
        assert enc.state is PowerState.IDLE
        # Past timeout + spin-down duration: off.
        enc.settle(result.completion + 52.0 + enc.power_model.spin_down_seconds + 0.1)
        assert enc.state is PowerState.OFF

    def test_disable_preserves_off_state_until_next_io(self):
        enc = enclosure()
        enc.enable_power_off(0.0)
        enc.settle(500.0)
        assert enc.state is PowerState.OFF
        enc.disable_power_off(600.0)
        enc.settle(10_000.0)
        assert enc.state is PowerState.OFF
        enc.submit(10_001.0)
        enc.settle(10_050.0)
        assert enc.state.is_on or enc.state is PowerState.ACTIVE

    def test_enable_power_off_restarts_idle_clock(self):
        enc = enclosure()
        enc.settle(1000.0)  # long idle with power-off disabled
        enc.enable_power_off(1000.0)
        enc.settle(1001.0)
        # Must not instantly vanish: timeout counts from the enable.
        assert enc.state is PowerState.IDLE


class TestSpinUp:
    def test_io_to_off_enclosure_waits_for_spin_up(self):
        enc = enclosure()
        enc.enable_power_off(0.0)
        enc.settle(1000.0)
        assert enc.state is PowerState.OFF
        result = enc.submit(1000.0)
        assert result.wait_time == pytest.approx(
            enc.power_model.spin_up_seconds
        )
        assert enc.spin_up_count == 1

    def test_spin_up_event_recorded(self):
        enc = enclosure()
        enc.enable_power_off(0.0)
        enc.settle(1000.0)
        enc.submit(1000.0)
        assert enc.spin_up_events == [1000.0]

    def test_io_during_spin_down_waits_for_both_transitions(self):
        enc = enclosure()
        enc.enable_power_off(0.0)
        # At t=53 the enclosure is mid-spin-down (timeout 52 + 4 s).
        enc.settle(53.0)
        assert enc.state is PowerState.SPIN_DOWN
        result = enc.submit(53.0)
        expected_wait = (
            (52.0 + enc.power_model.spin_down_seconds - 53.0)
            + enc.power_model.spin_up_seconds
        )
        assert result.wait_time == pytest.approx(expected_wait)


class TestEnergyAccounting:
    def test_idle_energy(self):
        enc = enclosure()
        enc.settle(100.0)
        assert enc.energy_joules() == pytest.approx(
            100.0 * enc.power_model.idle_watts
        )

    def test_active_energy_for_service(self):
        enc = enclosure()
        enc.submit(0.0)  # 0.5 s active
        enc.settle(10.0)
        active = enc.energy_joules(PowerState.ACTIVE)
        assert active == pytest.approx(0.5 * enc.power_model.active_watts)

    def test_energy_additive_over_settle_splits(self):
        enc1, enc2 = enclosure(), enclosure()
        enc1.submit(0.0)
        enc2.submit(0.0)
        for t in range(1, 101):
            enc1.settle(float(t))
        enc2.settle(100.0)
        assert enc1.energy_joules() == pytest.approx(enc2.energy_joules())

    def test_time_in_states_sums_to_clock(self):
        enc = enclosure()
        enc.enable_power_off(0.0)
        enc.submit(0.0)
        enc.submit(200.0)
        enc.settle(500.0)
        total = sum(enc.time_in_state(s) for s in PowerState)
        assert total == pytest.approx(enc.clock)

    def test_average_watts_bounded_by_model(self):
        enc = enclosure()
        enc.enable_power_off(0.0)
        for t in range(0, 2000, 400):
            enc.submit(float(t))
        enc.finish(2000.0)
        avg = enc.average_watts()
        assert enc.power_model.off_watts <= avg
        # Spin-up spikes can push instantaneous power above active, but
        # the average stays below the spin-up wattage.
        assert avg < enc.power_model.spin_up_watts

    def test_settle_is_idempotent(self):
        enc = enclosure()
        enc.settle(100.0)
        before = enc.energy_joules()
        enc.settle(100.0)
        enc.settle(50.0)  # past time: no-op
        assert enc.energy_joules() == before

    def test_power_cycle_costs_match_power_model(self):
        """One full off/on cycle's energy equals the model's prediction."""
        enc = enclosure()
        model = enc.power_model
        first = enc.submit(0.0)
        enc.enable_power_off(first.completion)
        gap_end = first.completion + 2000.0
        enc.settle(gap_end)
        # Energy across the gap: idle (timeout) + spin-down + off.
        expected = (
            52.0 * model.idle_watts
            + model.spin_down_seconds * model.spin_down_watts
            + (2000.0 - 52.0 - model.spin_down_seconds) * model.off_watts
        )
        measured = enc.energy_joules() - first.completion * 0  # settle covers all
        active = enc.energy_joules(PowerState.ACTIVE)
        assert measured - active == pytest.approx(expected, rel=1e-6)


class TestOccupy:
    def test_occupy_charges_given_duration(self):
        enc = enclosure()
        result = enc.occupy(0.0, 3.0, count=5, read=False)
        assert result.completion == pytest.approx(3.0)
        assert enc.write_count == 5

    def test_occupy_queues_like_submit(self):
        enc = enclosure()
        enc.occupy(0.0, 3.0)
        result = enc.submit(1.0)
        assert result.start == pytest.approx(3.0)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            enclosure().occupy(0.0, -1.0)
        with pytest.raises(ValueError):
            enclosure().occupy(0.0, 1.0, count=0)


class TestBackgroundTransfer:
    def test_lazy_no_state_change(self):
        enc = enclosure()
        enc.background_transfer(100.0, 50.0, 10.0, count=3, read=True)
        assert enc.clock == 0.0
        assert enc.state is PowerState.IDLE

    def test_energy_charged_externally(self):
        enc = enclosure()
        enc.background_transfer(0.0, 10.0, 4.0, count=1, read=True)
        delta = enc.power_model.active_watts - enc.power_model.idle_watts
        assert enc.energy_joules() == pytest.approx(4.0 * delta)

    def test_holds_enclosure_awake(self):
        enc = enclosure()
        enc.enable_power_off(0.0)
        enc.background_transfer(0.0, 500.0, 1.0, count=1, read=True)
        enc.settle(400.0)
        assert enc.state is PowerState.IDLE  # would be OFF without hold
        enc.settle(700.0)
        assert enc.state is PowerState.OFF  # hold expired at 500 + timeout

    def test_does_not_block_queue(self):
        enc = enclosure()
        enc.background_transfer(0.0, 1000.0, 100.0, count=1, read=True)
        result = enc.submit(1.0)
        assert result.wait_time == 0.0

    def test_counts_ios(self):
        enc = enclosure()
        enc.background_transfer(0.0, 1.0, 1.0, count=7, read=False)
        assert enc.write_count == 7

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            enclosure().background_transfer(0.0, -1.0, 0.0, 1, True)
        with pytest.raises(ValueError):
            enclosure().background_transfer(0.0, 1.0, 1.0, 0, True)


class TestIOResult:
    def test_response_decomposition(self):
        result = IOResult(arrival=1.0, start=3.0, completion=5.0, count=1)
        assert result.wait_time == 2.0
        assert result.response_time == 4.0

    def test_mean_response_single_io(self):
        result = IOResult(arrival=0.0, start=0.0, completion=1.0, count=1)
        assert result.mean_response_time == pytest.approx(1.0)
