"""Tests for repro.storage.cache."""

import pytest

from repro import units
from repro.errors import CapacityError
from repro.storage.cache import (
    PAGE_BYTES,
    LRUBlockCache,
    PreloadPartition,
    StorageCache,
    WriteDelayPartition,
    block_to_page,
)


class TestBlockToPage:
    def test_first_page(self):
        assert block_to_page(0) == 0
        assert block_to_page(63) == 0

    def test_second_page(self):
        assert block_to_page(64) == 1


class TestLRU:
    def test_miss_then_hit(self):
        lru = LRUBlockCache(10 * PAGE_BYTES)
        assert not lru.access("a", 0)
        assert lru.access("a", 0)

    def test_eviction_order_is_lru(self):
        lru = LRUBlockCache(2 * PAGE_BYTES)
        lru.access("a", 0)
        lru.access("a", 1)
        lru.access("a", 0)  # touch 0 so 1 is the LRU victim
        lru.access("a", 2)  # evicts 1
        assert lru.access("a", 0)
        assert not lru.access("a", 1)

    def test_capacity_respected(self):
        lru = LRUBlockCache(3 * PAGE_BYTES)
        for page in range(100):
            lru.access("a", page)
        assert len(lru) <= 3

    def test_zero_capacity_never_hits(self):
        lru = LRUBlockCache(0)
        assert not lru.access("a", 0)
        assert not lru.access("a", 0)
        assert len(lru) == 0

    def test_invalidate_item(self):
        lru = LRUBlockCache(10 * PAGE_BYTES)
        lru.access("a", 0)
        lru.access("a", 1)
        lru.access("b", 0)
        assert lru.invalidate_item("a") == 2
        assert not lru.access("a", 0)
        assert lru.access("b", 0)

    def test_hit_ratio(self):
        lru = LRUBlockCache(10 * PAGE_BYTES)
        lru.access("a", 0)
        lru.access("a", 0)
        assert lru.hit_ratio == pytest.approx(0.5)

    def test_hit_ratio_empty(self):
        assert LRUBlockCache(PAGE_BYTES).hit_ratio == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUBlockCache(-1)


class TestPreloadPartition:
    def test_pin_and_query(self):
        part = PreloadPartition(100 * units.MB)
        part.pin("a", 10 * units.MB)
        assert part.is_pinned("a")
        assert part.used_bytes == 10 * units.MB
        assert part.free_bytes == 90 * units.MB

    def test_pin_is_idempotent(self):
        part = PreloadPartition(100 * units.MB)
        part.pin("a", 10 * units.MB)
        part.pin("a", 10 * units.MB)
        assert part.used_bytes == 10 * units.MB

    def test_capacity_enforced(self):
        part = PreloadPartition(10 * units.MB)
        with pytest.raises(CapacityError):
            part.pin("a", 11 * units.MB)

    def test_unpin_frees_space(self):
        part = PreloadPartition(10 * units.MB)
        part.pin("a", 10 * units.MB)
        part.unpin("a")
        part.pin("b", 10 * units.MB)
        assert part.is_pinned("b")
        assert not part.is_pinned("a")

    def test_unpin_unknown_is_noop(self):
        PreloadPartition(units.MB).unpin("ghost")

    def test_fits(self):
        part = PreloadPartition(10 * units.MB)
        assert part.fits(10 * units.MB)
        assert not part.fits(11 * units.MB)

    def test_item_ids(self):
        part = PreloadPartition(units.GB)
        part.pin("a", 1)
        part.pin("b", 1)
        assert part.item_ids() == {"a", "b"}


class TestWriteDelayPartition:
    def make(self, capacity_mb=1, rate=0.5) -> WriteDelayPartition:
        return WriteDelayPartition(capacity_mb * units.MB, rate)

    def test_unselected_write_raises(self):
        part = self.make()
        with pytest.raises(KeyError):
            part.absorb_write("a", 0)

    def test_absorb_below_threshold(self):
        part = self.make(capacity_mb=100)
        part.select("a")
        assert part.absorb_write("a", 0) is False
        assert part.dirty_pages == 1

    def test_threshold_triggers_flush(self):
        part = self.make(capacity_mb=1, rate=0.5)  # 4 pages, threshold 2
        part.select("a")
        assert part.absorb_write("a", 0) is False
        assert part.absorb_write("a", 1) is True

    def test_duplicate_page_not_double_counted(self):
        part = self.make(capacity_mb=100)
        part.select("a")
        part.absorb_write("a", 0)
        part.absorb_write("a", 0)
        assert part.dirty_pages == 1

    def test_flush_all_returns_dirty_bytes_and_clears(self):
        part = self.make(capacity_mb=100)
        part.select("a")
        part.select("b")
        part.absorb_write("a", 0)
        part.absorb_write("a", 1)
        part.absorb_write("b", 7)
        plan = part.flush_all()
        assert plan.dirty_bytes_by_item == {
            "a": 2 * PAGE_BYTES,
            "b": 1 * PAGE_BYTES,
        }
        assert plan.total_bytes == 3 * PAGE_BYTES
        assert part.dirty_pages == 0
        assert part.flush_count == 1

    def test_flush_item_keeps_selection(self):
        part = self.make(capacity_mb=100)
        part.select("a")
        part.absorb_write("a", 0)
        plan = part.flush_item("a")
        assert plan.total_bytes == PAGE_BYTES
        assert part.is_selected("a")
        assert part.dirty_pages == 0

    def test_deselect_returns_dirty_data(self):
        part = self.make(capacity_mb=100)
        part.select("a")
        part.absorb_write("a", 0)
        plan = part.deselect("a")
        assert plan.total_bytes == PAGE_BYTES
        assert not part.is_selected("a")

    def test_deselect_clean_item_returns_empty_plan(self):
        part = self.make()
        part.select("a")
        assert part.deselect("a").total_bytes == 0

    def test_is_dirty(self):
        part = self.make(capacity_mb=100)
        part.select("a")
        part.absorb_write("a", 3)
        assert part.is_dirty("a", 3)
        assert not part.is_dirty("a", 4)
        assert not part.is_dirty("b", 3)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            WriteDelayPartition(units.MB, 0.0)
        with pytest.raises(ValueError):
            WriteDelayPartition(units.MB, 1.5)


class TestStorageCache:
    def test_partition_sizes(self):
        cache = StorageCache(
            total_bytes=2 * units.GB,
            preload_bytes=500 * units.MB,
            write_delay_bytes=500 * units.MB,
        )
        assert cache.preload.capacity_bytes == 500 * units.MB
        assert cache.write_delay.capacity_bytes == 500 * units.MB

    def test_partition_overflow_rejected(self):
        with pytest.raises(CapacityError):
            StorageCache(
                total_bytes=units.GB,
                preload_bytes=units.GB,
                write_delay_bytes=units.GB,
            )

    def test_preloaded_items_always_hit(self):
        cache = StorageCache()
        cache.preload.pin("a", units.MB)
        assert cache.read_hit("a", 12345)

    def test_dirty_pages_hit(self):
        cache = StorageCache()
        cache.write_delay.select("a")
        cache.write_delay.absorb_write("a", 5)
        assert cache.read_hit("a", 5)
        assert not cache.read_hit("a", 6)  # miss inserts into LRU
        assert cache.read_hit("a", 6)  # now LRU hit

    def test_lru_fallback(self):
        cache = StorageCache()
        assert not cache.read_hit("b", 0)
        assert cache.read_hit("b", 0)
