"""Tests for repro.monitoring.application."""

import pytest

from repro.monitoring.application import ApplicationMonitor
from repro.trace.records import IOType, LogicalIORecord


def rec(t, item="a", kind=IOType.READ):
    return LogicalIORecord(t, item, 0, 4096, kind)


class TestMapping:
    def test_register_and_lookup(self):
        monitor = ApplicationMonitor()
        monitor.register_item("a", "vol0")
        assert monitor.volume_of("a") == "vol0"
        assert monitor.known_items() == {"a"}

    def test_unregister(self):
        monitor = ApplicationMonitor()
        monitor.register_item("a", "vol0")
        monitor.unregister_item("a")
        assert monitor.volume_of("a") is None

    def test_unknown_item_returns_none(self):
        assert ApplicationMonitor().volume_of("ghost") is None


class TestWindowBuffer:
    def test_records_accumulate_in_window(self):
        monitor = ApplicationMonitor()
        monitor.record(rec(1.0), 0.1)
        monitor.record(rec(2.0), 0.1)
        assert len(monitor.window_records()) == 2

    def test_begin_window_clears_buffer(self):
        monitor = ApplicationMonitor()
        monitor.record(rec(1.0), 0.1)
        monitor.begin_window(5.0)
        assert monitor.window_records() == []
        assert monitor.window_start == 5.0

    def test_window_records_returns_copy(self):
        monitor = ApplicationMonitor()
        monitor.record(rec(1.0), 0.1)
        snapshot = monitor.window_records()
        snapshot.clear()
        assert len(monitor.window_records()) == 1


class TestResponseStats:
    def test_totals(self):
        monitor = ApplicationMonitor()
        monitor.record(rec(1.0), 0.5)
        monitor.record(rec(2.0, kind=IOType.WRITE), 1.5)
        stats = monitor.response_stats()
        assert stats.io_count == 2
        assert stats.read_count == 1
        assert stats.mean_response == pytest.approx(1.0)
        assert stats.mean_read_response == pytest.approx(0.5)
        assert stats.max_response == 1.5

    def test_empty_stats(self):
        stats = ApplicationMonitor().response_stats()
        assert stats.mean_response == 0.0
        assert stats.mean_read_response == 0.0

    def test_stats_survive_window_reset(self):
        monitor = ApplicationMonitor()
        monitor.record(rec(1.0), 0.5)
        monitor.begin_window(10.0)
        monitor.record(rec(11.0), 1.5)
        assert monitor.response_stats().io_count == 2

    def test_response_samples_kept(self):
        monitor = ApplicationMonitor()
        monitor.record(rec(1.0), 0.5)
        monitor.record(rec(2.0, kind=IOType.WRITE), 0.7)
        assert monitor.response_samples == [
            (1.0, 0.5, True),
            (2.0, 0.7, False),
        ]

    def test_per_item_counters(self):
        monitor = ApplicationMonitor()
        monitor.record(rec(1.0, "a"), 0.1)
        monitor.record(rec(2.0, "a"), 0.1)
        monitor.record(rec(3.0, "b"), 0.1)
        assert monitor.ios_per_item["a"] == 2
        assert monitor.ios_per_item["b"] == 1


class TestFullTrace:
    def test_disabled_by_default(self):
        monitor = ApplicationMonitor()
        monitor.record(rec(1.0), 0.1)
        with pytest.raises(RuntimeError):
            monitor.full_trace()

    def test_enabled_retention(self):
        monitor = ApplicationMonitor(keep_full_trace=True)
        monitor.record(rec(1.0), 0.1)
        monitor.begin_window(10.0)
        monitor.record(rec(11.0), 0.1)
        assert len(monitor.full_trace()) == 2
