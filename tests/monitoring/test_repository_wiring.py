"""Tests: §III repositories wired into the monitors."""

from repro.monitoring.application import ApplicationMonitor
from repro.monitoring.repository import TraceRepository
from repro.monitoring.storage import StorageMonitor
from repro.storage.enclosure import DiskEnclosure
from repro.trace.records import (
    IOType,
    LogicalIORecord,
    PhysicalIORecord,
)


def logical(t):
    return LogicalIORecord(t, "a", 0, 4096, IOType.READ)


def physical(t):
    return PhysicalIORecord(t, "e0", 0, 1, IOType.READ)


class TestApplicationMonitorRepository:
    def test_records_flow_into_repository(self, tmp_path):
        repo = TraceRepository(LogicalIORecord, spill_dir=tmp_path)
        monitor = ApplicationMonitor(repository=repo)
        monitor.record(logical(1.0), 0.1)
        monitor.record(logical(2.0), 0.1)
        assert len(repo) == 2

    def test_repository_survives_window_resets(self, tmp_path):
        repo = TraceRepository(LogicalIORecord, spill_dir=tmp_path)
        monitor = ApplicationMonitor(repository=repo)
        monitor.record(logical(1.0), 0.1)
        monitor.begin_window(10.0)
        monitor.record(logical(11.0), 0.1)
        assert [r.timestamp for r in repo] == [1.0, 11.0]

    def test_spill_behaviour_preserved(self, tmp_path):
        repo = TraceRepository(
            LogicalIORecord, max_memory_records=2, spill_dir=tmp_path
        )
        monitor = ApplicationMonitor(repository=repo)
        for t in range(6):
            monitor.record(logical(float(t)), 0.1)
        assert len(repo) == 6
        assert len(list(tmp_path.glob("spill-*.csv"))) == 1

    def test_no_repository_is_fine(self):
        monitor = ApplicationMonitor()
        monitor.record(logical(1.0), 0.1)
        assert monitor.io_count == 1


class TestStorageMonitorRepository:
    def test_physical_records_flow_into_repository(self, tmp_path):
        repo = TraceRepository(PhysicalIORecord, spill_dir=tmp_path)
        monitor = StorageMonitor([DiskEnclosure("e0")], repository=repo)
        monitor.on_physical(physical(1.0))
        monitor.on_physical(physical(2.0))
        assert len(repo) == 2
        assert all(isinstance(r, PhysicalIORecord) for r in repo)

    def test_interval_tracking_unaffected(self, tmp_path):
        repo = TraceRepository(PhysicalIORecord, spill_dir=tmp_path)
        monitor = StorageMonitor([DiskEnclosure("e0")], repository=repo)
        monitor.on_physical(physical(0.0))
        monitor.on_physical(physical(100.0))
        assert monitor.intervals("e0") == [100.0]
