"""Tests for repro.monitoring.timeline — power-over-time sampling."""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.manager import EnergyEfficientPolicy
from repro.monitoring.timeline import PowerTimeline
from repro.simulation import build_context, default_volume
from repro.storage.enclosure import DiskEnclosure
from repro.trace.records import IOType, LogicalIORecord
from repro.trace.replay import TraceReplayer
from repro import units


def make_timeline(interval=60.0, count=2):
    encs = [DiskEnclosure(f"e{i}") for i in range(count)]
    return PowerTimeline(encs, interval), encs


class TestSampling:
    def test_no_sample_before_interval(self):
        timeline, _ = make_timeline()
        assert timeline.sample(30.0) is None
        assert timeline.points == []

    def test_idle_power_measured(self):
        timeline, encs = make_timeline()
        point = timeline.sample(60.0)
        idle = encs[0].power_model.idle_watts
        assert point is not None
        assert point.total_watts == pytest.approx(2 * idle)
        assert point.per_enclosure["e0"] == pytest.approx(idle)

    def test_active_interval_registers_higher_power(self):
        timeline, encs = make_timeline()
        timeline.sample(60.0)
        encs[0].submit(70.0)  # activity in the second interval
        second = timeline.sample(120.0)
        first = timeline.points[0]
        assert second.per_enclosure["e0"] > first.per_enclosure["e0"]

    def test_quiet_span_backfills_every_boundary(self):
        timeline, _ = make_timeline()
        point = timeline.sample(600.0)
        assert point is not None
        # One point per 60 s boundary: sparse callers still get a dense,
        # exact series.
        assert [p.timestamp for p in timeline.points] == [
            60.0 * k for k in range(1, 11)
        ]
        assert timeline.next_sample_time > 600.0

    def test_finish_records_tail(self):
        timeline, _ = make_timeline()
        timeline.sample(60.0)
        timeline.finish(90.0)
        assert timeline.points[-1].timestamp == 90.0

    def test_mean_watts_matches_enclosure_average(self):
        timeline, encs = make_timeline(interval=10.0, count=1)
        encs[0].submit(5.0)
        for t in range(10, 101, 10):
            timeline.sample(float(t))
        encs[0].settle(100.0)
        assert timeline.mean_watts() == pytest.approx(
            encs[0].energy_joules() / 100.0, rel=1e-6
        )

    def test_samples_for_enclosure(self):
        timeline, _ = make_timeline()
        timeline.sample(60.0)
        timeline.sample(120.0)
        samples = timeline.samples_for("e1")
        assert len(samples) == 2
        assert all(s.enclosure == "e1" for s in samples)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerTimeline([], 60.0)
        with pytest.raises(ValueError):
            PowerTimeline([DiskEnclosure("e0")], 0.0)


class TestReplayIntegration:
    def test_timeline_populated_during_replay(self):
        context = build_context(DEFAULT_CONFIG, 2)
        context.virtualization.add_item(
            "a", units.MB, default_volume("enc-00")
        )
        context.app_monitor.register_item("a", default_volume("enc-00"))
        timeline = PowerTimeline(context.enclosures, interval_seconds=100.0)
        records = [
            LogicalIORecord(float(t), "a", 0, 4096, IOType.READ)
            for t in range(0, 1000, 50)
        ]
        TraceReplayer(context, EnergyEfficientPolicy(), timeline).run(
            records, duration=1000.0
        )
        assert len(timeline.points) >= 9
        assert timeline.points[-1].timestamp >= 1000.0
        series = timeline.total_series()
        assert all(watts > 0 for _, watts in series)
