"""Tests for the per-tier energy/capacity/latency books."""

from __future__ import annotations

import json

import pytest

from repro import units
from repro.actions.plan import ActionPlan
from repro.actions.records import ArchiveItem, PromoteItem, ReplicateItem
from repro.config import DEFAULT_CONFIG
from repro.errors import ValidationError
from repro.monitoring.tiers import TierBooks, TierReport
from repro.simulation import build_tiered_context


def make_report(**overrides) -> TierReport:
    values = dict(
        tier="flash",
        kind="flash",
        devices=("flash-00", "flash-01"),
        capacity_bytes=units.GB,
        used_bytes=256 * units.MB,
        replica_bytes=64 * units.MB,
        bytes_in=512 * units.MB,
        bytes_out=192 * units.MB,
        energy_joules=1234.5,
        cost_units=0.1 + 0.2,  # deliberately non-representable
        service_seconds=42.25,
        serviced_ios=1000,
    )
    values.update(overrides)
    return TierReport(**values)


class TestTierReport:
    def test_round_trip_exact_through_json(self):
        report = make_report()
        data = json.loads(json.dumps(report.to_dict()))
        rebuilt = TierReport.from_dict(data)
        assert rebuilt == report
        assert rebuilt.cost_units == report.cost_units

    def test_dict_carries_derived_fields(self):
        data = make_report().to_dict()
        assert data["placed_bytes"] == (256 + 64) * units.MB
        assert data["net_bytes"] == (512 - 192) * units.MB
        assert data["mean_service_seconds"] == 42.25 / 1000

    def test_mean_service_of_idle_tier_is_zero(self):
        idle = make_report(service_seconds=0.0, serviced_ios=0)
        assert idle.mean_service_seconds == 0.0


class TestTierBooks:
    def test_rejects_controller_of_other_virtualization(self):
        one = build_tiered_context(DEFAULT_CONFIG, 2)
        other = build_tiered_context(DEFAULT_CONFIG, 2)
        with pytest.raises(ValidationError):
            TierBooks(one.virtualization, other.controller)

    def test_reports_project_the_storage_books(self):
        context = build_tiered_context(DEFAULT_CONFIG, 2)
        virt = context.virtualization
        size = 64 * units.MB
        virt.add_item("item-0", size, "vol/enc-00")
        virt.add_item("item-1", size, "vol/enc-01")
        context.require_executor().apply(
            0.0,
            ActionPlan(
                [
                    PromoteItem("item-0", "flash"),
                    ArchiveItem("item-1"),
                    ReplicateItem("item-0", "hdd"),
                ]
            ),
        )
        reports = TierBooks(virt, context.controller).report()
        # Fastest tier first.
        assert [r.tier for r in reports] == ["flash", "hdd", "archive"]
        flash, hdd, archive = reports
        assert flash.used_bytes == size
        assert flash.bytes_in == size
        assert archive.used_bytes == size
        assert hdd.used_bytes == 0
        # The flash primary's HDD replica books next to, not inside,
        # the HDD tier's used bytes — and costs HDD capacity.
        assert hdd.replica_bytes == size
        assert hdd.placed_bytes == size
        assert hdd.cost_units > 0
        # Both items entered and left the HDD tier.
        assert hdd.bytes_out == 2 * size
        # The ledger identity every row must satisfy.
        for report in reports:
            assert report.net_bytes == report.placed_bytes

    def test_capacity_cost_orders_by_technology(self):
        context = build_tiered_context(DEFAULT_CONFIG, 2)
        virt = context.virtualization
        size = 64 * units.MB
        virt.add_item("on-hdd", size, "vol/enc-00")
        virt.add_item("on-flash", size, "vol/flash-00")
        virt.add_item("on-archive", size, "vol/arc-00")
        reports = {
            r.tier: r
            for r in TierBooks(virt, context.controller).report()
        }
        # Same bytes, very different bills.
        assert (
            reports["flash"].cost_units
            > reports["hdd"].cost_units
            > reports["archive"].cost_units
        )
