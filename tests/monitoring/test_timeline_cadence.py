"""Regression: timeline cadence across record gaps with no checkpoint.

Pre-kernel, timeline sampling was *lazy*: `TraceReplayer` only probed
`sample_due()` when a record or a policy checkpoint arrived, so a long
record gap under a policy with no checkpoints (no-power-saving's
`next_checkpoint()` is always None) produced no samples until the next
record finally backfilled every missed boundary in one batch — exact
values, but only because nothing can mutate state mid-gap.  The
:mod:`repro.engine` kernel fixes this structurally: each boundary is a
first-class :class:`~repro.engine.events.TimelineSampleEvent` fired at
its own virtual time, so the cadence holds by construction, not by the
accident of the next record's arrival.

These tests pin the *observable* contract both engines satisfy — one
point per boundary, exact timestamps, exact idle-level interval watts —
so any future kernel change that lumps, skips, or zeroes gap samples
fails here even if the golden test's workloads never hit the case.
"""

from __future__ import annotations

import pytest

from repro import units
from repro.baselines.nopower import NoPowerSavingPolicy
from repro.config import DEFAULT_CONFIG
from repro.monitoring.timeline import PowerTimeline
from repro.simulation import build_context, default_volume
from repro.trace.records import IOType, LogicalIORecord
from repro.trace.replay import TraceReplayer

INTERVAL = 60.0


def _replay(records, duration):
    context = build_context(DEFAULT_CONFIG, 2)
    context.virtualization.add_item("a", units.MB, default_volume("enc-00"))
    context.app_monitor.register_item("a", default_volume("enc-00"))
    timeline = PowerTimeline(context.enclosures, interval_seconds=INTERVAL)
    TraceReplayer(context, NoPowerSavingPolicy(), timeline).run(
        records, duration=duration
    )
    return context, timeline


def _record(ts: float) -> LogicalIORecord:
    return LogicalIORecord(ts, "a", 0, 4096, IOType.READ)


def test_gap_between_records_samples_every_boundary() -> None:
    # 15 empty intervals between the two records, no checkpoint anywhere
    # (no-power-saving never asks for one).
    context, timeline = _replay([_record(5.0), _record(905.0)], 1000.0)
    boundaries = [p.timestamp for p in timeline.points]
    assert boundaries == [INTERVAL * k for k in range(1, 17)] + [1000.0]
    # Mid-gap intervals carry exact idle power: both enclosures stay on
    # (never power-managed), so every gap interval integrates to
    # idle_watts × interval per enclosure — not zero, not a lump.
    idle = context.enclosures[0].power_model.idle_watts
    for point in timeline.points[2:15]:
        assert point.total_watts == pytest.approx(2 * idle, rel=1e-9)


def test_gap_after_last_record_is_settled_by_finish() -> None:
    # All boundaries past the last record land via end-of-run settlement
    # (the kernel leaves them to ``timeline.finish`` so they observe the
    # tail flush — pre-kernel ordering, pinned bit-identical).
    _, timeline = _replay([_record(5.0)], 1000.0)
    boundaries = [p.timestamp for p in timeline.points]
    assert boundaries == [INTERVAL * k for k in range(1, 17)] + [1000.0]


def test_empty_trace_with_duration_keeps_cadence() -> None:
    _, timeline = _replay([], 250.0)
    assert [p.timestamp for p in timeline.points] == [60.0, 120.0, 180.0, 240.0, 250.0]
