"""Tests for repro.monitoring.storage."""

import pytest

from repro.monitoring.storage import StorageMonitor
from repro.storage.enclosure import DiskEnclosure
from repro.trace.records import IOType, PhysicalIORecord


def monitor(count=2):
    encs = [DiskEnclosure(f"e{i}") for i in range(count)]
    return StorageMonitor(encs), encs


def phys(t, enclosure="e0", count=1, kind=IOType.READ):
    return PhysicalIORecord(t, enclosure, 0, count, kind)


class TestPhysicalTrace:
    def test_counts_accumulate(self):
        mon, _ = monitor()
        mon.on_physical(phys(1.0))
        mon.on_physical(phys(2.0, count=3))
        assert mon.physical_io_count == 4

    def test_window_stats(self):
        mon, _ = monitor()
        mon.begin_window(0.0)
        mon.on_physical(phys(1.0, "e0"))
        mon.on_physical(phys(2.0, "e0", kind=IOType.WRITE))
        stats = mon.window_stats(10.0)
        assert stats["e0"].io_count == 2
        assert stats["e0"].read_count == 1
        assert stats["e0"].iops == pytest.approx(0.2)
        assert stats["e1"].io_count == 0

    def test_begin_window_resets_counts(self):
        mon, _ = monitor()
        mon.on_physical(phys(1.0))
        mon.begin_window(5.0)
        stats = mon.window_stats(10.0)
        assert stats["e0"].io_count == 0

    def test_zero_window_iops(self):
        mon, _ = monitor()
        mon.begin_window(5.0)
        assert mon.window_stats(5.0)["e0"].iops == 0.0


class TestIntervals:
    def test_gaps_recorded(self):
        mon, _ = monitor()
        mon.on_physical(phys(0.0))
        mon.on_physical(phys(10.0))
        mon.on_physical(phys(70.0))
        assert mon.intervals("e0") == [10.0, 60.0]

    def test_tiny_gaps_not_retained(self):
        mon, _ = monitor()
        mon.on_physical(phys(0.0))
        mon.on_physical(phys(0.01))
        assert mon.intervals("e0") == []

    def test_finish_closes_final_gap(self):
        mon, _ = monitor()
        mon.on_physical(phys(10.0))
        mon.finish(100.0)
        assert 90.0 in mon.intervals("e0")

    def test_finish_idempotent(self):
        mon, _ = monitor()
        mon.on_physical(phys(10.0))
        mon.finish(100.0)
        mon.finish(200.0)
        assert mon.intervals("e0").count(90.0) == 1

    def test_silent_enclosure_contributes_whole_run(self):
        mon, _ = monitor()
        mon.finish(500.0)
        assert mon.intervals("e1") == [500.0]

    def test_all_intervals_merges(self):
        mon, _ = monitor()
        mon.on_physical(phys(0.0, "e0"))
        mon.on_physical(phys(5.0, "e0"))
        mon.on_physical(phys(0.0, "e1"))
        mon.on_physical(phys(7.0, "e1"))
        assert sorted(mon.all_intervals()) == [5.0, 7.0]

    def test_unknown_enclosure_rejected(self):
        mon, _ = monitor()
        with pytest.raises(KeyError):
            mon.intervals("ghost")

    def test_last_io_time(self):
        mon, _ = monitor()
        assert mon.last_io_time("e0") is None
        mon.on_physical(phys(42.0))
        assert mon.last_io_time("e0") == 42.0


class TestPowerViews:
    def test_power_status(self):
        mon, encs = monitor()
        encs[0].enable_power_off(0.0)
        encs[0].settle(500.0)
        status = {r.enclosure: r.powered_on for r in mon.power_status(500.0)}
        assert status["e0"] is False
        assert status["e1"] is True

    def test_power_consumption_samples(self):
        mon, encs = monitor()
        samples = mon.power_consumption(100.0)
        assert len(samples) == 2
        assert all(s.watts > 0 for s in samples)

    def test_spin_up_counters(self):
        mon, encs = monitor()
        encs[0].enable_power_off(0.0)
        encs[0].settle(500.0)
        encs[0].submit(500.0)
        assert mon.spin_up_count("e0") == 1
        assert mon.spin_ups_since("e0", 400.0) == 1
        assert mon.spin_ups_since("e0", 600.0) == 0
