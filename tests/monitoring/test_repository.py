"""Tests for repro.monitoring.repository."""

import pytest

from repro.monitoring.repository import TraceRepository
from repro.trace.records import IOType, LogicalIORecord, PhysicalIORecord


def rec(t):
    return LogicalIORecord(t, "a", 0, 4096, IOType.READ)


class TestInMemory:
    def test_append_and_iterate(self, tmp_path):
        repo = TraceRepository(LogicalIORecord, spill_dir=tmp_path)
        repo.append(rec(1.0))
        repo.append(rec(2.0))
        assert list(repo) == [rec(1.0), rec(2.0)]
        assert len(repo) == 2

    def test_extend(self, tmp_path):
        repo = TraceRepository(LogicalIORecord, spill_dir=tmp_path)
        repo.extend([rec(1.0), rec(2.0), rec(3.0)])
        assert len(repo) == 3

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceRepository(LogicalIORecord, max_memory_records=0)


class TestSpill:
    def test_spills_when_memory_full(self, tmp_path):
        repo = TraceRepository(
            LogicalIORecord, max_memory_records=3, spill_dir=tmp_path
        )
        for i in range(10):
            repo.append(rec(float(i)))
        assert len(repo) == 10
        # Spilled records come back in order, then the memory tail.
        assert [r.timestamp for r in repo] == [float(i) for i in range(10)]

    def test_spill_file_created(self, tmp_path):
        repo = TraceRepository(
            LogicalIORecord, max_memory_records=2, spill_dir=tmp_path
        )
        for i in range(5):
            repo.append(rec(float(i)))
        spills = list(tmp_path.glob("spill-*.csv"))
        assert len(spills) == 1

    def test_physical_records_spill_too(self, tmp_path):
        repo = TraceRepository(
            PhysicalIORecord, max_memory_records=2, spill_dir=tmp_path
        )
        records = [
            PhysicalIORecord(float(i), "e0", i, 1, IOType.WRITE, "a")
            for i in range(6)
        ]
        repo.extend(records)
        assert list(repo) == records

    def test_clear_removes_everything(self, tmp_path):
        repo = TraceRepository(
            LogicalIORecord, max_memory_records=2, spill_dir=tmp_path
        )
        for i in range(5):
            repo.append(rec(float(i)))
        repo.clear()
        assert len(repo) == 0
        assert list(repo) == []

    def test_append_after_clear(self, tmp_path):
        repo = TraceRepository(
            LogicalIORecord, max_memory_records=2, spill_dir=tmp_path
        )
        for i in range(5):
            repo.append(rec(float(i)))
        repo.clear()
        repo.append(rec(99.0))
        assert [r.timestamp for r in repo] == [99.0]
