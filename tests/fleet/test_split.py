"""Splitting: exact partition, order stability, columnar bit-identity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.experiments.testbed import build_workload
from repro.fleet.routing import HashRouter
from repro.fleet.split import shard_columnar, shard_workload, split_workload
from repro.trace.columnar import ColumnarTrace
from repro.trace.records import LogicalIORecord
from repro.workloads.items import DataItemSpec, Workload


def _toy_workload(item_count: int, record_seed: int) -> Workload:
    """A small deterministic workload over ``item_count`` items."""
    items = [
        DataItemSpec(
            item_id=f"item-{i:03d}",
            size_bytes=4096 * (i + 1),
            enclosure_index=i % 3,
            volume=f"toyvol-{i % 2}" if i % 4 == 0 else None,
        )
        for i in range(item_count)
    ]
    records = [
        LogicalIORecord(
            timestamp=float(t),
            item_id=items[(t * 7 + record_seed) % item_count].item_id,
            offset=512 * t,
            size=4096,
            io_type="read" if t % 3 else "write",
            sequential=bool(t % 2),
        )
        for t in range(60)
    ]
    volumes = sorted({(v, 0) for v in ("toyvol-0", "toyvol-1")})
    return Workload(
        name="toy",
        duration=120.0,
        enclosure_count=3,
        items=items,
        records=records,
        volumes=volumes,
        description="toy split fixture",
    )


@given(
    item_count=st.integers(2, 12),
    record_seed=st.integers(0, 20),
    n=st.integers(1, 5),
    seed=st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_split_partitions_every_record_exactly_once(
    item_count, record_seed, n, seed
):
    workload = _toy_workload(item_count, record_seed)
    router = HashRouter(n, seed)
    shards = split_workload(workload, router)
    assert len(shards) == n
    # Items: exactly once, catalog order preserved within each shard.
    shard_items = [
        [item.item_id for item in shard.items] for shard in shards
    ]
    merged_items = sorted(sum(shard_items, []))
    assert merged_items == sorted(item.item_id for item in workload.items)
    catalog_order = {
        item.item_id: i for i, item in enumerate(workload.items)
    }
    for ids in shard_items:
        assert ids == sorted(ids, key=catalog_order.__getitem__)
    # Records: exactly once, trace order preserved within each shard.
    def keys(records):
        return [
            (r.timestamp, r.item_id, r.offset, r.size, r.io_type)
            for r in records
        ]

    all_shard_keys = [keys(shard.records) for shard in shards]
    assert sorted(sum(all_shard_keys, [])) == sorted(keys(workload.records))
    for shard_keys in all_shard_keys:
        assert shard_keys == sorted(shard_keys, key=lambda k: k[0])
    # Ownership: every shard holds only what the router assigns it.
    for index, shard in enumerate(shards):
        for item in shard.items:
            bare = item.item_id
            assert router.shard_for(bare) == index


def test_single_array_split_returns_source_object():
    workload = _toy_workload(6, 0)
    router = HashRouter(1, seed=99)
    assert shard_workload(workload, router, 0) is workload


def test_multi_array_split_namespaces_volumes():
    workload = _toy_workload(8, 1)
    router = HashRouter(3, seed=0)
    for index, shard in enumerate(split_workload(workload, router)):
        prefix = f"array-{index:02d}:"
        for name, _ in shard.volumes:
            assert name.startswith(prefix)
        for item in shard.items:
            if item.volume is not None:
                assert item.volume.startswith(prefix)
        assert f"array-{index:02d} of 3" in shard.description


@given(n=st.integers(2, 5), seed=st.integers(0, 100))
@settings(max_examples=15, deadline=None)
def test_shard_columnar_bit_identical_to_filtered_from_records(n, seed):
    workload = _toy_workload(10, 3)
    trace = ColumnarTrace.from_records(workload.records)
    router = HashRouter(n, seed)
    for index in range(n):
        sharded = shard_columnar(trace, router, index)
        filtered = ColumnarTrace.from_records(
            [
                r
                for r in workload.records
                if router.shard_for(r.item_id) == index
            ]
        )
        assert sharded.items == filtered.items
        assert sharded.timestamps == filtered.timestamps
        assert sharded.item_index == filtered.item_index
        assert sharded.offsets == filtered.offsets
        assert sharded.sizes == filtered.sizes
        assert sharded.flags == filtered.flags


def test_columnar_workload_shards_keep_columnar_records():
    workload = build_workload("fileserver", full=False)
    columnar = Workload(
        name=workload.name,
        duration=workload.duration,
        enclosure_count=workload.enclosure_count,
        items=workload.items,
        records=workload.columnar(),  # type: ignore[arg-type]
        volumes=workload.volumes,
    )
    router = HashRouter(3, seed=7)
    shards = split_workload(columnar, router)
    assert all(isinstance(s.records, ColumnarTrace) for s in shards)
    assert sum(len(s.records) for s in shards) == len(workload.records)
    # The seeded cache means columnar() is the shard itself, no re-pack.
    assert shards[0].columnar() is shards[0].records


def test_split_validates_array_index():
    workload = _toy_workload(4, 0)
    router = HashRouter(2)
    with pytest.raises(ValidationError):
        shard_workload(workload, router, 2)
    with pytest.raises(ValidationError):
        shard_columnar(
            ColumnarTrace.from_records(workload.records), router, -1
        )
