"""Routing: seed-stable hashing, pinning, and validation."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.fleet.routing import ARRAY_SEPARATOR, HashRouter, array_name, shard_for

item_ids = st.text(min_size=1, max_size=40)


def test_shard_for_matches_published_hash_contract():
    """The routing function is sha256-based and platform-independent.

    These values are pinned so any change to the hash contract — which
    would silently re-home every item in every existing fleet cache —
    fails loudly here instead.
    """

    def reference(item_id: str, n: int, seed: int) -> int:
        digest = hashlib.sha256(f"{seed}|{item_id}".encode()).digest()
        return int.from_bytes(digest[:8], "big") % n

    pinned = [
        ("fs-file-000", 3, 0),
        ("fs-file-000", 3, 7),
        ("tpcc-stock", 5, 0),
        ("tpcc-stock", 5, 11),
        ("", 2, 0),  # empty ids still route (shard_for is total)
        ("item with spaces", 7, 42),
    ]
    for item_id, n, seed in pinned:
        assert shard_for(item_id, n, seed) == reference(item_id, n, seed)
    # Concrete pinned values (computed from the contract above, never
    # from the implementation under test):
    assert shard_for("fs-file-000", 3, 0) == 2
    assert shard_for("fs-file-000", 3, 7) == 1
    assert shard_for("tpcc-stock", 5, 11) == 1


@given(item_id=item_ids, n=st.integers(1, 64), seed=st.integers(0, 2**31))
def test_shard_for_is_stable_and_in_range(item_id, n, seed):
    first = shard_for(item_id, n, seed)
    assert first == shard_for(item_id, n, seed)
    assert 0 <= first < n


@given(item_id=item_ids, seed=st.integers(0, 2**31))
def test_single_array_always_routes_to_zero(item_id, seed):
    assert shard_for(item_id, 1, seed) == 0


@given(
    item_id=item_ids,
    n=st.integers(2, 16),
    seeds=st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)),
)
def test_seed_changes_routing_somewhere(item_id, n, seeds):
    """Different seeds must be *allowed* to differ (same-seed stays equal)."""
    a, b = seeds
    if a == b:
        assert shard_for(item_id, n, a) == shard_for(item_id, n, b)


def test_router_pins_override_hash():
    router = HashRouter(4, seed=0, pins={"vip": 3})
    assert router.shard_for("vip") == 3
    plain = HashRouter(4, seed=0)
    others = ["a", "b", "c", "vip-like"]
    assert [router.shard_for(i) for i in others] == [
        plain.shard_for(i) for i in others
    ]


def test_router_validation():
    with pytest.raises(ValidationError):
        HashRouter(0)
    with pytest.raises(ValidationError):
        shard_for("x", 0)
    with pytest.raises(ValidationError):
        HashRouter(2, pins={"x": 2})  # pin outside the fleet
    with pytest.raises(ValidationError):
        HashRouter(2, pins=[("x", 0), ("x", 1)])  # conflicting pins
    with pytest.raises(ValidationError):
        array_name(-1)


def test_array_names_and_separator():
    assert array_name(0) == "array-00"
    assert array_name(41) == "array-41"
    assert ARRAY_SEPARATOR == ":"
    router = HashRouter(3)
    assert router.array_id(1) == "array-01"
    assert HashRouter(1).array_id(0) is None  # single array: legacy names


@given(
    ids=st.lists(item_ids, min_size=1, max_size=50, unique=True),
    n=st.integers(1, 8),
)
def test_histogram_counts_every_item_once(ids, n):
    router = HashRouter(n, seed=3)
    histogram = router.histogram(ids)
    assert len(histogram) == n
    assert sum(histogram) == len(ids)
