"""The fleet's hard gates: 1-array bit-identity, N-array conservation.

The 1-array gate holds the fleet path to the very same golden file as
the replay engine (``tests/trace/golden/replay_fileserver_smoke.json``):
sharding with a 1-wide router and building the testbed through the
fleet's ``array_id`` plumbing must change **nothing** — same
:class:`~repro.trace.replay.ReplayResult`, same action log, same
:class:`~repro.monitoring.timeline.PowerTimeline` points, float for
float.  The N-array gate is global conservation: fleet energy exactly
equal to the sum of per-array energies, every I/O served by the array
that owns its item.
"""

from __future__ import annotations

import json
from dataclasses import asdict, replace

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import AuditError
from repro.experiments.parallel import (
    ExperimentEngine,
    PolicySpec,
    WorkloadSpec,
)
from repro.experiments.runner import STANDARD_POLICIES, run_cell
from repro.experiments.serialize import result_to_dict
from repro.experiments.testbed import build_workload
from repro.fleet import FleetRunner, HashRouter, audit_fleet, merge_results
from repro.fleet.split import shard_workload
from repro.monitoring.timeline import PowerTimeline
from repro.simulation import build_context
from repro.trace.replay import TraceReplayer

from tests.trace.test_replay_golden import GOLDEN_PATH, TIMELINE_INTERVAL


def _engine() -> ExperimentEngine:
    return ExperimentEngine(jobs=1, cache_dir=None)


@pytest.mark.parametrize("policy_name", sorted(STANDARD_POLICIES))
def test_one_array_fleet_matches_golden_replay(policy_name):
    """Result + timeline of the fleet path, against the golden file."""
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    workload = build_workload("fileserver", full=False)
    router = HashRouter(1, seed=7)  # any seed: 1-array routing is total
    shard = shard_workload(workload, router, 0)
    assert shard is workload
    context = build_context(
        DEFAULT_CONFIG,
        shard.enclosure_count,
        array_id=router.array_id(0),  # None: legacy names
    )
    shard.install(context)
    timeline = PowerTimeline(
        context.enclosures, interval_seconds=TIMELINE_INTERVAL
    )
    policy = STANDARD_POLICIES[policy_name]()
    result = TraceReplayer(context, policy, timeline=timeline).run(
        shard.records, duration=shard.duration
    )
    captured = json.loads(
        json.dumps(
            {
                "replay": asdict(result),
                "timeline": [
                    {
                        "timestamp": point.timestamp,
                        "total_watts": point.total_watts,
                        "per_enclosure": point.per_enclosure,
                    }
                    for point in timeline.points
                ],
            }
        )
    )
    cell = golden[policy_name]
    assert captured["replay"] == cell["replay"], (
        "1-array fleet replay diverged from the golden result — the "
        "fleet plumbing is not bit-transparent"
    )
    assert captured["timeline"] == cell["timeline"]


def test_one_array_fleet_runner_matches_direct_run():
    """FleetRunner(1) result — including the action log — is the
    standalone run, wrapped."""
    direct = run_cell(
        build_workload("fileserver", full=False),
        STANDARD_POLICIES["proposed"](),
    )
    fleet = FleetRunner(1).run(
        WorkloadSpec(name="fileserver", full=False),
        PolicySpec(name="proposed"),
        engine=_engine(),
    )
    assert fleet.n_arrays == 1
    assert len(fleet.arrays) == 1
    assert result_to_dict(fleet.arrays[0]) == result_to_dict(direct)
    assert fleet.io_count == direct.replay.io_count
    assert fleet.enclosure_joules == direct.replay.power.enclosure_joules
    assert fleet.controller_joules == direct.replay.power.controller_joules


def test_three_array_fleet_conserves_every_book():
    fleet = FleetRunner(3, router_seed=7).run(
        WorkloadSpec(name="fileserver", full=False),
        PolicySpec(name="proposed"),
        engine=_engine(),
    )
    # Energy: exact sums, not approximate ones.
    assert fleet.enclosure_joules == sum(
        r.replay.power.enclosure_joules for r in fleet.arrays
    )
    assert fleet.controller_joules == sum(
        r.replay.power.controller_joules for r in fleet.arrays
    )
    assert fleet.io_count == sum(r.replay.io_count for r in fleet.arrays)
    assert fleet.io_count == build_workload("fileserver", False).io_count
    assert fleet.response.response_sum == sum(
        r.replay.response.response_sum for r in fleet.arrays
    )
    # The run already audited; re-auditing must also pass.
    checks = audit_fleet(fleet, HashRouter(3, 7))
    assert checks > fleet.io_count // 1000  # at least the book checks ran
    # Every array's enclosures are namespaced with its own id.
    assert dict(fleet.actions_by_kind)  # policies acted on every array


def test_audit_rejects_broken_energy_book():
    results = FleetRunner(2, router_seed=3).run(
        WorkloadSpec(name="fileserver", full=False),
        PolicySpec(name="no-power-saving"),
        engine=_engine(),
    ).arrays
    fleet = merge_results(list(results), n_arrays=2, router_seed=3)
    broken = replace(fleet, enclosure_joules=fleet.enclosure_joules + 1.0)
    with pytest.raises(AuditError, match="enclosure energy"):
        audit_fleet(broken, HashRouter(2, 3))


def test_audit_rejects_foreign_item_ownership():
    fleet = FleetRunner(2, router_seed=3).run(
        WorkloadSpec(name="fileserver", full=False),
        PolicySpec(name="proposed"),
        engine=_engine(),
    )
    # A router with a different seed disowns most items: the ownership
    # sweep must notice the mismatch.
    with pytest.raises(AuditError):
        audit_fleet(fleet, HashRouter(2, 12345))


def test_merge_results_validates_shape():
    fleet = FleetRunner(2, router_seed=3).run(
        WorkloadSpec(name="fileserver", full=False),
        PolicySpec(name="ddr"),
        engine=_engine(),
    )
    from repro.errors import ValidationError

    with pytest.raises(ValidationError):
        merge_results(list(fleet.arrays), n_arrays=3, router_seed=3)
