"""Fleet chaos plans and per-array snapshot/resume."""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path

import pytest

from repro.errors import ValidationError
from repro.experiments.parallel import (
    ExperimentEngine,
    PolicySpec,
    WorkloadSpec,
)
from repro.experiments.testbed import build_workload
from repro.faults.plan import EnclosureOutage
from repro.fleet import FleetRunner, HashRouter, array_outage_plans
from repro.persistence import RunSpec, SnapshotSession
from repro.persistence.format import load_snapshot


def test_array_outage_plans_are_namespaced_and_deterministic():
    workload = build_workload("fileserver", full=False)
    router = HashRouter(3, seed=7)
    plans = array_outage_plans(workload, router, victims=[0, 2], seed=11)
    assert sorted(plans) == [0, 2]
    for victim, plan in plans.items():
        prefix = f"array-{victim:02d}:"
        outages = [
            e for e in plan.events if isinstance(e, EnclosureOutage)
        ]
        assert outages, "an outage plan must contain outage events"
        for event in outages:
            assert event.enclosure.startswith(prefix)
    again = array_outage_plans(workload, router, victims=[0, 2], seed=11)
    assert plans == again  # derived from the seed alone
    assert plans != array_outage_plans(
        workload, router, victims=[0, 2], seed=12
    )


def test_array_outage_plans_validate_victims():
    workload = build_workload("fileserver", full=False)
    router = HashRouter(2)
    with pytest.raises(ValidationError):
        array_outage_plans(workload, router, victims=[2])
    with pytest.raises(ValidationError):
        array_outage_plans(workload, router, victims=[1, 1])


def test_fleet_run_with_array_outage_passes_global_audit():
    workload = build_workload("fileserver", full=False)
    runner = FleetRunner(3, router_seed=7)
    plans = array_outage_plans(workload, runner.router(), [1], seed=11)
    faultless = runner.run(
        WorkloadSpec(name="fileserver", full=False),
        PolicySpec(name="proposed"),
        engine=ExperimentEngine(jobs=1, cache_dir=None),
    )
    faulted = runner.run(
        WorkloadSpec(name="fileserver", full=False),
        PolicySpec(name="proposed"),
        audit=True,
        faults=plans,
        engine=ExperimentEngine(jobs=1, cache_dir=None),
    )
    # The global audit ran inside run(); the per-array auditors too.
    assert faulted.audit_checks > 0
    # Outage hit only the victim: other arrays replay bit-identically.
    for index in (0, 2):
        assert asdict(faulted.arrays[index].replay) == asdict(
            faultless.arrays[index].replay
        )
    assert asdict(faulted.arrays[1].replay) != asdict(
        faultless.arrays[1].replay
    )


def test_fleet_run_rejects_out_of_range_fault_plan():
    runner = FleetRunner(2)
    workload = build_workload("fileserver", full=False)
    plans = array_outage_plans(workload, HashRouter(3), [2], seed=11)
    with pytest.raises(ValidationError):
        runner.cells(
            WorkloadSpec(name="fileserver", full=False),
            PolicySpec(name="proposed"),
            faults=plans,
        )


def test_per_array_snapshot_resume_is_bit_identical(tmp_path: Path):
    spec = RunSpec(
        workload="fileserver",
        policy="proposed",
        n_arrays=3,
        array_index=1,
        router_seed=7,
        timeline_interval=300.0,
    )
    uninterrupted = SnapshotSession(spec).run()
    session = SnapshotSession(spec)
    session.run(snapshot_every=2500, snapshot_dir=tmp_path)
    snapshots = sorted(tmp_path.glob("*.ecsn"))
    assert snapshots, "the sharded run must be long enough to snapshot"
    resumed = SnapshotSession(spec).resume(load_snapshot(snapshots[0]))
    assert asdict(resumed) == asdict(uninterrupted)
    assert resumed.actions == uninterrupted.actions
    # The sharded session replays only this array's slice, namespaced.
    assert session.workload.io_count < build_workload(
        "fileserver", False
    ).io_count
    for name in session.context.enclosure_names():
        assert name.startswith("array-01:")


def test_run_spec_validates_fleet_coordinates():
    with pytest.raises(ValidationError):
        RunSpec(workload="fileserver", policy="proposed", n_arrays=0)
    with pytest.raises(ValidationError):
        RunSpec(
            workload="fileserver",
            policy="proposed",
            n_arrays=2,
            array_index=2,
        )


def test_run_spec_round_trips_fleet_coordinates():
    spec = RunSpec(
        workload="fileserver",
        policy="ddr",
        n_arrays=4,
        array_index=3,
        router_seed=9,
    )
    assert RunSpec.from_dict(spec.to_dict()) == spec
    # Pre-fleet spec dicts (no fleet keys) load with the defaults.
    legacy = {"workload": "fileserver", "policy": "ddr"}
    loaded = RunSpec.from_dict(legacy)
    assert (loaded.n_arrays, loaded.array_index, loaded.router_seed) == (
        1,
        0,
        0,
    )
