"""Tests for fleet-wide tier-book aggregation and its conservation audit."""

from __future__ import annotations

import dataclasses

import pytest

from repro import units
from repro.actions.plan import ActionPlan
from repro.actions.records import ArchiveItem, PromoteItem
from repro.config import DEFAULT_CONFIG
from repro.errors import AuditError, ValidationError
from repro.fleet import audit_tier_books, merge_tier_reports
from repro.monitoring.tiers import TierBooks, TierReport
from repro.simulation import build_tiered_context


def array_reports(array_id, moves):
    """One tiered array's closing tier reports after ``moves``."""
    context = build_tiered_context(DEFAULT_CONFIG, 2, array_id=array_id)
    virt = context.virtualization
    virt.add_item("item-0", 64 * units.MB, f"vol/{array_id}:enc-00")
    virt.add_item("item-1", 32 * units.MB, f"vol/{array_id}:enc-01")
    context.require_executor().apply(0.0, ActionPlan(moves))
    return TierBooks(virt, context.controller).report()


class TestMergeTierReports:
    def test_merges_real_arrays_by_tier_name(self):
        first = array_reports("array-00", [PromoteItem("item-0", "flash")])
        second = array_reports("array-01", [ArchiveItem("item-1")])
        merged = merge_tier_reports([first, second])
        assert [row.tier for row in merged] == ["flash", "hdd", "archive"]
        by_name = {row.tier: row for row in merged}
        # Device lists concatenate in array order, namespaced names intact.
        assert by_name["flash"].devices == (
            "array-00:flash-00",
            "array-01:flash-00",
        )
        # Integer books are exact sums across arrays.
        assert by_name["flash"].used_bytes == 64 * units.MB
        assert by_name["archive"].used_bytes == 32 * units.MB
        assert by_name["hdd"].used_bytes == (64 + 32) * units.MB
        # The merged books pass their own conservation audit.
        checks = audit_tier_books(merged, [first, second])
        assert checks > 0

    def test_kind_mismatch_is_a_wiring_error(self):
        first = array_reports("array-00", [])
        impostor = [
            dataclasses.replace(first[0], kind="hdd"),
            *first[1:],
        ]
        with pytest.raises(ValidationError, match="appears as kind"):
            merge_tier_reports([first, impostor])


class TestAuditTierBooks:
    def test_broken_integer_book_raises(self):
        first = array_reports("array-00", [PromoteItem("item-0", "flash")])
        merged = merge_tier_reports([first])
        cooked = [
            dataclasses.replace(
                merged[0], bytes_in=merged[0].bytes_in + 1
            ),
            *merged[1:],
        ]
        with pytest.raises(AuditError, match="bytes_in book broken"):
            audit_tier_books(cooked, [first])

    def test_ledger_identity_checked_on_merged_rows(self):
        # A row whose per-array sums agree but whose ledger does not
        # cover its placed bytes is drift, not a merge bug — the audit
        # still refuses it.
        row = TierReport(
            tier="flash",
            kind="flash",
            devices=("flash-00",),
            capacity_bytes=units.GB,
            used_bytes=2 * units.MB,
            replica_bytes=0,
            bytes_in=units.MB,
            bytes_out=0,
            energy_joules=0.0,
            cost_units=1.0,
            service_seconds=0.0,
            serviced_ios=0,
        )
        with pytest.raises(AuditError):
            audit_tier_books([row], [[row]])
