"""CLI surface of the fleet: ``fleet run|report``, ``trace info --shards``,
and the engine cache's shard awareness."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.experiments.parallel import (
    ExperimentCell,
    ExperimentEngine,
    PolicySpec,
    ShardSpec,
    WorkloadSpec,
)
from repro.errors import ValidationError


class TestParser:
    def test_fleet_run_parses(self):
        args = build_parser().parse_args(
            [
                "fleet", "run", "fileserver", "proposed",
                "--arrays", "4", "--router-seed", "9", "--audit",
                "--outage-arrays", "1", "3", "--out", "/tmp/f.json",
                "--jobs", "2",
            ]
        )
        assert args.workload == "fileserver"
        assert args.arrays == 4
        assert args.router_seed == 9
        assert args.audit
        assert args.outage_arrays == [1, 3]
        assert args.jobs == 2

    def test_fleet_report_parses(self):
        args = build_parser().parse_args(["fleet", "report", "x.json"])
        assert args.path == "x.json"

    def test_trace_info_shards_parses(self):
        args = build_parser().parse_args(
            ["trace", "info", "t.ecot", "--shards", "5", "--router-seed", "3"]
        )
        assert args.shards == 5
        assert args.router_seed == 3


def test_fleet_run_and_report_round_trip(capsys, tmp_path: Path):
    out = tmp_path / "fleet.json"
    code = main(
        [
            "fleet", "run", "fileserver", "proposed",
            "--arrays", "3", "--router-seed", "7", "--out", str(out),
        ]
    )
    assert code == 0
    run_output = capsys.readouterr().out
    assert "3 arrays" in run_output
    assert "array-02" in run_output
    data = json.loads(out.read_text(encoding="utf-8"))
    assert data["n_arrays"] == 3
    assert data["enclosure_joules"] == sum(
        row["enclosure_joules"] for row in data["arrays"]
    )
    assert main(["fleet", "report", str(out)]) == 0
    assert "array-02" in capsys.readouterr().out


def test_trace_info_shard_histogram(capsys, tmp_path: Path):
    csv = tmp_path / "fs.csv"
    ecot = tmp_path / "fs.ecot"
    assert main(["export-trace", "fileserver", str(csv)]) == 0
    assert main(["trace", "pack", str(csv), str(ecot)]) == 0
    capsys.readouterr()
    assert main(["trace", "info", str(ecot), "--shards", "4"]) == 0
    output = capsys.readouterr().out
    assert "shards:    4" in output
    for shard in range(4):
        assert f"array-{shard:02d}:" in output
    # Record counts in the histogram sum to the trace's record count.
    counts = [
        int(line.split()[1])
        for line in output.splitlines()
        if line.strip().startswith("array-")
    ]
    total = int(
        next(l for l in output.splitlines() if l.startswith("records:"))
        .split()[1]
    )
    assert sum(counts) == total


class TestShardCacheKey:
    def _cell(self, shard: ShardSpec | None) -> ExperimentCell:
        return ExperimentCell(
            workload=WorkloadSpec(name="fileserver", full=False),
            policy=PolicySpec(name="proposed"),
            shard=shard,
        )

    def test_shard_changes_cache_key(self):
        base = self._cell(None).cache_key()
        one = self._cell(ShardSpec(n_arrays=3, array_index=0)).cache_key()
        two = self._cell(ShardSpec(n_arrays=3, array_index=1)).cache_key()
        seeded = self._cell(
            ShardSpec(n_arrays=3, array_index=0, router_seed=5)
        ).cache_key()
        pinned = self._cell(
            ShardSpec(n_arrays=3, array_index=0, pins=(("vip", 2),))
        ).cache_key()
        assert len({base, one, two, seeded, pinned}) == 5

    def test_shard_spec_validates(self):
        with pytest.raises(ValidationError):
            ShardSpec(n_arrays=0, array_index=0)
        with pytest.raises(ValidationError):
            ShardSpec(n_arrays=2, array_index=2)
        with pytest.raises(ValidationError):
            ShardSpec(n_arrays=2, array_index=0, pins=(("x", 9),))

    def test_cached_fleet_cells_do_not_collide(self, tmp_path: Path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        cells = [
            self._cell(ShardSpec(n_arrays=2, array_index=index))
            for index in range(2)
        ]
        first = [o.require() for o in engine.run_cells(cells)]
        second = [o.require() for o in engine.run_cells(cells)]
        for a, b in zip(first, second):
            assert a.to_dict() == b.to_dict()
        assert (
            first[0].replay.io_count != first[1].replay.io_count
            or first[0].replay.power.enclosure_joules
            != first[1].replay.power.enclosure_joules
        )
