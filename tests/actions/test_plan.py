"""Tests for :class:`repro.actions.plan.ActionPlan`."""

from __future__ import annotations

from repro.actions.plan import ActionPlan
from repro.actions.records import FlushWriteDelay, PreloadItem, UnpinItem


class TestActionPlan:
    def test_empty_plan_is_falsy(self):
        plan = ActionPlan()
        assert not plan
        assert len(plan) == 0
        assert list(plan) == []

    def test_add_and_extend_preserve_order(self):
        plan = ActionPlan([PreloadItem("a")])
        plan.add(UnpinItem("b"))
        plan.extend([FlushWriteDelay(), PreloadItem("c")])
        kinds = [action.kind for action in plan]
        assert kinds == [
            "preload-item",
            "unpin-item",
            "flush-write-delay",
            "preload-item",
        ]
        assert len(plan) == 4
        assert plan

    def test_extend_accepts_another_plan(self):
        first = ActionPlan([PreloadItem("a")])
        second = ActionPlan([UnpinItem("b")])
        first.extend(second)
        assert len(first) == 2
