"""Tests for :class:`repro.actions.executor.ActionExecutor`."""

from __future__ import annotations

import pytest

from repro import units
from repro.actions.executor import ActionExecutor
from repro.actions.plan import ActionPlan
from repro.actions.records import (
    ActionOutcome,
    ChargeBlockMigration,
    EnableWriteDelay,
    FlushItem,
    FlushWriteDelay,
    MigrateItem,
    PreloadItem,
    SetPowerOffEnabled,
    UnpinItem,
)
from repro.config import EcoStorConfig
from repro.simulation import SimulationContext, build_context, default_volume
from repro.trace.records import IOType, LogicalIORecord


def executor_of(context: SimulationContext) -> ActionExecutor:
    return context.require_executor()


def books_snapshot(context: SimulationContext) -> dict:
    """Everything a dry run must leave bit-identical."""
    virt = context.virtualization
    wd = context.cache.write_delay
    executor = context.require_executor()
    return {
        "used": {n: virt.used_bytes(n) for n in virt.enclosure_names},
        "pinned": sorted(context.cache.preload.item_ids()),
        "selected": sorted(wd.selected_items()),
        "dirty_pages": wd.dirty_pages,
        "absorbed_pages": wd.absorbed_pages,
        "flushed_pages": wd.flushed_pages,
        "migrated_bytes": context.controller.migrated_bytes,
        "migration_count": context.controller.migration_count,
        "enclosure_energy": [
            (e.name, e.state, e.clock, e.energy_joules())
            for e in context.enclosures
        ],
        "log_len": len(executor.log),
        "counters": (
            executor.actions_applied,
            executor.actions_aborted,
            executor.actions_vetoed,
            executor.actions_rejected,
        ),
        "cooldowns": dict(executor._cooldown_until),
    }


class TestContextWiring:
    def test_context_builds_shared_executor(self, small_context):
        executor = small_context.require_executor()
        assert executor is small_context.executor
        assert small_context.migration_engine.executor is executor
        assert executor.controller is small_context.controller


class TestMigrate:
    def test_applied_migration_moves_item_and_logs(self, small_context):
        executor = executor_of(small_context)
        report = executor.apply(
            0.0, ActionPlan([MigrateItem("item-0", "enc-01")])
        )
        record = report.records[0]
        assert record.outcome is ActionOutcome.APPLIED
        assert record.cost_bytes == 64 * units.MB
        assert record.completion > record.time
        virt = small_context.virtualization
        assert virt.enclosure_of("item-0").name == "enc-01"
        assert executor.log == [record]
        assert report.moves_executed == 1
        assert report.bytes_moved == 64 * units.MB

    def test_consecutive_migrations_chain_in_time(self, small_context):
        executor = executor_of(small_context)
        report = executor.apply(
            0.0,
            ActionPlan(
                [
                    MigrateItem("item-0", "enc-01"),
                    MigrateItem("item-2", "enc-01"),
                ]
            ),
        )
        first, second = report.records
        assert second.time == first.completion
        assert report.migration_clock == second.completion

    def test_unknown_item_and_already_placed_rejected(self, small_context):
        executor = executor_of(small_context)
        report = executor.apply(
            5.0,
            ActionPlan(
                [
                    MigrateItem("no-such-item", "enc-01"),
                    MigrateItem("item-0", "enc-00"),
                ]
            ),
        )
        assert [r.outcome for r in report.records] == [
            ActionOutcome.REJECTED,
            ActionOutcome.REJECTED,
        ]
        assert [r.reason for r in report.records] == [
            "unknown-item",
            "already-placed",
        ]
        assert executor.actions_rejected == 2
        assert small_context.controller.migrated_bytes == 0

    def test_capacity_rejection(self, config):
        context = build_context(config, 2)
        virt = context.virtualization
        names = virt.enclosure_names
        cap = config.enclosure_size_bytes
        virt.add_item("big-0", cap - units.MB, default_volume(names[0]))
        virt.add_item("big-1", cap - units.MB, default_volume(names[1]))
        report = context.require_executor().apply(
            0.0, ActionPlan([MigrateItem("big-0", names[1])])
        )
        assert report.records[0].outcome is ActionOutcome.REJECTED
        assert report.records[0].reason == "capacity"


class TestPreloadUnpin:
    def test_preload_then_stale_unpin(self, small_context):
        executor = executor_of(small_context)
        report = executor.apply(
            0.0,
            ActionPlan([PreloadItem("item-0"), UnpinItem("item-0")]),
        )
        pin, unpin = report.records
        assert pin.outcome is ActionOutcome.APPLIED
        assert pin.cost_bytes == 64 * units.MB
        assert unpin.outcome is ActionOutcome.APPLIED
        assert unpin.reason == ""
        assert not small_context.cache.preload.is_pinned("item-0")

    def test_preload_already_pinned_is_noop(self, small_context):
        executor = executor_of(small_context)
        executor.apply(0.0, ActionPlan([PreloadItem("item-0")]))
        report = executor.apply(1.0, ActionPlan([PreloadItem("item-0")]))
        record = report.records[0]
        assert record.outcome is ActionOutcome.APPLIED
        assert record.reason == "already-pinned"
        assert record.cost_bytes == 0

    def test_unpin_never_pinned_item_is_recorded_noop(self, small_context):
        """Edge case: unpinning an item that was never preloaded."""
        executor = executor_of(small_context)
        before = books_snapshot(small_context)
        report = executor.apply(0.0, ActionPlan([UnpinItem("item-1")]))
        record = report.records[0]
        assert record.outcome is ActionOutcome.APPLIED
        assert record.reason == "not-pinned"
        after = books_snapshot(small_context)
        before["log_len"], after["log_len"] = 0, 0
        before["counters"], after["counters"] = (), ()
        assert before == after

    def test_preload_unknown_item_rejected(self, small_context):
        report = executor_of(small_context).apply(
            0.0, ActionPlan([PreloadItem("ghost")])
        )
        assert report.records[0].outcome is ActionOutcome.REJECTED
        assert report.records[0].reason == "unknown-item"


class TestWriteDelayFlush:
    def _dirty_item(self, context: SimulationContext, item: str) -> None:
        context.require_executor().apply(
            0.0, ActionPlan([EnableWriteDelay((item,))])
        )
        context.controller.submit(
            LogicalIORecord(1.0, item, 0, 8192, IOType.WRITE)
        )

    def test_flush_item_with_dirty_data(self, small_context):
        self._dirty_item(small_context, "item-0")
        wd = small_context.cache.write_delay
        dirty = wd.dirty_bytes_of("item-0")
        assert dirty > 0
        report = executor_of(small_context).apply(
            2.0, ActionPlan([FlushItem("item-0")])
        )
        record = report.records[0]
        assert record.outcome is ActionOutcome.APPLIED
        assert record.reason == ""
        assert record.cost_bytes == dirty
        assert wd.dirty_bytes_of("item-0") == 0
        assert wd.is_selected("item-0")  # flush-item keeps the selection

    def test_flush_item_with_zero_dirty_bytes(self, small_context):
        """Edge case: flushing an item with nothing buffered."""
        report = executor_of(small_context).apply(
            0.0, ActionPlan([FlushItem("item-0")])
        )
        record = report.records[0]
        assert record.outcome is ActionOutcome.APPLIED
        assert record.reason == "no-dirty-data"
        assert record.cost_bytes == 0
        assert record.cost_seconds == 0.0
        assert record.completion == record.time

    def test_enable_write_delay_flushes_deselected(self, small_context):
        self._dirty_item(small_context, "item-0")
        dirty = small_context.cache.write_delay.dirty_bytes_of("item-0")
        report = executor_of(small_context).apply(
            2.0, ActionPlan([EnableWriteDelay(("item-1",))])
        )
        record = report.records[0]
        assert record.outcome is ActionOutcome.APPLIED
        assert record.cost_bytes == dirty
        assert small_context.cache.write_delay.selected_items() == {"item-1"}

    def test_flush_write_delay_drains_everything(self, small_context):
        self._dirty_item(small_context, "item-0")
        report = executor_of(small_context).apply(
            3.0, ActionPlan([FlushWriteDelay()])
        )
        record = report.records[0]
        assert record.outcome is ActionOutcome.APPLIED
        assert record.cost_bytes > 0
        assert small_context.cache.write_delay.dirty_pages == 0


class TestPowerOffGate:
    def test_disable_always_applies(self, small_context):
        enclosure = small_context.enclosures[0]
        report = executor_of(small_context).apply(
            0.0, ActionPlan([SetPowerOffEnabled(enclosure.name, False)])
        )
        assert report.records[0].outcome is ActionOutcome.APPLIED
        assert not enclosure.power_off_enabled

    def test_enable_passes_without_failures(self, small_context):
        enclosure = small_context.enclosures[0]
        report = executor_of(small_context).apply(
            0.0, ActionPlan([SetPowerOffEnabled(enclosure.name, True)])
        )
        assert report.records[0].outcome is ActionOutcome.APPLIED
        assert enclosure.power_off_enabled

    def test_degraded_mode_vetoes_and_arms_cooldown(
        self, small_context, config: EcoStorConfig
    ):
        executor = executor_of(small_context)
        enclosure = small_context.enclosures[0]
        now = 100.0
        for _ in range(config.spin_up_failure_threshold):
            enclosure.spin_up_failure_times.append(now - 1.0)
        report = executor.apply(
            now, ActionPlan([SetPowerOffEnabled(enclosure.name, True)])
        )
        record = report.records[0]
        assert record.outcome is ActionOutcome.VETOED_BY_DEGRADED_MODE
        assert record.reason == "degraded-mode"
        assert not enclosure.power_off_enabled
        assert executor.degraded_cooldowns == 1
        # Inside the cool-down the veto repeats without re-arming.
        again = executor.apply(
            now + 1.0, ActionPlan([SetPowerOffEnabled(enclosure.name, True)])
        )
        assert again.records[0].reason == "cooldown"
        assert executor.degraded_cooldowns == 1
        # After the cool-down (failures aged out) enablement passes.
        late = now + config.power_off_cooldown + config.spin_up_failure_window
        final = executor.apply(
            late, ActionPlan([SetPowerOffEnabled(enclosure.name, True)])
        )
        assert final.records[0].outcome is ActionOutcome.APPLIED


class TestChargeBlockMigration:
    def test_charge_counts_as_migration(self, small_context):
        executor = executor_of(small_context)
        report = executor.apply(
            0.0,
            ActionPlan(
                [ChargeBlockMigration("item-0", 8192, "enc-00", "enc-01")]
            ),
        )
        record = report.records[0]
        assert record.outcome is ActionOutcome.APPLIED
        assert record.cost_bytes == 8192
        assert small_context.controller.migrated_bytes == 8192
        assert executor.migrations_applied == 1
        assert executor.migrated_bytes_applied == 8192

    def test_non_positive_size_rejected(self, small_context):
        report = executor_of(small_context).apply(
            0.0,
            ActionPlan([ChargeBlockMigration("item-0", 0, "enc-00", "enc-01")]),
        )
        assert report.records[0].outcome is ActionOutcome.REJECTED
        assert report.records[0].reason == "non-positive-size"


class TestDryRun:
    def _full_plan(self) -> ActionPlan:
        return ActionPlan(
            [
                FlushItem("item-0"),
                MigrateItem("item-0", "enc-01"),
                PreloadItem("item-1"),
                UnpinItem("item-2"),
                EnableWriteDelay(("item-0", "item-1")),
                FlushWriteDelay(),
                SetPowerOffEnabled("enc-02", True),
                ChargeBlockMigration("item-0", 8192, "enc-00", "enc-01"),
            ]
        )

    def test_dry_run_mutates_nothing(self, small_context):
        executor = executor_of(small_context)
        before = books_snapshot(small_context)
        report = executor.apply(0.0, self._full_plan(), dry_run=True)
        assert report.dry_run
        assert books_snapshot(small_context) == before

    def test_dry_run_predicts_live_outcomes(self, small_context):
        """Without faults, predicted outcomes match a real apply."""
        executor = executor_of(small_context)
        plan = self._full_plan()
        dry = executor.apply(0.0, plan, dry_run=True)
        live = executor.apply(0.0, plan)
        assert [r.outcome for r in dry.records] == [
            r.outcome for r in live.records
        ]
        assert [r.cost_bytes for r in dry.records] == [
            r.cost_bytes for r in live.records
        ]
        assert dry.migration_clock == live.migration_clock

    def test_dry_run_capacity_prediction(self, config):
        context = build_context(config, 2)
        virt = context.virtualization
        names = virt.enclosure_names
        cap = config.enclosure_size_bytes
        virt.add_item("big-0", cap - units.MB, default_volume(names[0]))
        virt.add_item("big-1", cap - units.MB, default_volume(names[1]))
        report = context.require_executor().apply(
            0.0, ActionPlan([MigrateItem("big-0", names[1])]), dry_run=True
        )
        assert report.records[0].outcome is ActionOutcome.REJECTED
        assert report.records[0].reason == "capacity"
        assert virt.enclosure_of("big-0").name == names[0]


class TestLogAndReport:
    def test_record_log_toggle_keeps_counters(self, small_context):
        executor = executor_of(small_context)
        executor.record_log = False
        executor.apply(0.0, ActionPlan([UnpinItem("item-0")]))
        assert executor.log == []
        assert executor.actions_applied == 1

    def test_empty_plan_report(self, small_context):
        report = executor_of(small_context).apply(7.0, ActionPlan())
        assert report.records == ()
        assert report.started_at == 7.0
        assert report.completed_at == 7.0
        assert report.migration_clock == 7.0

    def test_outcome_count(self, small_context):
        executor = executor_of(small_context)
        report = executor.apply(
            0.0,
            ActionPlan(
                [UnpinItem("item-0"), MigrateItem("ghost", "enc-01")]
            ),
        )
        assert report.outcome_count(ActionOutcome.APPLIED) == 1
        assert report.outcome_count(ActionOutcome.REJECTED) == 1


class TestMigrationEngineDelegation:
    def test_engine_reports_through_executor(self, small_context):
        from repro.storage.migration import PlacementPlan

        engine = small_context.migration_engine
        plan = PlacementPlan()
        plan.add("item-0", "enc-01")
        plan.add("ghost", "enc-02")
        report = engine.execute(0.0, plan)
        assert report.moves_executed == 1
        assert report.bytes_moved == 64 * units.MB
        assert report.moves_skipped == 0  # "unknown-item" is not a capacity skip
        executor = small_context.require_executor()
        assert len(executor.log) == 2
        assert engine.total_moves == 1
