"""Taxonomy tests for the inter-tier actions (ISSUE 10, satellite 3).

Every promote/demote/archive/replicate outcome the executor can
produce is pinned here: applied moves with their cost books, the full
reject-reason taxonomy from ``_resolve_tier_target``, fault aborts via
a :class:`~repro.faults.plan.MigrationAbort` draw, the degraded-mode
cool-down veto, JSON round-trips of the resulting records, and
dry-run identity (a dry run predicts the live outcomes while leaving
every book bit-identical).
"""

from __future__ import annotations

import json

from repro import units
from repro.actions.plan import ActionPlan
from repro.actions.records import (
    ActionOutcome,
    ActionRecord,
    ArchiveItem,
    DemoteItem,
    PromoteItem,
    ReplicateItem,
)
from repro.faults.plan import FaultPlan, MigrationAbort
from repro.simulation import SimulationContext, build_tiered_context


def tiered_context(config, flash_count=1, archive_count=1, faults=None):
    """Two-HDD testbed with optional flash/archive tiers and two items."""
    context = build_tiered_context(
        config,
        2,
        flash_count=flash_count,
        archive_count=archive_count,
        faults=faults,
    )
    virt = context.virtualization
    virt.add_item("item-0", 64 * units.MB, "vol/enc-00")
    virt.add_item("item-1", 64 * units.MB, "vol/enc-01")
    return context


def books_snapshot(context: SimulationContext) -> dict:
    """Everything a dry run must leave bit-identical, tiers included."""
    virt = context.virtualization
    executor = context.require_executor()
    return {
        "used": {n: virt.used_bytes(n) for n in virt.enclosure_names},
        "placement": {
            item: virt.enclosure_of(item).name
            for item in ("item-0", "item-1")
        },
        "replicas": {
            item: virt.replicas_of(item) for item in ("item-0", "item-1")
        },
        "ledger": virt.tier_ledger.snapshot_state(),
        "migrated_bytes": context.controller.migrated_bytes,
        "migration_count": context.controller.migration_count,
        "log_len": len(executor.log),
        "counters": (
            executor.actions_applied,
            executor.actions_aborted,
            executor.actions_vetoed,
            executor.actions_rejected,
        ),
    }


class TestAppliedMoves:
    def test_promote_places_item_on_flash(self, config):
        context = tiered_context(config)
        report = context.require_executor().apply(
            0.0, ActionPlan([PromoteItem("item-0", "flash")])
        )
        record = report.records[0]
        assert record.outcome is ActionOutcome.APPLIED
        assert record.cost_bytes == 64 * units.MB
        assert record.completion > record.time
        virt = context.virtualization
        assert virt.tier_of_item("item-0").name == "flash"
        assert virt.enclosure_of("item-0").name == "flash-00"

    def test_demote_and_archive_chain_on_migration_clock(self, config):
        context = tiered_context(config)
        report = context.require_executor().apply(
            0.0,
            ActionPlan(
                [
                    DemoteItem("item-0", "archive"),
                    ArchiveItem("item-1"),
                ]
            ),
        )
        first, second = report.records
        assert first.outcome is ActionOutcome.APPLIED
        assert second.outcome is ActionOutcome.APPLIED
        assert second.time == first.completion
        virt = context.virtualization
        assert virt.tier_of_item("item-0").name == "archive"
        assert virt.tier_of_item("item-1").name == "archive"

    def test_replicate_keeps_primary_and_adds_replica(self, config):
        context = tiered_context(config)
        controller = context.controller
        migrations_before = controller.migration_count
        report = context.require_executor().apply(
            0.0, ActionPlan([ReplicateItem("item-0", "flash")])
        )
        record = report.records[0]
        assert record.outcome is ActionOutcome.APPLIED
        virt = context.virtualization
        # Primary placement untouched; the copy lands as a replica.
        assert virt.enclosure_of("item-0").name == "enc-00"
        assert virt.replicas_of("item-0") == ("flash-00",)
        # Replication books separately from migration counts.
        assert controller.migration_count == migrations_before


class TestRecordRoundTrip:
    def test_applied_tier_records_round_trip_through_json(self, config):
        context = tiered_context(config)
        report = context.require_executor().apply(
            0.0,
            ActionPlan(
                [
                    PromoteItem("item-0", "flash"),
                    DemoteItem("item-0", "hdd"),
                    ArchiveItem("item-0"),
                    ReplicateItem("item-1", "flash"),
                ]
            ),
        )
        assert [r.outcome for r in report.records] == (
            [ActionOutcome.APPLIED] * 4
        )
        for record in report.records:
            data = json.loads(json.dumps(record.to_dict()))
            rebuilt = ActionRecord.from_dict(data)
            assert rebuilt == record
            assert type(rebuilt.action) is type(record.action)


class TestRejectTaxonomy:
    def test_unknown_item(self, config):
        context = tiered_context(config)
        report = context.require_executor().apply(
            0.0, ActionPlan([PromoteItem("no-such-item", "flash")])
        )
        assert report.records[0].outcome is ActionOutcome.REJECTED
        assert report.records[0].reason == "unknown-item"

    def test_unknown_tier(self, config):
        context = tiered_context(config)
        report = context.require_executor().apply(
            0.0, ActionPlan([PromoteItem("item-0", "no-such-tier")])
        )
        assert report.records[0].reason == "unknown-tier"

    def test_not_a_promotion_and_not_a_demotion(self, config):
        context = tiered_context(config)
        report = context.require_executor().apply(
            0.0,
            ActionPlan(
                [
                    # item-0 sits on HDD; archive ranks slower, flash faster.
                    PromoteItem("item-0", "archive"),
                    DemoteItem("item-1", "flash"),
                ]
            ),
        )
        assert [r.reason for r in report.records] == [
            "not-a-promotion",
            "not-a-demotion",
        ]
        assert all(
            r.outcome is ActionOutcome.REJECTED for r in report.records
        )

    def test_already_placed_same_tier(self, config):
        context = tiered_context(config)
        report = context.require_executor().apply(
            0.0,
            ActionPlan(
                [
                    DemoteItem("item-0", "hdd"),
                    ReplicateItem("item-1", "hdd"),
                ]
            ),
        )
        assert [r.reason for r in report.records] == [
            "already-placed",
            "already-placed",
        ]

    def test_no_archive_tier(self, config):
        context = tiered_context(config, archive_count=0)
        report = context.require_executor().apply(
            0.0, ActionPlan([ArchiveItem("item-0")])
        )
        assert report.records[0].outcome is ActionOutcome.REJECTED
        assert report.records[0].reason == "no-archive-tier"

    def test_capacity_when_target_tier_is_full(self, config):
        context = tiered_context(config)
        virt = context.virtualization
        virt.add_item(
            "filler",
            config.flash_capacity_bytes - units.MB,
            "vol/flash-00",
        )
        report = context.require_executor().apply(
            0.0, ActionPlan([PromoteItem("item-0", "flash")])
        )
        assert report.records[0].outcome is ActionOutcome.REJECTED
        assert report.records[0].reason == "capacity"


class TestFaultAbort:
    def test_migration_abort_draws_on_tier_moves(self, config):
        plan = FaultPlan(events=(MigrationAbort(item_id="item-0"),))
        context = tiered_context(config, faults=plan)
        virt = context.virtualization
        before = books_snapshot(context)
        report = context.require_executor().apply(
            10.0, ActionPlan([PromoteItem("item-0", "flash")])
        )
        record = report.records[0]
        assert record.outcome is ActionOutcome.ABORTED_BY_FAULT
        assert record.reason == "migration-abort"
        # The abort rolls back mid-transfer: placement and every byte
        # book read as if the move was never attempted.
        assert virt.tier_of_item("item-0").name == "hdd"
        after = books_snapshot(context)
        assert after["used"] == before["used"]
        assert after["ledger"] == before["ledger"]
        # One-shot draw: the retry of the same move goes through.
        retry = context.require_executor().apply(
            20.0, ActionPlan([PromoteItem("item-0", "flash")])
        )
        assert retry.records[0].outcome is ActionOutcome.APPLIED
        assert virt.tier_of_item("item-0").name == "flash"


class TestDegradedModeVeto:
    def test_cooldown_on_resolved_target_vetoes_move(self, config):
        context = tiered_context(config)
        executor = context.require_executor()
        # Simulate the degraded-mode gate having benched flash-00 (the
        # deterministic resolve target) after repeated spin-up faults.
        executor._cooldown_until["flash-00"] = 100.0
        report = executor.apply(
            50.0, ActionPlan([PromoteItem("item-0", "flash")])
        )
        record = report.records[0]
        assert record.outcome is ActionOutcome.VETOED_BY_DEGRADED_MODE
        assert record.reason == "cooldown"
        assert context.virtualization.tier_of_item("item-0").name == "hdd"
        # Past the window the same move applies.
        late = executor.apply(
            150.0, ActionPlan([PromoteItem("item-0", "flash")])
        )
        assert late.records[0].outcome is ActionOutcome.APPLIED


class TestDryRun:
    def _full_plan(self) -> ActionPlan:
        # Dry runs predict each action against the books as they stand,
        # so the plan's outcomes must not depend on its own earlier
        # moves (DemoteItem("item-0", ...) after the promote is fine —
        # flash → archive and hdd → archive are both demotions).
        return ActionPlan(
            [
                PromoteItem("item-0", "flash"),
                ReplicateItem("item-1", "flash"),
                ArchiveItem("item-1"),
                DemoteItem("item-0", "archive"),
                PromoteItem("no-such-item", "flash"),
                DemoteItem("item-1", "no-such-tier"),
            ]
        )

    def test_dry_run_predicts_live_outcomes_without_mutating(self, config):
        dry_context = tiered_context(config)
        before = books_snapshot(dry_context)
        dry = dry_context.require_executor().apply(
            0.0, self._full_plan(), dry_run=True
        )
        assert books_snapshot(dry_context) == before

        live_context = tiered_context(config)
        live = live_context.require_executor().apply(0.0, self._full_plan())
        assert [r.outcome for r in dry.records] == [
            r.outcome for r in live.records
        ]
        assert [r.reason for r in dry.records] == [
            r.reason for r in live.records
        ]
        assert [r.cost_bytes for r in dry.records] == [
            r.cost_bytes for r in live.records
        ]
