"""Tests for the typed action records and their JSON round-trip."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.actions.records import (
    ActionOutcome,
    ActionRecord,
    ArchiveItem,
    ChargeBlockMigration,
    DemoteItem,
    EnableWriteDelay,
    FlushItem,
    FlushWriteDelay,
    MigrateItem,
    PreloadItem,
    PromoteItem,
    ReplicateItem,
    SetPowerOffEnabled,
    UnpinItem,
    action_from_dict,
)
from repro.errors import ValidationError

ALL_ACTIONS = [
    MigrateItem("item-0", "enc-01"),
    MigrateItem("item-1", "enc-02", evacuation=True),
    PreloadItem("item-0"),
    UnpinItem("item-0"),
    EnableWriteDelay(("b", "a", "c")),
    FlushItem("item-2"),
    FlushWriteDelay(),
    SetPowerOffEnabled("enc-00", True),
    SetPowerOffEnabled("enc-01", False),
    ChargeBlockMigration("item-0", 8192, "enc-00", "enc-01"),
    PromoteItem("item-0", "flash"),
    DemoteItem("item-0", "hdd"),
    ArchiveItem("item-0"),
    ReplicateItem("item-0", "hdd"),
]


class TestActions:
    @pytest.mark.parametrize("action", ALL_ACTIONS, ids=lambda a: a.kind)
    def test_round_trip_exact(self, action):
        data = action.to_dict()
        assert data["kind"] == action.kind
        rebuilt = action_from_dict(json.loads(json.dumps(data)))
        assert rebuilt == action
        assert type(rebuilt) is type(action)

    def test_actions_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            MigrateItem("item-0", "enc-01").item_id = "other"

    def test_enable_write_delay_sorts_item_ids(self):
        action = EnableWriteDelay(("z", "a", "m"))
        assert action.item_ids == ("a", "m", "z")

    def test_all_kinds_covered(self):
        kinds = {action.kind for action in ALL_ACTIONS}
        assert kinds == {
            "migrate-item",
            "preload-item",
            "unpin-item",
            "enable-write-delay",
            "flush-item",
            "flush-write-delay",
            "set-power-off-enabled",
            "charge-block-migration",
            "promote-item",
            "demote-item",
            "archive-item",
            "replicate-item",
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            action_from_dict({"kind": "no-such-action"})

    def test_missing_field_rejected(self):
        with pytest.raises(ValidationError):
            action_from_dict({"kind": "migrate-item", "item_id": "x"})


class TestActionRecord:
    def test_round_trip_exact(self):
        record = ActionRecord(
            action=MigrateItem("item-0", "enc-01"),
            outcome=ActionOutcome.APPLIED,
            time=1.25,
            completion=3.8125,
            cost_seconds=2.5625,
            cost_joules=0.1 + 0.2,  # deliberately non-representable
            cost_bytes=64 * 1024 * 1024,
        )
        data = json.loads(json.dumps(record.to_dict()))
        rebuilt = ActionRecord.from_dict(data)
        assert rebuilt == record
        assert rebuilt.cost_joules == record.cost_joules

    def test_outcome_values_are_taxonomy_strings(self):
        assert {o.value for o in ActionOutcome} == {
            "applied",
            "aborted-by-fault",
            "vetoed-by-degraded-mode",
            "rejected",
        }

    def test_veto_record_round_trip(self):
        record = ActionRecord(
            action=SetPowerOffEnabled("enc-00", True),
            outcome=ActionOutcome.VETOED_BY_DEGRADED_MODE,
            time=10.0,
            completion=10.0,
            reason="degraded-mode",
        )
        rebuilt = ActionRecord.from_dict(record.to_dict())
        assert rebuilt == record
        assert rebuilt.outcome is ActionOutcome.VETOED_BY_DEGRADED_MODE
