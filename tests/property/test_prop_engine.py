"""Property tests: event-queue determinism under the repro.engine kernel.

The queue's contract is a *total, explicit* order — ascending time,
then ascending priority class (timeline-sample < fault-bookkeeping <
policy-checkpoint < trace-record < flush-deadline), then insertion
order — independent of the order events were pushed.  These properties
drive shuffled insertions (hypothesis picks times from a small grid so
equal-timestamp collisions are common) and assert pops always come out
in the documented order, with and without lazy cancellations.

Replay determinism rides on top of this: the serial == parallel ==
cached bit-identity suite (``tests/experiments``) and the pre-kernel
golden test (``tests/trace/test_replay_golden.py``) both run every
replay through the kernel, so those suites double as end-to-end
determinism proofs; here we add the direct property that two replays
of the same trace in one process are equal object-for-object.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.baselines.nopower import NoPowerSavingPolicy
from repro.config import DEFAULT_CONFIG
from repro.engine.events import (
    Event,
    FaultBookkeepingEvent,
    FlushDeadlineEvent,
    PolicyCheckpointEvent,
    TimelineSampleEvent,
)
from repro.engine.queue import EventQueue
from repro.simulation import build_context, default_volume
from repro.trace.records import IOType, LogicalIORecord
from repro.trace.replay import TraceReplayer

#: Constructor per priority class; the base Event carries TRACE_RECORD.
EVENT_KINDS = (
    TimelineSampleEvent,
    FaultBookkeepingEvent,
    PolicyCheckpointEvent,
    Event,
    FlushDeadlineEvent,
)

#: A coarse time grid, so same-timestamp collisions are the common case.
event_specs = st.lists(
    st.tuples(
        st.sampled_from([0.0, 10.0, 20.0, 30.0]),
        st.integers(min_value=0, max_value=len(EVENT_KINDS) - 1),
    ),
    max_size=40,
)


@given(specs=event_specs)
def test_pops_follow_time_class_insertion_order(specs):
    queue = EventQueue()
    pushed = []
    for order, (time, kind) in enumerate(specs):
        event = EVENT_KINDS[kind](time)
        queue.push(event)
        pushed.append((time, event.priority, order, event))
    expected = [entry[3] for entry in sorted(pushed, key=lambda e: e[:3])]
    drained = []
    while True:
        event = queue.pop()
        if event is None:
            break
        drained.append(event)
    assert drained == expected


@given(specs=event_specs, data=st.data())
def test_cancellation_preserves_order_of_survivors(specs, data):
    queue = EventQueue()
    pushed = []
    for order, (time, kind) in enumerate(specs):
        event = EVENT_KINDS[kind](time)
        queue.push(event)
        pushed.append((time, event.priority, order, event))
    doomed = data.draw(
        st.sets(st.integers(min_value=0, max_value=max(len(pushed) - 1, 0)))
        if pushed
        else st.just(set())
    )
    for index in doomed:
        queue.cancel(pushed[index][3])
    expected = [
        entry[3]
        for entry in sorted(pushed, key=lambda e: e[:3])
        if not entry[3].cancelled
    ]
    assert len(queue) == len(expected)
    drained = []
    while True:
        event = queue.pop()
        if event is None:
            break
        drained.append(event)
    assert drained == expected


def _replay_once():
    context = build_context(DEFAULT_CONFIG, 2)
    context.virtualization.add_item("a", units.MB, default_volume("enc-00"))
    context.app_monitor.register_item("a", default_volume("enc-00"))
    records = [
        LogicalIORecord(float(t), "a", 0, 4096, IOType.READ)
        for t in range(0, 600, 35)
    ]
    return TraceReplayer(context, NoPowerSavingPolicy()).run(
        records, duration=600.0
    )


@settings(deadline=None, max_examples=3)
@given(st.integers(min_value=0, max_value=2))
def test_replay_is_deterministic_run_to_run(_seed):
    assert _replay_once() == _replay_once()
