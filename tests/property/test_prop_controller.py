"""Property tests: controller-level conservation invariants.

Whatever mix of reads, writes, preloads, write-delay selections and
migrations is thrown at the controller, bookkeeping must balance:
every logical I/O is answered exactly once, dirty data never outlives a
finish(), and energy/time never go backwards.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.storage.cache import StorageCache
from repro.storage.controller import StorageController
from repro.storage.enclosure import DiskEnclosure
from repro.storage.virtualization import BlockVirtualization
from repro.trace.records import IOType, LogicalIORecord

ITEMS = ("a", "b", "c")


def build_controller():
    encs = [
        DiskEnclosure(
            f"e{i}", iops_random=2.0, iops_sequential=6.0,
            capacity_bytes=10 * units.GB,
        )
        for i in range(3)
    ]
    virt = BlockVirtualization(encs)
    for i, item in enumerate(ITEMS):
        virt.create_volume(f"v{i}", f"e{i}")
        virt.add_item(item, 64 * units.MB, f"v{i}")
    return StorageController(virt, StorageCache()), virt, encs


@st.composite
def operations(draw):
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("io"),
                    st.sampled_from(ITEMS),
                    st.booleans(),  # read?
                    st.integers(min_value=0, max_value=60 * units.MB),
                ),
                st.tuples(st.just("preload"), st.sampled_from(ITEMS)),
                st.tuples(st.just("unpin"), st.sampled_from(ITEMS)),
                st.tuples(st.just("wd"), st.sampled_from(ITEMS)),
                st.tuples(
                    st.just("migrate"),
                    st.sampled_from(ITEMS),
                    st.sampled_from(["e0", "e1", "e2"]),
                ),
            ),
            max_size=40,
        )
    )
    return ops


def run_ops(controller, virt, ops):
    clock = 0.0
    submitted = 0
    for op in ops:
        clock += 1.0
        kind = op[0]
        if kind == "io":
            _, item, is_read, offset = op
            offset = (offset // units.BLOCK_SIZE) * units.BLOCK_SIZE
            record = LogicalIORecord(
                clock,
                item,
                offset,
                4096,
                IOType.READ if is_read else IOType.WRITE,
            )
            response = controller.submit(record)
            assert response > 0
            submitted += 1
        elif kind == "preload":
            controller.preload_item(clock, op[1])
        elif kind == "unpin":
            controller.unpin_item(op[1])
        elif kind == "wd":
            selected = controller.cache.write_delay.selected_items()
            controller.select_write_delay(clock, selected | {op[1]})
        elif kind == "migrate":
            controller.migrate_item(clock, op[1], op[2])
    return clock, submitted


@given(operations())
@settings(max_examples=100, deadline=None)
def test_every_logical_io_counted_once(ops):
    controller, virt, _ = build_controller()
    _, submitted = run_ops(controller, virt, ops)
    assert controller.logical_io_count == submitted


@given(operations())
@settings(max_examples=100, deadline=None)
def test_finish_leaves_no_dirty_data(ops):
    controller, virt, _ = build_controller()
    clock, _ = run_ops(controller, virt, ops)
    controller.finish(clock + 10.0)
    assert controller.cache.write_delay.dirty_pages == 0


@given(operations())
@settings(max_examples=100, deadline=None)
def test_items_always_resolvable(ops):
    controller, virt, _ = build_controller()
    run_ops(controller, virt, ops)
    for item in ITEMS:
        enclosure, block = virt.resolve(item, 0)
        assert enclosure in ("e0", "e1", "e2")
        assert block >= 0


@given(operations())
@settings(max_examples=100, deadline=None)
def test_energy_monotone_under_any_operation_mix(ops):
    controller, virt, encs = build_controller()
    clock = 0.0
    last_energy = 0.0
    for op in ops:
        clock += 1.0
        try:
            if op[0] == "io":
                offset = (op[3] // units.BLOCK_SIZE) * units.BLOCK_SIZE
                controller.submit(
                    LogicalIORecord(
                        clock, op[1], offset, 4096,
                        IOType.READ if op[2] else IOType.WRITE,
                    )
                )
            elif op[0] == "migrate":
                controller.migrate_item(clock, op[1], op[2])
        except Exception:
            raise
        energy = sum(e.energy_joules() for e in encs)
        assert energy >= last_energy - 1e-9
        last_energy = energy


@given(operations())
@settings(max_examples=100, deadline=None)
def test_preload_pin_state_consistent(ops):
    controller, virt, _ = build_controller()
    run_ops(controller, virt, ops)
    pinned = controller.cache.preload.item_ids()
    # Pinned bytes accounting matches the items' sizes.
    expected = sum(virt.item_size(item) for item in pinned)
    assert controller.cache.preload.used_bytes == expected
    assert controller.cache.preload.used_bytes <= (
        controller.cache.preload.capacity_bytes
    )
