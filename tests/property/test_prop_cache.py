"""Property tests: cache partitions never violate their invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.errors import CapacityError
from repro.storage.cache import (
    PAGE_BYTES,
    LRUBlockCache,
    PreloadPartition,
    WriteDelayPartition,
)

items = st.sampled_from(["a", "b", "c", "d"])
pages = st.integers(min_value=0, max_value=200)


@given(st.lists(st.tuples(items, pages), max_size=300))
@settings(max_examples=100)
def test_lru_never_exceeds_capacity(accesses):
    lru = LRUBlockCache(5 * PAGE_BYTES)
    for item, page in accesses:
        lru.access(item, page)
        assert len(lru) <= 5


@given(st.lists(st.tuples(items, pages), min_size=1, max_size=300))
@settings(max_examples=100)
def test_lru_most_recent_access_always_hits_next(accesses):
    lru = LRUBlockCache(5 * PAGE_BYTES)
    for item, page in accesses:
        lru.access(item, page)
    last_item, last_page = accesses[-1]
    assert lru.access(last_item, last_page)


@given(
    st.lists(
        st.tuples(items, st.integers(min_value=1, max_value=40)),
        max_size=30,
    )
)
@settings(max_examples=100)
def test_preload_partition_accounting(pins):
    part = PreloadPartition(64 * units.MB)
    pinned: dict[str, int] = {}
    for item, size_mb in pins:
        size = size_mb * units.MB
        try:
            part.pin(item, size)
        except CapacityError:
            assert part.free_bytes < size
        else:
            pinned.setdefault(item, size)
        assert part.used_bytes == sum(pinned.values())
        assert 0 <= part.used_bytes <= part.capacity_bytes


@given(st.lists(st.tuples(items, pages), max_size=400))
@settings(max_examples=100)
def test_write_delay_dirty_pages_bounded_by_threshold(writes):
    part = WriteDelayPartition(20 * PAGE_BYTES, dirty_block_rate=0.5)
    for item in ("a", "b", "c", "d"):
        part.select(item)
    for item, page in writes:
        must_flush = part.absorb_write(item, page)
        if must_flush:
            part.flush_all()
        # Never exceeds the flush threshold after handling.
        assert part.dirty_pages < part.dirty_threshold_pages or not must_flush


@given(st.lists(st.tuples(items, pages), max_size=200))
@settings(max_examples=100)
def test_flush_conserves_dirty_bytes(writes):
    part = WriteDelayPartition(10 * units.GB, dirty_block_rate=1.0)
    for item in ("a", "b", "c", "d"):
        part.select(item)
    unique = {(item, page) for item, page in writes}
    for item, page in writes:
        part.absorb_write(item, page)
    plan = part.flush_all()
    assert plan.total_bytes == len(unique) * PAGE_BYTES
    assert part.dirty_pages == 0
