"""Property tests: trace serialization round-trips exactly."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.reader import read_logical_trace, read_physical_trace
from repro.trace.records import IOType, LogicalIORecord, PhysicalIORecord
from repro.trace.writer import write_logical_trace, write_physical_trace

item_ids = st.text(
    alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="/-_."
    ),
    min_size=1,
    max_size=20,
)


@st.composite
def logical_records(draw):
    # Timestamps quantized to microseconds: the writer serializes %.6f.
    micros = draw(st.integers(min_value=0, max_value=10**12))
    return LogicalIORecord(
        timestamp=micros / 1e6,
        item_id=draw(item_ids),
        offset=draw(st.integers(min_value=0, max_value=2**40)),
        size=draw(st.integers(min_value=1, max_value=2**30)),
        io_type=draw(st.sampled_from(IOType)),
        sequential=draw(st.booleans()),
    )


@st.composite
def physical_records(draw):
    micros = draw(st.integers(min_value=0, max_value=10**12))
    return PhysicalIORecord(
        timestamp=micros / 1e6,
        enclosure=draw(item_ids),
        block_address=draw(st.integers(min_value=0, max_value=2**32)),
        count=draw(st.integers(min_value=1, max_value=10**6)),
        io_type=draw(st.sampled_from(IOType)),
        item_id=draw(st.none() | item_ids),
    )


@given(st.lists(logical_records(), max_size=50))
@settings(max_examples=100)
def test_logical_roundtrip(records):
    buffer = io.StringIO()
    write_logical_trace(records, buffer)
    buffer.seek(0)
    assert read_logical_trace(buffer) == records


@given(st.lists(physical_records(), max_size=50))
@settings(max_examples=100)
def test_physical_roundtrip(records):
    buffer = io.StringIO()
    write_physical_trace(records, buffer)
    buffer.seek(0)
    assert read_physical_trace(buffer) == records
