"""Property tests: placement algorithms respect their constraints."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import IOPattern
from repro.core.placement import EnclosureLedger, determine_placement

from tests.core.profile_helpers import BUCKET, make_profile

GB = 1 << 30
ENCLOSURES = ["e0", "e1", "e2", "e3", "e4"]
CAPACITY = 50 * GB
MAX_IOPS = 1.0


@st.composite
def profile_sets(draw):
    count = draw(st.integers(min_value=0, max_value=14))
    profiles = {}
    used = {name: 0 for name in ENCLOSURES}
    for index in range(count):
        pattern = draw(
            st.sampled_from(
                [IOPattern.P0, IOPattern.P1, IOPattern.P2, IOPattern.P3]
            )
        )
        iops = draw(st.floats(min_value=0.0, max_value=0.35))
        size = draw(st.integers(min_value=1, max_value=8)) * GB
        enclosure = draw(st.sampled_from(ENCLOSURES))
        # Keep the initial placement physically realizable: the real
        # BlockVirtualization refuses to place an item past an
        # enclosure's capacity, and the planner only relocates items
        # with P3 activity — an infeasible all-P0 start would (rightly)
        # stay infeasible.  Spill to the emptiest enclosure instead.
        if used[enclosure] + size > CAPACITY:
            enclosure = min(ENCLOSURES, key=lambda name: (used[name], name))
        used[enclosure] += size
        buckets = tuple([int(iops * BUCKET)] * 10)
        profiles[f"item-{index}"] = make_profile(
            f"item-{index}",
            pattern,
            enclosure,
            size_bytes=size,
            mean_iops=iops,
            bucket_counts=buckets,
        )
    return profiles


@given(profile_sets())
@settings(max_examples=150, deadline=None)
def test_every_item_placed_exactly_once(profiles):
    split, plan = determine_placement(
        profiles, ENCLOSURES, MAX_IOPS, CAPACITY, BUCKET
    )
    ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
    for move in plan.ordered():
        ledger.move(move.item_id, move.target_enclosure)
    placed = set()
    for name in ENCLOSURES:
        on_enclosure = set(ledger.items_on(name))
        assert placed.isdisjoint(on_enclosure)
        placed |= on_enclosure
    assert placed == set(profiles)


@given(profile_sets())
@settings(max_examples=150, deadline=None)
def test_final_capacity_respected(profiles):
    split, plan = determine_placement(
        profiles, ENCLOSURES, MAX_IOPS, CAPACITY, BUCKET
    )
    ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
    for move in plan.ordered():
        ledger.move(move.item_id, move.target_enclosure)
    for name in ENCLOSURES:
        assert ledger.used_bytes(name) <= CAPACITY


@given(profile_sets())
@settings(max_examples=150, deadline=None)
def test_p3_items_end_on_hot_enclosures(profiles):
    split, plan = determine_placement(
        profiles, ENCLOSURES, MAX_IOPS, CAPACITY, BUCKET
    )
    ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
    for move in plan.ordered():
        ledger.move(move.item_id, move.target_enclosure)
    for item, profile in profiles.items():
        if profile.pattern is IOPattern.P3:
            assert ledger.location(item) in split.hot


@given(profile_sets())
@settings(max_examples=150, deadline=None)
def test_hot_and_cold_partition_the_enclosures(profiles):
    split, _ = determine_placement(
        profiles, ENCLOSURES, MAX_IOPS, CAPACITY, BUCKET
    )
    assert set(split.hot) | set(split.cold) == set(ENCLOSURES)
    assert set(split.hot) & set(split.cold) == set()


@given(profile_sets())
@settings(max_examples=150, deadline=None)
def test_moves_reference_known_items_and_enclosures(profiles):
    _, plan = determine_placement(
        profiles, ENCLOSURES, MAX_IOPS, CAPACITY, BUCKET
    )
    for move in plan.moves:
        assert move.item_id in profiles
        assert move.target_enclosure in ENCLOSURES


@given(profile_sets())
@settings(max_examples=150, deadline=None)
def test_p3_moves_are_real_and_target_hot(profiles):
    # (An item's enclosure may join the hot set *after* planning via the
    # stuck-item merge, so "P3 on hot never moves" only holds against
    # the pre-merge selection; the externally observable invariants are
    # that every consolidation move changes enclosures and lands hot.)
    split, plan = determine_placement(
        profiles, ENCLOSURES, MAX_IOPS, CAPACITY, BUCKET
    )
    for move in plan.moves:
        if move.evacuation:
            continue
        assert profiles[move.item_id].pattern is IOPattern.P3
        assert move.target_enclosure in split.hot
        assert profiles[move.item_id].enclosure != move.target_enclosure
