"""Property: a fault-injected replay is a pure function of (plan, trace).

Random fault plans crossed with random small traces must replay to
bit-identical :class:`~repro.trace.replay.ReplayResult` objects — the
:class:`~repro.faults.report.AvailabilityReport` included — when run
twice on fresh testbeds.  Determinism is the whole point of the fault
subsystem: any chaos failure must be reproducible from its seed.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.baselines.base import PowerPolicy
from repro.config import DEFAULT_CONFIG
from repro.faults import FaultModel, FaultPlan
from repro.faults.plan import (
    CacheBatteryFailure,
    EnclosureOutage,
    MigrationAbort,
    SlowSpinUp,
    SpinUpFailure,
)
from repro.simulation import build_context, default_volume
from repro.trace.records import IOType, LogicalIORecord
from repro.trace.replay import TraceReplayer

ENCLOSURES = ("enc-00", "enc-01")
ITEMS = ("item-0", "item-1")
DURATION = 4000.0


class AggressivePowerOff(PowerPolicy):
    """Enables power-off everywhere each period — worst case for faults."""

    name = "aggressive"

    def __init__(self) -> None:
        super().__init__()
        self._next = 100.0

    def next_checkpoint(self) -> float | None:
        return self._next

    def on_checkpoint(self, now: float) -> None:
        self._next = now + 100.0
        for enclosure in self._require_context().enclosures:
            self.apply_power_off(enclosure, now, True)


@st.composite
def fault_plans(draw) -> FaultPlan:
    events = []
    for index in range(draw(st.integers(min_value=0, max_value=4))):
        kind = draw(
            st.sampled_from(
                ["spin-up", "outage", "battery", "slow-spin-up", "abort"]
            )
        )
        enclosure = draw(st.sampled_from(ENCLOSURES))
        at = draw(st.floats(min_value=0.0, max_value=DURATION * 0.8))
        if kind == "spin-up":
            events.append(
                SpinUpFailure(
                    enclosure=enclosure,
                    after=at,
                    failures=draw(st.integers(min_value=1, max_value=3)),
                )
            )
        elif kind == "outage":
            events.append(
                EnclosureOutage(
                    enclosure=enclosure,
                    start=at,
                    end=at
                    + draw(st.floats(min_value=1.0, max_value=400.0)),
                )
            )
        elif kind == "battery":
            events.append(CacheBatteryFailure(time=at))
        elif kind == "slow-spin-up":
            events.append(
                SlowSpinUp(
                    enclosure=enclosure,
                    start=at,
                    end=at
                    + draw(st.floats(min_value=1.0, max_value=400.0)),
                    multiplier=draw(
                        st.floats(min_value=1.0, max_value=4.0)
                    ),
                )
            )
        else:
            events.append(
                MigrationAbort(
                    item_id=draw(st.sampled_from(ITEMS)), after=at
                )
            )
    model = None
    if draw(st.booleans()):
        model = FaultModel(
            seed=draw(st.integers(min_value=0, max_value=2**31)),
            spin_up_failure_prob=draw(
                st.floats(min_value=0.0, max_value=0.5)
            ),
            slow_spin_up_prob=draw(st.floats(min_value=0.0, max_value=0.5)),
        )
    return FaultPlan(events=tuple(events), model=model)


@st.composite
def traces(draw) -> list[LogicalIORecord]:
    count = draw(st.integers(min_value=1, max_value=25))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=DURATION * 0.9),
                min_size=count,
                max_size=count,
            )
        )
    )
    return [
        LogicalIORecord(
            at,
            draw(st.sampled_from(ITEMS)),
            0,
            8192,
            IOType.READ if draw(st.booleans()) else IOType.WRITE,
        )
        for at in times
    ]


def replay(plan: FaultPlan, records: list[LogicalIORecord]):
    context = build_context(DEFAULT_CONFIG, len(ENCLOSURES), faults=plan)
    for index, item in enumerate(ITEMS):
        volume = default_volume(ENCLOSURES[index])
        context.virtualization.add_item(item, 64 * units.MB, volume)
        context.app_monitor.register_item(item, volume)
    return TraceReplayer(context, AggressivePowerOff()).run(
        list(records), duration=DURATION
    )


@settings(max_examples=10, deadline=None)
@given(plan=fault_plans(), records=traces())
def test_replay_is_bit_identical_across_runs(plan, records) -> None:
    first = replay(plan, records)
    second = replay(plan, records)
    assert first == second
    assert first.availability == second.availability
