"""Property tests: P0-P3 classification invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import extract_activity
from repro.core.patterns import IOPattern, classify

BE = 52.0
WINDOW_END = 5000.0


@st.composite
def event_lists(draw):
    times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=WINDOW_END, allow_nan=False),
            max_size=50,
        )
    )
    times.sort()
    reads = draw(
        st.lists(st.booleans(), min_size=len(times), max_size=len(times))
    )
    return list(zip(times, reads))


@given(event_lists())
@settings(max_examples=300)
def test_exactly_one_pattern(events):
    activity = extract_activity("x", events, 0.0, WINDOW_END, BE)
    pattern = classify(activity)
    assert pattern in IOPattern


@given(event_lists())
@settings(max_examples=300)
def test_p0_iff_no_io(events):
    activity = extract_activity("x", events, 0.0, WINDOW_END, BE)
    pattern = classify(activity)
    assert (pattern is IOPattern.P0) == (len(events) == 0)


@given(event_lists())
@settings(max_examples=300)
def test_p3_iff_no_long_interval_with_io(events):
    activity = extract_activity("x", events, 0.0, WINDOW_END, BE)
    pattern = classify(activity)
    if events:
        assert (pattern is IOPattern.P3) == (not activity.long_intervals)


@given(event_lists())
@settings(max_examples=300)
def test_p1_implies_read_majority(events):
    activity = extract_activity("x", events, 0.0, WINDOW_END, BE)
    pattern = classify(activity)
    if pattern is IOPattern.P1:
        assert 2 * activity.read_count > activity.io_count
    if pattern is IOPattern.P2:
        assert 2 * activity.read_count <= activity.io_count


@given(event_lists())
@settings(max_examples=100)
def test_flipping_io_direction_swaps_p1_p2(events):
    activity = extract_activity("x", events, 0.0, WINDOW_END, BE)
    flipped = extract_activity(
        "x", [(t, not r) for t, r in events], 0.0, WINDOW_END, BE
    )
    pattern, anti = classify(activity), classify(flipped)
    if pattern is IOPattern.P1:
        assert anti is IOPattern.P2
    # The timing structure is unchanged either way.
    assert activity.long_intervals == flipped.long_intervals
