"""Property tests: Long Interval / I/O Sequence decomposition invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import extract_activity

BE = 52.0
WINDOW_END = 5000.0


@st.composite
def event_lists(draw):
    times = draw(
        st.lists(
            st.floats(
                min_value=0.0,
                max_value=WINDOW_END,
                allow_nan=False,
                allow_infinity=False,
            ),
            max_size=60,
        )
    )
    times.sort()
    reads = draw(
        st.lists(st.booleans(), min_size=len(times), max_size=len(times))
    )
    return list(zip(times, reads))


@given(event_lists())
@settings(max_examples=200)
def test_every_io_lands_in_exactly_one_sequence(events):
    activity = extract_activity("x", events, 0.0, WINDOW_END, BE)
    assert activity.io_count == len(events)
    assert activity.read_count == sum(1 for _, r in events if r)
    assert activity.write_count == sum(1 for _, r in events if not r)


@given(event_lists())
@settings(max_examples=200)
def test_long_intervals_are_strictly_longer_than_break_even(events):
    activity = extract_activity("x", events, 0.0, WINDOW_END, BE)
    for interval in activity.long_intervals:
        assert interval.length > BE


@given(event_lists())
@settings(max_examples=200)
def test_long_intervals_are_disjoint_and_ordered(events):
    activity = extract_activity("x", events, 0.0, WINDOW_END, BE)
    intervals = activity.long_intervals
    for a, b in zip(intervals, intervals[1:]):
        assert a.end <= b.start


@given(event_lists())
@settings(max_examples=200)
def test_long_intervals_contain_no_events(events):
    activity = extract_activity("x", events, 0.0, WINDOW_END, BE)
    for interval in activity.long_intervals:
        inside = [
            t for t, _ in events if interval.start < t < interval.end
        ]
        assert inside == []


@given(event_lists())
@settings(max_examples=200)
def test_sequences_are_within_window_and_ordered(events):
    activity = extract_activity("x", events, 0.0, WINDOW_END, BE)
    sequences = activity.sequences
    for seq in sequences:
        assert 0.0 <= seq.start <= seq.end <= WINDOW_END
    for a, b in zip(sequences, sequences[1:]):
        assert a.end < b.start


@given(event_lists())
@settings(max_examples=200)
def test_sequence_internal_gaps_below_break_even(events):
    activity = extract_activity("x", events, 0.0, WINDOW_END, BE)
    for seq in activity.sequences:
        inside = sorted(t for t, _ in events if seq.start <= t <= seq.end)
        for a, b in zip(inside, inside[1:]):
            assert b - a <= BE


@given(event_lists())
@settings(max_examples=200)
def test_gaps_between_consecutive_sequences_are_long(events):
    activity = extract_activity("x", events, 0.0, WINDOW_END, BE)
    for a, b in zip(activity.sequences, activity.sequences[1:]):
        assert b.start - a.end > BE


@given(event_lists())
@settings(max_examples=200)
def test_total_long_interval_length_bounded_by_window(events):
    activity = extract_activity("x", events, 0.0, WINDOW_END, BE)
    total = activity.total_long_interval_length
    assert 0.0 <= total <= WINDOW_END + 1e-6


@given(event_lists(), st.floats(min_value=1.0, max_value=1000.0))
@settings(max_examples=100)
def test_larger_break_even_never_increases_long_interval_count(
    events, be
):
    small = extract_activity("x", events, 0.0, WINDOW_END, be)
    large = extract_activity("x", events, 0.0, WINDOW_END, be * 2)
    assert len(large.long_intervals) <= len(small.long_intervals)
    # And never increases the number of sequences either (they merge).
    assert len(large.sequences) <= len(small.sequences)
