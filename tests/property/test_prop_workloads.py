"""Property tests: workload generators produce well-formed traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    build_dss_workload,
    build_fileserver_workload,
    build_oltp_workload,
)
from repro.workloads.dss import QUERY_TABLES

seeds = st.integers(min_value=1, max_value=10_000)
durations = st.floats(min_value=800.0, max_value=2600.0)


def check_invariants(workload):
    sizes = {item.item_id: item.size_bytes for item in workload.items}
    last = 0.0
    for record in workload.records:
        # Time-ordered, inside the declared duration.
        assert record.timestamp >= last
        assert 0.0 <= record.timestamp < workload.duration
        last = record.timestamp
        # Every record targets a catalogued item and stays inside it.
        assert record.item_id in sizes
        assert 0 <= record.offset < sizes[record.item_id]
        assert record.offset + record.size <= sizes[record.item_id] + (
            record.size
        )  # reads may touch the final partial page
        assert record.size > 0
    for item in workload.items:
        assert 0 <= item.enclosure_index < workload.enclosure_count


@given(seeds, durations)
@settings(max_examples=10, deadline=None)
def test_fileserver_invariants(seed, duration):
    check_invariants(build_fileserver_workload(seed=seed, duration=duration))


@given(seeds, durations)
@settings(max_examples=10, deadline=None)
def test_oltp_invariants(seed, duration):
    check_invariants(build_oltp_workload(seed=seed, duration=duration))


@given(seeds, st.lists(st.sampled_from(sorted(QUERY_TABLES)), min_size=1,
                       max_size=4, unique=True))
@settings(max_examples=10, deadline=None)
def test_dss_invariants(seed, queries):
    workload = build_dss_workload(
        seed=seed, duration=2000.0, queries=tuple(queries)
    )
    check_invariants(workload)
    # Phases tile the run in order.
    assert [name for name, _, _ in workload.phases] == list(queries)
    assert workload.phases[-1][2] <= workload.duration + 1e-6


@given(seeds)
@settings(max_examples=10, deadline=None)
def test_generators_are_pure_functions_of_seed(seed):
    a = build_oltp_workload(seed=seed, duration=900.0)
    b = build_oltp_workload(seed=seed, duration=900.0)
    assert a.records == b.records
    assert a.items == b.items
