"""Property tests: the enclosure's energy timeline is exact.

Whatever sequence of I/Os, settles, and policy flips happens, the
timeline must remain consistent: time-in-state sums to the clock, energy
equals Σ state-power × state-time, and the FIFO queue never reorders.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.enclosure import DiskEnclosure
from repro.storage.power import PowerState


@st.composite
def operation_sequences(draw):
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["io", "settle", "enable", "disable"]),
                st.floats(min_value=0.1, max_value=300.0, allow_nan=False),
            ),
            max_size=40,
        )
    )
    return ops


def run_ops(ops):
    enc = DiskEnclosure(
        "e0", iops_random=2.0, iops_sequential=6.0, spin_down_timeout=52.0
    )
    clock = 0.0
    for op, delta in ops:
        clock += delta
        if op == "io":
            enc.submit(clock)
        elif op == "settle":
            enc.settle(clock)
        elif op == "enable":
            enc.enable_power_off(clock)
        else:
            enc.disable_power_off(clock)
    enc.finish(clock + 400.0)
    return enc


@given(operation_sequences())
@settings(max_examples=150, deadline=None)
def test_time_in_states_sums_to_clock(ops):
    enc = run_ops(ops)
    total = sum(enc.time_in_state(s) for s in PowerState)
    assert abs(total - enc.clock) < 1e-6


@given(operation_sequences())
@settings(max_examples=150, deadline=None)
def test_energy_equals_power_times_time(ops):
    enc = run_ops(ops)
    expected = sum(
        enc.power_model.watts(s) * enc.time_in_state(s) for s in PowerState
    )
    assert abs(enc.energy_joules() - expected) < 1e-6


@given(operation_sequences())
@settings(max_examples=150, deadline=None)
def test_average_power_within_physical_bounds(ops):
    enc = run_ops(ops)
    avg = enc.average_watts()
    assert enc.power_model.off_watts - 1e-9 <= avg
    assert avg <= enc.power_model.spin_up_watts + 1e-9


@given(operation_sequences())
@settings(max_examples=150, deadline=None)
def test_spin_counts_balance(ops):
    enc = run_ops(ops)
    # Every spin-up follows a spin-down; at most one cycle can be open.
    assert 0 <= enc.spin_down_count - enc.spin_up_count <= 1


@given(
    st.lists(
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=150, deadline=None)
def test_fifo_completions_are_monotone(deltas):
    enc = DiskEnclosure("e0", iops_random=2.0)
    clock = 0.0
    completions = []
    for delta in deltas:
        clock += delta
        completions.append(enc.submit(clock).completion)
    assert completions == sorted(completions)


@given(
    st.lists(
        st.floats(min_value=0.01, max_value=500.0, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=150, deadline=None)
def test_response_never_below_service_time(deltas):
    enc = DiskEnclosure("e0", iops_random=2.0, spin_down_timeout=52.0)
    enc.enable_power_off(0.0)
    clock = 0.0
    for delta in deltas:
        clock += delta
        result = enc.submit(clock)
        assert result.response_time >= enc.service_time(1, False) - 1e-9
        assert result.wait_time >= 0.0
