"""Shared fixtures for the test suite.

Conventions:

* ``small_context`` — a three-enclosure storage system with a few data
  items placed, enough for controller/manager behaviour tests;
* ``fast_config`` — Table II values but with generous simulated IOPS so
  unit-test traces don't queue;
* trace helpers build time-ordered :class:`LogicalIORecord` lists
  tersely.
"""

from __future__ import annotations

import pytest

from repro import units
from repro.config import DEFAULT_CONFIG, EcoStorConfig
from repro.simulation import SimulationContext, build_context, default_volume
from repro.trace.records import IOType, LogicalIORecord


@pytest.fixture
def config() -> EcoStorConfig:
    """The shipped simulation-scale configuration."""
    return DEFAULT_CONFIG


@pytest.fixture
def small_context(config: EcoStorConfig) -> SimulationContext:
    """Three enclosures, three items (one per enclosure)."""
    context = build_context(config, 3)
    names = context.enclosure_names()
    for index, name in enumerate(names):
        context.virtualization.add_item(
            f"item-{index}", 64 * units.MB, default_volume(name)
        )
        context.app_monitor.register_item(f"item-{index}", default_volume(name))
    return context


def make_read(
    t: float, item: str = "item-0", offset: int = 0, size: int = 8192
) -> LogicalIORecord:
    return LogicalIORecord(t, item, offset, size, IOType.READ)


def make_write(
    t: float, item: str = "item-0", offset: int = 0, size: int = 8192
) -> LogicalIORecord:
    return LogicalIORecord(t, item, offset, size, IOType.WRITE)


def make_trace(*specs: tuple) -> list[LogicalIORecord]:
    """Build a trace from ``(t, item, 'R'|'W')`` or ``(t, item, 'R', off, size)``."""
    records = []
    for spec in specs:
        t, item, kind = spec[0], spec[1], spec[2]
        offset = spec[3] if len(spec) > 3 else 0
        size = spec[4] if len(spec) > 4 else 8192
        records.append(
            LogicalIORecord(t, item, offset, size, IOType.parse(kind))
        )
    return records


@pytest.fixture
def trace_builder():
    return make_trace
