"""Tests for repro.simulation — context assembly."""

import pytest

from repro import units
from repro.config import DEFAULT_CONFIG
from repro.simulation import build_context, default_volume
from repro.trace.records import IOType, LogicalIORecord


class TestBuildContext:
    def test_enclosure_count(self):
        context = build_context(DEFAULT_CONFIG, 5)
        assert len(context.enclosures) == 5
        assert context.enclosure_names() == [f"enc-{i:02d}" for i in range(5)]

    def test_zero_enclosures_rejected(self):
        with pytest.raises(ValueError):
            build_context(DEFAULT_CONFIG, 0)

    def test_default_volumes_created(self):
        context = build_context(DEFAULT_CONFIG, 2)
        for name in context.enclosure_names():
            volume = context.virtualization.volume(default_volume(name))
            assert volume.enclosure == name

    def test_enclosures_carry_config(self):
        context = build_context(DEFAULT_CONFIG, 1)
        enclosure = context.enclosures[0]
        assert enclosure.capacity_bytes == DEFAULT_CONFIG.enclosure_size_bytes
        assert enclosure.spin_down_timeout == DEFAULT_CONFIG.spin_down_timeout
        assert enclosure.iops_random == pytest.approx(
            DEFAULT_CONFIG.service_iops_random
        )

    def test_cache_partition_sizes(self):
        context = build_context(DEFAULT_CONFIG, 1)
        assert (
            context.cache.preload.capacity_bytes
            == DEFAULT_CONFIG.preload_cache_bytes
        )
        assert (
            context.cache.write_delay.capacity_bytes
            == DEFAULT_CONFIG.write_delay_cache_bytes
        )

    def test_storage_monitor_wired_to_controller(self):
        context = build_context(DEFAULT_CONFIG, 1)
        context.virtualization.add_item(
            "a", units.MB, default_volume("enc-00")
        )
        context.controller.submit(
            LogicalIORecord(1.0, "a", 0, 4096, IOType.READ)
        )
        assert context.storage_monitor.physical_io_count == 1

    def test_meter_covers_all_enclosures(self):
        context = build_context(DEFAULT_CONFIG, 3)
        reading = context.meter.read(100.0)
        idle = DEFAULT_CONFIG.enclosure_power.idle_watts
        assert reading.enclosure_watts == pytest.approx(3 * idle)

    def test_custom_prefix(self):
        context = build_context(DEFAULT_CONFIG, 1, enclosure_prefix="disk")
        assert context.enclosure_names() == ["disk-00"]
