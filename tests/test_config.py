"""Tests for repro.config."""

from dataclasses import replace

import pytest

from repro import units
from repro.config import (
    DEFAULT_CONFIG,
    DEFAULT_SCALE,
    PAPER_CONFIG,
    EcoStorConfig,
    SimulationScale,
)
from repro.errors import ConfigurationError


class TestPaperConfig:
    """Table II values must be encoded exactly."""

    def test_break_even_time(self):
        assert PAPER_CONFIG.break_even_time == 52.0

    def test_spin_down_timeout_equals_break_even(self):
        assert PAPER_CONFIG.spin_down_timeout == PAPER_CONFIG.break_even_time

    def test_max_iops(self):
        assert PAPER_CONFIG.max_iops_random == 900.0
        assert PAPER_CONFIG.max_iops_sequential == 2800.0

    def test_cache_partitions(self):
        assert PAPER_CONFIG.storage_cache_bytes == 2 * units.GB
        assert PAPER_CONFIG.write_delay_cache_bytes == 500 * units.MB
        assert PAPER_CONFIG.preload_cache_bytes == 500 * units.MB

    def test_dirty_block_rate(self):
        assert PAPER_CONFIG.dirty_block_rate == 0.5

    def test_alpha(self):
        assert PAPER_CONFIG.monitoring_alpha == 1.2

    def test_initial_period_is_ten_break_evens(self):
        assert PAPER_CONFIG.initial_monitoring_period == 520.0

    def test_pdc_period(self):
        assert PAPER_CONFIG.pdc_monitoring_period == 30 * units.MINUTE

    def test_ddr_target_th(self):
        assert PAPER_CONFIG.ddr_target_th == 450.0

    def test_ddr_low_th_is_half_target(self):
        assert PAPER_CONFIG.ddr_low_th == 225.0

    def test_enclosure_size(self):
        assert PAPER_CONFIG.enclosure_size_bytes == int(1.7 * units.TB)

    def test_lru_cache_is_remainder(self):
        assert PAPER_CONFIG.lru_cache_bytes == 2 * units.GB - 1000 * units.MB

    def test_physical_break_even_consistent(self):
        physical = PAPER_CONFIG.enclosure_power.break_even_time
        assert physical == pytest.approx(52.0, rel=0.05)


class TestValidation:
    def test_alpha_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            replace(PAPER_CONFIG, monitoring_alpha=1.0)

    def test_negative_break_even_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(PAPER_CONFIG, break_even_time=-1.0)

    def test_cache_partition_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(
                PAPER_CONFIG,
                write_delay_cache_bytes=PAPER_CONFIG.storage_cache_bytes,
                preload_cache_bytes=PAPER_CONFIG.storage_cache_bytes,
            )

    def test_dirty_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            replace(PAPER_CONFIG, dirty_block_rate=0.0)
        with pytest.raises(ConfigurationError):
            replace(PAPER_CONFIG, dirty_block_rate=1.5)

    def test_service_headroom_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(PAPER_CONFIG, service_headroom=0.5)

    def test_inconsistent_power_model_rejected(self):
        # A configured break-even wildly off the power model's physical
        # break-even means the placement optimises the wrong hardware.
        with pytest.raises(ConfigurationError):
            replace(
                PAPER_CONFIG,
                break_even_time=500.0,
                spin_down_timeout=500.0,
                initial_monitoring_period=5000.0,
            )


class TestSimulationScale:
    def test_default_factor(self):
        assert DEFAULT_SCALE.iops_factor == pytest.approx(1 / 900)

    def test_iops_scaling(self):
        scale = SimulationScale(iops_factor=0.5)
        assert scale.iops(900) == 450.0

    def test_invalid_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationScale(iops_factor=0.0)
        with pytest.raises(ConfigurationError):
            SimulationScale(iops_factor=2.0)

    def test_size_factor_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationScale(size_factor=0.0)


class TestScaledConfig:
    def test_scaled_iops_fields(self):
        assert DEFAULT_CONFIG.max_iops_random == pytest.approx(1.0)
        assert DEFAULT_CONFIG.max_iops_sequential == pytest.approx(2800 / 900)
        assert DEFAULT_CONFIG.ddr_target_th == pytest.approx(0.5)
        assert DEFAULT_CONFIG.ddr_low_th == pytest.approx(0.25)

    def test_time_fields_unscaled(self):
        assert DEFAULT_CONFIG.break_even_time == PAPER_CONFIG.break_even_time
        assert (
            DEFAULT_CONFIG.initial_monitoring_period
            == PAPER_CONFIG.initial_monitoring_period
        )

    def test_byte_fields_unscaled(self):
        assert (
            DEFAULT_CONFIG.storage_cache_bytes
            == PAPER_CONFIG.storage_cache_bytes
        )

    def test_service_rates_include_headroom(self):
        assert DEFAULT_CONFIG.service_iops_random == pytest.approx(
            DEFAULT_CONFIG.max_iops_random * DEFAULT_CONFIG.service_headroom
        )

    def test_scaled_is_new_object(self):
        assert PAPER_CONFIG.scaled() is not PAPER_CONFIG
        assert isinstance(PAPER_CONFIG.scaled(), EcoStorConfig)
