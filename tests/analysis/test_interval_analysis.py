"""Tests for repro.analysis.intervals — Fig 17-19 curves."""

import pytest

from repro.analysis.intervals import (
    curve_summary_rows,
    interval_curve,
    total_long_interval_length,
)

BE = 52.0


class TestIntervalCurve:
    def test_only_long_gaps_contribute(self):
        curve = interval_curve([10.0, 60.0, 100.0, 51.9], BE)
        assert curve.lengths == (60.0, 100.0)
        assert curve.total_length == 160.0

    def test_cumulative_monotone(self):
        curve = interval_curve([100.0, 60.0, 80.0], BE)
        assert list(curve.cumulative) == sorted(curve.cumulative)
        assert curve.cumulative[-1] == pytest.approx(240.0)

    def test_cumulative_at_probes(self):
        curve = interval_curve([60.0, 100.0, 200.0], BE)
        assert curve.cumulative_at(59.0) == 0.0
        assert curve.cumulative_at(60.0) == 60.0
        assert curve.cumulative_at(150.0) == 160.0
        assert curve.cumulative_at(10_000.0) == 360.0

    def test_empty_curve(self):
        curve = interval_curve([10.0], BE)
        assert curve.total_length == 0.0
        assert curve.max_length == 0.0
        assert curve.cumulative_at(100.0) == 0.0

    def test_max_length(self):
        curve = interval_curve([60.0, 500.0], BE)
        assert curve.max_length == 500.0

    def test_break_even_boundary_excluded(self):
        curve = interval_curve([BE], BE)
        assert curve.total_length == 0.0

    def test_invalid_break_even(self):
        with pytest.raises(ValueError):
            interval_curve([], 0.0)


class TestCachedProbeArray:
    """cumulative_at precomputes its numpy array once per curve."""

    def test_probe_results_unchanged_after_caching(self):
        curve = interval_curve([60.0, 100.0, 200.0], BE)
        probes = (0.0, 59.0, 60.0, 150.0, 200.0, 10_000.0)
        first = [curve.cumulative_at(p) for p in probes]
        second = [curve.cumulative_at(p) for p in probes]
        assert first == second == [0.0, 0.0, 60.0, 160.0, 360.0, 360.0]

    def test_array_is_built_once_and_reused(self):
        curve = interval_curve([60.0, 100.0], BE)
        curve.cumulative_at(70.0)
        array = curve._lengths_array
        curve.cumulative_at(120.0)
        assert curve._lengths_array is array
        assert list(array) == list(curve.lengths)


class TestHelpers:
    def test_total_long_interval_length(self):
        assert total_long_interval_length([10.0, 60.0, 70.0], BE) == 130.0

    def test_summary_rows(self):
        curves = {
            "proposed": interval_curve([100.0, 700.0], BE),
            "ddr": interval_curve([], BE),
        }
        rows = curve_summary_rows(curves, probe_lengths=(120.0,))
        by_policy = {row["policy"]: row for row in rows}
        assert by_policy["proposed"]["total"] == 800.0
        assert by_policy["proposed"]["<= 120s"] == 100.0
        assert by_policy["ddr"]["total"] == 0.0
