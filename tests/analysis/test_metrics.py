"""Tests for repro.analysis.metrics."""

import pytest

from repro.analysis.metrics import (
    WindowResponse,
    power_saving_percent,
    query_response_time,
    relative_query_responses,
    transaction_throughput,
    window_read_responses,
)


class TestPowerSaving:
    def test_percentage(self):
        assert power_saving_percent(2977.9, 2209.2) == pytest.approx(
            25.8, abs=0.1
        )

    def test_zero_saving(self):
        assert power_saving_percent(100.0, 100.0) == 0.0

    def test_negative_saving_possible(self):
        assert power_saving_percent(100.0, 110.0) == pytest.approx(-10.0)

    def test_invalid_baseline(self):
        with pytest.raises(ValueError):
            power_saving_percent(0.0, 10.0)


class TestThroughputConversion:
    def test_unchanged_response_keeps_throughput(self):
        assert transaction_throughput(1859.5, 0.01, 0.01) == 1859.5

    def test_slower_reads_reduce_throughput(self):
        # The paper's Fig 12 relationship: slower reads => fewer tpmC.
        slower = transaction_throughput(1859.5, 0.01, 0.02)
        assert slower == pytest.approx(1859.5 / 2)

    def test_faster_reads_increase_throughput(self):
        faster = transaction_throughput(1000.0, 0.02, 0.01)
        assert faster == pytest.approx(2000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            transaction_throughput(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            transaction_throughput(1.0, 1.0, 0.0)


class TestQueryResponseConversion:
    def test_proportional_to_summed_responses(self):
        assert query_response_time(100.0, 30.0, 10.0) == pytest.approx(300.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            query_response_time(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            query_response_time(1.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            query_response_time(1.0, 1.0, 0.0)


class TestWindowResponses:
    WINDOWS = [("Q1", 0.0, 100.0), ("Q2", 100.0, 250.0)]

    def test_samples_bucketed_by_window(self):
        samples = [
            (10.0, 0.5, True),
            (50.0, 0.7, True),
            (150.0, 1.0, True),
        ]
        result = window_read_responses(samples, self.WINDOWS)
        assert result[0].read_count == 2
        assert result[0].read_response_sum == pytest.approx(1.2)
        assert result[1].read_count == 1

    def test_writes_ignored(self):
        samples = [(10.0, 0.5, False)]
        result = window_read_responses(samples, self.WINDOWS)
        assert result[0].read_count == 0

    def test_samples_outside_windows_ignored(self):
        samples = [(400.0, 0.5, True)]
        result = window_read_responses(samples, self.WINDOWS)
        assert all(w.read_count == 0 for w in result)

    def test_mean_read_response(self):
        window = WindowResponse("Q1", 0.0, 1.0, 4, 2.0)
        assert window.mean_read_response == pytest.approx(0.5)

    def test_empty_window_mean_is_zero(self):
        window = WindowResponse("Q1", 0.0, 1.0, 0, 0.0)
        assert window.mean_read_response == 0.0

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ValueError):
            window_read_responses(
                [], [("a", 0.0, 10.0), ("b", 5.0, 20.0)]
            )

    def test_unsorted_windows_handled(self):
        samples = [(10.0, 1.0, True)]
        result = window_read_responses(
            samples, [("late", 100.0, 200.0), ("early", 0.0, 50.0)]
        )
        by_name = {w.name: w for w in result}
        assert by_name["early"].read_count == 1


class TestRelativeQueryResponses:
    def test_ratio_scaling(self):
        baseline = [WindowResponse("Q1", 0.0, 100.0, 10, 5.0)]
        policy = [WindowResponse("Q1", 0.0, 100.0, 10, 15.0)]
        out = relative_query_responses(policy, baseline)
        # q_orig defaults to the window duration (100 s); 3x the reads.
        assert out["Q1"] == pytest.approx(300.0)

    def test_missing_baseline_skipped(self):
        policy = [WindowResponse("Q9", 0.0, 10.0, 1, 1.0)]
        assert relative_query_responses(policy, []) == {}

    def test_explicit_q_orig(self):
        baseline = [WindowResponse("Q1", 0.0, 100.0, 10, 5.0)]
        policy = [WindowResponse("Q1", 0.0, 100.0, 10, 10.0)]
        out = relative_query_responses(
            policy, baseline, q_orig_by_name={"Q1": 60.0}
        )
        assert out["Q1"] == pytest.approx(120.0)
