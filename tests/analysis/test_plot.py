"""Tests for repro.analysis.plot — terminal figures."""

from repro.analysis.intervals import interval_curve
from repro.analysis.plot import bar_chart, curves_overlay_summary, step_curve


class TestBarChart:
    def test_longest_bar_for_largest_value(self):
        text = bar_chart({"small": 1.0, "big": 4.0}, width=8)
        lines = {
            line.split()[0]: line.count("█") for line in text.splitlines()
        }
        assert lines["big"] == 8
        assert lines["small"] == 2

    def test_title_included(self):
        assert bar_chart({"a": 1.0}, title="Power").startswith("Power")

    def test_empty_values(self):
        assert bar_chart({}, title="Nothing") == "Nothing"

    def test_zero_values_render(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "0.0" in text

    def test_unit_suffix(self):
        assert "W" in bar_chart({"a": 5.0}, unit=" W")


class TestStepCurve:
    def test_empty_curve_message(self):
        curve = interval_curve([], 52.0)
        text = step_curve(curve, title="fig")
        assert "no intervals" in text

    def test_curve_renders_axes(self):
        curve = interval_curve([60.0, 120.0, 600.0], 52.0)
        text = step_curve(curve, title="fig18")
        assert text.startswith("fig18")
        assert "interval length" in text
        assert "█" in text

    def test_row_count(self):
        curve = interval_curve([60.0, 600.0], 52.0)
        lines = step_curve(curve, height=6).splitlines()
        # 6 grid rows + x-axis line + x labels.
        assert len(lines) == 8


class TestOverlaySummary:
    def test_totals_and_probes(self):
        curves = {
            "proposed": interval_curve([60.0, 700.0], 52.0),
            "ddr": interval_curve([], 52.0),
        }
        text = curves_overlay_summary(curves, probes=(100.0,))
        assert "proposed" in text and "ddr" in text
        assert "760" in text  # total
        assert "60" in text  # cumulative at 100 s
