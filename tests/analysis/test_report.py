"""Tests for repro.analysis.report."""

from repro import units
from repro.analysis.report import (
    PaperRow,
    gigabytes,
    percent,
    render_simple,
    render_table,
    seconds,
    watts,
)


class TestFormatters:
    def test_watts(self):
        assert watts(2977.94) == "2977.9 W"

    def test_percent(self):
        assert percent(25.83) == "25.8 %"

    def test_seconds_sub_second(self):
        assert seconds(0.0171) == "17.1 ms"

    def test_seconds_above_one(self):
        assert seconds(2.345) == "2.35 s"

    def test_gigabytes(self):
        assert gigabytes(23.1 * units.GB) == "23.10 GB"


class TestRenderTable:
    def test_contains_rows_and_header(self):
        rows = [
            PaperRow("power proposed", "2209.2 W", "2100.0 W", "close"),
            PaperRow("power pdc", "2873.9 W", "2900.0 W"),
        ]
        text = render_table("Fig 8", rows)
        assert "Fig 8" in text
        assert "paper" in text and "measured" in text
        assert "power proposed" in text
        assert "2209.2 W" in text
        assert "close" in text

    def test_alignment_consistent(self):
        rows = [PaperRow("a", "1", "2"), PaperRow("longer label", "3", "4")]
        lines = render_table("t", rows).splitlines()
        data = lines[3:]
        # Measured column starts at the same offset in every data line.
        positions = {line.rindex("  ") for line in data}
        assert len(positions) == 1


class TestRenderSimple:
    def test_key_values(self):
        text = render_simple("Summary", {"alpha": "1.2", "period": "520 s"})
        assert "Summary" in text
        assert "alpha" in text
        assert "520 s" in text

    def test_empty(self):
        assert render_simple("Empty", {}) == "Empty"
