"""Tests for repro.units."""

import pytest

from repro import units


class TestByteConstants:
    def test_kb(self):
        assert units.KB == 1024

    def test_mb(self):
        assert units.MB == 1024**2

    def test_gb(self):
        assert units.GB == 1024**3

    def test_tb(self):
        assert units.TB == 1024**4

    def test_block_size_is_4k(self):
        assert units.BLOCK_SIZE == 4096


class TestBytesToBlocks:
    def test_zero(self):
        assert units.bytes_to_blocks(0) == 0

    def test_one_byte_occupies_a_block(self):
        assert units.bytes_to_blocks(1) == 1

    def test_exact_block(self):
        assert units.bytes_to_blocks(units.BLOCK_SIZE) == 1

    def test_block_plus_one_rounds_up(self):
        assert units.bytes_to_blocks(units.BLOCK_SIZE + 1) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.bytes_to_blocks(-1)


class TestBlocksToBytes:
    def test_roundtrip_exact(self):
        assert units.blocks_to_bytes(7) == 7 * units.BLOCK_SIZE

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.blocks_to_bytes(-1)

    def test_inverse_of_bytes_to_blocks_for_multiples(self):
        size = 40 * units.BLOCK_SIZE
        assert units.blocks_to_bytes(units.bytes_to_blocks(size)) == size


class TestFormatBytes:
    def test_bytes(self):
        assert units.format_bytes(512) == "512 B"

    def test_kilobytes(self):
        assert units.format_bytes(2048) == "2.0 KB"

    def test_gigabytes(self):
        assert units.format_bytes(23.1 * units.GB) == "23.1 GB"

    def test_terabytes(self):
        assert units.format_bytes(3 * units.TB) == "3.0 TB"


class TestFormatDuration:
    def test_seconds(self):
        assert units.format_duration(52) == "52 sec"

    def test_minutes(self):
        assert units.format_duration(120) == "2 min"

    def test_hours(self):
        assert units.format_duration(6480) == "1.8 hr"
