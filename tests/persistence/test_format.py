"""Tests for the .ecsn snapshot envelope: every corruption mode refused."""

import pickle
import struct

import pytest

from repro.errors import SnapshotError
from repro.persistence.format import (
    FORMAT_VERSION,
    MAGIC,
    find_latest_valid,
    load_snapshot,
    snapshot_count,
    snapshot_filename,
    write_snapshot,
)

PAYLOAD = {"meta": {"count": 7, "ts": 1.5}, "states": {"kernel": {"x": 1}}}


class TestRoundTrip:
    def test_write_then_load_round_trips(self, tmp_path):
        path = tmp_path / snapshot_filename(7)
        write_snapshot(path, PAYLOAD)
        assert load_snapshot(path) == PAYLOAD

    def test_no_temp_files_left_behind(self, tmp_path):
        write_snapshot(tmp_path / snapshot_filename(1), PAYLOAD)
        assert [p.name for p in tmp_path.iterdir()] == [snapshot_filename(1)]

    def test_overwrite_is_atomic_replacement(self, tmp_path):
        path = tmp_path / snapshot_filename(1)
        write_snapshot(path, PAYLOAD)
        second = {"meta": {"count": 1, "ts": 9.0}, "states": {}}
        write_snapshot(path, second)
        assert load_snapshot(path) == second


class TestFilenames:
    def test_filename_encodes_count_sortably(self):
        assert snapshot_filename(42) == "snap-0000000042.ecsn"
        assert snapshot_filename(9) < snapshot_filename(10)

    def test_count_round_trips(self):
        assert snapshot_count(snapshot_filename(123456)) == 123456

    def test_foreign_names_rejected(self):
        with pytest.raises(SnapshotError):
            snapshot_count("checkpoint.bin")
        with pytest.raises(SnapshotError):
            snapshot_count("snap-abc.ecsn")


class TestRefusal:
    """Every way a file can be bad must raise SnapshotError — never a
    silent partial load."""

    def _written(self, tmp_path):
        path = tmp_path / snapshot_filename(3)
        write_snapshot(path, PAYLOAD)
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(tmp_path / "absent.ecsn")

    def test_short_header(self, tmp_path):
        path = tmp_path / "short.ecsn"
        path.write_bytes(b"ECSN")
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(path)

    def test_bad_magic(self, tmp_path):
        path = self._written(tmp_path)
        data = path.read_bytes()
        path.write_bytes(b"NOPE" + data[4:])
        with pytest.raises(SnapshotError, match="bad magic"):
            load_snapshot(path)

    def test_unsupported_version(self, tmp_path):
        path = self._written(tmp_path)
        data = bytearray(path.read_bytes())
        data[4:8] = struct.pack("<I", FORMAT_VERSION + 1)
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="unsupported format version"):
            load_snapshot(path)

    def test_truncated_payload(self, tmp_path):
        path = self._written(tmp_path)
        path.write_bytes(path.read_bytes()[:-5])
        with pytest.raises(SnapshotError, match="truncated or corrupt"):
            load_snapshot(path)

    def test_trailing_garbage(self, tmp_path):
        path = self._written(tmp_path)
        path.write_bytes(path.read_bytes() + b"tail")
        with pytest.raises(SnapshotError, match="truncated or corrupt"):
            load_snapshot(path)

    def test_flipped_payload_byte_fails_crc(self, tmp_path):
        path = self._written(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotError, match="CRC-32"):
            load_snapshot(path)

    def test_undecodable_payload(self, tmp_path):
        import zlib

        blob = b"\x80not a pickle"
        header = struct.pack(
            "<4sIQI", MAGIC, FORMAT_VERSION, len(blob),
            zlib.crc32(blob) & 0xFFFFFFFF,
        )
        path = tmp_path / "bad-pickle.ecsn"
        path.write_bytes(header + blob)
        with pytest.raises(SnapshotError, match="does not decode"):
            load_snapshot(path)

    def test_wrong_payload_shape(self, tmp_path):
        import zlib

        blob = pickle.dumps(["not", "a", "document"])
        header = struct.pack(
            "<4sIQI", MAGIC, FORMAT_VERSION, len(blob),
            zlib.crc32(blob) & 0xFFFFFFFF,
        )
        path = tmp_path / "wrong-shape.ecsn"
        path.write_bytes(header + blob)
        with pytest.raises(SnapshotError, match="meta/states"):
            load_snapshot(path)


class TestFindLatestValid:
    def test_empty_directory_has_none(self, tmp_path):
        assert find_latest_valid(tmp_path) is None

    def test_newest_valid_wins(self, tmp_path):
        for count in (100, 200, 300):
            write_snapshot(tmp_path / snapshot_filename(count), PAYLOAD)
        latest = find_latest_valid(tmp_path)
        assert latest is not None
        assert snapshot_count(latest) == 300

    def test_torn_newest_falls_back(self, tmp_path):
        for count in (100, 200):
            write_snapshot(tmp_path / snapshot_filename(count), PAYLOAD)
        newest = tmp_path / snapshot_filename(200)
        newest.write_bytes(newest.read_bytes()[:-3])
        latest = find_latest_valid(tmp_path)
        assert latest is not None
        assert snapshot_count(latest) == 100

    def test_all_invalid_gives_none(self, tmp_path):
        (tmp_path / snapshot_filename(1)).write_bytes(b"junk")
        assert find_latest_valid(tmp_path) is None
