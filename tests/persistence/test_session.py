"""Tests for SnapshotSession: resume bit-identity and refusal paths."""

from dataclasses import asdict

import pytest

from repro.errors import SnapshotError, ValidationError
from repro.experiments.testbed import build_workload
from repro.faults.plan import (
    CacheBatteryFailure,
    EnclosureOutage,
    FaultPlan,
    MigrationAbort,
    SlowSpinUp,
    SpinUpFailure,
)
from repro.persistence import (
    RunSpec,
    SnapshotSession,
    find_latest_valid,
    load_snapshot,
    snapshot_count,
)


class _InjectedCrash(Exception):
    pass


def _fault_plan() -> FaultPlan:
    first_item = build_workload("tpcc", False).items[0].item_id
    return FaultPlan(
        events=(
            SpinUpFailure(enclosure="enc-03", after=300.0, failures=2),
            SlowSpinUp(
                enclosure="enc-05", start=0.0, end=1800.0, multiplier=2.0
            ),
            EnclosureOutage(enclosure="enc-01", start=900.0, end=1200.0),
            CacheBatteryFailure(time=1500.0),
            MigrationAbort(item_id=first_item, after=600.0),
        )
    )


def _surface(result, session):
    timeline = (
        tuple(session.timeline.points)
        if session.timeline is not None
        else None
    )
    return (asdict(result), result.actions, timeline)


def _crash_and_resume(spec, snapshot_every, kill_at, directory):
    session = SnapshotSession(spec)

    def injector(count, ts):
        if count == kill_at:
            raise _InjectedCrash()

    with pytest.raises(_InjectedCrash):
        session.run(snapshot_every, directory, record_hook=injector)
    latest = find_latest_valid(directory)
    assert latest is not None
    fresh = SnapshotSession(spec)
    return fresh, fresh.resume(load_snapshot(latest)), snapshot_count(latest)


class TestResumeBitIdentity:
    def test_everything_cell_resumes_bit_identically(self, tmp_path):
        """The maximal configuration: proposed policy, fault plan,
        timeline, auditor armed across the seam."""
        spec = RunSpec(
            workload="tpcc",
            policy="proposed",
            audit=True,
            timeline_interval=300.0,
            faults_json=_fault_plan().to_json(),
        )
        golden_session = SnapshotSession(spec)
        golden = golden_session.run()
        fresh, resumed, resumed_from = _crash_and_resume(
            spec, 3000, golden.io_count * 2 // 3, tmp_path
        )
        assert resumed_from > 0
        assert _surface(resumed, fresh) == _surface(golden, golden_session)
        # The auditor kept checking after the seam, on restored cursors.
        assert fresh.auditor.checks_run == golden_session.auditor.checks_run

    def test_tiered_lifecycle_resumes_bit_identically(self, tmp_path):
        """The multi-tier testbed: promote/demote/archive records and
        the policy's temperature state all cross the seam, auditor
        (with its per-tier conservation checks) armed throughout."""
        spec = RunSpec(
            workload="fileserver",
            policy="tiered-lifecycle",
            audit=True,
            columnar=True,
        )
        golden_session = SnapshotSession(spec)
        golden = golden_session.run()
        fresh, resumed, resumed_from = _crash_and_resume(
            spec, 3000, golden.io_count * 2 // 3, tmp_path
        )
        assert resumed_from > 0
        assert _surface(resumed, fresh) == _surface(golden, golden_session)
        assert fresh.auditor.checks_run == golden_session.auditor.checks_run

    def test_columnar_pump_resumes_bit_identically(self, tmp_path):
        spec = RunSpec(workload="tpcc", policy="ddr", columnar=True)
        golden_session = SnapshotSession(spec)
        golden = golden_session.run()
        fresh, resumed, _ = _crash_and_resume(
            spec, 4000, golden.io_count // 2, tmp_path
        )
        assert _surface(resumed, fresh) == _surface(golden, golden_session)

    def test_crash_before_first_snapshot_leaves_no_file(self, tmp_path):
        spec = RunSpec(workload="tpcc", policy="no-power-saving")
        session = SnapshotSession(spec)

        def injector(count, ts):
            if count == 10:
                raise _InjectedCrash()

        with pytest.raises(_InjectedCrash):
            session.run(5000, tmp_path, record_hook=injector)
        assert find_latest_valid(tmp_path) is None


class TestRefusals:
    def _payload(self):
        spec = RunSpec(workload="tpcc", policy="pdc")
        session = SnapshotSession(spec)
        captured = {}

        def hook(count, ts):
            if count == 500:
                captured["payload"] = session.capture(count, ts)

        session.run(record_hook=hook)
        return spec, captured["payload"]

    def test_resume_with_different_spec_refused(self):
        _, payload = self._payload()
        other = SnapshotSession(RunSpec(workload="tpcc", policy="ddr"))
        with pytest.raises(SnapshotError, match="different run"):
            other.resume(payload)

    def test_missing_component_state_refused(self):
        spec, payload = self._payload()
        del payload["states"]["controller"]
        with pytest.raises(SnapshotError, match="missing component"):
            SnapshotSession(spec).resume(payload)

    def test_snapshot_every_without_dir_rejected(self):
        session = SnapshotSession(RunSpec(workload="tpcc", policy="pdc"))
        with pytest.raises(ValidationError, match="snapshot_dir"):
            session.run(snapshot_every=100)

    def test_negative_snapshot_every_rejected(self, tmp_path):
        session = SnapshotSession(RunSpec(workload="tpcc", policy="pdc"))
        with pytest.raises(ValidationError, match="non-negative"):
            session.run(snapshot_every=-1, snapshot_dir=tmp_path)


class TestRunSpec:
    def test_round_trips_through_dict(self):
        spec = RunSpec(
            workload="tpch",
            policy="proposed",
            full=True,
            audit=True,
            columnar=True,
            timeline_interval=60.0,
            faults_json=_fault_plan().to_json(),
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValidationError, match="unknown workload"):
            RunSpec(workload="mysql", policy="proposed")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValidationError, match="unknown policy"):
            RunSpec(workload="tpcc", policy="magic")

    def test_non_positive_timeline_interval_rejected(self):
        with pytest.raises(ValidationError, match="timeline_interval"):
            RunSpec(workload="tpcc", policy="pdc", timeline_interval=0.0)

    def test_fault_plan_decodes(self):
        plan = _fault_plan()
        spec = RunSpec(
            workload="tpcc", policy="pdc", faults_json=plan.to_json()
        )
        assert spec.fault_plan() == plan
        assert RunSpec(workload="tpcc", policy="pdc").fault_plan() is None
