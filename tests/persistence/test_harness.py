"""Tests for the crash-injection harness and its recovery report."""

import json

from repro.persistence import RunSpec, run_crash_sweep


class TestCrashSweep:
    def test_sweep_is_bit_identical_and_reports_ok(self, tmp_path):
        spec = RunSpec(workload="tpcc", policy="proposed", audit=True)
        report = run_crash_sweep(
            spec,
            snapshot_every=3000,
            trials=2,
            seed=11,
            workdir=tmp_path,
        )
        assert report.ok
        assert len(report.trials) == 2
        assert all(trial.identical for trial in report.trials)
        # The torn-write drill ran: truncation refused, fallback held.
        assert report.torn_write_fallback > 0
        assert report.torn_write_refused
        assert report.torn_write_recovered

    def test_sweep_is_seed_deterministic(self, tmp_path):
        spec = RunSpec(workload="tpcc", policy="no-power-saving")
        first = run_crash_sweep(
            spec, snapshot_every=5000, trials=2, seed=7,
            workdir=tmp_path / "a",
        )
        second = run_crash_sweep(
            spec, snapshot_every=5000, trials=2, seed=7,
            workdir=tmp_path / "b",
        )
        assert [t.kill_at for t in first.trials] == [
            t.kill_at for t in second.trials
        ]

    def test_report_serializes_and_renders(self, tmp_path):
        spec = RunSpec(workload="tpcc", policy="ddr")
        report = run_crash_sweep(
            spec, snapshot_every=4000, trials=1, seed=3, workdir=tmp_path
        )
        document = json.loads(report.to_json())
        assert document["spec"]["policy"] == "ddr"
        assert document["trials"][0]["identical"] is True
        text = report.render()
        assert "bit-identical" in text
        assert text.endswith("OK")
