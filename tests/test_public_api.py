"""Tests: the package's public surface stays consistent."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version_matches_pyproject(self):
        import tomllib
        from pathlib import Path

        pyproject = Path(repro.__file__).parents[2] / "pyproject.toml"
        data = tomllib.loads(pyproject.read_text())
        assert repro.__version__ == data["project"]["version"]

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_policies_importable_from_top_level(self):
        from repro import (
            DDRPolicy,
            EnergyEfficientPolicy,
            NoPowerSavingPolicy,
            PDCPolicy,
            PowerPolicy,
        )

        for cls in (
            DDRPolicy,
            EnergyEfficientPolicy,
            NoPowerSavingPolicy,
            PDCPolicy,
        ):
            assert issubclass(cls, PowerPolicy)

    def test_policy_names_unique(self):
        from repro import (
            DDRPolicy,
            EnergyEfficientPolicy,
            NoPowerSavingPolicy,
            PDCPolicy,
        )
        from repro.baselines.cacheonly import CacheOnlyPolicy
        from repro.baselines.zoned import ZonedPolicy

        names = {
            cls.name
            for cls in (
                DDRPolicy,
                EnergyEfficientPolicy,
                NoPowerSavingPolicy,
                PDCPolicy,
                CacheOnlyPolicy,
                ZonedPolicy,
            )
        }
        assert len(names) == 6

    @pytest.mark.parametrize(
        "module",
        [
            "repro.actions",
            "repro.analysis",
            "repro.baselines",
            "repro.core",
            "repro.experiments",
            "repro.monitoring",
            "repro.storage",
            "repro.trace",
            "repro.workloads",
        ],
    )
    def test_subpackages_import_cleanly(self, module):
        importlib.import_module(module)

    def test_py_typed_marker_shipped(self):
        from pathlib import Path

        assert (Path(repro.__file__).parent / "py.typed").exists()

    def test_docstrings_on_public_classes(self):
        from repro import (
            DDRPolicy,
            EcoStorConfig,
            EnergyEfficientPolicy,
            PDCPolicy,
            SimulationContext,
        )

        for obj in (
            DDRPolicy,
            EcoStorConfig,
            EnergyEfficientPolicy,
            PDCPolicy,
            SimulationContext,
        ):
            assert obj.__doc__ and len(obj.__doc__) > 20
