"""Post-run invariants of the manager's visible state."""

import pytest

from repro import units
from repro.config import DEFAULT_CONFIG
from repro.core.manager import EnergyEfficientPolicy
from repro.simulation import build_context
from repro.trace.replay import TraceReplayer
from repro.workloads import build_oltp_workload


@pytest.fixture(scope="module")
def completed_run():
    workload = build_oltp_workload(duration=2600.0)
    context = build_context(DEFAULT_CONFIG, workload.enclosure_count)
    workload.install(context)
    policy = EnergyEfficientPolicy()
    result = TraceReplayer(context, policy).run(
        workload.records, duration=workload.duration
    )
    return context, policy, result


class TestManagerInvariants:
    def test_hot_cold_partition(self, completed_run):
        context, policy, _ = completed_run
        for snapshot in policy.snapshots:
            hot, cold = set(snapshot.hot), set(snapshot.cold)
            assert hot | cold == set(context.enclosure_names())
            assert not hot & cold

    def test_power_off_enabled_iff_cold(self, completed_run):
        context, policy, _ = completed_run
        final = policy.snapshots[-1]
        for enclosure in context.enclosures:
            if enclosure.name in final.cold:
                assert enclosure.power_off_enabled, enclosure.name
            else:
                assert not enclosure.power_off_enabled, enclosure.name

    def test_hot_enclosures_never_spun_down(self, completed_run):
        context, policy, _ = completed_run
        stable_hot = set(policy.snapshots[0].hot)
        for snapshot in policy.snapshots:
            stable_hot &= set(snapshot.hot)
        for enclosure in context.enclosures:
            if enclosure.name in stable_hot:
                assert enclosure.spin_down_count == 0, enclosure.name

    def test_preload_budget_respected(self, completed_run):
        context, _, _ = completed_run
        preload = context.cache.preload
        assert preload.used_bytes <= preload.capacity_bytes

    def test_preloaded_items_live_on_cold_or_were_kept(self, completed_run):
        context, policy, _ = completed_run
        final_cold = set(policy.snapshots[-1].cold)
        for item in context.cache.preload.item_ids():
            enclosure = context.virtualization.enclosure_of(item).name
            assert enclosure in final_cold, item

    def test_pattern_counts_cover_all_items(self, completed_run):
        context, policy, _ = completed_run
        item_count = len(context.virtualization.item_ids())
        for snapshot in policy.snapshots:
            assert sum(snapshot.pattern_counts.values()) == item_count

    def test_snapshots_strictly_ordered_in_time(self, completed_run):
        _, policy, _ = completed_run
        times = [snapshot.time for snapshot in policy.snapshots]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_determinations_equal_snapshots(self, completed_run):
        _, policy, result = completed_run
        assert policy.determinations == len(policy.snapshots)
        assert result.determinations == policy.determinations

    def test_migrated_items_remain_resolvable(self, completed_run):
        context, _, _ = completed_run
        for item in context.virtualization.item_ids():
            enclosure, block = context.virtualization.resolve(item, 0)
            assert enclosure in context.virtualization.enclosure_names
            assert block >= 0
