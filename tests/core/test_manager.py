"""Tests for repro.core.manager — Algorithm 1 end to end."""

import pytest

from repro import units
from repro.config import DEFAULT_CONFIG
from repro.core.manager import EnergyEfficientPolicy
from repro.core.patterns import IOPattern
from repro.simulation import build_context, default_volume
from repro.trace.records import IOType, LogicalIORecord
from repro.trace.replay import TraceReplayer


def build_system(enclosures=4):
    context = build_context(DEFAULT_CONFIG, enclosures)
    return context


def place(context, item, size, enclosure_index):
    name = context.enclosure_names()[enclosure_index]
    context.virtualization.add_item(item, size, default_volume(name))
    context.app_monitor.register_item(item, default_volume(name))


def dense_trace(item, start, end, gap=20.0, read_ratio=0.6):
    """A P3-shaped stream: gaps below break-even."""
    records = []
    t = start
    toggle = 0
    while t < end:
        kind = IOType.READ if (toggle % 10) < read_ratio * 10 else IOType.WRITE
        records.append(LogicalIORecord(t, item, 0, 8192, kind))
        t += gap
        toggle += 1
    return records


def bursty_trace(item, start, end, burst_every=600.0, reads=5):
    """A P1-shaped stream: read bursts separated by long intervals."""
    records = []
    t = start
    while t < end:
        for k in range(reads):
            records.append(
                LogicalIORecord(t + k * 2.0, item, 0, 8192, IOType.READ)
            )
        t += burst_every
    return records


def run_manager(context, records, duration, **policy_kwargs):
    policy = EnergyEfficientPolicy(**policy_kwargs)
    replayer = TraceReplayer(context, policy)
    result = replayer.run(sorted(records), duration=duration)
    return policy, result


class TestManagementCycle:
    def test_runs_at_initial_period(self):
        context = build_system()
        place(context, "hot", 100 * units.MB, 0)
        records = dense_trace("hot", 0.0, 1200.0)
        policy, _ = run_manager(context, records, 1200.0)
        assert policy.snapshots
        assert policy.snapshots[0].time == pytest.approx(520.0)

    def test_determinations_counted(self):
        context = build_system()
        place(context, "hot", 100 * units.MB, 0)
        records = dense_trace("hot", 0.0, 1200.0)
        policy, result = run_manager(context, records, 1200.0)
        assert result.determinations == policy.determinations
        assert policy.determinations >= 2

    def test_patterns_recorded_in_snapshot(self):
        context = build_system()
        place(context, "hot", 100 * units.MB, 0)
        place(context, "quiet", 100 * units.MB, 1)
        records = dense_trace("hot", 0.0, 1200.0)
        policy, _ = run_manager(context, records, 1200.0)
        counts = policy.snapshots[0].pattern_counts
        assert counts[IOPattern.P3] == 1
        assert counts[IOPattern.P0] == 1


class TestHotColdControl:
    def test_cold_enclosures_get_power_off(self):
        context = build_system()
        place(context, "hot", 100 * units.MB, 0)
        place(context, "quiet", 100 * units.MB, 1)
        records = dense_trace("hot", 0.0, 1200.0)
        policy, _ = run_manager(context, records, 1200.0)
        split = policy.snapshots[-1]
        names = context.enclosure_names()
        hot_enclosures = set(split.hot)
        for enclosure in context.enclosures:
            if enclosure.name in hot_enclosures:
                assert not enclosure.power_off_enabled
            else:
                assert enclosure.power_off_enabled

    def test_quiet_system_everything_cold(self):
        context = build_system()
        place(context, "quiet", 100 * units.MB, 0)
        records = bursty_trace("quiet", 10.0, 2000.0)
        policy, _ = run_manager(context, records, 2000.0)
        assert policy.snapshots[-1].hot == ()

    def test_p3_consolidation_migrates(self):
        context = build_system()
        for index in range(4):
            place(context, f"hot-{index}", 100 * units.MB, index)
        records = []
        for index in range(4):
            records += dense_trace(f"hot-{index}", index * 1.0, 2000.0, gap=30.0)
        policy, result = run_manager(context, records, 2000.0)
        # ~0.13 IOPS of P3 fits one hot enclosure: items consolidate.
        assert result.migrated_bytes > 0
        split = policy.snapshots[-1]
        assert len(split.hot) < 4


class TestCacheControl:
    def test_preload_of_cold_p1(self):
        context = build_system()
        place(context, "reader", 10 * units.MB, 0)
        place(context, "hot", 100 * units.MB, 1)
        records = bursty_trace("reader", 10.0, 2000.0)
        records += dense_trace("hot", 0.0, 2000.0)
        policy, _ = run_manager(context, records, 2000.0)
        assert context.cache.preload.is_pinned("reader")

    def test_write_delay_of_cold_p2(self):
        context = build_system()
        place(context, "writer", 10 * units.MB, 0)
        place(context, "hot", 100 * units.MB, 1)
        writes = []
        t = 10.0
        while t < 2000.0:
            for k in range(6):
                writes.append(
                    LogicalIORecord(
                        t + k, "writer", k * 8192, 8192, IOType.WRITE
                    )
                )
            t += 300.0  # a write burst lands in every monitoring window
        records = writes + dense_trace("hot", 0.0, 2000.0)
        policy, _ = run_manager(context, records, 2000.0)
        assert context.cache.write_delay.is_selected("writer")
        assert any(s.write_delay_items > 0 for s in policy.snapshots)

    def test_ablation_flags_disable_mechanisms(self):
        context = build_system()
        place(context, "reader", 10 * units.MB, 0)
        place(context, "hot", 100 * units.MB, 1)
        records = bursty_trace("reader", 10.0, 2000.0)
        records += dense_trace("hot", 0.0, 2000.0)
        policy, result = run_manager(
            context,
            records,
            2000.0,
            enable_preload=False,
            enable_write_delay=False,
            enable_migration=False,
        )
        assert not context.cache.preload.item_ids()
        assert not context.cache.write_delay.selected_items()
        assert result.migrated_bytes == 0


class TestAdaptivePeriod:
    def test_period_never_drops_below_initial(self):
        context = build_system()
        place(context, "hot", 100 * units.MB, 0)
        records = dense_trace("hot", 0.0, 3000.0)
        policy, _ = run_manager(context, records, 3000.0)
        for snapshot in policy.snapshots:
            assert snapshot.next_period >= DEFAULT_CONFIG.initial_monitoring_period

    def test_fixed_period_ablation(self):
        context = build_system()
        place(context, "quiet", 100 * units.MB, 0)
        records = bursty_trace("quiet", 10.0, 3000.0, burst_every=2500.0)
        policy, _ = run_manager(
            context, records, 3000.0, adaptive_period=False
        )
        periods = {s.next_period for s in policy.snapshots}
        assert periods == {DEFAULT_CONFIG.initial_monitoring_period}

    def test_adaptive_period_grows_with_long_intervals(self):
        context = build_system()
        place(context, "quiet", 100 * units.MB, 0)
        # One burst only: the whole remaining window is a long interval.
        records = bursty_trace("quiet", 10.0, 500.0, burst_every=10_000.0)
        policy, _ = run_manager(context, records, 3000.0)
        assert policy.snapshots[-1].next_period > (
            DEFAULT_CONFIG.initial_monitoring_period
        )


class TestResilience:
    def test_empty_trace_is_fine(self):
        context = build_system()
        place(context, "quiet", 100 * units.MB, 0)
        policy, result = run_manager(context, [], 1200.0)
        assert result.io_count == 0
        assert policy.determinations >= 1

    def test_zero_length_window_skipped(self):
        context = build_system()
        place(context, "hot", 100 * units.MB, 0)
        policy = EnergyEfficientPolicy()
        policy.bind(context)
        policy.on_start(0.0)
        context.app_monitor.begin_window(100.0)
        policy.on_checkpoint(100.0)  # window length zero: no-op
        assert policy.snapshots == []
