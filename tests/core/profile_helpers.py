"""Helpers for building synthetic ItemProfiles in placement tests."""

from __future__ import annotations

from repro.core.intervals import Interval, IOSequence, ItemActivity
from repro.core.patterns import IOPattern, ItemProfile

WINDOW = 600.0
BUCKET = 60.0


def make_profile(
    item_id: str,
    pattern: IOPattern,
    enclosure: str,
    size_bytes: int = 1 << 30,
    mean_iops: float = 0.1,
    bucket_counts: tuple[int, ...] | None = None,
    read_count: int | None = None,
    write_count: int = 0,
    write_bytes: int = 0,
) -> ItemProfile:
    """Construct an ItemProfile without running the classifier.

    ``bucket_counts`` defaults to a flat distribution consistent with
    ``mean_iops`` over a 600 s window of 60 s buckets.
    """
    buckets = bucket_counts or tuple(
        [int(mean_iops * BUCKET)] * int(WINDOW / BUCKET)
    )
    total = read_count if read_count is not None else int(mean_iops * WINDOW)
    if pattern is IOPattern.P0:
        activity = ItemActivity(
            item_id, 0.0, WINDOW, (Interval(0.0, WINDOW),), ()
        )
    else:
        longs = (
            (Interval(100.0, 300.0),)
            if pattern is not IOPattern.P3
            else ()
        )
        sequences = (
            IOSequence(0.0, 99.0, max(total, 1), write_count),
        )
        activity = ItemActivity(item_id, 0.0, WINDOW, longs, sequences)
    peak = max(buckets) / BUCKET if buckets else 0.0
    return ItemProfile(
        item_id=item_id,
        pattern=pattern,
        activity=activity,
        size_bytes=size_bytes,
        enclosure=enclosure,
        mean_iops=mean_iops,
        peak_iops=peak,
        bucket_counts=buckets,
        read_count=max(total, 0),
        write_count=write_count,
        write_bytes=write_bytes,
        read_bytes=max(total, 0) * 4096,
    )
