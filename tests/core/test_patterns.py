"""Tests for repro.core.patterns — P0-P3 classification."""

import pytest

from repro.core.intervals import extract_activity
from repro.core.patterns import (
    IOPattern,
    build_profiles,
    classify,
    items_with_pattern,
    pattern_counts,
    pattern_fractions,
)
from repro.trace.records import IOType, LogicalIORecord

BE = 52.0


def classify_events(events, end=1000.0):
    return classify(extract_activity("x", events, 0.0, end, BE))


class TestClassify:
    def test_no_io_is_p0(self):
        assert classify_events([]) is IOPattern.P0

    def test_dense_io_is_p3(self):
        events = [(float(t), True) for t in range(0, 1000, 40)]
        assert classify_events(events) is IOPattern.P3

    def test_read_heavy_with_long_interval_is_p1(self):
        events = [(1.0, True), (2.0, True), (3.0, False)]
        assert classify_events(events) is IOPattern.P1

    def test_write_heavy_with_long_interval_is_p2(self):
        events = [(1.0, False), (2.0, False), (3.0, True)]
        assert classify_events(events) is IOPattern.P2

    def test_exactly_half_reads_is_p2(self):
        # Paper: "If more than half of the I/Os are read I/Os, then P1;
        # otherwise P2."
        events = [(1.0, True), (2.0, False)]
        assert classify_events(events) is IOPattern.P2

    def test_cold_friendliness(self):
        assert IOPattern.P0.is_cold_friendly
        assert IOPattern.P1.is_cold_friendly
        assert IOPattern.P2.is_cold_friendly
        assert not IOPattern.P3.is_cold_friendly


def rec(t, item, kind=IOType.READ, size=4096):
    return LogicalIORecord(t, item, 0, size, kind)


def profiles_for(records, sizes=None, end=1000.0):
    items = sizes or {"a": 1 << 20, "b": 1 << 20}
    locations = {item: "e0" for item in items}
    return build_profiles(records, 0.0, end, BE, items, locations)


class TestBuildProfiles:
    def test_items_without_io_are_p0(self):
        profiles = profiles_for([rec(1.0, "a")])
        assert profiles["b"].pattern is IOPattern.P0

    def test_mean_iops(self):
        records = [rec(float(t), "a") for t in range(10)]
        profiles = profiles_for(records, end=100.0)
        assert profiles["a"].mean_iops == pytest.approx(0.1)

    def test_peak_iops_reflects_bursts(self):
        # 10 I/Os inside one 60 s bucket of a 600 s window.
        records = [rec(float(t), "a") for t in range(10)]
        profiles = profiles_for(records, end=600.0)
        assert profiles["a"].peak_iops == pytest.approx(10 / 60.0)
        assert profiles["a"].mean_iops == pytest.approx(10 / 600.0)

    def test_bucket_counts_aligned_to_window(self):
        records = [rec(10.0, "a"), rec(70.0, "a")]
        profiles = profiles_for(records, end=120.0)
        assert profiles["a"].bucket_counts == (1, 1)

    def test_read_write_bytes(self):
        records = [
            rec(1.0, "a", IOType.READ, size=100),
            rec(2.0, "a", IOType.WRITE, size=300),
        ]
        profiles = profiles_for(records)
        assert profiles["a"].read_bytes == 100
        assert profiles["a"].write_bytes == 300

    def test_enclosure_and_size_attached(self):
        profiles = profiles_for([rec(1.0, "a")])
        assert profiles["a"].enclosure == "e0"
        assert profiles["a"].size_bytes == 1 << 20

    def test_reads_per_byte(self):
        records = [rec(float(t), "a") for t in range(4)]
        profiles = profiles_for(records, sizes={"a": 2})
        assert profiles["a"].reads_per_byte == pytest.approx(2.0)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            build_profiles([], 10.0, 10.0, BE, {}, {})

    def test_bad_bucket_rejected(self):
        with pytest.raises(ValueError):
            build_profiles([], 0.0, 10.0, BE, {}, {}, iops_bucket_seconds=0)


class TestAggregations:
    def test_pattern_counts(self):
        profiles = profiles_for([rec(1.0, "a")])
        counts = pattern_counts(profiles)
        assert counts[IOPattern.P0] == 1  # item b
        assert sum(counts.values()) == 2

    def test_pattern_fractions_sum_to_one(self):
        profiles = profiles_for([rec(1.0, "a")])
        fractions = pattern_fractions(profiles)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_pattern_fractions_empty(self):
        fractions = pattern_fractions({})
        assert all(v == 0.0 for v in fractions.values())

    def test_items_with_pattern_sorted(self):
        profiles = profiles_for([])
        p0_items = items_with_pattern(profiles, IOPattern.P0)
        assert [p.item_id for p in p0_items] == ["a", "b"]
