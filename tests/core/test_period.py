"""Tests for repro.core.period — the adaptive monitoring period."""

import pytest

from repro.core.patterns import IOPattern
from repro.core.period import collect_long_intervals, next_monitoring_period

from tests.core.profile_helpers import make_profile


class TestNextPeriod:
    def test_average_times_alpha(self):
        period = next_monitoring_period([100.0, 200.0], 520.0, 1.2, 7200.0)
        assert period == pytest.approx(150.0 * 1.2)

    def test_no_intervals_keeps_current(self):
        assert next_monitoring_period([], 520.0, 1.2, 7200.0) == 520.0

    def test_max_clamp(self):
        period = next_monitoring_period([100000.0], 520.0, 1.2, 7200.0)
        assert period == 7200.0

    def test_min_clamp(self):
        period = next_monitoring_period(
            [10.0], 520.0, 1.2, 7200.0, min_period=520.0
        )
        assert period == 520.0

    def test_growth_with_long_intervals(self):
        # Paper §IV-H: alpha > 1 grows the period when intervals exceed it.
        period = next_monitoring_period([600.0], 520.0, 1.2, 7200.0)
        assert period > 600.0

    def test_alpha_must_exceed_one(self):
        with pytest.raises(ValueError):
            next_monitoring_period([1.0], 520.0, 1.0, 7200.0)

    def test_bad_current_period(self):
        with pytest.raises(ValueError):
            next_monitoring_period([1.0], 0.0, 1.2, 7200.0)

    def test_bad_min_period(self):
        with pytest.raises(ValueError):
            next_monitoring_period([1.0], 520.0, 1.2, 100.0, min_period=200.0)


class TestCollectLongIntervals:
    def test_collects_across_items(self):
        profiles = {
            "p0": make_profile("p0", IOPattern.P0, "e0"),
            "p1": make_profile("p1", IOPattern.P1, "e0"),
            "p3": make_profile("p3", IOPattern.P3, "e0"),
        }
        lengths = collect_long_intervals(profiles)
        # P0 contributes the whole 600 s window; P1 a 200 s interval;
        # P3 nothing.
        assert sorted(lengths) == [200.0, 600.0]

    def test_empty(self):
        assert collect_long_intervals({}) == []
