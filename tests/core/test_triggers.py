"""Tests for repro.core.triggers — §V-D pattern-change triggers."""

import pytest

from repro.core.triggers import PatternChangeTriggers
from repro.monitoring.storage import StorageMonitor
from repro.storage.enclosure import DiskEnclosure
from repro.trace.records import IOType, PhysicalIORecord

BE = 52.0


def setup(count=2):
    encs = [DiskEnclosure(f"e{i}", spin_down_timeout=BE) for i in range(count)]
    monitor = StorageMonitor(encs)
    triggers = PatternChangeTriggers(BE)
    triggers.reset(0.0)
    return triggers, monitor, encs


def touch(monitor, t, enclosure="e0"):
    monitor.on_physical(PhysicalIORecord(t, enclosure, 0, 1, IOType.READ))


class TestGuards:
    def test_suppressed_within_one_break_even(self):
        triggers, monitor, _ = setup()
        # Even a glaring hot-idle condition stays quiet early on.
        result = triggers.check(BE * 0.9, ["e0"], ["e1"], monitor)
        assert not result.fired

    def test_invalid_break_even(self):
        with pytest.raises(ValueError):
            PatternChangeTriggers(0.0)


class TestHotIdleCondition:
    def test_fires_when_hot_enclosure_idles_past_break_even(self):
        triggers, monitor, _ = setup()
        touch(monitor, 10.0, "e0")
        result = triggers.check(10.0 + BE + 1.0, ["e0"], [], monitor)
        assert result.fired
        assert "e0" in result.reason

    def test_quiet_while_hot_stays_busy(self):
        triggers, monitor, _ = setup()
        touch(monitor, 10.0, "e0")
        touch(monitor, 60.0, "e0")
        result = triggers.check(100.0, ["e0"], [], monitor)
        assert not result.fired

    def test_never_touched_hot_counts_from_period_end(self):
        triggers, monitor, _ = setup()
        result = triggers.check(BE + 1.0, ["e0"], [], monitor)
        assert result.fired


class TestSpinUpBudget:
    def test_allowed_spin_ups_formula(self):
        triggers, _, _ = setup()
        assert triggers.allowed_spin_ups(BE) == pytest.approx(2.0)
        assert triggers.allowed_spin_ups(2 * BE) == pytest.approx(4.0)

    def test_fires_when_cold_enclosure_thrashes(self):
        # Note: with spin_down_timeout == break-even (the paper's Table
        # II setting) a real enclosure cannot cycle faster than once per
        # ~break-even, so condition (ii) only fires for shorter
        # timeouts; we inject the spin-up events directly to exercise
        # the budget comparison itself.
        triggers, monitor, encs = setup()
        cold = encs[1]
        now = 2 * BE
        cold.spin_up_events.extend([10.0, 30.0, 50.0, 70.0, 90.0, 100.0])
        touch(monitor, now - 1.0, "e0")
        result = triggers.check(now, ["e0"], ["e1"], monitor)
        # Budget at 2 x BE is 4; six spin-ups exceed it.
        assert result.fired
        assert "e1" in result.reason

    def test_quiet_when_spin_ups_within_budget(self):
        triggers, monitor, encs = setup()
        cold = encs[1]
        cold.enable_power_off(0.0)
        cold.settle(500.0)
        cold.submit(500.0)  # one spin-up
        touch(monitor, 499.0, "e0")
        result = triggers.check(500.0, ["e0"], ["e1"], monitor)
        assert not result.fired  # budget at t=500 is ~19

    def test_reset_moves_reference(self):
        triggers, monitor, _ = setup()
        touch(monitor, 10.0, "e0")
        triggers.reset(200.0)
        # Hot idle measured against the new reference: quiet right away.
        result = triggers.check(210.0, ["e0"], [], monitor)
        assert not result.fired
