"""Tests for repro.core.hotcold."""

import pytest

from repro.core.hotcold import (
    choose_hot_cold,
    determine_hot_cold,
    p3_peak_aggregate_iops,
    required_hot_count,
)
from repro.core.patterns import IOPattern

from tests.core.profile_helpers import BUCKET, make_profile

GB = 1 << 30


class TestPeakAggregate:
    def test_no_p3_items_gives_zero(self):
        profiles = {
            "a": make_profile("a", IOPattern.P1, "e0"),
        }
        assert p3_peak_aggregate_iops(profiles, BUCKET) == 0.0

    def test_coincident_buckets_add(self):
        profiles = {
            "a": make_profile(
                "a", IOPattern.P3, "e0", bucket_counts=(6, 0, 0)
            ),
            "b": make_profile(
                "b", IOPattern.P3, "e1", bucket_counts=(6, 0, 0)
            ),
        }
        assert p3_peak_aggregate_iops(
            profiles, BUCKET, percentile=100
        ) == pytest.approx(12 / BUCKET)

    def test_non_coincident_buckets_do_not_add(self):
        profiles = {
            "a": make_profile(
                "a", IOPattern.P3, "e0", bucket_counts=(6, 0)
            ),
            "b": make_profile(
                "b", IOPattern.P3, "e1", bucket_counts=(0, 6)
            ),
        }
        assert p3_peak_aggregate_iops(
            profiles, BUCKET, percentile=100
        ) == pytest.approx(6 / BUCKET)

    def test_percentile_suppresses_single_bucket_noise(self):
        # 19 quiet buckets + 1 spike: the default p95 ignores the spike.
        counts = tuple([6] * 19 + [60])
        profiles = {"a": make_profile("a", IOPattern.P3, "e0", bucket_counts=counts)}
        robust = p3_peak_aggregate_iops(profiles, BUCKET)
        strict = p3_peak_aggregate_iops(profiles, BUCKET, percentile=100)
        assert robust == pytest.approx(6 / BUCKET)
        assert strict == pytest.approx(60 / BUCKET)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            p3_peak_aggregate_iops({}, 0.0)
        with pytest.raises(ValueError):
            p3_peak_aggregate_iops({}, BUCKET, percentile=0)


class TestRequiredHotCount:
    def test_iops_bound(self):
        profiles = {
            f"i{k}": make_profile(
                f"i{k}", IOPattern.P3, "e0", size_bytes=GB,
                bucket_counts=(60,) * 10,
            )
            for k in range(3)
        }
        # Aggregate 3 IOPS, capacity 1 IOPS per enclosure -> 3 hot.
        n, i_max = required_hot_count(profiles, 1.0, 100 * GB, BUCKET)
        assert i_max == pytest.approx(3.0)
        assert n == 3

    def test_size_bound(self):
        profiles = {
            f"i{k}": make_profile(
                f"i{k}", IOPattern.P3, "e0", size_bytes=10 * GB,
                bucket_counts=(1,) * 10,
            )
            for k in range(4)
        }
        n, _ = required_hot_count(profiles, 100.0, 15 * GB, BUCKET)
        assert n == 3  # ceil(40 GB / 15 GB)

    def test_no_p3_needs_zero(self):
        profiles = {"a": make_profile("a", IOPattern.P1, "e0")}
        n, i_max = required_hot_count(profiles, 1.0, GB, BUCKET)
        assert n == 0
        assert i_max == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            required_hot_count({}, 0.0, GB, BUCKET)
        with pytest.raises(ValueError):
            required_hot_count({}, 1.0, 0, BUCKET)


class TestChooseHotCold:
    def enclosures(self):
        return ["e0", "e1", "e2", "e3"]

    def test_richest_p3_enclosures_become_hot(self):
        profiles = {
            "big": make_profile("big", IOPattern.P3, "e2", size_bytes=10 * GB),
            "small": make_profile("small", IOPattern.P3, "e0", size_bytes=GB),
        }
        split = choose_hot_cold(profiles, self.enclosures(), 1, 1.0)
        assert split.hot == ("e2",)
        assert "e0" in split.cold

    def test_n_hot_above_enclosure_count_selects_all(self):
        split = choose_hot_cold({}, self.enclosures(), 99, 0.0)
        assert set(split.hot) == set(self.enclosures())
        assert split.cold == ()

    def test_zero_hot(self):
        split = choose_hot_cold({}, self.enclosures(), 0, 0.0)
        assert split.hot == ()
        assert set(split.cold) == set(self.enclosures())

    def test_deterministic_tiebreak_by_name(self):
        split = choose_hot_cold({}, self.enclosures(), 2, 0.0)
        assert split.hot == ("e0", "e1")

    def test_hysteresis_prefers_current_hot(self):
        profiles = {
            "a": make_profile("a", IOPattern.P3, "e0", size_bytes=GB),
            "b": make_profile("b", IOPattern.P3, "e1", size_bytes=int(1.1 * GB)),
        }
        # Without preference e1 (more bytes) wins the single hot slot...
        free = choose_hot_cold(profiles, self.enclosures(), 1, 1.0)
        assert free.hot == ("e1",)
        # ...but a sticky preference for e0 keeps it hot on a near-tie.
        sticky = choose_hot_cold(
            profiles, self.enclosures(), 1, 1.0, preferred_hot={"e0"}
        )
        assert sticky.hot == ("e0",)

    def test_hysteresis_does_not_override_big_differences(self):
        profiles = {
            "a": make_profile("a", IOPattern.P3, "e0", size_bytes=GB),
            "b": make_profile("b", IOPattern.P3, "e1", size_bytes=10 * GB),
        }
        split = choose_hot_cold(
            profiles, self.enclosures(), 1, 1.0, preferred_hot={"e0"}
        )
        assert split.hot == ("e1",)

    def test_membership_helpers(self):
        split = choose_hot_cold({}, self.enclosures(), 2, 0.0)
        assert split.is_hot("e0")
        assert split.is_cold("e3")

    def test_invalid_stickiness(self):
        with pytest.raises(ValueError):
            choose_hot_cold({}, self.enclosures(), 1, 0.0, stickiness=0.5)

    def test_negative_n_hot_rejected(self):
        with pytest.raises(ValueError):
            choose_hot_cold({}, self.enclosures(), -1, 0.0)


class TestDetermineHotCold:
    def test_end_to_end(self):
        profiles = {
            f"i{k}": make_profile(
                f"i{k}", IOPattern.P3, f"e{k % 2}", size_bytes=GB,
                bucket_counts=(30,) * 10,
            )
            for k in range(4)
        }
        split = determine_hot_cold(
            profiles, ["e0", "e1", "e2"], 1.0, 100 * GB, BUCKET
        )
        # Aggregate 2 IOPS over capacity 1 -> 2 hot enclosures.
        assert split.n_hot == 2
        assert set(split.hot) == {"e0", "e1"}
