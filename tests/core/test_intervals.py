"""Tests for repro.core.intervals — the Fig 1 decomposition."""

import pytest

from repro.core.intervals import (
    Interval,
    IOSequence,
    activity_from_records,
    extract_activity,
)
from repro.trace.records import IOType, LogicalIORecord

BE = 52.0  # break-even time used throughout


def activity(events, start=0.0, end=1000.0, be=BE):
    return extract_activity("item", events, start, end, be)


class TestDataTypes:
    def test_interval_length(self):
        assert Interval(10.0, 60.0).length == 50.0

    def test_interval_rejects_reversed(self):
        with pytest.raises(ValueError):
            Interval(10.0, 5.0)

    def test_sequence_counts(self):
        seq = IOSequence(0.0, 10.0, read_count=3, write_count=2)
        assert seq.io_count == 5
        assert seq.duration == 10.0

    def test_sequence_must_contain_io(self):
        with pytest.raises(ValueError):
            IOSequence(0.0, 1.0, 0, 0)


class TestNoIO:
    def test_empty_window_is_one_long_interval(self):
        act = activity([])
        assert len(act.long_intervals) == 1
        assert act.long_intervals[0] == Interval(0.0, 1000.0)
        assert act.sequences == ()
        assert act.io_count == 0


class TestLongIntervalDetection:
    def test_gap_above_break_even_is_long(self):
        act = activity([(100.0, True), (200.0, True)])
        lengths = [i.length for i in act.long_intervals]
        assert 100.0 in lengths  # middle gap

    def test_gap_at_break_even_is_not_long(self):
        act = activity([(10.0, True), (10.0 + BE, True)], end=70.0)
        # Exactly break-even: not strictly longer.
        internal = [
            i for i in act.long_intervals if i.start == 10.0
        ]
        assert internal == []

    def test_leading_boundary_gap_counts(self):
        act = activity([(500.0, True)], end=510.0)
        assert Interval(0.0, 500.0) in act.long_intervals

    def test_trailing_boundary_gap_counts(self):
        act = activity([(5.0, True)], end=1000.0)
        assert Interval(5.0, 1000.0) in act.long_intervals

    def test_fig1_shape_three_longs_three_sequences(self):
        """Reconstruct Fig 1: three Long Intervals, three I/O Sequences,
        the last Long Interval ending at the window end."""
        events = []
        # Sequence 1 at the window start.
        events += [(1.0, True), (5.0, True)]
        # Long interval 1, then sequence 2.
        events += [(100.0, True), (110.0, False)]
        # Long interval 2, then sequence 3.
        events += [(300.0, False), (305.0, True)]
        act = activity(events, end=600.0)  # trailing 295 s = long #3
        assert len(act.long_intervals) == 3
        assert len(act.sequences) == 3
        assert act.long_intervals[-1].end == 600.0


class TestSequences:
    def test_single_run(self):
        act = activity([(1.0, True), (10.0, False), (20.0, True)])
        # 20 -> 1000 is a trailing long interval; one sequence.
        assert len(act.sequences) == 1
        seq = act.sequences[0]
        assert seq.read_count == 2
        assert seq.write_count == 1
        assert seq.start == 1.0
        assert seq.end == 20.0

    def test_short_internal_gaps_join_sequences(self):
        events = [(float(t), True) for t in range(0, 200, 40)]
        act = activity(events, end=210.0)
        assert len(act.sequences) == 1

    def test_long_gap_splits_sequences(self):
        act = activity([(1.0, True), (200.0, True)], end=210.0)
        assert len(act.sequences) == 2

    def test_counts_aggregate(self):
        act = activity(
            [(1.0, True), (2.0, False), (200.0, False)], end=210.0
        )
        assert act.read_count == 1
        assert act.write_count == 2
        assert act.io_count == 3


class TestValidation:
    def test_unordered_events_rejected(self):
        with pytest.raises(ValueError):
            activity([(5.0, True), (1.0, True)])

    def test_reversed_window_rejected(self):
        with pytest.raises(ValueError):
            extract_activity("x", [], 10.0, 5.0, BE)

    def test_non_positive_break_even_rejected(self):
        with pytest.raises(ValueError):
            extract_activity("x", [], 0.0, 10.0, 0.0)


class TestFromRecords:
    def test_wrapper_matches_raw_events(self):
        records = [
            LogicalIORecord(1.0, "x", 0, 1, IOType.READ),
            LogicalIORecord(200.0, "x", 0, 1, IOType.WRITE),
        ]
        act = activity_from_records("x", records, 0.0, 300.0, BE)
        raw = activity([(1.0, True), (200.0, False)], end=300.0)
        assert act.long_intervals == raw.long_intervals
        assert act.read_count == raw.read_count


class TestInvariantHelpers:
    def test_total_long_interval_length(self):
        act = activity([(500.0, True)], end=1000.0)
        assert act.total_long_interval_length == pytest.approx(1000.0)

    def test_has_long_interval(self):
        dense = activity(
            [(float(t), True) for t in range(0, 1000, 40)], end=1000.0
        )
        assert not dense.has_long_interval
