"""Tests for repro.core.placement — paper Algorithms 2 and 3."""

import pytest

from repro.core.hotcold import HotColdSplit
from repro.core.patterns import IOPattern
from repro.core.placement import (
    EnclosureLedger,
    HotSetTooSmall,
    determine_placement,
    plan_evacuation,
    plan_p3_consolidation,
)

from tests.core.profile_helpers import BUCKET, make_profile

GB = 1 << 30
ENCLOSURES = ["e0", "e1", "e2", "e3"]


def split(hot, cold, i_max=1.0):
    return HotColdSplit(hot=tuple(hot), cold=tuple(cold), i_max=i_max, n_hot=len(hot))


class TestEnclosureLedger:
    def test_initial_state_from_profiles(self):
        profiles = {
            "a": make_profile("a", IOPattern.P3, "e0", size_bytes=GB, mean_iops=0.2),
            "b": make_profile("b", IOPattern.P1, "e1", size_bytes=2 * GB, mean_iops=0.1),
        }
        ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
        assert ledger.used_bytes("e0") == GB
        assert ledger.used_bytes("e1") == 2 * GB
        assert ledger.mean_iops("e0") == pytest.approx(0.2)
        assert ledger.location("a") == "e0"

    def test_move_updates_projections(self):
        profiles = {
            "a": make_profile("a", IOPattern.P3, "e0", size_bytes=GB, mean_iops=0.2),
        }
        ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
        ledger.move("a", "e2")
        assert ledger.used_bytes("e0") == 0
        assert ledger.used_bytes("e2") == GB
        assert ledger.mean_iops("e2") == pytest.approx(0.2)
        assert ledger.location("a") == "e2"

    def test_peak_iops_from_buckets(self):
        profiles = {
            "a": make_profile(
                "a", IOPattern.P3, "e0", bucket_counts=(12, 0, 0)
            ),
        }
        ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
        assert ledger.peak_iops("e0") == pytest.approx(12 / BUCKET)
        assert ledger.peak_iops("e1") == 0.0

    def test_items_on(self):
        profiles = {
            "a": make_profile("a", IOPattern.P3, "e0"),
            "b": make_profile("b", IOPattern.P1, "e0"),
        }
        ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
        assert ledger.items_on("e0") == ["a", "b"]


class TestAlgorithm2:
    def test_p3_in_cold_moves_to_hot(self):
        profiles = {
            "hot-res": make_profile(
                "hot-res", IOPattern.P3, "e0", size_bytes=GB, mean_iops=0.1
            ),
            "mover": make_profile(
                "mover", IOPattern.P3, "e2", size_bytes=GB, mean_iops=0.1
            ),
        }
        ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
        plan = plan_p3_consolidation(
            ledger, split(["e0"], ["e1", "e2", "e3"]), 1.0, 100 * GB
        )
        moves = {m.item_id: m.target_enclosure for m in plan.moves}
        assert moves == {"mover": "e0"}

    def test_p3_already_hot_does_not_move(self):
        profiles = {
            "resident": make_profile("resident", IOPattern.P3, "e0"),
        }
        ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
        plan = plan_p3_consolidation(
            ledger, split(["e0"], ["e1", "e2", "e3"]), 1.0, 100 * GB
        )
        assert not plan

    def test_least_loaded_hot_enclosure_chosen(self):
        profiles = {
            "busy": make_profile("busy", IOPattern.P3, "e0", mean_iops=0.5),
            "calm": make_profile("calm", IOPattern.P3, "e1", mean_iops=0.01),
            "mover": make_profile("mover", IOPattern.P3, "e2", mean_iops=0.1),
        }
        ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
        plan = plan_p3_consolidation(
            ledger, split(["e0", "e1"], ["e2", "e3"]), 1.0, 100 * GB
        )
        assert plan.moves[0].target_enclosure == "e1"

    def test_iops_overflow_raises(self):
        profiles = {
            "resident": make_profile("resident", IOPattern.P3, "e0", mean_iops=0.9),
            "mover": make_profile("mover", IOPattern.P3, "e1", mean_iops=0.5),
        }
        ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
        with pytest.raises(HotSetTooSmall):
            plan_p3_consolidation(
                ledger, split(["e0"], ["e1", "e2", "e3"]), 1.0, 100 * GB
            )

    def test_empty_hot_set_with_p3_raises(self):
        profiles = {"p3": make_profile("p3", IOPattern.P3, "e0")}
        ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
        with pytest.raises(HotSetTooSmall):
            plan_p3_consolidation(
                ledger, split([], ENCLOSURES), 1.0, 100 * GB
            )

    def test_no_p3_no_moves(self):
        profiles = {"p1": make_profile("p1", IOPattern.P1, "e1")}
        ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
        plan = plan_p3_consolidation(
            ledger, split([], ENCLOSURES), 1.0, 100 * GB
        )
        assert not plan

    def test_unmovable_item_reported_stuck(self):
        profiles = {
            "log": make_profile("log", IOPattern.P3, "e3", mean_iops=1.5),
            "resident": make_profile("resident", IOPattern.P3, "e0", mean_iops=0.1),
        }
        ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
        stuck: set[str] = set()
        plan = plan_p3_consolidation(
            ledger,
            split(["e0"], ["e1", "e2", "e3"]),
            1.0,
            100 * GB,
            stuck_enclosures=stuck,
        )
        assert stuck == {"e3"}
        assert not plan  # log stays; resident already hot

    def test_size_overflow_triggers_evacuation(self):
        profiles = {
            "filler": make_profile(
                "filler", IOPattern.P1, "e0", size_bytes=8 * GB, mean_iops=0.01
            ),
            "resident": make_profile(
                "resident", IOPattern.P3, "e0", size_bytes=GB, mean_iops=0.1
            ),
            "mover": make_profile(
                "mover", IOPattern.P3, "e1", size_bytes=2 * GB, mean_iops=0.1
            ),
        }
        ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
        plan = plan_p3_consolidation(
            ledger, split(["e0"], ["e1", "e2", "e3"]), 1.0, 10 * GB
        )
        kinds = {(m.item_id, m.evacuation) for m in plan.moves}
        assert ("filler", True) in kinds  # Algorithm 3 freed space
        assert ("mover", False) in kinds

    def test_hottest_per_byte_moves_first(self):
        profiles = {
            "dense": make_profile(
                "dense", IOPattern.P3, "e1", size_bytes=GB, mean_iops=0.2
            ),
            "sparse": make_profile(
                "sparse", IOPattern.P3, "e2", size_bytes=4 * GB, mean_iops=0.2
            ),
            "anchor": make_profile(
                "anchor", IOPattern.P3, "e0", size_bytes=GB, mean_iops=0.01
            ),
        }
        ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
        plan = plan_p3_consolidation(
            ledger, split(["e0"], ["e1", "e2", "e3"]), 1.0, 100 * GB
        )
        assert plan.moves[0].item_id == "dense"


class TestAlgorithm3:
    def test_evacuates_to_busiest_cold(self):
        profiles = {
            "p1": make_profile(
                "p1", IOPattern.P1, "e0", size_bytes=2 * GB, mean_iops=0.01,
                bucket_counts=(1,) * 10,
            ),
            "coldload": make_profile(
                "coldload", IOPattern.P1, "e2", size_bytes=GB,
                bucket_counts=(6,) * 10,
            ),
        }
        ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
        from repro.storage.migration import PlacementPlan

        plan = PlacementPlan()
        freed = plan_evacuation(
            ledger, plan, "e0", GB, ["e1", "e2", "e3"], 1.0, 100 * GB
        )
        assert freed
        # e2 has the highest projected peak IOPS among cold enclosures.
        assert plan.moves[0].target_enclosure == "e2"
        assert plan.moves[0].evacuation

    def test_does_not_move_p3(self):
        profiles = {
            "p3": make_profile("p3", IOPattern.P3, "e0", size_bytes=2 * GB),
        }
        ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
        from repro.storage.migration import PlacementPlan

        plan = PlacementPlan()
        freed = plan_evacuation(
            ledger, plan, "e0", GB, ["e1"], 1.0, 100 * GB
        )
        assert not freed
        assert not plan

    def test_no_cold_enclosures_fails(self):
        profiles = {
            "p1": make_profile("p1", IOPattern.P1, "e0", size_bytes=2 * GB),
        }
        ledger = EnclosureLedger(ENCLOSURES, profiles, BUCKET)
        from repro.storage.migration import PlacementPlan

        assert not plan_evacuation(
            ledger, PlacementPlan(), "e0", GB, [], 1.0, 100 * GB
        )


class TestDeterminePlacement:
    def test_grows_hot_set_until_feasible(self):
        # Four P3 items at 0.4 IOPS each: one hot enclosure overflows
        # (1.6 > 1.0), two suffice (0.8 each).
        profiles = {
            f"i{k}": make_profile(
                f"i{k}", IOPattern.P3, f"e{k}", size_bytes=GB, mean_iops=0.4,
                bucket_counts=(24,) * 10,
            )
            for k in range(4)
        }
        split_result, plan = determine_placement(
            profiles, ENCLOSURES, 1.0, 100 * GB, BUCKET
        )
        assert split_result.n_hot >= 2
        assert len(split_result.cold) <= 2
        # Every P3 item ends on a hot enclosure.
        targets = {m.item_id: m.target_enclosure for m in plan.moves}
        for k in range(4):
            final = targets.get(f"i{k}", f"e{k}")
            assert final in split_result.hot

    def test_all_hot_when_everything_saturated(self):
        profiles = {
            f"i{k}": make_profile(
                f"i{k}", IOPattern.P3, f"e{k}", mean_iops=0.95,
                bucket_counts=(57,) * 10,
            )
            for k in range(4)
        }
        split_result, plan = determine_placement(
            profiles, ENCLOSURES, 1.0, 100 * GB, BUCKET
        )
        assert split_result.cold == ()
        assert not plan

    def test_no_p3_everything_cold(self):
        profiles = {
            "p1": make_profile("p1", IOPattern.P1, "e0"),
        }
        split_result, plan = determine_placement(
            profiles, ENCLOSURES, 1.0, 100 * GB, BUCKET
        )
        assert split_result.hot == ()
        assert not plan

    def test_stuck_enclosure_promoted_to_hot(self):
        profiles = {
            "log": make_profile(
                "log", IOPattern.P3, "e3", mean_iops=1.5,
                bucket_counts=(90,) * 10,
            ),
            "table": make_profile(
                "table", IOPattern.P3, "e0", size_bytes=5 * GB, mean_iops=0.1,
                bucket_counts=(6,) * 10,
            ),
        }
        split_result, _ = determine_placement(
            profiles, ENCLOSURES, 1.0, 100 * GB, BUCKET
        )
        assert "e3" in split_result.hot
        assert "e3" not in split_result.cold
