"""Tests for repro.core.cache_policy — write-delay and preload selection."""

import pytest

from repro import units
from repro.core.cache_policy import (
    estimate_dirty_bytes,
    select_preload_items,
    select_write_delay_items,
)
from repro.core.patterns import IOPattern

from tests.core.profile_helpers import make_profile

MB = units.MB
COLD = ["e1", "e2"]


def locations(profiles):
    return {p.item_id: p.enclosure for p in profiles.values()}


class TestEstimateDirtyBytes:
    def test_capped_by_item_size(self):
        profile = make_profile(
            "a", IOPattern.P2, "e1", size_bytes=MB, write_bytes=10 * MB
        )
        assert estimate_dirty_bytes(profile) == MB

    def test_write_bytes_when_smaller(self):
        profile = make_profile(
            "a", IOPattern.P2, "e1", size_bytes=10 * MB, write_bytes=MB
        )
        assert estimate_dirty_bytes(profile) == MB


class TestWriteDelaySelection:
    def test_all_cold_p2_selected(self):
        profiles = {
            "p2a": make_profile(
                "p2a", IOPattern.P2, "e1", write_count=20, write_bytes=MB
            ),
            "p2b": make_profile(
                "p2b", IOPattern.P2, "e2", write_count=5, write_bytes=MB
            ),
        }
        selected = select_write_delay_items(
            profiles, COLD, locations(profiles), 100 * MB
        )
        assert selected == {"p2a", "p2b"}

    def test_hot_p2_not_selected(self):
        profiles = {
            "hotp2": make_profile(
                "hotp2", IOPattern.P2, "e0", write_count=20, write_bytes=MB
            ),
        }
        assert (
            select_write_delay_items(
                profiles, COLD, locations(profiles), 100 * MB
            )
            == set()
        )

    def test_p1_with_many_writes_added_when_space(self):
        profiles = {
            "p1": make_profile(
                "p1", IOPattern.P1, "e1", write_count=10, write_bytes=MB
            ),
        }
        selected = select_write_delay_items(
            profiles, COLD, locations(profiles), 100 * MB
        )
        assert selected == {"p1"}

    def test_p1_below_write_threshold_excluded(self):
        profiles = {
            "p1": make_profile(
                "p1", IOPattern.P1, "e1", write_count=2, write_bytes=MB
            ),
        }
        assert (
            select_write_delay_items(
                profiles, COLD, locations(profiles), 100 * MB
            )
            == set()
        )

    def test_budget_respected(self):
        profiles = {
            "big": make_profile(
                "big", IOPattern.P2, "e1",
                size_bytes=80 * MB, write_count=50, write_bytes=80 * MB,
            ),
            "bigger": make_profile(
                "bigger", IOPattern.P2, "e1",
                size_bytes=80 * MB, write_count=10, write_bytes=80 * MB,
            ),
        }
        selected = select_write_delay_items(
            profiles, COLD, locations(profiles), 100 * MB
        )
        # Only the more-written item fits the 100 MB budget.
        assert selected == {"big"}

    def test_p0_p3_never_selected(self):
        profiles = {
            "p0": make_profile("p0", IOPattern.P0, "e1", write_bytes=MB),
            "p3": make_profile(
                "p3", IOPattern.P3, "e1", write_count=100, write_bytes=MB
            ),
        }
        assert (
            select_write_delay_items(
                profiles, COLD, locations(profiles), 100 * MB
            )
            == set()
        )

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            select_write_delay_items({}, COLD, {}, -1)


class TestPreloadSelection:
    def test_ranked_by_reads_per_byte(self):
        profiles = {
            "dense": make_profile(
                "dense", IOPattern.P1, "e1", size_bytes=MB, read_count=100
            ),
            "sparse": make_profile(
                "sparse", IOPattern.P1, "e1", size_bytes=50 * MB, read_count=100
            ),
        }
        selected = select_preload_items(
            profiles, COLD, locations(profiles), 40 * MB
        )
        assert selected == ["dense"]

    def test_budget_fills_greedily(self):
        profiles = {
            f"i{k}": make_profile(
                f"i{k}", IOPattern.P1, "e1", size_bytes=10 * MB,
                read_count=100 - k,
            )
            for k in range(5)
        }
        selected = select_preload_items(
            profiles, COLD, locations(profiles), 25 * MB
        )
        assert selected == ["i0", "i1"]

    def test_hot_items_excluded(self):
        profiles = {
            "hot": make_profile(
                "hot", IOPattern.P1, "e0", size_bytes=MB, read_count=100
            ),
        }
        assert (
            select_preload_items(profiles, COLD, locations(profiles), 100 * MB)
            == []
        )

    def test_p2_p3_excluded(self):
        profiles = {
            "p2": make_profile("p2", IOPattern.P2, "e1", read_count=100),
            "p3": make_profile("p3", IOPattern.P3, "e1", read_count=100),
        }
        assert (
            select_preload_items(profiles, COLD, locations(profiles), 1 << 40)
            == []
        )

    def test_pinned_items_kept_first(self):
        profiles = {
            "old": make_profile(
                "old", IOPattern.P1, "e1", size_bytes=30 * MB, read_count=1
            ),
            "new": make_profile(
                "new", IOPattern.P1, "e1", size_bytes=30 * MB, read_count=100
            ),
        }
        selected = select_preload_items(
            profiles,
            COLD,
            locations(profiles),
            40 * MB,
            already_pinned={"old"},
        )
        # Budget only fits one: the already-pinned item wins (re-reading
        # it costs nothing), even though "new" ranks higher.
        assert selected == ["old"]

    def test_pinned_p0_item_retained(self):
        profiles = {
            "quiet": make_profile(
                "quiet", IOPattern.P0, "e1", size_bytes=MB, read_count=0
            ),
        }
        selected = select_preload_items(
            profiles,
            COLD,
            locations(profiles),
            100 * MB,
            already_pinned={"quiet"},
        )
        assert selected == ["quiet"]

    def test_unpinned_p0_not_selected(self):
        profiles = {
            "quiet": make_profile(
                "quiet", IOPattern.P0, "e1", size_bytes=MB, read_count=0
            ),
        }
        assert (
            select_preload_items(profiles, COLD, locations(profiles), 100 * MB)
            == []
        )

    def test_oversized_item_skipped(self):
        profiles = {
            "huge": make_profile(
                "huge", IOPattern.P1, "e1", size_bytes=1 << 40, read_count=100
            ),
            "small": make_profile(
                "small", IOPattern.P1, "e1", size_bytes=MB, read_count=1
            ),
        }
        selected = select_preload_items(
            profiles, COLD, locations(profiles), 100 * MB
        )
        assert selected == ["small"]

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            select_preload_items({}, COLD, {}, -1)
