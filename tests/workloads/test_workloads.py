"""Tests for the three workload generators."""

import pytest

from repro import units
from repro.config import DEFAULT_CONFIG
from repro.core.patterns import IOPattern, build_profiles, pattern_fractions
from repro.errors import WorkloadError
from repro.simulation import build_context
from repro.trace.stats import summarize
from repro.workloads import (
    build_dss_workload,
    build_fileserver_workload,
    build_oltp_workload,
)
from repro.workloads.dss import QUERY_TABLES
from repro.workloads.items import DataItemSpec, Workload

SHORT = 2600.0  # covers several monitoring periods, fast to generate


def pattern_mix(workload):
    sizes = {i.item_id: i.size_bytes for i in workload.items}
    locations = {i.item_id: "x" for i in workload.items}
    profiles = build_profiles(
        workload.records,
        0.0,
        workload.duration,
        DEFAULT_CONFIG.break_even_time,
        sizes,
        locations,
    )
    return pattern_fractions(profiles)


class TestDeterminism:
    @pytest.mark.parametrize(
        "builder",
        [build_fileserver_workload, build_oltp_workload],
    )
    def test_same_seed_same_trace(self, builder):
        a = builder(seed=7, duration=SHORT)
        b = builder(seed=7, duration=SHORT)
        assert a.records == b.records

    def test_different_seed_different_trace(self):
        a = build_fileserver_workload(seed=1, duration=SHORT)
        b = build_fileserver_workload(seed=2, duration=SHORT)
        assert a.records != b.records


class TestFileServer:
    @pytest.fixture(scope="class")
    def workload(self):
        return build_fileserver_workload(duration=SHORT)

    def test_layout(self, workload):
        assert workload.enclosure_count == 12
        assert len(workload.volumes) == 36
        assert len(workload.items) == 360

    def test_records_time_ordered(self, workload):
        times = [r.timestamp for r in workload.records]
        assert times == sorted(times)

    def test_read_mostly(self, workload):
        summary = summarize(workload.records)
        assert summary.read_ratio > 0.6

    def test_every_item_placed_on_valid_enclosure(self, workload):
        for item in workload.items:
            assert 0 <= item.enclosure_index < 12

    def test_pattern_mix_matches_paper_fig6(self):
        # Full duration required: burst items need the 6 h horizon.
        workload = build_fileserver_workload()
        mix = pattern_mix(workload)
        assert mix[IOPattern.P1] == pytest.approx(0.896, abs=0.03)
        assert mix[IOPattern.P3] == pytest.approx(0.099, abs=0.03)
        assert mix[IOPattern.P0] == 0.0
        assert mix[IOPattern.P2] < 0.02

    def test_installs_into_context(self, workload):
        context = build_context(DEFAULT_CONFIG, workload.enclosure_count)
        workload.install(context)
        assert len(context.virtualization.item_ids()) == 360
        assert context.app_monitor.known_items() == set(workload.item_ids())

    def test_intensity_scales_rates(self):
        calm = build_fileserver_workload(duration=SHORT, intensity=1.0)
        busy = build_fileserver_workload(duration=SHORT, intensity=2.0)
        assert len(busy.records) > 1.4 * len(calm.records)

    def test_invalid_intensity_rejected(self):
        with pytest.raises(ValueError):
            build_fileserver_workload(intensity=0.0)


class TestOLTP:
    @pytest.fixture(scope="class")
    def workload(self):
        return build_oltp_workload(duration=SHORT)

    def test_layout(self, workload):
        assert workload.enclosure_count == 10
        assert len(workload.items) == 9 * 14 + 1

    def test_log_on_enclosure_zero(self, workload):
        log_items = [i for i in workload.items if i.kind == "log"]
        assert len(log_items) == 1
        assert log_items[0].enclosure_index == 0

    def test_log_is_sequential_write_stream(self, workload):
        log_records = [
            r for r in workload.records if r.item_id == "tpcc/log"
        ]
        assert log_records
        assert all(not r.is_read for r in log_records)
        assert all(r.sequential for r in log_records)

    def test_mixed_read_write(self, workload):
        summary = summarize(workload.records)
        assert 0.35 < summary.read_ratio < 0.65

    def test_pattern_mix_matches_paper_fig6(self):
        workload = build_oltp_workload()
        mix = pattern_mix(workload)
        assert mix[IOPattern.P3] == pytest.approx(0.762, abs=0.05)
        assert mix[IOPattern.P1] == pytest.approx(0.233, abs=0.05)
        assert mix[IOPattern.P0] == 0.0

    def test_reference_throughput_recorded(self, workload):
        assert workload.app_metrics["tpmC_without_power_saving"] == 1859.5


class TestDSS:
    @pytest.fixture(scope="class")
    def workload(self):
        return build_dss_workload(
            duration=4000.0, queries=("Q1", "Q2", "Q9")
        )

    def test_layout(self, workload):
        assert workload.enclosure_count == 9
        table_items = [i for i in workload.items if i.kind == "table"]
        assert len(table_items) == 8 * 8  # 8 tables x 8 partitions

    def test_phases_cover_selected_queries(self, workload):
        names = [name for name, _, _ in workload.phases]
        assert names == ["Q1", "Q2", "Q9"]

    def test_phases_are_contiguous(self, workload):
        for (_, _, end), (_, start, _) in zip(
            workload.phases, workload.phases[1:]
        ):
            assert start == pytest.approx(end)

    def test_scans_are_sequential_reads(self, workload):
        scans = [
            r
            for r in workload.records
            if r.item_id.startswith("tpch/lineitem")
        ]
        assert scans
        assert all(r.sequential for r in scans)
        assert all(r.is_read for r in scans)

    def test_q1_touches_only_lineitem(self, workload):
        q1_end = workload.phases[0][2]
        touched = {
            r.item_id.split("/")[1]
            for r in workload.records
            if r.timestamp < q1_end and r.item_id.startswith("tpch/")
            and not r.item_id.startswith("tpch/work")
            and r.item_id != "tpch/log"
        }
        assert touched == {"lineitem"}

    def test_spill_queries_write_work_files(self, workload):
        work = [r for r in workload.records if "work/Q9" in r.item_id]
        assert work
        writes = [r for r in work if not r.is_read]
        assert len(writes) > len(work) * 0.5

    def test_pattern_mix_matches_paper_fig6(self):
        workload = build_dss_workload()
        mix = pattern_mix(workload)
        assert mix[IOPattern.P1] == pytest.approx(0.615, abs=0.05)
        assert mix[IOPattern.P2] == pytest.approx(0.385, abs=0.05)
        assert mix[IOPattern.P3] == 0.0
        assert mix[IOPattern.P0] == 0.0

    def test_unknown_query_rejected(self):
        with pytest.raises(ValueError):
            build_dss_workload(queries=("Q99",))

    def test_query_tables_reference_known_tables(self):
        from repro.workloads.dss import TABLE_SIZES

        for tables in QUERY_TABLES.values():
            assert set(tables) <= set(TABLE_SIZES)

    def test_all_22_queries_defined(self):
        assert len(QUERY_TABLES) == 22


class TestWorkloadContainer:
    def test_rejects_item_outside_enclosures(self):
        with pytest.raises(WorkloadError):
            Workload(
                name="bad",
                duration=10.0,
                enclosure_count=2,
                items=[DataItemSpec("x", 1, 5)],
                records=[],
            )

    def test_rejects_unordered_records(self):
        from repro.trace.records import IOType, LogicalIORecord

        records = [
            LogicalIORecord(2.0, "x", 0, 1, IOType.READ),
            LogicalIORecord(1.0, "x", 0, 1, IOType.READ),
        ]
        with pytest.raises(WorkloadError):
            Workload(
                name="bad",
                duration=10.0,
                enclosure_count=1,
                items=[DataItemSpec("x", 1, 0)],
                records=records,
            )

    def test_install_requires_enough_enclosures(self):
        workload = build_oltp_workload(duration=SHORT)
        context = build_context(DEFAULT_CONFIG, 2)
        with pytest.raises(WorkloadError):
            workload.install(context)

    def test_item_spec_validation(self):
        with pytest.raises(WorkloadError):
            DataItemSpec("x", 0, 0)
        with pytest.raises(WorkloadError):
            DataItemSpec("x", 1, -1)
