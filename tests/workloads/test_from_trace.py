"""Tests for repro.workloads.from_trace — trace ingestion."""

import io

import pytest

from repro import units
from repro.baselines.nopower import NoPowerSavingPolicy
from repro.config import DEFAULT_CONFIG
from repro.errors import WorkloadError
from repro.experiments.runner import run_cell
from repro.trace.records import IOType, LogicalIORecord
from repro.trace.writer import write_logical_trace
from repro.workloads.from_trace import (
    SIZE_QUANTUM,
    infer_item_sizes,
    workload_from_csv,
    workload_from_msr,
    workload_from_records,
)


def rec(t, item="a", offset=0, size=4096):
    return LogicalIORecord(t, item, offset, size, IOType.READ)


class TestInferItemSizes:
    def test_size_covers_highest_touch(self):
        sizes = infer_item_sizes([rec(0.0, "a", offset=50 * units.MB)])
        assert sizes["a"] >= 50 * units.MB + 4096
        assert sizes["a"] % SIZE_QUANTUM == 0

    def test_multiple_items(self):
        sizes = infer_item_sizes([rec(0.0, "a"), rec(1.0, "b", offset=10**9)])
        assert sizes["b"] > sizes["a"]

    def test_slack_quantum(self):
        sizes = infer_item_sizes([rec(0.0, "a", offset=0, size=1)])
        assert sizes["a"] == SIZE_QUANTUM


class TestWorkloadFromRecords:
    def test_round_robin_placement(self):
        records = [rec(float(i), f"item-{i}") for i in range(6)]
        workload = workload_from_records(records, enclosure_count=3)
        indices = [item.enclosure_index for item in workload.items]
        assert sorted(indices) == [0, 0, 1, 1, 2, 2]

    def test_duration_extends_past_last_record(self):
        workload = workload_from_records([rec(100.0)], enclosure_count=2)
        assert workload.duration > 100.0

    def test_records_sorted(self):
        records = [rec(5.0, "a"), rec(1.0, "b")]
        workload = workload_from_records(records, enclosure_count=2)
        assert [r.timestamp for r in workload.records] == [1.0, 5.0]

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            workload_from_records([], enclosure_count=2)

    def test_bad_enclosure_count_rejected(self):
        with pytest.raises(WorkloadError):
            workload_from_records([rec(0.0)], enclosure_count=0)

    def test_replayable_end_to_end(self):
        records = [rec(float(i), f"item-{i % 3}", offset=i * 8192)
                   for i in range(30)]
        workload = workload_from_records(records, enclosure_count=2)
        result = run_cell(workload, NoPowerSavingPolicy(), DEFAULT_CONFIG)
        assert result.replay.io_count == 30


class TestCsvIngestion:
    def test_round_trip_from_csv(self, tmp_path):
        records = [rec(float(i), "x", offset=i * 4096) for i in range(5)]
        path = tmp_path / "trace.csv"
        write_logical_trace(records, path)
        workload = workload_from_csv(path, enclosure_count=2)
        assert workload.records == records
        assert workload.item_ids() == ["x"]

    def test_round_trip_preserves_pattern_classification(self, tmp_path):
        """Regression: the synthetic tail after the last record must stay
        below the break-even time, or every end-active item gains an
        artificial Long Interval and P3 items misclassify as P1."""
        from repro.core.patterns import IOPattern, build_profiles, classify
        from repro.experiments.fig06_patterns import measure_pattern_mix
        from repro.experiments.testbed import build_workload
        from repro.trace.writer import write_logical_trace as write

        original = build_workload("tpcc", full=False)
        path = tmp_path / "tpcc.csv"
        write(original.records, path)
        round_tripped = workload_from_csv(path, enclosure_count=10)
        a = measure_pattern_mix(original)
        b = measure_pattern_mix(round_tripped)
        for pattern in IOPattern:
            assert a[pattern] == pytest.approx(b[pattern], abs=0.01)


class TestMsrIngestion:
    MSR = (
        "128166372003061629,usr,0,Read,7014609920,24576,41286\n"
        "128166372016382155,usr,0,Write,2517254144,4096,703880\n"
        "128166372026382155,proj,1,Read,1024,8192,1337\n"
    )

    def test_items_are_host_disk_pairs(self):
        workload = workload_from_msr(io.StringIO(self.MSR), enclosure_count=2)
        assert sorted(workload.item_ids()) == ["proj.1", "usr.0"]

    def test_sizes_cover_msr_offsets(self):
        workload = workload_from_msr(io.StringIO(self.MSR), enclosure_count=2)
        usr = next(i for i in workload.items if i.item_id == "usr.0")
        assert usr.size_bytes > 7014609920
