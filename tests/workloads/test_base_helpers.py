"""Direct tests for the workload event-stream building blocks."""

import numpy as np
import pytest

from repro import units
from repro.workloads.base import (
    EventStream,
    burst_events,
    merge_streams,
    scan_events,
    steady_events,
    steady_with_lulls_events,
)

RNG = lambda: np.random.default_rng(5)  # noqa: E731
SIZE = 100 * units.MB
DURATION = 2000.0


class TestSteadyEvents:
    def test_gaps_within_bounds(self):
        stream = steady_events(RNG(), "a", SIZE, DURATION, 5.0, 20.0, 0.5)
        gaps = np.diff(stream.times)
        assert gaps.min() >= 5.0 - 1e-9
        assert gaps.max() <= 20.0 + 1e-9

    def test_stream_reaches_window_end(self):
        stream = steady_events(RNG(), "a", SIZE, DURATION, 5.0, 20.0, 0.5)
        # No truncated tail: the last event is within one max-gap of the
        # end (otherwise a spurious Long Interval appears).
        assert stream.times[-1] > DURATION - 20.0
        assert stream.times[-1] < DURATION

    def test_read_fraction_respected(self):
        stream = steady_events(RNG(), "a", SIZE, DURATION, 1.0, 3.0, 0.8)
        assert stream.is_read.mean() == pytest.approx(0.8, abs=0.05)

    def test_offsets_inside_item(self):
        stream = steady_events(RNG(), "a", SIZE, DURATION, 5.0, 20.0, 0.5)
        assert (stream.offsets >= 0).all()
        assert (stream.offsets < SIZE).all()

    def test_invalid_gaps_rejected(self):
        with pytest.raises(ValueError):
            steady_events(RNG(), "a", SIZE, DURATION, 0.0, 20.0, 0.5)
        with pytest.raises(ValueError):
            steady_events(RNG(), "a", SIZE, DURATION, 30.0, 20.0, 0.5)


class TestLullEvents:
    def test_has_both_short_gaps_and_lulls(self):
        stream = steady_with_lulls_events(
            RNG(), "a", SIZE, 20_000.0, 10.0, 40.0, 0.1, 200.0, 800.0, 0.9
        )
        gaps = np.diff(stream.times)
        assert (gaps <= 40.0).any()
        assert (gaps >= 200.0).any()

    def test_lull_fraction_roughly_right(self):
        stream = steady_with_lulls_events(
            RNG(), "a", SIZE, 50_000.0, 10.0, 40.0, 0.1, 200.0, 800.0, 0.9
        )
        gaps = np.diff(stream.times)
        lulls = (gaps > 100.0).mean()
        assert lulls == pytest.approx(0.1, abs=0.04)

    def test_validation(self):
        with pytest.raises(ValueError):
            steady_with_lulls_events(
                RNG(), "a", SIZE, DURATION, 10.0, 40.0, 1.5, 200.0, 800.0, 0.9
            )


class TestBurstEvents:
    def test_interburst_floor_respected(self):
        stream = burst_events(
            RNG(), "a", SIZE, 30_000.0,
            mean_interburst=2000.0, min_interburst=500.0,
            burst_size_low=10, burst_size_high=20,
            burst_duration_low=5.0, burst_duration_high=15.0,
            read_fraction=0.9,
        )
        gaps = np.diff(stream.times)
        # Gaps above the burst span must be at least the floor.
        big = gaps[gaps > 15.0]
        assert (big >= 500.0 - 1e-9).all()

    def test_at_least_one_burst_guaranteed(self):
        # Even with an absurd inter-burst time, the item is accessed
        # once (Fig 6: no P0 items).
        stream = burst_events(
            RNG(), "a", SIZE, 100.0,
            mean_interburst=10**9, min_interburst=10**9,
            burst_size_low=5, burst_size_high=10,
            burst_duration_low=5.0, burst_duration_high=10.0,
            read_fraction=0.9,
        )
        assert len(stream.times) > 0
        assert stream.times[-1] < 100.0

    def test_burst_sizes_within_bounds(self):
        stream = burst_events(
            RNG(), "a", SIZE, 50_000.0,
            mean_interburst=3000.0, min_interburst=1000.0,
            burst_size_low=10, burst_size_high=12,
            burst_duration_low=5.0, burst_duration_high=10.0,
            read_fraction=0.9,
        )
        gaps = np.diff(stream.times)
        boundaries = np.where(gaps > 100.0)[0]
        sizes = np.diff(np.concatenate([[0], boundaries + 1, [len(stream.times)]]))
        # Interior bursts respect the configured size range (the last
        # may be truncated by the window end).
        for size in sizes[:-1]:
            assert 10 <= size <= 12

    def test_validation(self):
        with pytest.raises(ValueError):
            burst_events(
                RNG(), "a", SIZE, DURATION,
                mean_interburst=0.0, min_interburst=1.0,
                burst_size_low=1, burst_size_high=2,
                burst_duration_low=1.0, burst_duration_high=2.0,
                read_fraction=0.5,
            )


class TestScanEvents:
    def test_event_count_matches_rate(self):
        stream = scan_events(RNG(), "a", SIZE, 100.0, 50.0, iops=2.0)
        assert len(stream.times) == 100

    def test_times_confined_to_phase(self):
        stream = scan_events(RNG(), "a", SIZE, 100.0, 50.0, iops=2.0)
        assert stream.times.min() >= 100.0
        assert stream.times.max() <= 150.0

    def test_offsets_monotone_modulo_wrap(self):
        stream = scan_events(
            RNG(), "a", 10 * units.MB, 0.0, 10.0, iops=1.0,
            io_size=units.MB,
        )
        diffs = np.diff(stream.offsets)
        # Sequential advance except at wrap points.
        assert ((diffs == units.MB) | (diffs < 0)).all()

    def test_sequential_flag_set(self):
        stream = scan_events(RNG(), "a", SIZE, 0.0, 10.0, iops=1.0)
        assert stream.sequential

    def test_validation(self):
        with pytest.raises(ValueError):
            scan_events(RNG(), "a", SIZE, 0.0, 0.0, iops=1.0)


class TestMergeStreams:
    def test_merged_trace_time_ordered(self):
        a = steady_events(RNG(), "a", SIZE, 500.0, 5.0, 10.0, 0.5)
        b = steady_events(RNG(), "b", SIZE, 500.0, 3.0, 8.0, 0.5)
        records = merge_streams([a, b])
        times = [r.timestamp for r in records]
        assert times == sorted(times)
        assert len(records) == len(a.times) + len(b.times)

    def test_empty_streams_dropped(self):
        empty = EventStream(
            "e",
            np.empty(0),
            np.empty(0, dtype=bool),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
        a = steady_events(RNG(), "a", SIZE, 100.0, 5.0, 10.0, 0.5)
        records = merge_streams([empty, a])
        assert len(records) == len(a.times)

    def test_no_streams(self):
        assert merge_streams([]) == []

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            EventStream(
                "x",
                np.array([1.0]),
                np.array([], dtype=bool),
                np.array([0]),
                np.array([4096]),
            )
