"""Structural tests for the DSS generator's query timeline."""

import pytest

from repro.workloads.dss import (
    QUERY_TABLES,
    SCAN_DUTY,
    TABLE_SIZES,
    _query_durations,
    build_dss_workload,
)


class TestQueryDurations:
    def test_durations_cover_total(self):
        durations = _query_durations(21600.0)
        assert sum(durations.values()) == pytest.approx(21600.0)

    def test_heavier_queries_run_longer(self):
        durations = _query_durations(21600.0)
        # Q8 references seven tables incl. lineitem; Q11 three small ones.
        assert durations["Q8"] > durations["Q11"]

    def test_every_query_has_a_duration(self):
        durations = _query_durations(21600.0)
        assert set(durations) == set(QUERY_TABLES)


class TestScanWindows:
    @pytest.fixture(scope="class")
    def workload(self):
        return build_dss_workload(duration=3000.0, queries=("Q6", "Q9"))

    def test_scans_confined_to_scan_window(self, workload):
        for name, start, end in workload.phases:
            window_end = start + (end - start) * SCAN_DUTY
            scans = [
                r
                for r in workload.records
                if start <= r.timestamp < end
                and r.item_id.startswith("tpch/")
                and "/work/" not in r.item_id
                and r.item_id != "tpch/log"
            ]
            assert scans, name
            # All table reads land inside the scan window (+jitter).
            assert max(r.timestamp for r in scans) <= window_end + 60.0

    def test_compute_tail_is_quiet_on_db_enclosures(self, workload):
        name, start, end = workload.phases[0]
        tail_start = start + (end - start) * SCAN_DUTY + 60.0
        tail_records = [
            r
            for r in workload.records
            if tail_start <= r.timestamp < end
            and "/work/" not in r.item_id
            and r.item_id != "tpch/log"
        ]
        assert tail_records == []

    def test_scans_cover_all_db_partitions_of_referenced_tables(
        self, workload
    ):
        name, start, end = workload.phases[1]  # Q9
        touched = {
            r.item_id
            for r in workload.records
            if start <= r.timestamp < end
            and r.item_id.startswith("tpch/lineitem")
        }
        assert len(touched) == 8  # all stripes

    def test_table_sizes_are_at_documented_scale(self):
        # lineitem at SF=100 is ~75 GB; we ship 1/8 of that.
        assert TABLE_SIZES["lineitem"] == pytest.approx(
            75 * 2**30 / 8, rel=0.01
        )
