"""Chaos harness: seeded plan builders and the policy × fault sweep."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.faults.chaos import PLAN_KINDS, build_fault_plan, run_chaos

NAMES = [f"enc-{i:02d}" for i in range(4)]
ITEMS = [f"item-{i}" for i in range(8)]
DURATION = 2400.0


class TestPlanBuilder:
    def test_same_seed_same_plan(self) -> None:
        for kind in PLAN_KINDS:
            a = build_fault_plan(kind, 11, DURATION, NAMES, ITEMS)
            b = build_fault_plan(kind, 11, DURATION, NAMES, ITEMS)
            assert a == b
            assert a.fingerprint() == b.fingerprint()

    def test_seeds_diverge(self) -> None:
        a = build_fault_plan("storm", 1, DURATION, NAMES, ITEMS)
        b = build_fault_plan("storm", 2, DURATION, NAMES, ITEMS)
        assert a.fingerprint() != b.fingerprint()

    def test_baseline_is_the_empty_plan(self) -> None:
        assert not build_fault_plan("baseline", 11, DURATION, NAMES, ITEMS)

    def test_every_other_kind_is_truthy(self) -> None:
        for kind in PLAN_KINDS[1:]:
            assert build_fault_plan(kind, 11, DURATION, NAMES, ITEMS)

    def test_unknown_kind_rejected(self) -> None:
        with pytest.raises(ValidationError):
            build_fault_plan("disk-on-fire", 11, DURATION, NAMES, ITEMS)

    def test_event_times_inside_run_window(self) -> None:
        # Faults land in the run's middle: never the warm-up 10 %,
        # never the final 5 % (so post-fault behaviour is observable).
        for kind in PLAN_KINDS[1:]:
            plan = build_fault_plan(kind, 23, DURATION, NAMES, ITEMS)
            for event in plan.events:
                for attr in ("after", "start", "time"):
                    value = getattr(event, attr, None)
                    if value is not None:
                        assert 0.1 * DURATION <= value <= 0.95 * DURATION
                end = getattr(event, "end", None)
                if end is not None:
                    assert end <= 0.95 * DURATION


class TestSweep:
    def test_small_sweep_passes_and_reproduces(self) -> None:
        kwargs = dict(
            workload="tpcc",
            seeds=(11,),
            policies=("no-power-saving",),
            kinds=("baseline", "battery"),
            jobs=1,
        )
        first = run_chaos(**kwargs)
        assert first.ok
        assert not first.failures
        assert [cell.kind for cell in first.cells] == ["baseline", "battery"]
        # Reproducible from coordinates: an identical sweep gives
        # identical results, cell for cell.
        second = run_chaos(**kwargs)
        assert [cell.result for cell in second.cells] == [
            cell.result for cell in first.cells
        ]
        text = first.render()
        assert "chaos sweep" in text
        assert "battery" in text
        assert "energy vs availability" in text

    def test_unknown_workload_rejected(self) -> None:
        with pytest.raises(ValidationError):
            run_chaos(workload="nope")
