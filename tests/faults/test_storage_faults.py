"""Storage-layer fault injection: enclosure, controller, migration.

Covers the injection points themselves (failed/slow spin-ups, outage
refusal, battery loss, migration aborts), the controller's reactions
(retry with capped backoff, emergency write buffering, forced flushes),
and the two hard guarantees: illegal power-state transitions raise
``AuditError`` instead of silently clamping, and an aborted migration
leaves placement, used-bytes, and energy books bit-identical.
"""

from __future__ import annotations

import pytest

from repro import units
from repro.errors import (
    AuditError,
    EnclosureUnavailableError,
    MigrationAbortedError,
    SpinUpFailedError,
)
from repro.faults import FaultClock, FaultPlan
from repro.faults.plan import (
    CacheBatteryFailure,
    EnclosureOutage,
    MigrationAbort,
    SlowSpinUp,
    SpinUpFailure,
)
from repro.storage.cache import StorageCache
from repro.storage.controller import CACHE_HIT_LATENCY, StorageController
from repro.storage.enclosure import DiskEnclosure
from repro.storage.migration import MigrationEngine, PlacementPlan
from repro.storage.power import PowerState
from repro.storage.virtualization import BlockVirtualization
from repro.trace.records import IOType, LogicalIORecord

ITEMS = ("a", "b")


def build(plan: FaultPlan | None = None):
    """Two-enclosure controller harness, optionally fault-injected."""
    encs = [
        DiskEnclosure(
            f"e{i}",
            iops_random=100.0,
            iops_sequential=400.0,
            capacity_bytes=10 * units.GB,
        )
        for i in range(2)
    ]
    virt = BlockVirtualization(encs)
    for i, item in enumerate(ITEMS):
        virt.create_volume(f"v{i}", f"e{i}")
        virt.add_item(item, 64 * units.MB, f"v{i}")
    controller = StorageController(virt, StorageCache())
    clock = None
    if plan is not None:
        clock = FaultClock(plan)
        for enc in encs:
            enc.set_fault_clock(clock)
        controller.set_fault_clock(clock)
    return controller, virt, encs, clock


def power_off(enc: DiskEnclosure, now: float) -> None:
    """Drive the enclosure to OFF via the normal timeline."""
    enc.enable_power_off(now)
    enc.settle(now + enc.spin_down_timeout + 100.0)
    assert enc.state is PowerState.OFF


def write(item: str, at: float, size: int = 64 * units.KB) -> LogicalIORecord:
    return LogicalIORecord(
        timestamp=at, item_id=item, offset=0, size=size, io_type=IOType.WRITE
    )


def read(item: str, at: float, size: int = 64 * units.KB) -> LogicalIORecord:
    return LogicalIORecord(
        timestamp=at, item_id=item, offset=0, size=size, io_type=IOType.READ
    )


class TestEnclosureSpinUp:
    def test_failed_spin_up_charges_energy_and_lands_in_off(self) -> None:
        plan = FaultPlan(events=(SpinUpFailure(enclosure="e0", failures=1),))
        _, _, encs, _ = build(plan)
        enc = encs[0]
        enc.submit(0.0)
        power_off(enc, 0.0)
        spin_up_energy_before = enc.energy_joules(PowerState.SPIN_UP)
        with pytest.raises(SpinUpFailedError) as excinfo:
            enc.submit(1000.0)
        assert excinfo.value.enclosure == "e0"
        assert enc.state is PowerState.OFF
        # The doomed attempt still burned a full spin-up of energy.
        gained = enc.energy_joules(PowerState.SPIN_UP) - spin_up_energy_before
        expected = (
            enc.power_model.spin_up_watts * enc.power_model.spin_up_seconds
        )
        assert gained == pytest.approx(expected)
        # Recorded at the end of the burned attempt, not its start.
        assert enc.spin_up_failure_times == [
            pytest.approx(1000.0 + enc.power_model.spin_up_seconds)
        ]
        # The streak is over: the retry succeeds.
        result = enc.submit(1011.0)
        assert enc.state is PowerState.ACTIVE
        assert result.start >= 1011.0 + enc.power_model.spin_up_seconds

    def test_slow_spin_up_stretches_latency_and_energy(self) -> None:
        plan = FaultPlan(
            events=(
                SlowSpinUp(enclosure="e0", start=0.0, end=1e6, multiplier=3.0),
            )
        )
        _, _, encs, _ = build(plan)
        enc = encs[0]
        enc.submit(0.0)
        power_off(enc, 0.0)
        result = enc.submit(1000.0)
        waited = result.start - 1000.0
        assert waited == pytest.approx(3.0 * enc.power_model.spin_up_seconds)
        assert enc.time_in_state(PowerState.SPIN_UP) == pytest.approx(
            3.0 * enc.power_model.spin_up_seconds
        )

    def test_illegal_transition_raises_audit_error(self) -> None:
        _, _, encs, _ = build()
        enc = encs[0]
        assert enc.state is PowerState.IDLE
        with pytest.raises(AuditError, match="illegal power-state transition"):
            enc._transition(PowerState.OFF, 0.0)


class TestEnclosureOutage:
    def test_submit_refused_inside_window(self) -> None:
        plan = FaultPlan(
            events=(EnclosureOutage(enclosure="e0", start=10.0, end=50.0),)
        )
        _, _, encs, _ = build(plan)
        enc = encs[0]
        with pytest.raises(EnclosureUnavailableError) as excinfo:
            enc.submit(20.0)
        assert excinfo.value.until == 50.0
        assert enc.io_count == 0
        # Outside the window service resumes.
        enc.submit(50.0)
        assert enc.io_count == 1


class TestControllerRetry:
    def test_spin_up_retries_with_capped_backoff(self) -> None:
        plan = FaultPlan(events=(SpinUpFailure(enclosure="e0", failures=2),))
        controller, _, encs, clock = build(plan)
        power_off(encs[0], 1.0)
        response = controller.submit(read("a", 1000.0))
        assert controller.fault_spin_up_retries == 2
        assert controller.fault_delayed_ios == 1
        assert clock.spin_up_failures_injected == 2
        # Two burned spin-ups plus backoffs (1 s, then 2 s) precede the
        # successful third attempt.
        spin_up = encs[0].power_model.spin_up_seconds
        assert response >= 2 * spin_up + 1.0 + 2.0
        assert controller.fault_max_queue_delay > 0.0

    def test_read_waits_out_an_outage(self) -> None:
        plan = FaultPlan(
            events=(EnclosureOutage(enclosure="e0", start=0.0, end=300.0),)
        )
        controller, _, _, clock = build(plan)
        response = controller.submit(read("a", 100.0))
        assert controller.fault_denied_ios == 1
        assert response >= 200.0  # delayed to the end of the window
        assert clock.outage_violations == []


class TestEmergencyBuffer:
    def test_write_buffered_during_outage_then_drained(self) -> None:
        plan = FaultPlan(
            events=(EnclosureOutage(enclosure="e0", start=0.0, end=300.0),)
        )
        controller, _, _, clock = build(plan)
        wd = controller.cache.write_delay
        response = controller.submit(write("a", 100.0))
        assert response == CACHE_HIT_LATENCY
        assert controller.emergency_buffered_ios == 1
        assert wd.dirty_pages > 0
        # After the outage the buffered pages drain on the next tick.
        controller.on_time(400.0)
        assert wd.dirty_pages == 0
        assert controller.emergency_flushes == 1
        assert wd.absorbed_pages == wd.flushed_pages
        assert clock.outage_violations == []

    def test_battery_failure_blocks_emergency_buffering(self) -> None:
        plan = FaultPlan(
            events=(
                EnclosureOutage(enclosure="e0", start=100.0, end=300.0),
                CacheBatteryFailure(time=0.0),
            )
        )
        controller, _, _, _ = build(plan)
        response = controller.submit(write("a", 150.0))
        # No battery, no buffer: the write waits the outage out instead.
        assert controller.emergency_buffered_ios == 0
        assert response >= 150.0


class TestBatteryFailure:
    def test_acknowledged_writes_force_flushed(self) -> None:
        plan = FaultPlan(events=(CacheBatteryFailure(time=500.0),))
        controller, _, _, _ = build(plan)
        wd = controller.cache.write_delay
        controller.select_write_delay(0.0, {"a"})
        assert controller.submit(write("a", 10.0)) == CACHE_HIT_LATENCY
        assert wd.dirty_pages > 0
        controller.on_time(600.0)
        assert controller.battery_failed
        assert wd.dirty_pages == 0
        assert wd.absorbed_pages == wd.flushed_pages
        assert controller.emergency_flushes == 1
        assert wd.selected_items() == set()
        # At-risk accounting saw the exposure window close.
        assert controller.at_risk_peak_bytes > 0
        assert controller.at_risk_samples[-1][1] == 0

    def test_no_new_selection_after_failure(self) -> None:
        plan = FaultPlan(events=(CacheBatteryFailure(time=0.0),))
        controller, _, _, _ = build(plan)
        controller.select_write_delay(10.0, {"a"})
        assert controller.cache.write_delay.selected_items() == set()
        # Writes take the physical path, not the dead cache.
        controller.submit(write("a", 20.0))
        assert controller.cache.write_delay.dirty_pages == 0


class TestMigrationAbort:
    def test_abort_leaves_books_identical(self) -> None:
        plan = FaultPlan(events=(MigrationAbort(item_id="a", after=0.0),))
        controller, virt, encs, _ = build(plan)
        placement = {item: virt.enclosure_of(item).name for item in ITEMS}
        used = {e.name: virt.used_bytes(e.name) for e in encs}
        energy = {e.name: e.energy_joules() for e in encs}
        with pytest.raises(MigrationAbortedError):
            controller.migrate_item(100.0, "a", "e1")
        assert controller.migration_aborts == 1
        assert {i: virt.enclosure_of(i).name for i in ITEMS} == placement
        assert {e.name: virt.used_bytes(e.name) for e in encs} == used
        assert {e.name: e.energy_joules() for e in encs} == energy
        assert controller.migrated_bytes == 0
        # One-shot: the re-planned move succeeds.
        controller.migrate_item(200.0, "a", "e1")
        assert virt.enclosure_of("a").name == "e1"

    def test_outage_on_either_end_aborts(self) -> None:
        plan = FaultPlan(
            events=(EnclosureOutage(enclosure="e1", start=0.0, end=500.0),)
        )
        controller, virt, _, _ = build(plan)
        with pytest.raises(MigrationAbortedError):
            controller.migrate_item(100.0, "a", "e1")
        assert virt.enclosure_of("a").name == "e0"

    def test_engine_counts_aborts_and_continues(self) -> None:
        plan = FaultPlan(events=(MigrationAbort(item_id="a", after=0.0),))
        controller, virt, _, _ = build(plan)
        engine = MigrationEngine(controller)
        moves = PlacementPlan()
        moves.add("a", "e1")
        moves.add("b", "e0")
        report = engine.execute(100.0, moves)
        assert report.moves_aborted == 1
        assert report.moves_executed == 1
        assert engine.total_aborts == 1
        assert virt.enclosure_of("a").name == "e0"  # aborted
        assert virt.enclosure_of("b").name == "e0"  # executed
