"""Tests for the seeded FaultModel and the runtime FaultClock."""

from __future__ import annotations

from repro.faults import FaultClock, FaultModel, FaultPlan
from repro.faults.plan import (
    CacheBatteryFailure,
    EnclosureOutage,
    MigrationAbort,
    SlowSpinUp,
    SpinUpFailure,
)


class TestModel:
    def test_same_seed_same_draws(self) -> None:
        a = FaultModel(seed=7, spin_up_failure_prob=0.3)
        b = FaultModel(seed=7, spin_up_failure_prob=0.3)
        draws = [(a.spin_up_failures("e0", c), b.spin_up_failures("e0", c))
                 for c in range(50)]
        assert all(x == y for x, y in draws)

    def test_different_seeds_diverge(self) -> None:
        a = FaultModel(seed=1, spin_up_failure_prob=0.5)
        b = FaultModel(seed=2, spin_up_failure_prob=0.5)
        assert [a.spin_up_failures("e0", c) for c in range(50)] != [
            b.spin_up_failures("e0", c) for c in range(50)
        ]

    def test_streaks_bounded(self) -> None:
        model = FaultModel(
            seed=3, spin_up_failure_prob=0.9, max_consecutive_failures=3
        )
        streaks = [model.spin_up_failures("e0", c) for c in range(200)]
        assert all(0 <= s <= 3 for s in streaks)
        assert any(s > 0 for s in streaks)

    def test_more_cycles_mean_more_faults(self) -> None:
        # Proportionality: fault draws are keyed on the cycle index, so
        # doubling the spin cycles can only add failing cycles.
        model = FaultModel(seed=11, spin_up_failure_prob=0.25)
        failing = [
            c for c in range(200) if model.spin_up_failures("e0", c) > 0
        ]
        first_half = sum(1 for c in failing if c < 100)
        assert 0 < first_half < len(failing)

    def test_inactive_model_never_fires(self) -> None:
        model = FaultModel(seed=9)
        assert not model.active
        assert model.spin_up_failures("e0", 0) == 0
        assert model.spin_up_multiplier("e0", 0) == 1.0

    def test_round_trip(self) -> None:
        model = FaultModel(seed=4, slow_spin_up_prob=0.5)
        assert FaultModel.from_dict(model.to_dict()) == model


class TestClockSpinUp:
    def test_scheduled_event_is_one_shot_streak(self) -> None:
        plan = FaultPlan(
            events=(SpinUpFailure(enclosure="e0", after=0.0, failures=2),)
        )
        clock = FaultClock(plan)
        assert clock.spin_up_attempt("e0", 5.0).fails
        assert clock.spin_up_attempt("e0", 6.0).fails
        assert not clock.spin_up_attempt("e0", 7.0).fails
        # Consumed: the next cycle rolls clean.
        assert not clock.spin_up_attempt("e0", 8.0).fails
        assert clock.spin_up_failures_injected == 2

    def test_event_waits_for_after(self) -> None:
        plan = FaultPlan(
            events=(SpinUpFailure(enclosure="e0", after=100.0),)
        )
        clock = FaultClock(plan)
        assert not clock.spin_up_attempt("e0", 50.0).fails
        assert clock.spin_up_attempt("e0", 100.0).fails

    def test_other_enclosures_untouched(self) -> None:
        plan = FaultPlan(events=(SpinUpFailure(enclosure="e0"),))
        clock = FaultClock(plan)
        assert not clock.spin_up_attempt("e1", 0.0).fails

    def test_slow_window_sets_multiplier(self) -> None:
        plan = FaultPlan(
            events=(
                SlowSpinUp(enclosure="e0", start=10.0, end=20.0, multiplier=4.0),
            )
        )
        clock = FaultClock(plan)
        assert clock.spin_up_attempt("e0", 15.0).seconds_multiplier == 4.0
        assert clock.spin_up_attempt("e0", 25.0).seconds_multiplier == 1.0


class TestClockOutage:
    def test_window_half_open(self) -> None:
        plan = FaultPlan(
            events=(EnclosureOutage(enclosure="e0", start=10.0, end=20.0),)
        )
        clock = FaultClock(plan)
        assert clock.outage_at("e0", 9.9) is None
        assert clock.outage_at("e0", 10.0) is not None
        assert clock.outage_at("e0", 19.9) is not None
        assert clock.outage_at("e0", 20.0) is None
        assert clock.outage_at("e1", 15.0) is None

    def test_overlapping_windows_latest_end_wins(self) -> None:
        plan = FaultPlan(
            events=(
                EnclosureOutage(enclosure="e0", start=10.0, end=20.0),
                EnclosureOutage(enclosure="e0", start=15.0, end=40.0),
            )
        )
        outage = FaultClock(plan).outage_at("e0", 16.0)
        assert outage is not None and outage.end == 40.0

    def test_unavailability_merges_and_clips(self) -> None:
        plan = FaultPlan(
            events=(
                EnclosureOutage(enclosure="e0", start=10.0, end=20.0),
                EnclosureOutage(enclosure="e0", start=15.0, end=30.0),
                EnclosureOutage(enclosure="e1", start=0.0, end=100.0),
            )
        )
        clock = FaultClock(plan)
        # e0: merged [10, 30) = 20 s; e1 clipped to [0, 50] = 50 s.
        assert clock.unavailability_seconds(50.0) == 70.0

    def test_note_service_records_violation(self) -> None:
        plan = FaultPlan(
            events=(EnclosureOutage(enclosure="e0", start=10.0, end=20.0),)
        )
        clock = FaultClock(plan)
        clock.note_service("e0", 12.0)
        clock.note_service("e0", 25.0)
        assert len(clock.outage_violations) == 1


class TestClockBatteryAndMigration:
    def test_battery_failure_time(self) -> None:
        plan = FaultPlan(
            events=(
                CacheBatteryFailure(time=100.0),
                CacheBatteryFailure(time=50.0),
            )
        )
        clock = FaultClock(plan)
        assert clock.battery_failure_time == 50.0
        assert not clock.battery_failed(49.9)
        assert clock.battery_failed(50.0)

    def test_no_battery_event(self) -> None:
        clock = FaultClock(FaultPlan())
        assert clock.battery_failure_time is None
        assert not clock.battery_failed(1e9)

    def test_migration_abort_is_one_shot(self) -> None:
        plan = FaultPlan(
            events=(MigrationAbort(item_id="item-1", after=10.0),)
        )
        clock = FaultClock(plan)
        assert not clock.migration_abort("item-1", 5.0)
        assert not clock.migration_abort("item-2", 15.0)
        assert clock.migration_abort("item-1", 15.0)
        assert not clock.migration_abort("item-1", 16.0)
        assert clock.migration_aborts_injected == 1
