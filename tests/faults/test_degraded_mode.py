"""Degraded-mode power management: the ``apply_power_off`` gate.

A drive that keeps failing to spin up should not keep being spun down:
once an enclosure's recent spin-up failures reach
``config.spin_up_failure_threshold`` inside
``config.spin_up_failure_window``, every policy's power-off enablement
is vetoed for ``config.power_off_cooldown`` seconds.  Without recorded
failures the gate must be a transparent pass-through.
"""

from __future__ import annotations

from repro.baselines.base import PowerPolicy
from repro.config import DEFAULT_CONFIG
from repro.simulation import build_context


class GateOnly(PowerPolicy):
    """Minimal concrete policy: only the degraded-mode gate matters."""

    name = "gate-only"

    def next_checkpoint(self) -> float | None:
        return None

    def on_checkpoint(self, now: float) -> None:  # pragma: no cover
        pass


def build():
    context = build_context(DEFAULT_CONFIG, 2)
    policy = GateOnly()
    policy.bind(context)
    return policy, context.enclosures[0], context.config


class TestPassThrough:
    def test_enable_without_failures(self) -> None:
        policy, enc, _ = build()
        assert policy.apply_power_off(enc, 0.0, True)
        assert enc.power_off_enabled
        assert policy.degraded_cooldowns == 0

    def test_disable_always_wins(self) -> None:
        policy, enc, _ = build()
        policy.apply_power_off(enc, 0.0, True)
        assert not policy.apply_power_off(enc, 10.0, False)
        assert not enc.power_off_enabled
        assert policy.degraded_cooldowns == 0


class TestCooldown:
    def test_threshold_failures_veto_enablement(self) -> None:
        policy, enc, config = build()
        assert config.spin_up_failure_threshold == 3
        enc.spin_up_failure_times.extend([100.0, 200.0, 300.0])
        assert not policy.apply_power_off(enc, 400.0, True)
        assert not enc.power_off_enabled
        assert policy.degraded_cooldowns == 1

    def test_cooldown_holds_without_recounting(self) -> None:
        policy, enc, config = build()
        enc.spin_up_failure_times.extend([100.0, 200.0, 300.0])
        policy.apply_power_off(enc, 400.0, True)
        mid = 400.0 + config.power_off_cooldown / 2
        assert not policy.apply_power_off(enc, mid, True)
        # The veto came from the standing cool-down, not a fresh entry.
        assert policy.degraded_cooldowns == 1

    def test_requalifies_after_cooldown_and_quiet_window(self) -> None:
        policy, enc, config = build()
        enc.spin_up_failure_times.extend([100.0, 200.0, 300.0])
        policy.apply_power_off(enc, 400.0, True)
        later = (
            400.0 + config.power_off_cooldown + config.spin_up_failure_window
        )
        assert policy.apply_power_off(enc, later, True)
        assert enc.power_off_enabled
        assert policy.degraded_cooldowns == 1

    def test_stale_failures_do_not_trip(self) -> None:
        policy, enc, config = build()
        enc.spin_up_failure_times.extend([0.0, 10.0, 20.0])
        now = config.spin_up_failure_window + 1000.0
        assert policy.apply_power_off(enc, now, True)
        assert policy.degraded_cooldowns == 0

    def test_below_threshold_does_not_trip(self) -> None:
        policy, enc, _ = build()
        enc.spin_up_failure_times.extend([100.0, 200.0])
        assert policy.apply_power_off(enc, 300.0, True)
        assert policy.degraded_cooldowns == 0

    def test_cooldowns_are_per_enclosure(self) -> None:
        policy, enc, _ = build()
        other = policy.context.enclosures[1]
        enc.spin_up_failure_times.extend([100.0, 200.0, 300.0])
        assert not policy.apply_power_off(enc, 400.0, True)
        assert policy.apply_power_off(other, 400.0, True)
        assert other.power_off_enabled
