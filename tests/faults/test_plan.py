"""Tests for FaultPlan / fault events: validation, round-trip, hashing."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ValidationError
from repro.faults import (
    EMPTY_PLAN,
    CacheBatteryFailure,
    EnclosureOutage,
    FaultModel,
    FaultPlan,
    MigrationAbort,
    SlowSpinUp,
    SpinUpFailure,
)


def full_plan() -> FaultPlan:
    return FaultPlan(
        events=(
            SpinUpFailure(enclosure="enc-00", after=10.0, failures=2),
            EnclosureOutage(enclosure="enc-01", start=100.0, end=200.0),
            CacheBatteryFailure(time=500.0),
            SlowSpinUp(enclosure="enc-02", start=0.0, end=50.0, multiplier=4.0),
            MigrationAbort(item_id="item-7", after=300.0),
        ),
        model=FaultModel(seed=42, spin_up_failure_prob=0.2),
    )


class TestValidation:
    def test_spin_up_failure_bounds(self) -> None:
        with pytest.raises(ValidationError):
            SpinUpFailure(enclosure="e", failures=0)
        with pytest.raises(ValidationError):
            SpinUpFailure(enclosure="e", failures=65)
        with pytest.raises(ValidationError):
            SpinUpFailure(enclosure="e", after=-1.0)

    def test_outage_window_ordering(self) -> None:
        with pytest.raises(ValidationError):
            EnclosureOutage(enclosure="e", start=10.0, end=10.0)
        with pytest.raises(ValidationError):
            EnclosureOutage(enclosure="e", start=-1.0, end=5.0)

    def test_slow_spin_up_multiplier_floor(self) -> None:
        with pytest.raises(ValidationError):
            SlowSpinUp(enclosure="e", start=0.0, end=1.0, multiplier=0.5)

    def test_battery_time_non_negative(self) -> None:
        with pytest.raises(ValidationError):
            CacheBatteryFailure(time=-0.1)

    def test_plan_rejects_foreign_events(self) -> None:
        with pytest.raises(ValidationError):
            FaultPlan(events=("not-an-event",))  # type: ignore[arg-type]

    def test_plan_rejects_non_model(self) -> None:
        with pytest.raises(ValidationError):
            FaultPlan(model="seed=3")  # type: ignore[arg-type]

    def test_model_probability_bounds(self) -> None:
        with pytest.raises(ValidationError):
            FaultModel(seed=1, spin_up_failure_prob=1.0)
        with pytest.raises(ValidationError):
            FaultModel(seed=1, max_consecutive_failures=0)
        with pytest.raises(ValidationError):
            FaultModel(seed=1, slow_spin_up_multiplier=0.9)


class TestTruthiness:
    def test_empty_plan_is_falsy(self) -> None:
        assert not FaultPlan()
        assert not EMPTY_PLAN
        assert EMPTY_PLAN.label == "none"

    def test_inactive_model_is_falsy(self) -> None:
        assert not FaultPlan(model=FaultModel(seed=5))

    def test_events_make_plan_truthy(self) -> None:
        assert FaultPlan(events=(CacheBatteryFailure(time=1.0),))

    def test_active_model_makes_plan_truthy(self) -> None:
        assert FaultPlan(model=FaultModel(seed=5, spin_up_failure_prob=0.1))


class TestRoundTrip:
    def test_json_round_trip_is_exact(self) -> None:
        plan = full_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_empty_plan_round_trips(self) -> None:
        assert FaultPlan.from_json(EMPTY_PLAN.to_json()) == EMPTY_PLAN

    def test_unknown_format_rejected(self) -> None:
        with pytest.raises(ValidationError):
            FaultPlan.from_dict({"format": 99, "events": []})

    def test_unknown_event_kind_rejected(self) -> None:
        with pytest.raises(ValidationError):
            FaultPlan.from_dict(
                {"format": 1, "events": [{"kind": "disk-on-fire"}]}
            )

    def test_plans_are_picklable(self) -> None:
        plan = full_plan()
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestFingerprint:
    def test_stable_across_calls(self) -> None:
        assert full_plan().fingerprint() == full_plan().fingerprint()

    def test_any_event_change_changes_fingerprint(self) -> None:
        base = full_plan()
        moved = FaultPlan(
            events=base.events[:-1]
            + (MigrationAbort(item_id="item-7", after=301.0),),
            model=base.model,
        )
        assert moved.fingerprint() != base.fingerprint()

    def test_model_seed_changes_fingerprint(self) -> None:
        a = FaultPlan(model=FaultModel(seed=1, spin_up_failure_prob=0.1))
        b = FaultPlan(model=FaultModel(seed=2, spin_up_failure_prob=0.1))
        assert a.fingerprint() != b.fingerprint()


def test_events_of_filters_by_type() -> None:
    plan = full_plan()
    outages = plan.events_of(EnclosureOutage)
    assert [event.enclosure for event in outages] == ["enc-01"]
    assert plan.events_of(SpinUpFailure)[0].failures == 2


def test_label_mentions_events_and_model() -> None:
    assert full_plan().label == "5ev+model:42"
    assert FaultPlan(events=(CacheBatteryFailure(time=1.0),)).label == "1ev"
