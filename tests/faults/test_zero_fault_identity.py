"""Acceptance: an empty ``FaultPlan`` replays bit-identically to none.

The zero-fault regression gate: ``build_context`` installs no fault
clock for an empty plan, and every fault branch in the storage layer is
gated on that clock, so with ``faults=None`` and ``faults=FaultPlan()``
every existing experiment's result — availability report included —
must compare equal.
"""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_CONFIG
from repro.experiments.runner import STANDARD_POLICIES, run_cell
from repro.experiments.testbed import build_workload
from repro.faults import EMPTY_PLAN, AvailabilityReport, FaultPlan
from repro.simulation import build_context


def test_empty_plan_installs_no_fault_clock() -> None:
    assert build_context(DEFAULT_CONFIG, 2, faults=None).fault_clock is None
    assert (
        build_context(DEFAULT_CONFIG, 2, faults=EMPTY_PLAN).fault_clock
        is None
    )
    assert (
        build_context(DEFAULT_CONFIG, 2, faults=FaultPlan()).fault_clock
        is None
    )


@pytest.mark.parametrize("policy_name", sorted(STANDARD_POLICIES))
def test_empty_plan_matches_no_plan(policy_name: str) -> None:
    base = run_cell(
        build_workload("tpcc", full=False), STANDARD_POLICIES[policy_name]()
    )
    faulted = run_cell(
        build_workload("tpcc", full=False),
        STANDARD_POLICIES[policy_name](),
        faults=FaultPlan(),
    )
    assert base == faulted
    assert base.replay.availability == AvailabilityReport()
