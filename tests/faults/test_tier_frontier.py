"""Tests for the tier-configuration frontier sweep (``chaos --tiers``)."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.faults.chaos import (
    TierFrontierCell,
    TierFrontierReport,
    run_tier_frontier,
)


def cell(flash, archive, energy, latency, cost, error=None):
    return TierFrontierCell(
        flash=flash,
        archive=archive,
        energy_joules=energy,
        mean_read_response=latency,
        capacity_cost=cost,
        audit_checks=7,
        error=error,
    )


class TestPareto:
    def test_dominated_cell_is_off_the_frontier(self):
        report = TierFrontierReport(
            workload="fileserver",
            cells=[
                cell(0, 0, energy=100.0, latency=0.010, cost=1.0),
                # Strictly worse on every axis.
                cell(1, 0, energy=110.0, latency=0.011, cost=2.0),
            ],
        )
        assert report.pareto() == {"f0a0"}

    def test_tradeoff_cells_all_survive(self):
        report = TierFrontierReport(
            workload="fileserver",
            cells=[
                cell(0, 0, energy=100.0, latency=0.010, cost=1.0),
                cell(1, 0, energy=120.0, latency=0.005, cost=2.0),
                cell(0, 1, energy=80.0, latency=0.020, cost=0.5),
            ],
        )
        assert report.pareto() == {"f0a0", "f1a0", "f0a1"}

    def test_failed_cells_never_reach_the_frontier(self):
        report = TierFrontierReport(
            workload="fileserver",
            cells=[
                cell(0, 0, energy=100.0, latency=0.010, cost=1.0),
                cell(1, 1, energy=1.0, latency=0.001, cost=0.1, error="boom"),
            ],
        )
        assert not report.ok
        assert report.pareto() == {"f0a0"}
        rendered = report.render()
        assert "FAILED f1a1:" in rendered
        assert "boom" in rendered

    def test_equal_cells_both_survive(self):
        # Non-domination needs a strict win somewhere; exact ties on
        # all three axes leave both configurations on the frontier.
        report = TierFrontierReport(
            workload="fileserver",
            cells=[
                cell(1, 1, energy=100.0, latency=0.010, cost=1.0),
                cell(2, 1, energy=100.0, latency=0.010, cost=1.0),
            ],
        )
        assert report.pareto() == {"f1a1", "f2a1"}

    def test_render_marks_frontier_rows(self):
        report = TierFrontierReport(
            workload="fileserver",
            cells=[
                cell(0, 0, energy=100.0, latency=0.010, cost=1.0),
                cell(1, 0, energy=110.0, latency=0.011, cost=2.0),
            ],
        )
        lines = report.render().splitlines()
        winner = next(line for line in lines if line.startswith("f0a0"))
        loser = next(line for line in lines if line.startswith("f1a0"))
        assert winner.rstrip().endswith("*")
        assert not loser.rstrip().endswith("*")


class TestRunTierFrontier:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValidationError):
            run_tier_frontier(workload="no-such-workload")

    def test_single_config_sweep_passes_audited(self):
        report = run_tier_frontier(
            workload="fileserver", configs=((1, 1),)
        )
        assert report.ok
        (only,) = report.cells
        assert only.label == "f1a1"
        assert only.audit_checks > 0
        assert only.energy_joules > 0
        assert report.pareto() == {"f1a1"}
