"""Integration tests: full workload × policy runs on shortened traces.

These assert the *relationships* the paper's evaluation hinges on, at
smoke scale; the full-scale shape assertions live in benchmarks/.
"""

import pytest

from repro.analysis.metrics import power_saving_percent
from repro.experiments.runner import run_comparison
from repro.experiments.testbed import build_workload

pytestmark = pytest.mark.integration


@pytest.fixture(scope="module")
def fileserver_results():
    return run_comparison(build_workload("fileserver", full=False))


@pytest.fixture(scope="module")
def tpcc_results():
    return run_comparison(build_workload("tpcc", full=False))


@pytest.fixture(scope="module")
def tpch_results():
    return run_comparison(build_workload("tpch", full=False))


def saving(results, policy):
    return power_saving_percent(
        results["no-power-saving"].enclosure_watts,
        results[policy].enclosure_watts,
    )


class TestFileServer:
    def test_proposed_saves_power(self, fileserver_results):
        assert saving(fileserver_results, "proposed") > 5.0

    def test_proposed_beats_baseline_methods(self, fileserver_results):
        assert saving(fileserver_results, "proposed") > saving(
            fileserver_results, "pdc"
        )
        assert saving(fileserver_results, "proposed") > saving(
            fileserver_results, "ddr"
        )

    def test_ddr_saves_nearly_nothing(self, fileserver_results):
        assert abs(saving(fileserver_results, "ddr")) < 2.0

    def test_pdc_migrates_far_more_than_proposed(self, fileserver_results):
        assert (
            fileserver_results["pdc"].migrated_bytes
            > 3 * fileserver_results["proposed"].migrated_bytes
        )

    def test_ddr_migrates_least(self, fileserver_results):
        assert (
            fileserver_results["ddr"].migrated_bytes
            < fileserver_results["proposed"].migrated_bytes
        )

    def test_determination_ordering(self, fileserver_results):
        # DDR's sub-second period dwarfs everything (paper: ~91 000).
        assert (
            fileserver_results["ddr"].determinations
            > 100 * fileserver_results["proposed"].determinations
        )

    def test_proposed_creates_long_intervals(self, fileserver_results):
        assert (
            fileserver_results["proposed"].interval_curve.total_length
            > fileserver_results["ddr"].interval_curve.total_length
        )

    def test_preload_raises_cache_hits(self, fileserver_results):
        assert (
            fileserver_results["proposed"].replay.cache_hit_ratio
            > fileserver_results["no-power-saving"].replay.cache_hit_ratio
        )


class TestTpcc:
    def test_proposed_saves_power(self, tpcc_results):
        assert saving(tpcc_results, "proposed") > 5.0

    def test_ddr_cannot_save(self, tpcc_results):
        # Paper: "DDR could not reduce the power consumption" — every
        # enclosure's IOPS stays above LowTH.
        assert abs(saving(tpcc_results, "ddr")) < 1.0
        assert tpcc_results["ddr"].replay.spin_down_count == 0

    def test_proposed_beats_pdc(self, tpcc_results):
        assert saving(tpcc_results, "proposed") > saving(tpcc_results, "pdc")

    def test_throughput_loss_is_bounded(self, tpcc_results):
        base = tpcc_results["no-power-saving"].mean_read_response
        ours = tpcc_results["proposed"].mean_read_response
        # Paper: -8.5 % tpmC; allow up to ~35 % at smoke scale.
        assert ours / base < 1.55

    def test_ddr_has_no_long_intervals(self, tpcc_results):
        # Paper Fig 18: no DDR intervals above the break-even time.
        assert tpcc_results["ddr"].interval_curve.total_length == 0.0


class TestTpch:
    def test_everyone_saves_a_lot(self, tpch_results):
        # Paper: all methods save > 50 % on DSS.
        for policy in ("proposed", "ddr"):
            assert saving(tpch_results, policy) > 30.0

    def test_proposed_is_best_or_close(self, tpch_results):
        best = max(
            saving(tpch_results, p) for p in ("proposed", "pdc", "ddr")
        )
        assert saving(tpch_results, "proposed") >= best - 3.0

    def test_pdc_saves_least(self, tpch_results):
        assert saving(tpch_results, "pdc") < saving(tpch_results, "proposed")

    def test_query_responses_available(self, tpch_results):
        for policy, result in tpch_results.items():
            names = {w.name for w in result.window_responses}
            assert {"Q1", "Q2"} <= names

    def test_response_degrades_for_all_saving_methods(self, tpch_results):
        base = tpch_results["no-power-saving"].mean_response
        for policy in ("proposed", "pdc", "ddr"):
            assert tpch_results[policy].mean_response > base

    def test_proposed_response_beats_ddr(self, tpch_results):
        assert (
            tpch_results["proposed"].mean_response
            <= tpch_results["ddr"].mean_response * 1.05
        )


class TestCrossWorkload:
    def test_energy_conservation(self, tpcc_results):
        # Average power x duration equals accumulated joules.
        for result in tpcc_results.values():
            power = result.replay.power
            assert power.enclosure_joules == pytest.approx(
                power.enclosure_watts * power.duration_seconds, rel=1e-9
            )

    def test_all_ios_replayed(self, tpcc_results):
        counts = {r.replay.io_count for r in tpcc_results.values()}
        assert len(counts) == 1  # same trace for every policy
