"""Round-trip tests for trace serialization."""

import io

import pytest

from repro.errors import TraceError
from repro.trace.reader import (
    read_logical_trace,
    read_msr_trace,
    read_physical_trace,
)
from repro.trace.records import IOType, LogicalIORecord, PhysicalIORecord
from repro.trace.writer import write_logical_trace, write_physical_trace


def logical_records():
    return [
        LogicalIORecord(0.0, "a", 0, 4096, IOType.READ),
        LogicalIORecord(1.5, "b", 8192, 65536, IOType.WRITE, sequential=True),
        LogicalIORecord(2.25, "a", 4096, 4096, IOType.READ),
    ]


def physical_records():
    return [
        PhysicalIORecord(0.0, "e0", 0, 1, IOType.READ, "a"),
        PhysicalIORecord(1.0, "e1", 77, 3, IOType.WRITE, None),
    ]


class TestLogicalRoundTrip:
    def test_roundtrip_in_memory(self):
        buffer = io.StringIO()
        count = write_logical_trace(logical_records(), buffer)
        assert count == 3
        buffer.seek(0)
        assert read_logical_trace(buffer) == logical_records()

    def test_roundtrip_via_file(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_logical_trace(logical_records(), path)
        assert read_logical_trace(path) == logical_records()

    def test_sequential_flag_roundtrips(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_logical_trace(logical_records(), path)
        loaded = read_logical_trace(path)
        assert [r.sequential for r in loaded] == [False, True, False]


class TestPhysicalRoundTrip:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "phys.csv"
        count = write_physical_trace(physical_records(), path)
        assert count == 2
        assert read_physical_trace(path) == physical_records()

    def test_none_item_id_roundtrips(self, tmp_path):
        path = tmp_path / "phys.csv"
        write_physical_trace(physical_records(), path)
        loaded = read_physical_trace(path)
        assert loaded[1].item_id is None


class TestErrors:
    def test_empty_file_rejected(self):
        with pytest.raises(TraceError):
            read_logical_trace(io.StringIO(""))

    def test_bad_header_rejected(self):
        with pytest.raises(TraceError):
            read_logical_trace(io.StringIO("a,b,c\n"))

    def test_malformed_row_rejected(self):
        buffer = io.StringIO(
            "timestamp,item_id,offset,size,io_type,sequential\n"
            "notanumber,a,0,1,R,0\n"
        )
        with pytest.raises(TraceError):
            read_logical_trace(buffer)

    def test_physical_header_checked(self):
        buffer = io.StringIO(
            "timestamp,item_id,offset,size,io_type,sequential\n"
        )
        with pytest.raises(TraceError):
            read_physical_trace(buffer)


class TestMSRFormat:
    MSR = (
        "128166372003061629,usr,0,Read,7014609920,24576,41286\n"
        "128166372016382155,usr,0,Write,2517254144,4096,703880\n"
        "128166372026382155,proj,1,Read,1024,8192,1337\n"
    )

    def test_parses_records(self):
        records = read_msr_trace(io.StringIO(self.MSR))
        assert len(records) == 3
        assert records[0].item_id == "usr.0"
        assert records[2].item_id == "proj.1"

    def test_rebases_time_to_zero(self):
        records = read_msr_trace(io.StringIO(self.MSR))
        assert records[0].timestamp == 0.0
        # 13321 ms later in 100 ns ticks
        assert records[1].timestamp == pytest.approx(1.3320526)

    def test_io_types(self):
        records = read_msr_trace(io.StringIO(self.MSR))
        assert records[0].is_read
        assert not records[1].is_read

    def test_short_line_rejected(self):
        with pytest.raises(TraceError):
            read_msr_trace(io.StringIO("1,usr,0,Read\n"))

    def test_garbage_rejected(self):
        with pytest.raises(TraceError):
            read_msr_trace(io.StringIO("x,usr,0,Read,0,1,2\n"))

    def test_out_of_order_trace_rebases_against_minimum_tick(self):
        # MSR captures are often chunked per disk, not globally sorted:
        # here the *second* row is the earliest event.  Rebasing against
        # the first row used to hand it a negative timestamp.
        shuffled = (
            "128166372016382155,usr,0,Write,2517254144,4096,703880\n"
            "128166372003061629,usr,0,Read,7014609920,24576,41286\n"
            "128166372026382155,proj,1,Read,1024,8192,1337\n"
        )
        records = read_msr_trace(io.StringIO(shuffled))
        assert all(record.timestamp >= 0.0 for record in records)
        # Row order is preserved; the earliest event lands exactly at 0.
        assert records[1].timestamp == 0.0
        assert records[0].timestamp == pytest.approx(1.3320526)
        # Once sorted (as workload_from_records does) the relative
        # spacing matches the sorted-input parse exactly.
        sorted_now = sorted(record.timestamp for record in records)
        in_order = read_msr_trace(io.StringIO(self.MSR))
        assert sorted_now == [record.timestamp for record in in_order]

    def test_rebase_can_be_disabled(self):
        records = read_msr_trace(io.StringIO(self.MSR), rebase_time=False)
        assert records[0].timestamp == pytest.approx(
            128166372003061629 / 10_000_000
        )
