"""Tests for repro.trace.replay."""

import pytest

from repro.baselines.base import PowerPolicy
from repro.baselines.nopower import NoPowerSavingPolicy
from repro.errors import ReplayError
from repro.trace.records import IOType, LogicalIORecord
from repro.trace.replay import TraceReplayer


def rec(t, item="item-0", kind=IOType.READ):
    return LogicalIORecord(t, item, 0, 4096, kind)


class CheckpointSpy(PowerPolicy):
    """Policy that records the order of its callbacks."""

    name = "spy"

    def __init__(self, period=10.0):
        super().__init__()
        self.period = period
        self.calls: list[tuple[str, float]] = []
        self._next = None

    def on_start(self, now):
        self._next = now + self.period
        self.calls.append(("start", now))

    def next_checkpoint(self):
        return self._next

    def on_checkpoint(self, now):
        self.calls.append(("checkpoint", now))
        self.determinations += 1
        self._next = now + self.period

    def after_io(self, record, response_time):
        self.calls.append(("io", record.timestamp))

    def on_end(self, now):
        self.calls.append(("end", now))


class TestReplayBasics:
    def test_replays_all_records(self, small_context):
        replayer = TraceReplayer(small_context, NoPowerSavingPolicy())
        result = replayer.run([rec(1.0), rec(2.0), rec(3.0)], duration=10.0)
        assert result.io_count == 3
        assert result.duration_seconds >= 10.0

    def test_policy_name_in_result(self, small_context):
        replayer = TraceReplayer(small_context, NoPowerSavingPolicy())
        result = replayer.run([rec(1.0)], duration=2.0)
        assert result.policy_name == "no-power-saving"

    def test_unordered_trace_rejected(self, small_context):
        replayer = TraceReplayer(small_context, NoPowerSavingPolicy())
        with pytest.raises(ReplayError):
            replayer.run([rec(2.0), rec(1.0)])

    def test_duration_before_last_record_rejected(self, small_context):
        replayer = TraceReplayer(small_context, NoPowerSavingPolicy())
        with pytest.raises(ReplayError):
            replayer.run([rec(5.0)], duration=1.0)

    def test_response_stats_collected(self, small_context):
        replayer = TraceReplayer(small_context, NoPowerSavingPolicy())
        result = replayer.run([rec(1.0), rec(100.0)], duration=200.0)
        assert result.response.io_count == 2
        assert result.mean_response > 0

    def test_power_reading_present(self, small_context):
        replayer = TraceReplayer(small_context, NoPowerSavingPolicy())
        result = replayer.run([rec(1.0)], duration=100.0)
        assert result.power.enclosure_watts > 0
        assert result.power.duration_seconds >= 100.0


class TestCheckpointDispatch:
    def test_checkpoints_run_before_later_records(self, small_context):
        spy = CheckpointSpy(period=10.0)
        TraceReplayer(small_context, spy).run(
            [rec(5.0), rec(25.0)], duration=30.0
        )
        kinds = [kind for kind, _ in spy.calls]
        # checkpoint at 10 and 20 must precede the io at 25
        assert kinds.index("checkpoint") < kinds.index("io") + 2
        times = [t for kind, t in spy.calls if kind == "checkpoint"]
        assert times == [10.0, 20.0, 30.0]

    def test_trailing_checkpoints_drain_to_duration(self, small_context):
        spy = CheckpointSpy(period=10.0)
        TraceReplayer(small_context, spy).run([rec(1.0)], duration=45.0)
        times = [t for kind, t in spy.calls if kind == "checkpoint"]
        assert times == [10.0, 20.0, 30.0, 40.0]

    def test_on_end_called_once_at_duration(self, small_context):
        spy = CheckpointSpy(period=100.0)
        TraceReplayer(small_context, spy).run([rec(1.0)], duration=50.0)
        ends = [(k, t) for k, t in spy.calls if k == "end"]
        assert ends == [("end", 50.0)]

    def test_determinations_reported(self, small_context):
        spy = CheckpointSpy(period=10.0)
        result = TraceReplayer(small_context, spy).run(
            [rec(1.0)], duration=35.0
        )
        assert result.determinations == 3

    def test_stuck_policy_detected(self, small_context):
        class Stuck(CheckpointSpy):
            def on_checkpoint(self, now):
                self.calls.append(("checkpoint", now))
                # never advances its checkpoint

        with pytest.raises(ReplayError):
            TraceReplayer(small_context, Stuck()).run(
                [rec(1.0)], duration=50.0
            )


class TestFinalization:
    def test_enclosures_settled_to_end(self, small_context):
        replayer = TraceReplayer(small_context, NoPowerSavingPolicy())
        replayer.run([rec(1.0)], duration=500.0)
        for enclosure in small_context.enclosures:
            assert enclosure.clock >= 500.0

    def test_dirty_cache_flushed_at_end(self, small_context):
        controller = small_context.controller
        controller.select_write_delay(0.0, {"item-0"})
        replayer = TraceReplayer(small_context, NoPowerSavingPolicy())
        replayer.run(
            [rec(1.0, kind=IOType.WRITE)], duration=10.0
        )
        assert small_context.cache.write_delay.dirty_pages == 0

    def test_storage_monitor_finished(self, small_context):
        replayer = TraceReplayer(small_context, NoPowerSavingPolicy())
        replayer.run([rec(1.0)], duration=100.0)
        # The final gap (1.0 -> 100) must be closed into the interval set.
        intervals = small_context.storage_monitor.intervals("enc-00")
        assert any(gap > 90 for gap in intervals)
