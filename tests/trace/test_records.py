"""Tests for repro.trace.records."""

import pytest

from repro import units
from repro.trace.records import (
    IOType,
    LogicalIORecord,
    PhysicalIORecord,
    PowerSample,
    PowerStatusRecord,
)


class TestIOType:
    def test_parse_single_letters(self):
        assert IOType.parse("R") is IOType.READ
        assert IOType.parse("w") is IOType.WRITE

    def test_parse_full_words(self):
        assert IOType.parse("Read") is IOType.READ
        assert IOType.parse("WRITE") is IOType.WRITE

    def test_parse_strips_whitespace(self):
        assert IOType.parse(" R ") is IOType.READ

    def test_parse_unknown_rejected(self):
        with pytest.raises(ValueError):
            IOType.parse("X")

    def test_is_read(self):
        assert IOType.READ.is_read
        assert not IOType.WRITE.is_read


class TestLogicalIORecord:
    def test_basic_fields(self):
        rec = LogicalIORecord(1.5, "item", 4096, 8192, IOType.READ, True)
        assert rec.is_read
        assert rec.sequential

    def test_ordering_by_timestamp(self):
        a = LogicalIORecord(1.0, "z", 0, 1, IOType.READ)
        b = LogicalIORecord(2.0, "a", 0, 1, IOType.WRITE)
        assert a < b
        assert sorted([b, a]) == [a, b]

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            LogicalIORecord(-1.0, "a", 0, 1, IOType.READ)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            LogicalIORecord(0.0, "a", -1, 1, IOType.READ)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            LogicalIORecord(0.0, "a", 0, 0, IOType.READ)

    def test_block_range_single_block(self):
        rec = LogicalIORecord(0.0, "a", 0, 100, IOType.READ)
        assert list(rec.block_range()) == [0]

    def test_block_range_spans_blocks(self):
        rec = LogicalIORecord(
            0.0, "a", units.BLOCK_SIZE - 1, 2, IOType.READ
        )
        assert list(rec.block_range()) == [0, 1]

    def test_block_range_aligned(self):
        rec = LogicalIORecord(
            0.0, "a", units.BLOCK_SIZE, units.BLOCK_SIZE, IOType.READ
        )
        assert list(rec.block_range()) == [1]

    def test_page_range(self):
        rec = LogicalIORecord(0.0, "a", 0, 3 * 256 * units.KB, IOType.READ)
        assert list(rec.page_range(256 * units.KB)) == [0, 1, 2]

    def test_page_range_rejects_bad_page_size(self):
        rec = LogicalIORecord(0.0, "a", 0, 1, IOType.READ)
        with pytest.raises(ValueError):
            rec.page_range(0)

    def test_frozen(self):
        rec = LogicalIORecord(0.0, "a", 0, 1, IOType.READ)
        with pytest.raises(AttributeError):
            rec.item_id = "b"  # type: ignore[misc]


class TestPhysicalIORecord:
    def test_defaults(self):
        rec = PhysicalIORecord(1.0, "e0", 42)
        assert rec.count == 1
        assert rec.is_read
        assert rec.item_id is None

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            PhysicalIORecord(1.0, "e0", 0, count=0)

    def test_ordering(self):
        a = PhysicalIORecord(1.0, "e1", 0)
        b = PhysicalIORecord(2.0, "e0", 0)
        assert a < b


class TestPowerRecords:
    def test_status_record(self):
        rec = PowerStatusRecord(1.0, "e0", powered_on=True)
        assert rec.powered_on

    def test_sample_ordering(self):
        a = PowerSample(1.0, "e0", 100.0)
        b = PowerSample(2.0, "e0", 110.0)
        assert a < b
