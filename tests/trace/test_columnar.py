"""Columnar trace round-trips and the `.ecot` binary format.

Three layers of guarantee, mirroring the tentpole's claims:

* build-from-records is lossless: ``ColumnarTrace.from_records(rs)``
  materializes back to exactly ``rs`` (order, flags, every field);
* the ``.ecot`` file format is lossless and versioned: save → load
  (mmap-ed or copied) reproduces the same columns, and corrupt or
  future-versioned files are refused, never guessed at;
* the batched pump is equivalent: replaying the columns produces a
  bit-identical :class:`~repro.trace.replay.ReplayResult` to replaying
  the record objects, on **every** standard workload (the golden test
  pins fileserver against a historical capture; this one pins the two
  pumps against each other everywhere).
"""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import TraceError
from repro.experiments.runner import STANDARD_POLICIES
from repro.experiments.testbed import WORKLOAD_NAMES, build_workload
from repro.simulation import build_context
from repro.trace.columnar import (
    ECOT_MAGIC,
    FLAG_READ,
    FLAG_SEQUENTIAL,
    ColumnarTrace,
)
from repro.trace.records import IOType, LogicalIORecord
from repro.trace.replay import TraceReplayer


def _records() -> list[LogicalIORecord]:
    return [
        LogicalIORecord(
            timestamp=0.0,
            item_id="orders",
            offset=0,
            size=8192,
            io_type=IOType.READ,
        ),
        LogicalIORecord(
            timestamp=0.5,
            item_id="stock",
            offset=65536,
            size=4096,
            io_type=IOType.WRITE,
            sequential=True,
        ),
        LogicalIORecord(
            timestamp=2.25,
            item_id="orders",
            offset=16384,
            size=512,
            io_type=IOType.WRITE,
        ),
    ]


class TestBuildRoundTrip:
    def test_records_round_trip_exactly(self):
        records = _records()
        trace = ColumnarTrace.from_records(records)
        assert trace.to_records() == records

    def test_interns_items_in_first_appearance_order(self):
        trace = ColumnarTrace.from_records(_records())
        assert trace.items == ("orders", "stock")
        assert list(trace.item_index) == [0, 1, 0]

    def test_flags_encode_io_type_and_sequential(self):
        trace = ColumnarTrace.from_records(_records())
        assert trace.flags[0] == FLAG_READ
        assert trace.flags[1] == FLAG_SEQUENTIAL
        assert trace.flags[2] == 0

    def test_sequence_protocol(self):
        records = _records()
        trace = ColumnarTrace.from_records(records)
        assert len(trace) == 3
        assert trace[1] == records[1]
        assert trace[-1] == records[-1]
        assert list(trace[1:]) == records[1:]
        with pytest.raises(IndexError):
            trace[3]

    def test_empty_trace(self):
        trace = ColumnarTrace.from_records([])
        assert len(trace) == 0
        assert trace.to_records() == []


class TestEcotFormat:
    @pytest.mark.parametrize("use_mmap", [True, False], ids=["mmap", "copy"])
    def test_save_load_round_trip(self, tmp_path, use_mmap):
        records = _records()
        built = ColumnarTrace.from_records(records)
        path = tmp_path / "trace.ecot"
        assert built.save(path) == len(records)
        loaded = ColumnarTrace.load(path, use_mmap=use_mmap)
        assert loaded == built
        assert loaded.to_records() == records

    def test_empty_trace_round_trips(self, tmp_path):
        path = tmp_path / "empty.ecot"
        ColumnarTrace.from_records([]).save(path)
        assert ColumnarTrace.load(path).to_records() == []

    def test_single_record_round_trips(self, tmp_path):
        records = _records()[:1]
        path = tmp_path / "one.ecot"
        ColumnarTrace.from_records(records).save(path)
        assert ColumnarTrace.load(path).to_records() == records

    def test_non_ascii_item_ids_round_trip(self, tmp_path):
        records = [
            LogicalIORecord(
                timestamp=float(i),
                item_id=item_id,
                offset=0,
                size=4096,
                io_type=IOType.READ,
            )
            for i, item_id in enumerate(["データ/項目", "naïve id", "π"])
        ]
        path = tmp_path / "unicode.ecot"
        ColumnarTrace.from_records(records).save(path)
        loaded = ColumnarTrace.load(path)
        assert loaded.items == ("データ/項目", "naïve id", "π")
        assert loaded.to_records() == records

    def test_bad_magic_refused(self, tmp_path):
        path = tmp_path / "bogus.ecot"
        path.write_bytes(b"NOPE" + bytes(28))
        with pytest.raises(TraceError, match="not an .ecot"):
            ColumnarTrace.load(path)

    def test_future_version_refused(self, tmp_path):
        path = tmp_path / "future.ecot"
        ColumnarTrace.from_records(_records()).save(path)
        raw = bytearray(path.read_bytes())
        raw[4:8] = (99).to_bytes(4, "little")
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceError, match="version 99"):
            ColumnarTrace.load(path)

    def test_truncated_columns_refused(self, tmp_path):
        path = tmp_path / "cut.ecot"
        ColumnarTrace.from_records(_records()).save(path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-8])
        with pytest.raises(TraceError, match="truncated"):
            ColumnarTrace.load(path)

    def test_magic_constant_is_first_four_bytes(self, tmp_path):
        path = tmp_path / "magic.ecot"
        ColumnarTrace.from_records([]).save(path)
        assert path.read_bytes()[:4] == ECOT_MAGIC


class TestPumpEquivalence:
    """Columnar replay == object replay, bit for bit, everywhere."""

    @pytest.mark.parametrize("workload_name", WORKLOAD_NAMES)
    @pytest.mark.parametrize("policy_name", ["no-power-saving", "proposed"])
    def test_columnar_replay_matches_object_replay(
        self, workload_name, policy_name
    ):
        results = []
        for columnar in (False, True):
            workload = build_workload(workload_name, full=False)
            context = build_context(DEFAULT_CONFIG, workload.enclosure_count)
            workload.install(context)
            policy = STANDARD_POLICIES[policy_name]()
            records = (
                workload.columnar() if columnar else workload.records
            )
            result = TraceReplayer(context, policy).run(
                records, duration=workload.duration
            )
            results.append(json.dumps(asdict(result), sort_keys=True))
        assert results[0] == results[1], (
            f"{workload_name}/{policy_name}: the batched columnar pump "
            "diverged from the per-record object pump"
        )
