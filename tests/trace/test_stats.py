"""Tests for repro.trace.stats."""

import pytest

from repro.trace.records import IOType, LogicalIORecord
from repro.trace.stats import interarrival_gaps, summarize


def rec(t, item="a", kind=IOType.READ, size=4096, seq=False):
    return LogicalIORecord(t, item, 0, size, kind, seq)


class TestSummarize:
    def test_empty(self):
        summary = summarize([])
        assert summary.record_count == 0
        assert summary.read_ratio == 0.0
        assert summary.mean_iops == 0.0

    def test_counts(self):
        summary = summarize(
            [rec(0.0), rec(1.0, kind=IOType.WRITE), rec(2.0)]
        )
        assert summary.record_count == 3
        assert summary.read_count == 2
        assert summary.write_count == 1
        assert summary.read_ratio == pytest.approx(2 / 3)

    def test_duration_and_iops(self):
        summary = summarize([rec(0.0), rec(10.0)])
        assert summary.duration == 10.0
        assert summary.mean_iops == pytest.approx(0.2)

    def test_bytes_and_items(self):
        summary = summarize(
            [rec(0.0, "a", size=100), rec(1.0, "b", size=200)]
        )
        assert summary.total_bytes == 300
        assert summary.item_count == 2

    def test_sequential_ratio(self):
        summary = summarize([rec(0.0, seq=True), rec(1.0)])
        assert summary.sequential_ratio == pytest.approx(0.5)

    def test_per_item_read_ratio(self):
        summary = summarize(
            [rec(0.0, "a"), rec(1.0, "a", kind=IOType.WRITE), rec(2.0, "b")]
        )
        assert summary.item_read_ratio("a") == pytest.approx(0.5)
        assert summary.item_read_ratio("b") == 1.0
        assert summary.item_read_ratio("ghost") == 0.0


class TestInterarrivalGaps:
    def test_gaps_per_item(self):
        gaps = interarrival_gaps(
            [rec(0.0, "a"), rec(2.0, "a"), rec(5.0, "a"), rec(1.0, "b")]
        )
        assert gaps["a"] == [2.0, 3.0]
        assert "b" not in gaps  # single I/O has no gap

    def test_interleaved_items(self):
        gaps = interarrival_gaps(
            [rec(0.0, "a"), rec(1.0, "b"), rec(2.0, "a"), rec(4.0, "b")]
        )
        assert gaps["a"] == [2.0]
        assert gaps["b"] == [3.0]

    def test_empty(self):
        assert interarrival_gaps([]) == {}
