"""Golden bit-identity regression for the replay engine.

The :mod:`repro.engine` kernel replaced the hand-threaded time loop of
the original ``TraceReplayer``.  The hard bar for that refactor — and
for any future change to event dispatch order — is that every policy's
replay stays **bit-identical**: same :class:`~repro.trace.replay.ReplayResult`
(including the :class:`~repro.faults.report.AvailabilityReport`), same
:class:`~repro.core.manager.ManagementSnapshot` sequence, same
:class:`~repro.monitoring.timeline.PowerTimeline` points, float for
float.

``tests/trace/golden/replay_fileserver_smoke.json`` was captured from
the pre-kernel engine (commit ``3b358ca``) and must never be
regenerated to paper over a mismatch: a diff here means the engine's
decision sequence changed.  Legitimate regeneration (a deliberate,
reviewed semantic change) is::

    PYTHONPATH=src python tests/trace/test_replay_golden.py --regen
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.manager import EnergyEfficientPolicy
from repro.experiments.runner import STANDARD_POLICIES
from repro.experiments.testbed import build_workload
from repro.faults.plan import (
    CacheBatteryFailure,
    EnclosureOutage,
    FaultPlan,
    MigrationAbort,
    SlowSpinUp,
    SpinUpFailure,
)
from repro.monitoring.timeline import PowerTimeline
from repro.simulation import build_context
from repro.trace.columnar import ColumnarTrace
from repro.trace.replay import TraceReplayer

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / (
    "replay_fileserver_smoke.json"
)

#: Power-timeline cadence used by the golden capture (seconds).
TIMELINE_INTERVAL = 300.0


def _fault_plan(first_item: str) -> FaultPlan:
    """Deterministic fault plan exercising every injection point."""
    return FaultPlan(
        events=(
            SpinUpFailure(enclosure="enc-03", after=300.0, failures=2),
            SlowSpinUp(
                enclosure="enc-05", start=0.0, end=3600.0, multiplier=2.0
            ),
            EnclosureOutage(enclosure="enc-01", start=900.0, end=1200.0),
            CacheBatteryFailure(time=2400.0),
            MigrationAbort(item_id=first_item, after=600.0),
        )
    )


def _capture_cell(
    policy_name: str, with_faults: bool, columnar: bool = False
) -> dict:
    """Replay one (policy, fault?) cell and flatten every measurement.

    ``columnar=True`` feeds the same trace as a
    :class:`~repro.trace.columnar.ColumnarTrace`, engaging the kernel's
    batched pump — which this test holds to the very same golden file.
    """
    workload = build_workload("fileserver", full=False)
    faults = (
        _fault_plan(workload.items[0].item_id) if with_faults else None
    )
    context = build_context(
        DEFAULT_CONFIG, workload.enclosure_count, faults=faults
    )
    workload.install(context)
    timeline = PowerTimeline(
        context.enclosures, interval_seconds=TIMELINE_INTERVAL
    )
    policy = STANDARD_POLICIES[policy_name]()
    records: object = workload.records
    if columnar:
        records = ColumnarTrace.from_records(workload.records)
    result = TraceReplayer(context, policy, timeline=timeline).run(
        records, duration=workload.duration
    )
    cell = {"replay": asdict(result)}
    cell["timeline"] = [
        {
            "timestamp": point.timestamp,
            "total_watts": point.total_watts,
            "per_enclosure": point.per_enclosure,
        }
        for point in timeline.points
    ]
    if isinstance(policy, EnergyEfficientPolicy):
        cell["snapshots"] = [
            {
                **asdict(snapshot),
                "pattern_counts": {
                    pattern.value: count
                    for pattern, count in snapshot.pattern_counts.items()
                },
            }
            for snapshot in policy.snapshots
        ]
    return cell


def capture_all(columnar: bool = False) -> dict:
    """Capture every golden cell: four policies, with and without faults."""
    cells = {}
    for with_faults in (False, True):
        for policy_name in STANDARD_POLICIES:
            label = f"{policy_name}{'+faults' if with_faults else ''}"
            cells[label] = _capture_cell(
                policy_name, with_faults, columnar=columnar
            )
    return cells


@pytest.mark.parametrize("columnar", [False, True], ids=["object", "columnar"])
def test_replay_bit_identical_to_golden(columnar):
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    captured = json.loads(json.dumps(capture_all(columnar=columnar)))
    assert captured.keys() == golden.keys()
    for label in golden:
        assert captured[label] == golden[label], (
            f"replay of cell {label!r} ({'columnar' if columnar else 'object'}"
            " pump) diverged from the pre-kernel golden result — the "
            "engine's decision sequence changed"
        )


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("refusing to run without --regen (see module docstring)")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(capture_all(), indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {GOLDEN_PATH}")
