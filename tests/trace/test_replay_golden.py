"""Golden bit-identity regression for the replay engine.

The :mod:`repro.engine` kernel replaced the hand-threaded time loop of
the original ``TraceReplayer``.  The hard bar for that refactor — and
for any future change to event dispatch order — is that every policy's
replay stays **bit-identical**: same :class:`~repro.trace.replay.ReplayResult`
(including the :class:`~repro.faults.report.AvailabilityReport`), same
:class:`~repro.core.manager.ManagementSnapshot` sequence, same
:class:`~repro.monitoring.timeline.PowerTimeline` points, float for
float.

``tests/trace/golden/replay_fileserver_smoke.json`` was captured from
the pre-kernel engine (commit ``3b358ca``) and must never be
regenerated to paper over a mismatch: a diff here means the engine's
decision sequence changed.  Legitimate regeneration (a deliberate,
reviewed semantic change) is::

    PYTHONPATH=src python tests/trace/test_replay_golden.py --regen
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.config import DEFAULT_CONFIG
from repro.core.manager import EnergyEfficientPolicy
from repro.experiments.runner import STANDARD_POLICIES
from repro.experiments.testbed import build_workload
from repro.faults.plan import (
    CacheBatteryFailure,
    EnclosureOutage,
    FaultPlan,
    MigrationAbort,
    SlowSpinUp,
    SpinUpFailure,
)
from repro.monitoring.timeline import PowerTimeline
from repro.simulation import build_context
from repro.trace.columnar import ColumnarTrace
from repro.trace.replay import TraceReplayer

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / (
    "replay_fileserver_smoke.json"
)

#: Power-timeline cadence used by the golden capture (seconds).
TIMELINE_INTERVAL = 300.0


def _fault_plan(first_item: str) -> FaultPlan:
    """Deterministic fault plan exercising every injection point."""
    return FaultPlan(
        events=(
            SpinUpFailure(enclosure="enc-03", after=300.0, failures=2),
            SlowSpinUp(
                enclosure="enc-05", start=0.0, end=3600.0, multiplier=2.0
            ),
            EnclosureOutage(enclosure="enc-01", start=900.0, end=1200.0),
            CacheBatteryFailure(time=2400.0),
            MigrationAbort(item_id=first_item, after=600.0),
        )
    )


def _capture_cell(
    policy_name: str, with_faults: bool, columnar: bool = False
) -> dict:
    """Replay one (policy, fault?) cell and flatten every measurement.

    ``columnar=True`` feeds the same trace as a
    :class:`~repro.trace.columnar.ColumnarTrace`, engaging the kernel's
    batched pump — which this test holds to the very same golden file.
    """
    workload = build_workload("fileserver", full=False)
    faults = (
        _fault_plan(workload.items[0].item_id) if with_faults else None
    )
    context = build_context(
        DEFAULT_CONFIG, workload.enclosure_count, faults=faults
    )
    workload.install(context)
    timeline = PowerTimeline(
        context.enclosures, interval_seconds=TIMELINE_INTERVAL
    )
    policy = STANDARD_POLICIES[policy_name]()
    records: object = workload.records
    if columnar:
        records = ColumnarTrace.from_records(workload.records)
    result = TraceReplayer(context, policy, timeline=timeline).run(
        records, duration=workload.duration
    )
    cell = {"replay": asdict(result)}
    cell["timeline"] = [
        {
            "timestamp": point.timestamp,
            "total_watts": point.total_watts,
            "per_enclosure": point.per_enclosure,
        }
        for point in timeline.points
    ]
    if isinstance(policy, EnergyEfficientPolicy):
        cell["snapshots"] = [
            {
                **asdict(snapshot),
                "pattern_counts": {
                    pattern.value: count
                    for pattern, count in snapshot.pattern_counts.items()
                },
            }
            for snapshot in policy.snapshots
        ]
    return cell


def capture_all(columnar: bool = False) -> dict:
    """Capture every golden cell: four policies, with and without faults."""
    cells = {}
    for with_faults in (False, True):
        for policy_name in STANDARD_POLICIES:
            label = f"{policy_name}{'+faults' if with_faults else ''}"
            cells[label] = _capture_cell(
                policy_name, with_faults, columnar=columnar
            )
    return cells


# ---------------------------------------------------------------------
# Snapshot/restore round-trip property (repro.persistence)
# ---------------------------------------------------------------------
#
# The crash-safety claim extends the golden claim: not only must every
# replay be bit-identical run to run, it must stay bit-identical when
# snapshotted at an *arbitrary* record boundary and resumed in a fresh
# process-worth of state.  Hypothesis picks the policy and the boundary;
# the golden (uninterrupted) surface is computed once per policy.

from functools import lru_cache

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.persistence import RunSpec, SnapshotSession


def _snapshot_surface(result, session):
    """Everything the round-trip property compares, as plain data."""
    timeline = tuple(session.timeline.points)
    return (asdict(result), result.actions, timeline)


def _snapshot_spec(policy_name: str) -> RunSpec:
    return RunSpec(
        workload="tpcc",
        policy=policy_name,
        timeline_interval=TIMELINE_INTERVAL,
    )


@lru_cache(maxsize=None)
def _uninterrupted(policy_name: str):
    """Golden surface + record count for one policy, computed once."""
    session = SnapshotSession(_snapshot_spec(policy_name))
    result = session.run()
    return _snapshot_surface(result, session), result.io_count


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    policy_name=st.sampled_from(tuple(STANDARD_POLICIES)),
    fraction=st.floats(min_value=0.001, max_value=0.999),
)
def test_snapshot_restore_round_trip_is_bit_identical(
    policy_name, fraction, tmp_path_factory
):
    """Snapshot at any record boundary, restore, finish: same result.

    The snapshot goes through the full on-disk ``.ecsn`` envelope (not
    just an in-memory dict), so the property also covers the pickle +
    checksum round trip.
    """
    from repro.persistence import load_snapshot, write_snapshot
    from repro.persistence.format import snapshot_filename

    golden, io_count = _uninterrupted(policy_name)
    boundary = max(1, min(io_count, int(fraction * io_count)))
    directory = tmp_path_factory.mktemp("ecsn-prop")
    path = directory / snapshot_filename(boundary)

    session = SnapshotSession(_snapshot_spec(policy_name))

    def hook(count, ts):
        if count == boundary:
            write_snapshot(path, session.capture(count, ts))

    first = session.run(record_hook=hook)
    assert _snapshot_surface(first, session) == golden

    resumed_session = SnapshotSession(_snapshot_spec(policy_name))
    resumed = resumed_session.resume(load_snapshot(path))
    assert _snapshot_surface(resumed, resumed_session) == golden


@pytest.mark.parametrize("columnar", [False, True], ids=["object", "columnar"])
def test_replay_bit_identical_to_golden(columnar):
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    captured = json.loads(json.dumps(capture_all(columnar=columnar)))
    assert captured.keys() == golden.keys()
    for label in golden:
        assert captured[label] == golden[label], (
            f"replay of cell {label!r} ({'columnar' if columnar else 'object'}"
            " pump) diverged from the pre-kernel golden result — the "
            "engine's decision sequence changed"
        )


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("refusing to run without --regen (see module docstring)")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(capture_all(), indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {GOLDEN_PATH}")
