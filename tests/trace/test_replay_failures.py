"""Failure-injection tests for the replayer."""

import pytest

from repro.baselines.base import PowerPolicy
from repro.trace.records import IOType, LogicalIORecord
from repro.trace.replay import TraceReplayer


def rec(t):
    return LogicalIORecord(t, "item-0", 0, 4096, IOType.READ)


class ExplodingPolicy(PowerPolicy):
    """Raises inside a chosen callback."""

    name = "exploding"

    def __init__(self, where):
        super().__init__()
        self.where = where
        self._next = 10.0
        if where == "start":
            self.on_start = self._boom  # type: ignore[method-assign]

    def _boom(self, *args, **kwargs):
        raise RuntimeError(f"boom in {self.where}")

    def next_checkpoint(self):
        return self._next

    def on_checkpoint(self, now):
        if self.where == "checkpoint":
            raise RuntimeError("boom in checkpoint")
        self._next = now + 10.0

    def after_io(self, record, response_time):
        if self.where == "after_io":
            raise RuntimeError("boom in after_io")


class TestPolicyFailuresPropagate:
    """A broken policy must fail loudly, not corrupt results silently."""

    @pytest.mark.parametrize("where", ["start", "checkpoint", "after_io"])
    def test_exception_propagates(self, small_context, where):
        replayer = TraceReplayer(small_context, ExplodingPolicy(where))
        with pytest.raises(RuntimeError, match="boom"):
            replayer.run([rec(1.0), rec(20.0)], duration=30.0)

    def test_context_still_inspectable_after_failure(self, small_context):
        replayer = TraceReplayer(small_context, ExplodingPolicy("after_io"))
        with pytest.raises(RuntimeError):
            replayer.run([rec(1.0)], duration=5.0)
        # The partial run's accounting is still consistent.
        assert small_context.controller.logical_io_count == 1
        for enclosure in small_context.enclosures:
            assert enclosure.energy_joules() >= 0.0
