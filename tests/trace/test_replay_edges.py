"""Replay edge cases: empty traces, checkpoint ordering, idle-gap sampling.

These pin the boundary semantics the parallel experiment engine relies
on: every replay — serial, worker, or cached — must make the identical
decision sequence and report the identical power series.
"""

import pytest

from repro import units
from repro.baselines.base import PowerPolicy
from repro.baselines.nopower import NoPowerSavingPolicy
from repro.config import DEFAULT_CONFIG
from repro.errors import ReplayError
from repro.monitoring.timeline import PowerTimeline
from repro.simulation import build_context, default_volume
from repro.trace.records import IOType, LogicalIORecord
from repro.trace.replay import TraceReplayer


def rec(t):
    return LogicalIORecord(t, "item-0", 0, 4096, IOType.READ)


class TestEmptyTrace:
    """Satellite: an empty trace must fail early or mean something."""

    def test_without_duration_raises(self, small_context):
        replayer = TraceReplayer(small_context, NoPowerSavingPolicy())
        with pytest.raises(ReplayError, match="empty trace"):
            replayer.run([])

    def test_zero_duration_raises(self, small_context):
        replayer = TraceReplayer(small_context, NoPowerSavingPolicy())
        with pytest.raises(ReplayError, match="must be positive"):
            replayer.run([], duration=0.0)

    def test_negative_duration_raises(self, small_context):
        replayer = TraceReplayer(small_context, NoPowerSavingPolicy())
        with pytest.raises(ReplayError, match="must be positive"):
            replayer.run([rec(1.0)], duration=-5.0)

    def test_with_duration_yields_zero_io_idle_result(self, small_context):
        replayer = TraceReplayer(small_context, NoPowerSavingPolicy())
        result = replayer.run([], duration=100.0)
        assert result.io_count == 0
        assert result.duration_seconds == 100.0
        assert result.mean_response == 0.0
        assert result.migrated_bytes == 0
        idle = DEFAULT_CONFIG.enclosure_power.idle_watts
        assert result.power.enclosure_watts == pytest.approx(3 * idle)


class RecordingPolicy(PowerPolicy):
    """Logs callback order; checkpoints at a fixed period."""

    name = "recording"

    def __init__(self, period):
        super().__init__()
        self.period = period
        self._next = period
        self.events = []

    def next_checkpoint(self):
        return self._next

    def on_checkpoint(self, now):
        self.events.append(("checkpoint", now))
        self._next = now + self.period

    def after_io(self, record, response_time):
        self.events.append(("io", record.timestamp))


class TestCheckpointOrdering:
    """Satellite: a checkpoint at a record's timestamp runs before it."""

    def test_checkpoint_precedes_coincident_record(self, small_context):
        policy = RecordingPolicy(period=10.0)
        TraceReplayer(small_context, policy).run([rec(10.0)], duration=20.0)
        assert policy.events == [
            ("checkpoint", 10.0),
            ("io", 10.0),
            ("checkpoint", 20.0),
        ]


class PowerOffAt(RecordingPolicy):
    """Enables enclosure power-off at one chosen checkpoint."""

    name = "power-off-at"

    def __init__(self, period, act_at, timeline):
        super().__init__(period)
        self.act_at = act_at
        self.timeline = timeline
        self.points_at_action = None

    def on_checkpoint(self, now):
        if now == self.act_at:
            # Snapshot BEFORE acting: the fix under test guarantees all
            # due boundaries were sampled before the policy can settle
            # the enclosures past them.
            self.points_at_action = [p.timestamp for p in self.timeline.points]
            for enclosure in self._require_context().enclosures:
                enclosure.enable_power_off(now)
        super().on_checkpoint(now)


class TestIdleGapSampling:
    """Satellite: samples due inside long idle gaps are not deferred."""

    def test_gap_yields_exact_intermediate_samples(self, config):
        context = build_context(config, 1)
        name = context.enclosure_names()[0]
        context.virtualization.add_item("item-0", 64 * units.MB, default_volume(name))
        context.app_monitor.register_item("item-0", default_volume(name))
        timeline = PowerTimeline(context.enclosures, interval_seconds=60.0)
        policy = PowerOffAt(period=100.0, act_at=300.0, timeline=timeline)
        replayer = TraceReplayer(context, policy, timeline=timeline)
        replayer.run([rec(1.0)], duration=500.0)

        # Mid-gap boundaries existed already when the policy acted at
        # t=300 — they were not backfilled at finish time.
        assert policy.points_at_action == [60.0, 120.0, 180.0, 240.0, 300.0]

        by_time = {p.timestamp: p.total_watts for p in timeline.points}
        assert sorted(by_time) == [
            60.0, 120.0, 180.0, 240.0, 300.0, 360.0, 420.0, 480.0, 500.0,
        ]
        power = config.enclosure_power
        # 120..300: pure idle intervals, exact.
        for at in (120.0, 180.0, 240.0, 300.0):
            assert by_time[at] == power.idle_watts
        # 300..360 spans idle (until 300 + spin_down_timeout), the
        # spin-down transition, and the first seconds powered off.
        idle_span = config.spin_down_timeout
        spin_span = power.spin_down_seconds
        off_span = 60.0 - idle_span - spin_span
        expected = (
            power.idle_watts * idle_span
            + power.spin_down_watts * spin_span
            + power.off_watts * off_span
        ) / 60.0
        assert by_time[360.0] == pytest.approx(expected)
        # 360..500: powered off throughout.
        for at in (420.0, 480.0, 500.0):
            assert by_time[at] == pytest.approx(power.off_watts)
