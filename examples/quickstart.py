#!/usr/bin/env python3
"""Quickstart: run the proposed power-saving method on a file server.

Builds a one-hour slice of the MSR-like File Server workload, replays it
twice — once without power saving, once under the proposed
energy-efficient storage management — and prints the comparison the
paper's Fig 8/9 bar charts show.

Run:  python examples/quickstart.py
"""

from repro import (
    DEFAULT_CONFIG,
    EnergyEfficientPolicy,
    NoPowerSavingPolicy,
    build_context,
    build_fileserver_workload,
)
from repro.trace.replay import TraceReplayer


def run_policy(workload, policy):
    """One fresh storage system, one policy, one replay."""
    context = build_context(DEFAULT_CONFIG, workload.enclosure_count)
    workload.install(context)
    replayer = TraceReplayer(context, policy)
    return replayer.run(workload.records, duration=workload.duration)


def main() -> None:
    workload = build_fileserver_workload(duration=3600.0)
    print(f"workload: {workload.description}\n")

    baseline = run_policy(workload, NoPowerSavingPolicy())
    proposed = run_policy(workload, EnergyEfficientPolicy())

    saving = 100.0 * (
        baseline.power.enclosure_watts - proposed.power.enclosure_watts
    ) / baseline.power.enclosure_watts

    print(f"{'':24s} {'no power saving':>16s} {'proposed':>12s}")
    print(
        f"{'enclosure power':24s} "
        f"{baseline.power.enclosure_watts:14.1f} W "
        f"{proposed.power.enclosure_watts:10.1f} W"
    )
    print(
        f"{'mean I/O response':24s} "
        f"{baseline.mean_response:14.3f} s "
        f"{proposed.mean_response:10.3f} s"
    )
    print(
        f"{'cache hit ratio':24s} "
        f"{baseline.cache_hit_ratio:16.2f} "
        f"{proposed.cache_hit_ratio:12.2f}"
    )
    print(
        f"{'migrated data':24s} "
        f"{baseline.migrated_bytes / 2**30:14.2f} GB "
        f"{proposed.migrated_bytes / 2**30:10.2f} GB"
    )
    print(
        f"{'placement decisions':24s} "
        f"{baseline.determinations:16d} {proposed.determinations:12d}"
    )
    print(f"\npower saving: {saving:.1f} % (paper measured 25.8 % over 6 h)")


if __name__ == "__main__":
    main()
