#!/usr/bin/env python3
"""OLTP scenario: compare all four policies on a TPC-C-shaped workload.

Replays the busy OLTP workload (hash-distributed database on nine
enclosures plus a dedicated log device) under the proposed method, PDC,
DDR, and no power saving, then reports the paper's Fig 11/12/13 metrics
including the tpmC conversion from read response times.

Run:  python examples/oltp_policy_comparison.py [--full]
"""

import argparse

from repro.analysis.metrics import power_saving_percent, transaction_throughput
from repro.experiments.runner import STANDARD_POLICIES, run_cell
from repro.workloads import build_oltp_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper's full 1.8 h duration (default: 40 min)",
    )
    args = parser.parse_args()

    workload = build_oltp_workload() if args.full else build_oltp_workload(
        duration=2400.0
    )
    print(f"workload: {workload.description}\n")

    results = {
        name: run_cell(workload, factory())
        for name, factory in STANDARD_POLICIES.items()
    }
    baseline = results["no-power-saving"]
    t_orig = workload.app_metrics["tpmC_without_power_saving"]
    r_orig = baseline.mean_read_response

    header = (
        f"{'policy':18s} {'power':>9s} {'saving':>8s} {'tpmC':>8s} "
        f"{'migrated':>10s} {'decisions':>10s}"
    )
    print(header)
    print("-" * len(header))
    for name, result in results.items():
        saving = power_saving_percent(
            baseline.enclosure_watts, result.enclosure_watts
        )
        tpmc = transaction_throughput(
            t_orig, r_orig, result.mean_read_response
        )
        print(
            f"{name:18s} {result.enclosure_watts:7.1f} W "
            f"{saving:6.1f} % {tpmc:8.1f} "
            f"{result.migrated_bytes / 2**30:8.2f} GB "
            f"{result.determinations:10d}"
        )

    print(
        "\npaper (Fig 11/12): proposed -15.7 % power at 1701.4 tpmC "
        "(-8.5 %); PDC -10.7 %; DDR saves nothing"
    )


if __name__ == "__main__":
    main()
