#!/usr/bin/env python3
"""Build your own workload and watch the manager classify and act.

Shows the library's lower-level API: hand-constructed data items and a
logical trace, a custom storage system, and a peek at the management
snapshots — which items were P0/P1/P2/P3 each period, which enclosures
went cold, what was preloaded and write-delayed.

Scenario: a small analytics server with
  * an append-only event log (constant writes -> P3, pinned hot),
  * a handful of dashboards re-reading small summary tables (P1,
    preloaded),
  * a nightly-export table written in bursts (P2, write-delayed),
  * an archive nobody touches (P0, its enclosure sleeps).

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import DEFAULT_CONFIG, EnergyEfficientPolicy, build_context
from repro.simulation import default_volume
from repro.trace.records import IOType, LogicalIORecord
from repro.trace.replay import TraceReplayer
from repro import units

DURATION = 4000.0


def build_trace(rng: np.random.Generator) -> list[LogicalIORecord]:
    records = []

    # Event log: a write every 5-25 s, always appending.
    t, offset = 0.0, 0
    while True:
        t += rng.uniform(5.0, 25.0)
        if t >= DURATION:
            break
        records.append(
            LogicalIORecord(t, "events", offset, 64 * units.KB, IOType.WRITE,
                            sequential=True)
        )
        offset = (offset + 64 * units.KB) % (900 * units.MB)

    # Dashboards: bursts of reads on the summary tables every ~8 min.
    for table in ("summary-sales", "summary-users"):
        t = rng.uniform(0, 120)
        while t < DURATION - 30.0:
            for k in range(rng.integers(6, 14)):
                records.append(
                    LogicalIORecord(
                        t + k * 1.5, table, int(k) * 8192, 8192, IOType.READ
                    )
                )
            t += rng.uniform(420.0, 560.0)

    # Nightly export: one heavy write burst mid-run.
    for k in range(120):
        records.append(
            LogicalIORecord(
                2000.0 + k * 0.8, "export", k * 256 * units.KB,
                256 * units.KB, IOType.WRITE, sequential=True,
            )
        )

    records.sort(key=lambda r: r.timestamp)
    return records


def main() -> None:
    rng = np.random.default_rng(11)
    context = build_context(DEFAULT_CONFIG, enclosure_count=4)
    names = context.enclosure_names()

    layout = {
        "events": (names[0], 900 * units.MB),
        "summary-sales": (names[1], 12 * units.MB),
        "summary-users": (names[1], 9 * units.MB),
        "export": (names[2], 400 * units.MB),
        "archive": (names[3], 2 * units.GB),
    }
    for item, (enclosure, size) in layout.items():
        context.virtualization.add_item(item, size, default_volume(enclosure))
        context.app_monitor.register_item(item, default_volume(enclosure))

    policy = EnergyEfficientPolicy()
    result = TraceReplayer(context, policy).run(
        build_trace(rng), duration=DURATION
    )

    print("management snapshots:")
    for snap in policy.snapshots:
        patterns = {
            p.value: c for p, c in snap.pattern_counts.items() if c
        }
        print(
            f"  t={snap.time:6.0f}s patterns={patterns} "
            f"hot={list(snap.hot)} preloaded={snap.preload_items} "
            f"write-delayed={snap.write_delay_items}"
        )

    print("\nfinal cache state:")
    print(f"  preloaded items:    {sorted(context.cache.preload.item_ids())}")
    print(
        "  write-delay items:  "
        f"{sorted(context.cache.write_delay.selected_items())}"
    )

    print("\nper-enclosure outcome:")
    for enclosure in context.enclosures:
        items = context.virtualization.items_on(enclosure.name)
        print(
            f"  {enclosure.name}: {enclosure.average_watts():5.1f} W avg, "
            f"{enclosure.spin_down_count} spin-downs, holds {items}"
        )
    print(
        f"\ntotal enclosure power: {result.power.enclosure_watts:.1f} W, "
        f"mean response {result.mean_response * 1000:.1f} ms"
    )


if __name__ == "__main__":
    main()
