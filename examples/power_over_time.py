#!/usr/bin/env python3
"""Power-over-time view: watch the array's draw as the manager acts.

Attaches a :class:`~repro.monitoring.timeline.PowerTimeline` to a TPC-H
replay and renders the total power series as a terminal chart — the
view a datacenter power meter would log (paper §III-B's
power-consumption records).  The proposed method's spin-downs between
query scan windows show up as deep valleys; the no-power-saving run is
a flat line near idle.

Run:  python examples/power_over_time.py
"""

from repro import DEFAULT_CONFIG, EnergyEfficientPolicy, NoPowerSavingPolicy
from repro.analysis.plot import time_series_chart
from repro.monitoring.timeline import PowerTimeline
from repro.simulation import build_context
from repro.trace.replay import TraceReplayer
from repro.workloads import build_dss_workload


def run_with_timeline(workload, policy):
    context = build_context(DEFAULT_CONFIG, workload.enclosure_count)
    workload.install(context)
    timeline = PowerTimeline(context.enclosures, interval_seconds=120.0)
    TraceReplayer(context, policy, timeline).run(
        workload.records, duration=workload.duration
    )
    return timeline


def main() -> None:
    workload = build_dss_workload(
        duration=7200.0, queries=("Q1", "Q2", "Q6", "Q9", "Q21")
    )
    print(f"workload: {workload.description}\n")

    for title, policy in (
        ("no power saving", NoPowerSavingPolicy()),
        ("proposed method", EnergyEfficientPolicy()),
    ):
        timeline = run_with_timeline(workload, policy)
        print(
            time_series_chart(
                timeline.total_series(), title=f"-- {title} --"
            )
        )
        print(f"   mean: {timeline.mean_watts():,.0f} W\n")


if __name__ == "__main__":
    main()
