#!/usr/bin/env python3
"""DSS scenario: per-query power and response analysis on TPC-H.

Runs a subset of TPC-H queries under the proposed method and DDR and
reports (i) the overall power saving, (ii) per-query response times
scaled per the paper's §VII-A.5 conversion (Fig 15), and (iii) the
cumulative long-interval totals behind Fig 19.

Run:  python examples/dss_query_analysis.py
"""

from repro.analysis.metrics import (
    power_saving_percent,
    relative_query_responses,
)
from repro.experiments.runner import run_cell
from repro.baselines.ddr import DDRPolicy
from repro.baselines.nopower import NoPowerSavingPolicy
from repro.core.manager import EnergyEfficientPolicy
from repro.workloads import build_dss_workload

QUERIES = ("Q1", "Q2", "Q6", "Q9", "Q21")


def main() -> None:
    workload = build_dss_workload(duration=7200.0, queries=QUERIES)
    print(f"workload: {workload.description}\n")

    baseline = run_cell(workload, NoPowerSavingPolicy())
    proposed = run_cell(workload, EnergyEfficientPolicy())
    ddr = run_cell(workload, DDRPolicy())

    for name, result in (("proposed", proposed), ("ddr", ddr)):
        saving = power_saving_percent(
            baseline.enclosure_watts, result.enclosure_watts
        )
        print(
            f"{name:10s} power {result.enclosure_watts:7.1f} W "
            f"({saving:5.1f} % saving), "
            f"{result.replay.spin_up_count} spin-ups"
        )

    print("\nper-query response (baseline scale, §VII-A.5 conversion):")
    base_windows = baseline.window_responses
    ours = relative_query_responses(proposed.window_responses, base_windows)
    theirs = relative_query_responses(ddr.window_responses, base_windows)
    print(f"{'query':8s} {'no-saving':>10s} {'proposed':>10s} {'ddr':>10s}")
    for name, start, end in workload.phases:
        duration = end - start
        print(
            f"{name:8s} {duration:8.0f} s "
            f"{ours.get(name, float('nan')):8.0f} s "
            f"{theirs.get(name, float('nan')):8.0f} s"
        )

    print("\ncumulative long-interval totals (Fig 19):")
    for name, result in (
        ("no-saving", baseline),
        ("proposed", proposed),
        ("ddr", ddr),
    ):
        print(f"  {name:10s} {result.interval_curve.total_length:10,.0f} s")


if __name__ == "__main__":
    main()
