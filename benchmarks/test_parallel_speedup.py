"""Parallel experiment engine: sweep wall-clock at --jobs 1 vs --jobs N.

Not a paper figure: tracks the engine's fan-out overhead/speedup on this
machine.  The speedup is *measured and reported*, never asserted — on a
single-core container the parallel run is legitimately no faster — but
result equality between the two paths is asserted on every run, which
is the property the figures actually depend on.
"""

from __future__ import annotations

import os
import time

from repro.experiments.parallel import (
    ExperimentEngine,
    ExperimentCell,
    PolicySpec,
    WorkloadSpec,
)
from repro.experiments.runner import STANDARD_POLICIES

JOBS = min(4, os.cpu_count() or 1)


def sweep_cells():
    return [
        ExperimentCell(workload=WorkloadSpec(name=name), policy=PolicySpec(name=p))
        for name in ("fileserver", "tpcc", "tpch")
        for p in STANDARD_POLICIES
    ]


def timed_run(jobs: int):
    engine = ExperimentEngine(jobs=jobs)
    started = time.perf_counter()
    outcomes = engine.run_cells(sweep_cells())
    return time.perf_counter() - started, [o.require() for o in outcomes]


def test_parallel_sweep_wall_clock(report):
    serial_seconds, serial_results = timed_run(jobs=1)
    parallel_seconds, parallel_results = timed_run(jobs=JOBS)
    assert parallel_results == serial_results
    ratio = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0
    report(
        "Parallel engine — 12-cell smoke sweep wall-clock\n"
        f"  --jobs 1      {serial_seconds:7.2f} s\n"
        f"  --jobs {JOBS}      {parallel_seconds:7.2f} s\n"
        f"  speedup       {ratio:7.2f} x  "
        f"({os.cpu_count() or 1} CPU(s) visible; results bit-identical)"
    )
