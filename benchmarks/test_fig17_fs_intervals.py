"""Fig 17 — File Server cumulative I/O intervals (§VII-E).

Paper: "the total length of I/O intervals in the proposed method is
approximately twice as long as that compared with other methods".
"""

from repro.analysis.intervals import curve_summary_rows
from repro.analysis.report import PaperRow, render_table
from repro.experiments.fig17_19_intervals import curves, total_lengths


def test_fig17_fileserver_intervals(benchmark, report, fileserver_results):
    totals = benchmark.pedantic(
        total_lengths,
        args=("fileserver",),
        kwargs={"full": True},
        rounds=1,
        iterations=1,
    )
    rows = [
        PaperRow(
            label=f"fig17 total {policy}",
            paper="proposed ~2x others" if policy == "proposed" else "-",
            measured=f"{total:,.0f} s",
        )
        for policy, total in totals.items()
    ]
    report(render_table("Fig 17 — File Server cumulative intervals", rows))

    assert totals["proposed"] > 1.4 * max(totals["pdc"], 1.0)
    assert totals["proposed"] > totals["ddr"]
    assert totals["no-power-saving"] == 0.0


def test_fig17_curve_is_cumulative(benchmark, fileserver_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    curve = curves("fileserver", full=True)["proposed"]
    assert list(curve.cumulative) == sorted(curve.cumulative)
    assert curve.total_length == curve.cumulative[-1]
