"""Benchmark fixtures: full paper-length runs, shared per session.

Every benchmark regenerates one paper table/figure from the *full*
(Table I durations) workloads.  The expensive comparisons are memoized
in :mod:`repro.experiments.testbed`, so the first benchmark touching a
workload pays for its four policy runs and the rest reuse them.  Each
benchmark prints its paper-vs-measured table; the session also appends
them to ``benchmarks/latest_report.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.testbed import comparison

REPORT_PATH = Path(__file__).parent / "latest_report.txt"
_sections: list[str] = []


@pytest.fixture(scope="session")
def fileserver_results():
    return comparison("fileserver", full=True)


@pytest.fixture(scope="session")
def tpcc_results():
    return comparison("tpcc", full=True)


@pytest.fixture(scope="session")
def tpch_results():
    return comparison("tpch", full=True)


@pytest.fixture()
def report():
    """Collect a rendered section and echo it to the console."""

    def _add(text: str) -> None:
        _sections.append(text)
        print()
        print(text)

    return _add


def pytest_sessionfinish(session, exitstatus):
    if _sections:
        REPORT_PATH.write_text("\n\n".join(_sections) + "\n")


def saving(results, policy: str) -> float:
    """Measured power-saving percentage of one policy."""
    base = results["no-power-saving"].enclosure_watts
    return 100.0 * (base - results[policy].enclosure_watts) / base
