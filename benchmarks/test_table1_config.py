"""Table I — configuration of the data-intensive applications."""

from repro.analysis.report import render_table
from repro.experiments import tables
from repro.experiments.testbed import build_workload


def test_table1_configuration(benchmark, report):
    rows = benchmark.pedantic(
        tables.table1_rows, kwargs={"full": True}, rounds=1, iterations=1
    )
    report(render_table("Table I — application configuration", rows))

    fileserver = build_workload("fileserver", full=True)
    tpcc = build_workload("tpcc", full=True)
    tpch = build_workload("tpch", full=True)
    # Table I structure: durations, enclosure layouts, volume counts.
    assert fileserver.duration == 6 * 3600.0
    assert fileserver.enclosure_count == 12
    assert len(fileserver.volumes) == 36
    assert tpcc.duration == 1.8 * 3600.0
    assert tpcc.enclosure_count == 10  # log + 9 DB
    assert tpch.duration == 6 * 3600.0
    assert tpch.enclosure_count == 9  # log/work + 8 DB
