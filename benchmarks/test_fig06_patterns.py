"""Fig 6 — logical I/O patterns of the three applications.

Shape assertions: the measured pattern mix of each generated workload
must land within a few points of the paper's measurement (File Server
89.6 % P1 / 9.9 % P3; TPC-C 76.2 % P3 / 23.3 % P1; TPC-H 61.5 % P1 /
38.5 % P2; no P0 anywhere).
"""

import pytest

from repro.analysis.report import render_table
from repro.core.patterns import IOPattern
from repro.experiments import fig06_patterns
from repro.experiments.paper_values import FIG6_PATTERN_MIX
from repro.experiments.testbed import build_workload

TOLERANCE = 0.05  # five percentage points


def measure(name):
    return fig06_patterns.measure_pattern_mix(build_workload(name, full=True))


def test_fig06_pattern_mix(benchmark, report):
    rows = benchmark.pedantic(
        fig06_patterns.run, kwargs={"full": True}, rounds=1, iterations=1
    )
    report(rows)

    for name in ("fileserver", "tpcc", "tpch"):
        mix = measure(name)
        paper = FIG6_PATTERN_MIX[name]
        for pattern in IOPattern:
            assert mix[pattern] == pytest.approx(
                paper[pattern.value] / 100.0, abs=TOLERANCE
            ), f"{name} {pattern.value}"
        # "There are no P0 data items, since ... all data items are
        # accessed at least once."
        assert mix[IOPattern.P0] == 0.0, name


def test_fig06_dominant_patterns(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fs = measure("fileserver")
    tpcc = measure("tpcc")
    tpch = measure("tpch")
    # The qualitative statement of §VI-C.
    assert max(fs, key=fs.get) is IOPattern.P1
    assert max(tpcc, key=tpcc.get) is IOPattern.P3
    assert max(tpch, key=tpch.get) is IOPattern.P1
    assert tpch[IOPattern.P3] == 0.0
    assert tpch[IOPattern.P2] > 0.3
