"""Fig 18 — TPC-C cumulative I/O intervals (§VII-E).

Paper: "the I/O intervals of the method are longer than those of PDC and
DDR.  There are no I/O intervals longer than the break-even time in
DDR."
"""

from repro.analysis.report import PaperRow, render_table
from repro.experiments.fig17_19_intervals import total_lengths


def test_fig18_tpcc_intervals(benchmark, report, tpcc_results):
    totals = benchmark.pedantic(
        total_lengths,
        args=("tpcc",),
        kwargs={"full": True},
        rounds=1,
        iterations=1,
    )
    rows = [
        PaperRow(
            label=f"fig18 total {policy}",
            paper="0 s" if policy == "ddr" else "-",
            measured=f"{total:,.0f} s",
        )
        for policy, total in totals.items()
    ]
    report(render_table("Fig 18 — TPC-C cumulative intervals", rows))

    # DDR creates no interval above the break-even time at all.
    assert totals["ddr"] == 0.0
    # The proposed method creates plenty (preload + write delay +
    # consolidation work even on a busy OLTP system).
    assert totals["proposed"] > 5_000.0
    assert totals["no-power-saving"] == 0.0
