"""Simulator throughput benchmarks (pytest-benchmark timings).

Not a paper figure: these track the replay engine's own performance so
regressions in the hot path (enclosure state machine, cache, pattern
classification) show up in the benchmark log.
"""

import pytest

from repro.baselines.nopower import NoPowerSavingPolicy
from repro.config import DEFAULT_CONFIG
from repro.core.manager import EnergyEfficientPolicy
from repro.core.patterns import build_profiles
from repro.experiments.testbed import build_workload
from repro.simulation import build_context
from repro.trace.replay import TraceReplayer


@pytest.fixture(scope="module")
def smoke_workload():
    return build_workload("tpcc", full=False)


def replay_once(workload, policy_factory):
    context = build_context(DEFAULT_CONFIG, workload.enclosure_count)
    workload.install(context)
    return TraceReplayer(context, policy_factory()).run(
        workload.records, duration=workload.duration
    )


def test_replay_throughput_baseline(benchmark, smoke_workload):
    result = benchmark.pedantic(
        replay_once,
        args=(smoke_workload, NoPowerSavingPolicy),
        rounds=3,
        iterations=1,
    )
    assert result.io_count == len(smoke_workload.records)


def test_replay_throughput_proposed(benchmark, smoke_workload):
    result = benchmark.pedantic(
        replay_once,
        args=(smoke_workload, EnergyEfficientPolicy),
        rounds=3,
        iterations=1,
    )
    assert result.io_count == len(smoke_workload.records)


def test_pattern_classification_speed(benchmark, smoke_workload):
    sizes = {i.item_id: i.size_bytes for i in smoke_workload.items}
    locations = {i.item_id: "e0" for i in smoke_workload.items}

    def classify():
        return build_profiles(
            smoke_workload.records,
            0.0,
            smoke_workload.duration,
            DEFAULT_CONFIG.break_even_time,
            sizes,
            locations,
        )

    profiles = benchmark(classify)
    assert len(profiles) == len(smoke_workload.items)
