"""Fig 9 — File Server average I/O response time.

Paper: proposed 17.1 ms < PDC 22.6 ms < DDR 27.0 ms; the proposed method
even beats the no-power-saving run thanks to preloading.  At simulation
scale the ordering among power-saving methods must hold (proposed best);
the absolute advantage over no-power-saving does not reproduce because
each synthetic wake-up burst queues behind a spin-up that is ~20 service
times long (see EXPERIMENTS.md, "Known deviations").
"""

from repro.analysis.report import render_table
from repro.experiments.comparisons import response_rows
from repro.experiments.paper_values import FIG9_RESPONSE_SECONDS


def test_fig09_fileserver_response(benchmark, report, fileserver_results):
    rows = benchmark.pedantic(
        response_rows,
        args=("fileserver", fileserver_results, FIG9_RESPONSE_SECONDS),
        rounds=1,
        iterations=1,
    )
    report(render_table("Fig 9 — File Server response", rows))

    proposed = fileserver_results["proposed"].mean_response
    pdc = fileserver_results["pdc"].mean_response
    base = fileserver_results["no-power-saving"].mean_response
    # Proposed beats PDC (paper: 17.1 vs 22.6 ms).
    assert proposed < pdc
    # And stays within 2x of the no-power-saving response.
    assert proposed < 2.0 * base


def test_fig09_preload_absorbs_reads(benchmark, fileserver_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # The mechanism behind the paper's Fig 9 claim: the proposed
    # method's cache hit ratio rises because P1 items are preloaded.
    assert (
        fileserver_results["proposed"].replay.cache_hit_ratio
        > fileserver_results["no-power-saving"].replay.cache_hit_ratio
    )
    assert fileserver_results["proposed"].replay.cache_hit_ratio > 0.1
