"""Fig 19 — TPC-H cumulative I/O intervals (§VII-E).

Paper: "PDC and DDR could enlarge the I/O intervals.  However, the
proposed method can enlarge I/O intervals much longer than PDC and DDR."
"""

from repro.analysis.report import PaperRow, render_table
from repro.experiments.fig17_19_intervals import total_lengths


def test_fig19_tpch_intervals(benchmark, report, tpch_results):
    totals = benchmark.pedantic(
        total_lengths,
        args=("tpch",),
        kwargs={"full": True},
        rounds=1,
        iterations=1,
    )
    rows = [
        PaperRow(
            label=f"fig19 total {policy}",
            paper="-",
            measured=f"{total:,.0f} s",
        )
        for policy, total in totals.items()
    ]
    report(render_table("Fig 19 — TPC-H cumulative intervals", rows))

    # Unlike TPC-C, every method accumulates long intervals on DSS —
    # even without power saving the compute tails are long.
    for policy, total in totals.items():
        assert total > 50_000.0, policy
    # The proposed method's intervals are at least as long as DDR's
    # (preload removes small-table scan wake-ups).
    assert totals["proposed"] >= totals["ddr"] * 0.99
