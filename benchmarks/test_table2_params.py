"""Table II — parameter values for the evaluation."""

import pytest

from repro.analysis.report import render_table
from repro.config import PAPER_CONFIG
from repro.experiments import tables


def test_table2_parameters(benchmark, report):
    rows = benchmark.pedantic(tables.table2_rows, rounds=1, iterations=1)
    report(
        render_table("Table II — parameter values (paper magnitude)", rows)
    )
    # Every Table II value must be encoded exactly.
    assert PAPER_CONFIG.break_even_time == 52.0
    assert PAPER_CONFIG.spin_down_timeout == 52.0
    assert PAPER_CONFIG.max_iops_random == 900.0
    assert PAPER_CONFIG.max_iops_sequential == 2800.0
    assert PAPER_CONFIG.storage_cache_bytes == 2 * 1024**3
    assert PAPER_CONFIG.write_delay_cache_bytes == 500 * 1024**2
    assert PAPER_CONFIG.preload_cache_bytes == 500 * 1024**2
    assert PAPER_CONFIG.dirty_block_rate == 0.5
    assert PAPER_CONFIG.monitoring_alpha == 1.2
    assert PAPER_CONFIG.initial_monitoring_period == 520.0
    assert PAPER_CONFIG.pdc_monitoring_period == 1800.0
    assert PAPER_CONFIG.ddr_target_th == 450.0
    # The power model's physical break-even agrees with the parameter.
    assert PAPER_CONFIG.enclosure_power.break_even_time == pytest.approx(
        52.0, rel=0.05
    )
