"""Fig 15 — TPC-H query response times (Q2, Q7, Q21).

Paper: "query response times become worse for all methods, but the
proposed method's query response is faster than those of PDC and DDR";
DDR runs about 3x slower than the proposed method.  Shape: per-query
responses degrade for every power-saving method, with the proposed
method the least degraded of the three.
"""

from repro.analysis.report import render_table
from repro.experiments.fig14_16_tpch import fig15_rows, query_responses
from repro.experiments.paper_values import FIG15_QUERIES


def test_fig15_tpch_query_response(benchmark, report, tpch_results):
    rows = benchmark.pedantic(
        fig15_rows, kwargs={"full": True}, rounds=1, iterations=1
    )
    report(render_table("Fig 15 — TPC-H query response", rows))

    responses = query_responses(full=True)
    for query in FIG15_QUERIES:
        base = responses["no-power-saving"][query]
        ours = responses["proposed"][query]
        pdc = responses["pdc"][query]
        ddr = responses["ddr"][query]
        # Every method degrades the query...
        assert ours > base
        assert ddr > base
        # ...the proposed method least among the saving methods.
        assert ours <= pdc, f"{query}: proposed {ours:.0f} vs pdc {pdc:.0f}"
        assert ours <= ddr * 1.05, (
            f"{query}: proposed {ours:.0f} vs ddr {ddr:.0f}"
        )


def test_fig15_all_queries_covered(benchmark, tpch_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    names = {w.name for w in tpch_results["proposed"].window_responses}
    assert names == {f"Q{i}" for i in range(1, 23)}
