"""Fig 8 — File Server power consumption.

Paper: proposed −25.8 %, PDC −3.5 %, DDR −3.6 %.  Shape assertions: the
proposed method saves substantially (>15 %), PDC/DDR save little
(<15 %), and the proposed method beats both by a wide margin.
"""

from repro.analysis.report import render_table
from repro.experiments.comparisons import power_rows

from conftest import saving


def test_fig08_fileserver_power(benchmark, report, fileserver_results):
    rows = benchmark.pedantic(
        power_rows,
        args=("fileserver", fileserver_results),
        rounds=1,
        iterations=1,
    )
    report(render_table("Fig 8 — File Server power", rows))

    ours = saving(fileserver_results, "proposed")
    pdc = saving(fileserver_results, "pdc")
    ddr = saving(fileserver_results, "ddr")
    assert ours > 15.0, f"proposed saved only {ours:.1f} % (paper 25.8 %)"
    assert ours < 45.0
    assert pdc < 15.0, f"PDC saved {pdc:.1f} % (paper 3.5 %)"
    assert abs(ddr) < 3.0, f"DDR saved {ddr:.1f} % (paper 3.6 %)"
    assert ours > pdc + 10.0
    assert ours > ddr + 10.0


def test_fig08_baseline_magnitude(benchmark, fileserver_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # The no-power-saving run should land near the paper's 2977.9 W
    # (12 enclosures mostly idle/active).
    base = fileserver_results["no-power-saving"].enclosure_watts
    assert 2600.0 < base < 3250.0
