"""Action-layer overhead gate: recording ActionRecords must be ~free.

Not a paper figure: the :mod:`repro.actions` refactor routed every
storage mutation through the recording
:class:`~repro.actions.executor.ActionExecutor`, and this benchmark
holds the cost of that bookkeeping to ≤ 2 % of replay wall-clock (plus
an absolute floor below timer/scheduler noise, so a sub-millisecond
difference on a fast machine can never fail the gate).  The underlying
measurement is the same interleaved logged-vs-unlogged comparison
``ecostor bench`` ships in ``BENCH_engine.json``'s ``action_layer``
section.
"""

from __future__ import annotations

from repro.experiments.bench import run_bench

#: Relative bar from the issue: logging may cost at most 2 % of replay.
MAX_OVERHEAD_FRACTION = 0.02
#: Absolute noise floor: differences under 50 ms are scheduler jitter,
#: not logging cost, regardless of what fraction they work out to.
NOISE_FLOOR_SECONDS = 0.05


def test_action_record_logging_overhead_within_bar(report):
    document = run_bench("tpcc", full=False, repeats=5)
    overhead = document["action_layer"]
    logged = overhead["logged_seconds"]
    unlogged = overhead["unlogged_seconds"]
    # Gate the zero-clamped excess: a negative difference means logging
    # measured *faster*, which is scheduler noise, not a cost to gate.
    excess = max(0.0, logged - unlogged)
    report(
        "Action-layer logging overhead (tpcc smoke, proposed policy)\n"
        f"  logged   : {logged:.4f} s\n"
        f"  unlogged : {unlogged:.4f} s\n"
        f"  overhead : {overhead['overhead_fraction_raw']:+.2%} raw, "
        f"{overhead['overhead_fraction']:.2%} gated "
        f"(bar {MAX_OVERHEAD_FRACTION:.0%}, "
        f"floor {NOISE_FLOOR_SECONDS * 1000:.0f} ms)"
    )
    assert excess <= max(
        MAX_OVERHEAD_FRACTION * unlogged, NOISE_FLOOR_SECONDS
    ), (
        f"action-record logging slowed replay by {excess:.4f} s "
        f"({overhead['overhead_fraction_raw']:+.2%} raw); the action layer "
        f"must stay within {MAX_OVERHEAD_FRACTION:.0%} of the unlogged replay"
    )
