"""Zoned datacenter study (paper §IX: "multiple energy saving methods").

A mixed deployment: the TPC-C database zone keeps full performance
(no power saving), while an archive zone modelled by the File Server
workload runs the proposed method.  The zoned composition must deliver
the archive zone's savings without touching the database zone.
"""

from functools import lru_cache

from repro import units
from repro.analysis.report import PaperRow, render_table, watts
from repro.baselines.nopower import NoPowerSavingPolicy
from repro.baselines.zoned import Zone, ZonedPolicy
from repro.config import DEFAULT_CONFIG
from repro.core.manager import EnergyEfficientPolicy
from repro.simulation import build_context
from repro.trace.replay import TraceReplayer
from repro.workloads import build_fileserver_workload, build_oltp_workload

DURATION = 4000.0


def build_mixed_workload():
    """TPC-C on enclosures 0-9, File Server on 10-21."""
    oltp = build_oltp_workload(duration=DURATION)
    archive = build_fileserver_workload(duration=DURATION)
    records = sorted(oltp.records + archive.records)
    return oltp, archive, records


@lru_cache(maxsize=None)
def run_mixed(zoned: bool):
    oltp, archive, records = build_mixed_workload()
    total = oltp.enclosure_count + archive.enclosure_count
    context = build_context(DEFAULT_CONFIG, total)
    names = context.enclosure_names()
    oltp_names = tuple(names[: oltp.enclosure_count])
    archive_names = tuple(names[oltp.enclosure_count:])

    from repro.simulation import default_volume

    for item in oltp.items:
        volume = default_volume(names[item.enclosure_index])
        context.virtualization.add_item(item.item_id, item.size_bytes, volume)
        context.app_monitor.register_item(item.item_id, volume)
    for volume_name, index in archive.volumes:
        context.virtualization.create_volume(
            volume_name, archive_names[index]
        )
    for item in archive.items:
        volume = item.volume or default_volume(
            archive_names[item.enclosure_index]
        )
        context.virtualization.add_item(item.item_id, item.size_bytes, volume)
        context.app_monitor.register_item(item.item_id, volume)

    if zoned:
        policy = ZonedPolicy(
            [
                Zone("oltp", oltp_names, NoPowerSavingPolicy()),
                Zone("archive", archive_names, EnergyEfficientPolicy()),
            ]
        )
    else:
        policy = NoPowerSavingPolicy()
    result = TraceReplayer(context, policy).run(records, duration=DURATION)

    def zone_watts(zone_names):
        return sum(
            context.virtualization.enclosure(n).energy_joules()
            for n in zone_names
        ) / result.duration_seconds

    return {
        "total": result.power.enclosure_watts,
        "oltp": zone_watts(oltp_names),
        "archive": zone_watts(archive_names),
        "response": result.mean_response,
    }


def test_zoned_datacenter(benchmark, report):
    baseline = benchmark.pedantic(
        run_mixed, args=(False,), rounds=1, iterations=1
    )
    zoned = run_mixed(True)

    rows = [
        PaperRow(
            label=f"{zone} zone",
            paper="§IX: multiple methods per datacenter",
            measured=f"{watts(baseline[zone])} -> {watts(zoned[zone])}",
        )
        for zone in ("oltp", "archive", "total")
    ]
    report(render_table("Zoned datacenter — mixed-tier deployment", rows))

    # The unmanaged OLTP zone is untouched (within noise)...
    assert abs(zoned["oltp"] - baseline["oltp"]) < 0.02 * baseline["oltp"]
    # ...while the managed archive zone shows a clear saving (the short
    # 4000 s run is warm-up-dominated; the full 6 h run reaches ~30 %)...
    archive_saving = 1 - zoned["archive"] / baseline["archive"]
    assert archive_saving > 0.05
    # ...and the total reflects exactly the archive zone's saving.
    expected_total = baseline["total"] - (
        baseline["archive"] - zoned["archive"]
    )
    assert zoned["total"] < expected_total * 1.02
