"""Fig 14 — TPC-H power consumption.

Paper: every method saves more than 50 % (proposed 70.8 %, DDR 69.9 %,
PDC 55.9 %).  Shape: scan-and-compute DSS lets everyone power off
between scan windows; the proposed method leads, DDR is close behind,
PDC trails (its reshuffles fight the natural idleness).
"""

from repro.analysis.report import render_table
from repro.experiments.comparisons import power_rows

from conftest import saving


def test_fig14_tpch_power(benchmark, report, tpch_results):
    rows = benchmark.pedantic(
        power_rows, args=("tpch", tpch_results), rounds=1, iterations=1
    )
    report(render_table("Fig 14 — TPC-H power", rows))

    ours = saving(tpch_results, "proposed")
    pdc = saving(tpch_results, "pdc")
    ddr = saving(tpch_results, "ddr")
    assert ours > 50.0, f"proposed {ours:.1f} % (paper 70.8 %)"
    assert ddr > 45.0, f"DDR {ddr:.1f} % (paper 69.9 %)"
    assert ours >= ddr - 2.0  # proposed leads (70.8 vs 69.9)
    assert pdc < ddr, f"PDC {pdc:.1f} % must trail DDR (paper 55.9 vs 69.9)"
    assert pdc > 10.0


def test_fig14_everything_powers_off(benchmark, tpch_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # The mechanism: enclosures spin down between scan windows.
    for policy in ("proposed", "ddr"):
        assert tpch_results[policy].replay.spin_down_count > 50
    assert tpch_results["no-power-saving"].replay.spin_down_count == 0
