"""Fig 16 — TPC-H migrated data size (and §VII-D.3 determinations).

Paper: the proposed method and PDC migrate a lot compared with DDR
(striped data means DDR finds blocks to move only rarely);
determinations 10 / 8 / ~205 000.

Note: with no P3 items in TPC-H (Fig 6), our Algorithm 2 plans no moves
at all — the generated workload's partitions are balanced from the
start, so the hot-data-in-cold-enclosures situation the paper describes
("the hot data in cold disk enclosures are migrated to hot disk
enclosures") does not arise.  The DDR ≪ PDC relationship is asserted.
"""

from repro import units
from repro.analysis.report import render_table
from repro.experiments.comparisons import determination_rows, migration_rows


def test_fig16_tpch_migration(benchmark, report, tpch_results):
    rows = benchmark.pedantic(
        migration_rows, args=("tpch", tpch_results), rounds=1, iterations=1
    )
    report(render_table("Fig 16 — TPC-H migration", rows))

    pdc = tpch_results["pdc"].migrated_bytes
    ddr = tpch_results["ddr"].migrated_bytes
    # Paper: "the proposed method and PDC migrate many data compared
    # with DDR ... The migrated data size of DDR is small."
    assert pdc > 50 * units.GB
    assert ddr < 5 * units.GB
    assert pdc > 20 * ddr


def test_fig16_determinations(benchmark, report, tpch_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = determination_rows("tpch", tpch_results)
    report(render_table("§VII-D.3 — TPC-H determinations", rows))

    assert tpch_results["ddr"].determinations == 86_400  # 6 h / 0.25 s
    assert tpch_results["pdc"].determinations == 12  # 6 h / 30 min
    ours = tpch_results["proposed"].determinations
    # Paper: 10; ours stays within the same order of magnitude and far
    # below DDR.
    assert 5 <= ours < 200
