"""Fig 10 — File Server migrated data size (and §VII-D.1 determinations).

Paper: proposed 23.1 GB, PDC > 3 TB, DDR 1.3 GB; placement
determinations 5 / 11 / ~91 000.  Shape: PDC moves orders of magnitude
more than the proposed method (it re-sorts everything), DDR almost
nothing; DDR's sub-second monitoring dwarfs everyone's determination
count.
"""

from repro import units
from repro.analysis.report import render_table
from repro.experiments.comparisons import determination_rows, migration_rows


def test_fig10_fileserver_migration(benchmark, report, fileserver_results):
    rows = benchmark.pedantic(
        migration_rows,
        args=("fileserver", fileserver_results),
        rounds=1,
        iterations=1,
    )
    report(render_table("Fig 10 — File Server migration", rows))

    ours = fileserver_results["proposed"].migrated_bytes
    pdc = fileserver_results["pdc"].migrated_bytes
    ddr = fileserver_results["ddr"].migrated_bytes
    assert units.GB < ours < 60 * units.GB  # paper: 23.1 GB
    assert pdc > 10 * ours  # paper: >3 TB vs 23.1 GB
    assert ddr < ours / 3  # paper: 1.3 GB, "minimal"


def test_fig10_determinations(benchmark, report, fileserver_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = determination_rows("fileserver", fileserver_results)
    report(render_table("§VII-D.1 — File Server determinations", rows))

    ours = fileserver_results["proposed"].determinations
    pdc = fileserver_results["pdc"].determinations
    ddr = fileserver_results["ddr"].determinations
    # DDR's 0.25 s period: 86 400 determinations over 6 h (paper ~91 000).
    assert ddr == 86_400
    # PDC's 30-minute period over 6 h: 12 (paper: 11, their run ended
    # just before the last checkpoint).
    assert pdc == 12
    # The adaptive period keeps the proposed method's count orders of
    # magnitude below DDR's (paper: 5; our synthetic popular files carry
    # more just-above-break-even intervals, which holds the average
    # long-interval length near the window size — see EXPERIMENTS.md).
    assert ours < ddr / 1000
