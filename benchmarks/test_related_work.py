"""§VIII-A — device-level interval control vs the proposed method.

The paper argues that cache-only methods (write-behind + spin-down with
no application knowledge) save little: hot data churns the shared dirty
budget and the storage cannot tell what to keep out of the enclosures.
This benchmark runs the :class:`CacheOnlyPolicy` comparator on all three
workloads next to the proposed method.
"""

from functools import lru_cache

from repro.analysis.metrics import power_saving_percent
from repro.analysis.report import PaperRow, render_table, watts
from repro.baselines.cacheonly import CacheOnlyPolicy
from repro.config import DEFAULT_CONFIG
from repro.experiments.runner import run_cell
from repro.experiments.testbed import build_workload

from conftest import saving


@lru_cache(maxsize=None)
def cache_only_result(workload_name: str):
    workload = build_workload(workload_name, full=True)
    return run_cell(workload, CacheOnlyPolicy(), DEFAULT_CONFIG)


def cache_only_saving(workload_name: str, results) -> float:
    base = results["no-power-saving"].enclosure_watts
    return power_saving_percent(
        base, cache_only_result(workload_name).enclosure_watts
    )


def test_related_work_interval_control(
    benchmark, report, fileserver_results, tpcc_results, tpch_results
):
    benchmark.pedantic(
        cache_only_result, args=("tpcc",), rounds=1, iterations=1
    )
    all_results = {
        "fileserver": fileserver_results,
        "tpcc": tpcc_results,
        "tpch": tpch_results,
    }
    rows = []
    for name, results in all_results.items():
        co = cache_only_saving(name, results)
        ours = saving(results, "proposed")
        rows.append(
            PaperRow(
                label=f"{name} cache-only vs proposed",
                paper="§VIII-A: 'not so good'",
                measured=f"{co:.1f} % vs {ours:.1f} %",
                note=watts(cache_only_result(name).enclosure_watts),
            )
        )
    report(render_table("§VIII-A — device-level interval control", rows))

    # The paper's argument, quantified: application-blind interval
    # control loses where application knowledge matters (File Server's
    # consolidation + preload, TPC-C's hot/cold separation)...
    for name in ("fileserver", "tpcc"):
        assert saving(all_results[name], "proposed") > cache_only_saving(
            name, all_results[name]
        ) + 5.0, name
    # On OLTP the cache-only method's saving comes only from absorbing
    # writes (no enclosure ever sleeps — the read stream keeps every
    # gap below break-even), capping it well below the proposed method.
    assert cache_only_saving("tpcc", tpcc_results) < 11.0
    # ...while on DSS the compute tails let even a dumb spin-down method
    # save heavily (the paper's DDR shows the same: 69.9 % vs 70.8 %).
    assert cache_only_saving("tpch", tpch_results) > 40.0
    assert (
        abs(
            cache_only_saving("tpch", tpch_results)
            - saving(tpch_results, "proposed")
        )
        < 8.0
    )
