"""SSD extension study (paper §VIII-D) — see repro/experiments/ssd_study.py."""

from repro.experiments.ssd_study import run, run_study, savings, ssd_config
from repro.storage.power import SSD_POWER_MODEL


def test_ssd_study(benchmark, report):
    text = benchmark.pedantic(run, rounds=1, iterations=1)
    report(text)

    results = run_study()
    pct = savings(results)
    # Flash is vastly cheaper to run at baseline...
    assert (
        results["ssd/none"].enclosure_watts
        < results["hdd/none"].enclosure_watts / 3
    )
    # ...the method still never *costs* energy on flash...
    assert pct["ssd"] > -1.0
    # ...but its consolidation lever (P3 separation) dissolves when the
    # break-even collapses, so the HDD saving is much larger.
    assert pct["hdd"] > pct["ssd"] + 5.0


def test_ssd_config_is_self_consistent(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    config = ssd_config()
    assert config.break_even_time == SSD_POWER_MODEL.break_even_time
    assert config.spin_down_timeout == config.break_even_time
    assert config.initial_monitoring_period == 10 * config.break_even_time
    # Flash break-even is an order of magnitude below the HDD's 52 s.
    assert config.break_even_time < 10.0
