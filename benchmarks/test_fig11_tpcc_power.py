"""Fig 11 — TPC-C power consumption.

Paper: proposed −15.7 %, PDC −10.7 %, DDR none.  Shape: the proposed
method saves double-digit power on a busy OLTP workload, PDC saves less,
and DDR finds no cold enclosure at all (every enclosure's IOPS stays
above LowTH).
"""

from repro.analysis.report import render_table
from repro.experiments.comparisons import power_rows

from conftest import saving


def test_fig11_tpcc_power(benchmark, report, tpcc_results):
    rows = benchmark.pedantic(
        power_rows, args=("tpcc", tpcc_results), rounds=1, iterations=1
    )
    report(render_table("Fig 11 — TPC-C power", rows))

    ours = saving(tpcc_results, "proposed")
    pdc = saving(tpcc_results, "pdc")
    ddr = saving(tpcc_results, "ddr")
    assert 8.0 < ours < 25.0, f"proposed {ours:.1f} % (paper 15.7 %)"
    assert 0.0 < pdc < ours, f"PDC {pdc:.1f} % (paper 10.7 %)"
    assert abs(ddr) < 1.0, f"DDR {ddr:.1f} % (paper: none)"


def test_fig11_ddr_mechanism(benchmark, tpcc_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Why DDR saves nothing: it never spins anything down; the odd
    # momentary cold-marking dip moves only a few blocks ("a minimum").
    assert tpcc_results["ddr"].replay.spin_down_count == 0
    assert tpcc_results["ddr"].migrated_bytes < 10 * 2**20
