"""Columnar-pump throughput gate, measured fresh — never from the file.

The committed ``BENCH_engine.json`` is a *record* of one machine's
measurement, refreshed when the engine changes; it goes stale the
moment the code moves and must never be the thing a guard compares
against.  This gate re-measures both pump modes on the machine running
the suite — the same interleaved best-of-N measurement ``ecostor
bench`` ships — and holds the batched columnar pump to at least 95 % of
the freshly measured object pump (the same bar CI applies to its own
fresh measurement).
"""

from __future__ import annotations

from repro.experiments.bench import run_bench

#: The CI bar: columnar may not drop below 95 % of the object pump
#: (5 % grace absorbs best-of-N jitter on shared machines).
MIN_COLUMNAR_RATIO = 0.95


def test_columnar_pump_keeps_up_with_fresh_object_pump(report):
    document = run_bench("tpcc", full=False, repeats=5)
    lines = ["Columnar vs object pump (tpcc smoke, measured fresh)"]
    failures = []
    for name, row in document["policies"].items():
        columnar = row["columnar"]["records_per_second"]
        obj = row["object"]["records_per_second"]
        lines.append(
            f"  {name:<16} columnar {columnar:>9,.0f} rec/s vs object "
            f"{obj:>9,.0f} rec/s ({row['columnar_speedup']:.2f}x)"
        )
        if columnar < MIN_COLUMNAR_RATIO * obj:
            failures.append(name)
    report("\n".join(lines))
    assert not failures, (
        f"columnar pump slower than the freshly measured object pump "
        f"for: {failures} (bar: {MIN_COLUMNAR_RATIO:.0%})"
    )
