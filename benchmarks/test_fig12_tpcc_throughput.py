"""Fig 12 — TPC-C transaction throughput.

Paper: 1701.4 tpmC under the proposed method, an 8.5 % decrease from
the 1859.5 tpmC baseline; PDC and DDR degrade more.  Shape: the
proposed method's throughput loss stays in the single-digit/low-teens
range and is the smallest among methods that actually save power.
"""

import pytest

from repro.analysis.report import render_table
from repro.experiments.fig11_13_tpcc import fig12_rows, measured_tpmc
from repro.experiments.paper_values import FIG12_TPMC


def test_fig12_tpcc_throughput(benchmark, report, tpcc_results):
    rows = benchmark.pedantic(
        fig12_rows, kwargs={"full": True}, rounds=1, iterations=1
    )
    report(render_table("Fig 12 — TPC-C throughput", rows))

    tpmc = measured_tpmc(full=True)
    baseline = tpmc["no-power-saving"]
    assert baseline == pytest.approx(FIG12_TPMC["no-power-saving"])

    loss = 100.0 * (baseline - tpmc["proposed"]) / baseline
    # Paper: 8.5 % decrease; accept 0-20 % at simulation scale.
    assert 0.0 <= loss < 20.0, f"proposed tpmC loss {loss:.1f} %"

    # The proposed method loses no more throughput than PDC (paper:
    # "Transaction throughputs of PDC and DDR also decrease, and their
    # degradation rate is higher than that of the proposed method").
    assert tpmc["proposed"] >= tpmc["pdc"] * 0.98
