"""Tier-layer overhead gate: generalized placement must stay cheap.

Not a paper figure: the multi-tier refactor generalized
:class:`~repro.storage.virtualization.BlockVirtualization` /
:class:`~repro.storage.controller.StorageController` placement from a
bare enclosure index to ``(tier, device)``, and this benchmark holds
the cost of that generalization on the *legacy* replay path — the
HDD-only columnar pump under no-power-saving — to ≤ 5 % (plus an
absolute floor below timer/scheduler noise).  The underlying
measurement is the same interleaved plain-vs-tiered comparison
``ecostor bench`` ships in ``BENCH_engine.json``'s ``tier_layer``
section: a plain :func:`~repro.simulation.build_context` testbed versus
its single-HDD-tier :func:`~repro.simulation.build_tiered_context`
equivalent with per-device tier metering armed.
"""

from __future__ import annotations

from repro.experiments.bench import run_bench

#: Relative bar from the issue: the generalized (tier, device) path may
#: cost at most 5 % of the legacy HDD-only columnar replay.
MAX_OVERHEAD_FRACTION = 0.05
#: Absolute noise floor: differences under 50 ms are scheduler jitter,
#: not placement-path cost, regardless of the fraction they work out to.
NOISE_FLOOR_SECONDS = 0.05


def test_generalized_placement_overhead_within_bar(report):
    document = run_bench("tpcc", full=False, repeats=5)
    tier_layer = document["tier_layer"]
    legacy = tier_layer["legacy_seconds"]
    tiered = tier_layer["tiered_seconds"]
    lifecycle = tier_layer["tier_lifecycle"]
    # Gate the zero-clamped excess: a negative difference means the
    # tiered path measured *faster*, which is scheduler noise, not a
    # speedup to bank.
    excess = max(0.0, tiered - legacy)
    report(
        "Tier-layer placement overhead (tpcc smoke, no-power-saving)\n"
        f"  legacy  : {legacy:.4f} s\n"
        f"  tiered  : {tiered:.4f} s\n"
        f"  overhead: {tier_layer['overhead_fraction_raw']:+.2%} raw, "
        f"{tier_layer['overhead_fraction']:.2%} gated "
        f"(bar {MAX_OVERHEAD_FRACTION:.0%}, "
        f"floor {NOISE_FLOOR_SECONDS * 1000:.0f} ms)\n"
        f"  tier_lifecycle: {lifecycle['records_per_second']:,.0f} "
        "records/s (flash 1 / archive 1)"
    )
    assert excess <= max(MAX_OVERHEAD_FRACTION * legacy, NOISE_FLOOR_SECONDS), (
        f"generalized (tier, device) placement slowed the legacy columnar "
        f"replay by {excess:.4f} s "
        f"({tier_layer['overhead_fraction_raw']:+.2%} raw); the tier layer "
        f"must stay within {MAX_OVERHEAD_FRACTION:.0%} of the plain context"
    )
    assert lifecycle["records_per_second"] > 0
