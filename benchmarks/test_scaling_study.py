"""Configuration-scaling study (paper §IX future work)."""

from repro.experiments.scaling import ENCLOSURE_SWEEP, run, sweep


def test_scaling_study(benchmark, report):
    text = benchmark.pedantic(run, rounds=1, iterations=1)
    report(text)

    savings = sweep()
    assert set(savings) == set(ENCLOSURE_SWEEP)
    # The method keeps saving double digits at every array size...
    for count, saving in savings.items():
        assert saving > 8.0, f"{count} enclosures: {saving:.1f} %"
    # ...and the relative effectiveness is stable across configurations
    # (no collapse as the array grows).
    values = list(savings.values())
    assert max(values) - min(values) < 12.0
