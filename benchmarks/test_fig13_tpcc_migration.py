"""Fig 13 — TPC-C migrated data size (and §VII-D.2 determinations).

Paper: PDC exceeds 1 TB, DDR is minimal, the proposed method moves only
the P3 items that consolidate (determinations 7 / 3 / ~90 000).
"""

from repro import units
from repro.analysis.report import render_table
from repro.experiments.comparisons import determination_rows, migration_rows


def test_fig13_tpcc_migration(benchmark, report, tpcc_results):
    rows = benchmark.pedantic(
        migration_rows, args=("tpcc", tpcc_results), rounds=1, iterations=1
    )
    report(render_table("Fig 13 — TPC-C migration", rows))

    ours = tpcc_results["proposed"].migrated_bytes
    pdc = tpcc_results["pdc"].migrated_bytes
    ddr = tpcc_results["ddr"].migrated_bytes
    assert pdc > 3 * ours  # paper: >1 TB vs the proposed method's share
    assert ddr < units.GB  # paper: "a minimum"
    assert ours > units.GB  # consolidation did move the cold P3 items


def test_fig13_determinations(benchmark, report, tpcc_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = determination_rows("tpcc", tpcc_results)
    report(render_table("§VII-D.2 — TPC-C determinations", rows))

    assert tpcc_results["ddr"].determinations == 25_920  # 1.8 h / 0.25 s
    assert tpcc_results["pdc"].determinations == 3  # paper: 3
    ours = tpcc_results["proposed"].determinations
    # Paper: 7 — "higher than PDC, but the proposed method reduces the
    # total migrated data size".
    assert tpcc_results["pdc"].determinations <= ours < 100
