"""Ablations — how much each mechanism of the proposed method matters.

Not a paper figure; DESIGN.md's experiment index calls for quantifying
the design choices the paper motivates qualitatively: data placement
(Algorithms 2-3), preload, write delay, the adaptive period, and the
§V-D triggers.  Runs on the smoke-sized workloads.
"""

from repro.analysis.report import render_table
from repro.experiments.ablations import ABLATIONS, rows_for, run_ablation


def test_ablation_rows_render(benchmark, report):
    rows = benchmark.pedantic(
        rows_for, args=("fileserver",), rounds=1, iterations=1
    )
    report(render_table("Ablations — File Server", rows))
    assert len(rows) == len(ABLATIONS)


def test_migration_matters_for_fileserver(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    full = run_ablation("fileserver", "full")
    no_migration = run_ablation("fileserver", "no-migration")
    # Without consolidation the cold enclosures keep their P3 items and
    # cannot sleep: power must rise measurably.
    assert no_migration.enclosure_watts > full.enclosure_watts + 20.0


def test_preload_matters_for_fileserver(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    full = run_ablation("fileserver", "full")
    no_preload = run_ablation("fileserver", "no-preload")
    # Preload absorbs the popular files' reads; without it the cache hit
    # ratio drops.
    assert (
        no_preload.replay.cache_hit_ratio < full.replay.cache_hit_ratio
    )


def test_write_delay_matters_for_tpch(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    full = run_ablation("tpch", "full")
    no_wd = run_ablation("tpch", "no-write-delay")
    # TPC-H's work files are the P2 population; without write delay
    # their spills hit the log enclosure directly.
    assert no_wd.replay.cache_hit_ratio <= full.replay.cache_hit_ratio
    assert no_wd.enclosure_watts >= full.enclosure_watts - 5.0


def test_ablation_report_all_workloads(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in ("tpcc", "tpch"):
        report(render_table(f"Ablations — {name}", rows_for(name)))
