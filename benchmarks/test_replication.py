"""Seed-replication robustness — the shape claims hold across traces."""

from repro.experiments.replication import DEFAULT_SEEDS, replicate, run


def test_replication_study(benchmark, report):
    text = benchmark.pedantic(
        run, args=(DEFAULT_SEEDS,), rounds=1, iterations=1
    )
    report(text)

    fs_mean, fs_spread, _ = replicate("fileserver")
    tpcc_mean, tpcc_spread, _ = replicate("tpcc")
    tpch_mean, tpch_spread, _ = replicate("tpch")
    # The proposed method saves on every replicate of every workload...
    assert fs_mean > 8.0
    assert tpcc_mean > 8.0
    assert tpch_mean > 40.0
    # ...and the spread across seeds is small relative to the effect.
    assert fs_spread < fs_mean / 2
    assert tpcc_spread < tpcc_mean / 2
    assert tpch_spread < tpch_mean / 4
    # The cross-workload ordering (DSS >> OLTP/FS) is seed-independent.
    assert tpch_mean > fs_mean + 15.0
    assert tpch_mean > tpcc_mean + 15.0
