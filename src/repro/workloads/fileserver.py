"""File Server workload (the paper's MSR-trace replay, Table I row 1).

The paper replays six hours of Microsoft Research enterprise file-server
traces across 36 volumes on 12 disk enclosures.  This generator
synthesizes a trace with the same *measured* structure (paper Fig 6 and
§VII-D.1):

* ~9.9 % of data items are **P3** — continuously-touched data (active
  logs, busy project directories) whose I/O gaps never exceed the
  break-even time;
* ~89.6 % are **P1** — read-mostly files, in two sub-populations:
  *popular* small files read steadily but with occasional long gaps, and
  *bursty* files touched in short episodes separated by long idle spans
  (the long tail of a file server);
* almost no **P2** (a couple of write-mostly spool files);
* enough aggregate load that every enclosure's IOPS stays above DDR's
  LowTH — the property behind "DDR could not find any cold disk
  enclosures" — while per-item gaps give the proposed method plenty of
  Long Intervals to exploit.

IOPS magnitudes are at simulation scale (see
:class:`repro.config.SimulationScale`); durations are the paper's.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro import units
from repro.workloads.base import (
    EventStream,
    burst_events,
    merge_streams,
    steady_events,
    steady_with_lulls_events,
)
from repro.workloads.items import DataItemSpec, Workload

#: Paper Table I: 6-hour measurement, 36 volumes on 12 enclosures.
DEFAULT_DURATION = 6.0 * units.HOUR
DEFAULT_ENCLOSURES = 12
VOLUMES_PER_ENCLOSURE = 3

#: Files per volume by role.
HOT_PER_VOLUME = 1
POPULAR_PER_VOLUME = 2
BURSTY_PER_VOLUME = 7

#: Number of bursty files flipped to write-mostly spools (the near-zero
#: P2 sliver visible in the paper's Fig 6).
P2_SPOOL_COUNT = 2


def build_fileserver_workload(
    seed: int = 1,
    duration: float = DEFAULT_DURATION,
    enclosure_count: int = DEFAULT_ENCLOSURES,
    intensity: float = 1.0,
) -> Workload:
    """Generate the File Server workload.

    ``intensity`` scales every arrival rate (1.0 reproduces the shipped
    experiments; tests use shorter ``duration`` instead).
    """
    if intensity <= 0:
        raise ValidationError("intensity must be positive")
    rng = np.random.default_rng(seed)
    items: list[DataItemSpec] = []
    volumes: list[tuple[str, int]] = []
    streams: list[EventStream] = []

    volume_index = 0
    spool_budget = P2_SPOOL_COUNT
    for enclosure in range(enclosure_count):
        for _ in range(VOLUMES_PER_ENCLOSURE):
            volume = f"fsvol-{volume_index:02d}"
            volumes.append((volume, enclosure))

            for h in range(HOT_PER_VOLUME):
                item_id = f"fs/{volume}/hot-{h}"
                size = int(rng.uniform(250, 500)) * units.MB
                items.append(
                    DataItemSpec(item_id, size, enclosure, volume, kind="hot")
                )
                streams.append(
                    steady_events(
                        rng,
                        item_id,
                        size,
                        duration,
                        gap_low=2.5 / intensity,
                        gap_high=16.0 / intensity,
                        read_fraction=0.60,
                    )
                )

            for p in range(POPULAR_PER_VOLUME):
                item_id = f"fs/{volume}/popular-{p}"
                size = int(rng.uniform(3, 9)) * units.MB
                items.append(
                    DataItemSpec(item_id, size, enclosure, volume, kind="popular")
                )
                streams.append(
                    steady_with_lulls_events(
                        rng,
                        item_id,
                        size,
                        duration,
                        gap_low=10.0 / intensity,
                        gap_high=40.0 / intensity,
                        lull_probability=0.10,
                        lull_low=200.0,
                        lull_high=800.0,
                        read_fraction=0.95,
                        io_size=8 * units.KB,
                    )
                )

            for b in range(BURSTY_PER_VOLUME):
                item_id = f"fs/{volume}/bursty-{b}"
                size = int(rng.uniform(15, 100)) * units.MB
                is_spool = spool_budget > 0 and b == BURSTY_PER_VOLUME - 1
                if is_spool:
                    spool_budget -= 1
                items.append(
                    DataItemSpec(
                        item_id,
                        size,
                        enclosure,
                        volume,
                        kind="spool" if is_spool else "bursty",
                    )
                )
                streams.append(
                    burst_events(
                        rng,
                        item_id,
                        size,
                        duration,
                        mean_interburst=12000.0 / intensity,
                        min_interburst=2500.0,
                        burst_size_low=15,
                        burst_size_high=35,
                        burst_duration_low=10.0,
                        burst_duration_high=40.0,
                        read_fraction=0.05 if is_spool else 0.92,
                    )
                )
            volume_index += 1

    records = merge_streams(streams)
    return Workload(
        name="fileserver",
        duration=duration,
        enclosure_count=enclosure_count,
        items=items,
        records=records,
        volumes=volumes,
        description=(
            "MSR-like enterprise file server: "
            f"{len(items)} files on {volume_index} volumes / "
            f"{enclosure_count} enclosures, {len(records)} I/Os over "
            f"{units.format_duration(duration)}"
        ),
    )
