"""Build a :class:`Workload` from a recorded logical I/O trace.

The paper's File Server evaluation replays real MSR-Cambridge traces
through btreplay; this module is the equivalent ingestion path for this
codebase: feed it a logical CSV trace (or an MSR-format block trace via
:func:`repro.trace.reader.read_msr_trace`) and it infers the data-item
catalog, sizes each item from the highest offset touched, and
distributes the items across enclosures so the trace can be replayed
under any policy.

Placement mirrors Table I's "assign each volume in MSR trace to volumes
in alphabetical order of the volume names": items are sorted by id and
dealt round-robin across the enclosures.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path
from typing import Sequence, TextIO

from repro import units
from repro.errors import WorkloadError
from repro.trace.columnar import ColumnarTrace
from repro.trace.reader import read_logical_trace, read_msr_trace
from repro.trace.records import LogicalIORecord
from repro.workloads.items import DataItemSpec, Workload

#: Items are sized up to the next multiple of this, with one slack unit,
#: so replays never touch past the inferred end of an item.
SIZE_QUANTUM = 16 * units.MB


def infer_item_sizes(
    records: Sequence[LogicalIORecord],
) -> dict[str, int]:
    """Size every data item from the highest byte its trace touches."""
    highest: defaultdict[str, int] = defaultdict(int)
    for record in records:
        end = record.offset + record.size
        if end > highest[record.item_id]:
            highest[record.item_id] = end
    return {
        item: ((top // SIZE_QUANTUM) + 1) * SIZE_QUANTUM
        for item, top in highest.items()
    }


def workload_from_records(
    records: Sequence[LogicalIORecord],
    enclosure_count: int,
    name: str = "trace-replay",
    duration: float | None = None,
) -> Workload:
    """Wrap a recorded logical trace as a replayable workload.

    ``duration`` defaults to the last record's timestamp plus a small
    tail.  The tail must stay *below* the break-even time: a longer one
    would append an artificial Long Interval to every item that was
    active at the end of the recording and skew the P3/P1 split.
    """
    if not records:
        raise WorkloadError("trace contains no records")
    if enclosure_count <= 0:
        raise WorkloadError("enclosure_count must be positive")
    ordered = sorted(records)
    sizes = infer_item_sizes(ordered)
    items = [
        DataItemSpec(
            item_id=item,
            size_bytes=sizes[item],
            enclosure_index=index % enclosure_count,
            kind="traced",
        )
        for index, item in enumerate(sorted(sizes))
    ]
    end = ordered[-1].timestamp + 1.0
    return Workload(
        name=name,
        duration=duration if duration is not None else end,
        enclosure_count=enclosure_count,
        items=items,
        records=list(ordered),
        description=(
            f"replay of {len(ordered)} recorded I/Os over "
            f"{len(items)} inferred data items"
        ),
    )


def workload_from_csv(
    source: str | Path | TextIO,
    enclosure_count: int,
    name: str = "trace-replay",
) -> Workload:
    """Load a logical CSV trace (repro's own format) as a workload."""
    return workload_from_records(
        read_logical_trace(source), enclosure_count, name=name
    )


def workload_from_msr(
    source: str | Path | TextIO,
    enclosure_count: int,
    name: str = "msr-replay",
) -> Workload:
    """Load an MSR-Cambridge block trace as a workload.

    Each ``hostname.disknum`` stream becomes one data item, matching the
    paper's volume-granular File Server items.
    """
    return workload_from_records(
        read_msr_trace(source), enclosure_count, name=name
    )


def workload_from_ecot(
    source: str | Path,
    enclosure_count: int,
    name: str = "ecot-replay",
) -> Workload:
    """Load a packed ``.ecot`` columnar trace as a workload.

    The columns are materialized into record objects once so the
    standard catalog inference and validation run; the replay itself
    goes back through :meth:`Workload.columnar` (cached), so the batched
    pump still drives primitive columns.
    """
    trace = ColumnarTrace.load(source)
    return workload_from_records(
        trace.to_records(), enclosure_count, name=name
    )
