"""DSS workload (the paper's TPC-H run, Table I row 3).

The paper runs TPC-H at SF=100 (100 GB), queries Q1–Q22 back-to-back
over six hours, with the database hash-striped over 8 disk enclosures
and log + work files on a ninth.  The measured pattern mix (Fig 6) is
61.5 % P1 and 38.5 % P2, no P3 and no P0: table partitions are scanned
sequentially with long gaps between scans (P1), and work/temporary files
take write bursts during join-heavy queries (P2).

The generator walks the 22 queries in order.  Each query:

* scans the partitions of every table it references during one **scan
  window** at the start of the query — a pipelined executor streams its
  scans concurrently, so all 8 DB enclosures wake once per query, not
  once per table; each table's scan lasts proportionally to its size;
* then computes in memory for the rest of the query (joins,
  aggregation, output) — a long all-enclosures-idle tail, which is
  where every power-saving method finds its Long Intervals;
* if it references more than two tables, spills sort/hash runs to its
  work files on the log enclosure during the compute tail (write bursts
  → P2).

Query boundaries are exported via :attr:`Workload.phases` so the
evaluation can report per-query response times (paper Fig 15).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro import units
from repro.workloads.base import (
    EventStream,
    merge_streams,
    scan_events,
)
from repro.workloads.items import DataItemSpec, Workload

DEFAULT_DURATION = 6.0 * units.HOUR
DEFAULT_DB_ENCLOSURES = 8

#: TPC-H SF=100 table sizes, at the simulation's 1/8 size scale (see
#: :class:`repro.config.SimulationScale.size_factor`): migration/preload
#: wall-clock time is size / bandwidth and must stay proportionate to
#: the scaled I/O rates.
TABLE_SIZES: dict[str, int] = {
    "lineitem": int(75 * units.GB / 8),
    "orders": int(17 * units.GB / 8),
    "partsupp": int(12 * units.GB / 8),
    "part": int(2.6 * units.GB / 8),
    "customer": int(2.3 * units.GB / 8),
    "supplier": int(140 * units.MB / 8),
    "nation": 2 * units.MB,
    "region": 1 * units.MB,
}

#: Which tables each TPC-H query references (standard specification).
QUERY_TABLES: dict[str, tuple[str, ...]] = {
    "Q1": ("lineitem",),
    "Q2": ("part", "supplier", "partsupp", "nation", "region"),
    "Q3": ("customer", "orders", "lineitem"),
    "Q4": ("orders", "lineitem"),
    "Q5": ("customer", "orders", "lineitem", "supplier", "nation", "region"),
    "Q6": ("lineitem",),
    "Q7": ("supplier", "lineitem", "orders", "customer", "nation"),
    "Q8": (
        "part",
        "supplier",
        "lineitem",
        "orders",
        "customer",
        "nation",
        "region",
    ),
    "Q9": ("part", "supplier", "lineitem", "partsupp", "orders", "nation"),
    "Q10": ("customer", "orders", "lineitem", "nation"),
    "Q11": ("partsupp", "supplier", "nation"),
    "Q12": ("orders", "lineitem"),
    "Q13": ("customer", "orders"),
    "Q14": ("lineitem", "part"),
    "Q15": ("lineitem", "supplier"),
    "Q16": ("partsupp", "part", "supplier"),
    "Q17": ("lineitem", "part"),
    "Q18": ("customer", "orders", "lineitem"),
    "Q19": ("lineitem", "part"),
    "Q20": ("supplier", "nation", "partsupp", "part", "lineitem"),
    "Q21": ("supplier", "lineitem", "orders", "nation"),
    "Q22": ("customer", "orders"),
}

#: Fraction of a query's duration spent in its scan window; the rest is
#: in-memory compute, during which the enclosures idle.
SCAN_DUTY = 0.22

#: Per-enclosure sequential read rate during a scan phase (simulation
#: scale; well under the sequential service rate so scans do not queue).
SCAN_IOPS = 1.2

#: Work-file spill threshold: queries referencing more tables than this
#: write sort/hash runs to their work files.
SPILL_TABLE_THRESHOLD = 2


def _query_durations(duration: float) -> dict[str, float]:
    """Split the run across Q1–Q22 proportionally to referenced bytes.

    A floor keeps the tiny queries (Q11, Q13, Q22) long enough to carry
    their scan phases and compute gaps.
    """
    weights = {
        q: sum(TABLE_SIZES[t] for t in tables) + 8 * units.GB
        for q, tables in QUERY_TABLES.items()
    }
    total = sum(weights.values())
    return {q: duration * w / total for q, w in weights.items()}


def build_dss_workload(
    seed: int = 3,
    duration: float = DEFAULT_DURATION,
    db_enclosure_count: int = DEFAULT_DB_ENCLOSURES,
    queries: tuple[str, ...] | None = None,
) -> Workload:
    """Generate the TPC-H-shaped DSS workload.

    Enclosure 0 holds the log and the per-query work files; enclosures
    1..N hold the hash-striped table partitions.  ``queries`` restricts
    the run to a subset (tests use a few queries on a short duration).
    """
    rng = np.random.default_rng(seed)
    selected = queries or tuple(QUERY_TABLES)
    unknown = [q for q in selected if q not in QUERY_TABLES]
    if unknown:
        raise ValidationError(f"unknown TPC-H queries: {unknown}")
    enclosure_count = db_enclosure_count + 1
    items: list[DataItemSpec] = []
    streams: list[EventStream] = []

    # --- table partitions, striped over the DB enclosures --------------
    partition_ids: dict[tuple[str, int], str] = {}
    for table, size in TABLE_SIZES.items():
        part_size = max(units.MB, size // db_enclosure_count)
        for db in range(db_enclosure_count):
            item_id = f"tpch/{table}/p{db}"
            partition_ids[(table, db)] = item_id
            items.append(
                DataItemSpec(item_id, part_size, db + 1, kind="table")
            )

    # --- work files + log on enclosure 0 -------------------------------
    # Only the *executed* spill queries own work files (creating files
    # for queries that never run would leave untouched P0 items, which
    # the paper's Fig 6 explicitly rules out).
    spill_queries = [
        q for q in selected if len(QUERY_TABLES[q]) > SPILL_TABLE_THRESHOLD
    ]
    work_ids: dict[str, list[str]] = {}
    for q in spill_queries:
        ids = []
        for part in ("sort", "hash", "agg"):
            item_id = f"tpch/work/{q}/{part}"
            size = int(rng.uniform(128, 512)) * units.MB  # size-scaled
            items.append(DataItemSpec(item_id, size, 0, kind="work"))
            ids.append(item_id)
        work_ids[q] = ids
    log_id = "tpch/log"
    items.append(DataItemSpec(log_id, 640 * units.MB, 0, kind="log"))

    # --- the query timeline ---------------------------------------------
    durations = _query_durations(duration)
    scale = duration / sum(durations[q] for q in selected)
    phases: list[tuple[str, float, float]] = []
    clock = 0.0
    log_event_times: list[float] = []
    for q in selected:
        q_duration = durations[q] * scale
        tables = QUERY_TABLES[q]
        table_bytes = sum(TABLE_SIZES[t] for t in tables)
        scan_window = q_duration * SCAN_DUTY

        # All referenced tables stream concurrently from the start of
        # the query; larger tables scan for longer within the window.
        for table in tables:
            scan_len = max(
                5.0, scan_window * TABLE_SIZES[table] / table_bytes
            )
            for db in range(db_enclosure_count):
                item_id = partition_ids[(table, db)]
                part_size = max(units.MB, TABLE_SIZES[table] // db_enclosure_count)
                streams.append(
                    scan_events(
                        rng,
                        item_id,
                        part_size,
                        scan_start=clock,
                        scan_duration=scan_len,
                        iops=SCAN_IOPS,
                        io_size=min(4 * units.MB, part_size),
                    )
                )

        if q in work_ids:
            # Spill writes land in the compute tail, one burst per file.
            for k, item_id in enumerate(work_ids[q]):
                burst_at = clock + q_duration * (0.35 + 0.15 * k)
                count = int(rng.integers(30, 80))
                span = rng.uniform(15.0, 50.0)
                times = burst_at + np.sort(rng.uniform(0.0, span, size=count))
                times = times[times < clock + q_duration]
                n = len(times)
                if n == 0:
                    continue
                work_size = next(
                    i.size_bytes for i in items if i.item_id == item_id
                )
                offsets = (
                    np.arange(n, dtype=np.int64) * 256 * units.KB
                ) % max(256 * units.KB, work_size - 256 * units.KB)
                streams.append(
                    EventStream(
                        item_id=item_id,
                        times=times,
                        is_read=rng.random(n) < 0.25,
                        offsets=offsets,
                        sizes=np.full(n, 256 * units.KB, dtype=np.int64),
                        sequential=True,
                    )
                )
        # Sparse checkpoint-style log writes: one small burst per query.
        log_event_times.append(clock + q_duration * 0.95)

        phases.append((q, clock, clock + q_duration))
        clock += q_duration

    if log_event_times:
        times = np.array(log_event_times)
        n = len(times)
        streams.append(
            EventStream(
                item_id=log_id,
                times=times,
                is_read=np.zeros(n, dtype=bool),
                offsets=(np.arange(n, dtype=np.int64) * 64 * units.KB),
                sizes=np.full(n, 64 * units.KB, dtype=np.int64),
                sequential=True,
            )
        )

    records = merge_streams(streams)
    return Workload(
        name="tpch",
        duration=duration,
        enclosure_count=enclosure_count,
        items=items,
        records=records,
        description=(
            "TPC-H-shaped DSS (SF=100): "
            f"{len(items)} items on {enclosure_count} enclosures "
            f"(log/work + {db_enclosure_count} DB), {len(records)} I/Os, "
            f"queries {selected[0]}..{selected[-1]} over "
            f"{units.format_duration(duration)}"
        ),
        app_metrics={"query_count": float(len(selected))},
        phases=phases,
    )
