"""Shared machinery for the synthetic workload generators.

Every generator is a deterministic function of its seed (numpy
``default_rng``), produces per-item event streams, and merges them into
one time-ordered logical trace.  The helpers here cover the arrival
processes the three workloads are built from:

* steady streams with bounded gaps (P3-shaped activity),
* burst processes — long idle gaps punctuated by short runs of I/O
  (P1/P2-shaped activity),
* sequential scan phases (DSS-shaped activity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro import units
from repro.trace.records import IOType, LogicalIORecord


@dataclass(frozen=True)
class EventStream:
    """Raw per-item events before merging: parallel numpy arrays."""

    item_id: str
    times: np.ndarray
    is_read: np.ndarray
    offsets: np.ndarray
    sizes: np.ndarray
    sequential: bool = False

    def __post_init__(self) -> None:
        n = len(self.times)
        if not (len(self.is_read) == len(self.offsets) == len(self.sizes) == n):
            raise ValidationError("event arrays must have equal length")


def steady_events(
    rng: np.random.Generator,
    item_id: str,
    item_size: int,
    duration: float,
    gap_low: float,
    gap_high: float,
    read_fraction: float,
    io_size: int = 8 * units.KB,
    start: float = 0.0,
) -> EventStream:
    """Continuous activity with uniform gaps in ``[gap_low, gap_high]``.

    With ``gap_high`` below the break-even time this yields a pure P3
    item: one wall-to-wall I/O sequence, no long interval.
    """
    if not 0 < gap_low <= gap_high:
        raise ValidationError("need 0 < gap_low <= gap_high")
    # Over-allocate gaps so the stream always reaches the window end —
    # a truncated stream would leave a spurious trailing Long Interval
    # and misclassify a steady (P3-shaped) item as P1/P2.
    expected = int(duration / ((gap_low + gap_high) / 2) * 1.2) + 32
    gaps = rng.uniform(gap_low, gap_high, size=expected)
    times = start + np.cumsum(gaps)
    while times[-1] < start + duration:  # pragma: no cover - rare refill
        extra = rng.uniform(gap_low, gap_high, size=64)
        times = np.concatenate([times, times[-1] + np.cumsum(extra)])
    times = times[times < start + duration]
    n = len(times)
    return EventStream(
        item_id=item_id,
        times=times,
        is_read=rng.random(n) < read_fraction,
        offsets=_random_offsets(rng, n, item_size, io_size),
        sizes=np.full(n, io_size, dtype=np.int64),
    )


def steady_with_lulls_events(
    rng: np.random.Generator,
    item_id: str,
    item_size: int,
    duration: float,
    gap_low: float,
    gap_high: float,
    lull_probability: float,
    lull_low: float,
    lull_high: float,
    read_fraction: float,
    io_size: int = 8 * units.KB,
    start: float = 0.0,
) -> EventStream:
    """Steady activity punctuated by occasional long lulls.

    Most gaps are short (``[gap_low, gap_high]``, below break-even);
    with probability ``lull_probability`` a gap is instead drawn from
    ``[lull_low, lull_high]`` — well above break-even.  The result is a
    P1/P2 item whose Long Intervals are few but *long*, which is what
    lets the adaptive monitoring period grow (paper §IV-H).
    """
    if not 0 < gap_low <= gap_high:
        raise ValidationError("need 0 < gap_low <= gap_high")
    if not 0 <= lull_probability < 1:
        raise ValidationError("lull_probability must be in [0, 1)")
    if not 0 < lull_low <= lull_high:
        raise ValidationError("need 0 < lull_low <= lull_high")
    mean_gap = (1 - lull_probability) * (gap_low + gap_high) / 2 + (
        lull_probability * (lull_low + lull_high) / 2
    )
    expected = int(duration / mean_gap * 1.2) + 32
    short = rng.uniform(gap_low, gap_high, size=expected)
    long_ = rng.uniform(lull_low, lull_high, size=expected)
    lull = rng.random(expected) < lull_probability
    gaps = np.where(lull, long_, short)
    times = start + np.cumsum(gaps)
    while times[-1] < start + duration:  # pragma: no cover - rare refill
        extra = rng.uniform(gap_low, gap_high, size=64)
        times = np.concatenate([times, times[-1] + np.cumsum(extra)])
    times = times[times < start + duration]
    n = len(times)
    return EventStream(
        item_id=item_id,
        times=times,
        is_read=rng.random(n) < read_fraction,
        offsets=_random_offsets(rng, n, item_size, io_size),
        sizes=np.full(n, io_size, dtype=np.int64),
    )


def burst_events(
    rng: np.random.Generator,
    item_id: str,
    item_size: int,
    duration: float,
    mean_interburst: float,
    min_interburst: float,
    burst_size_low: int,
    burst_size_high: int,
    burst_duration_low: float,
    burst_duration_high: float,
    read_fraction: float,
    io_size: int = 16 * units.KB,
    start: float = 0.0,
) -> EventStream:
    """Bursts of I/O separated by long idle gaps.

    Inter-burst gaps are exponential with mean ``mean_interburst``,
    floored at ``min_interburst``; with the floor above the break-even
    time every inter-burst gap is a Long Interval, making the item P1
    (read-heavy) or P2 (write-heavy).
    """
    if mean_interburst <= 0 or min_interburst < 0:
        raise ValidationError("inter-burst times must be positive")
    if burst_size_low <= 0 or burst_size_high < burst_size_low:
        raise ValidationError("bad burst size range")
    times_list: list[np.ndarray] = []
    clock = start + max(
        min_interburst, float(rng.exponential(mean_interburst))
    )
    end = start + duration
    while clock < end:
        count = int(rng.integers(burst_size_low, burst_size_high + 1))
        span = rng.uniform(burst_duration_low, burst_duration_high)
        burst = clock + np.sort(rng.uniform(0.0, span, size=count))
        times_list.append(burst[burst < end])
        clock = burst[-1] + max(
            min_interburst, float(rng.exponential(mean_interburst))
        )
    if not times_list:
        # Guarantee at least one burst: the paper's measurement period
        # runs to application completion, so every data item is accessed
        # at least once (no P0 items in Fig 6).
        count = int(rng.integers(burst_size_low, burst_size_high + 1))
        span = rng.uniform(burst_duration_low, burst_duration_high)
        at = rng.uniform(start, max(start + 1.0, end - span))
        burst = at + np.sort(rng.uniform(0.0, span, size=count))
        times_list.append(burst[burst < end])
    times = np.concatenate(times_list)
    n = len(times)
    return EventStream(
        item_id=item_id,
        times=times,
        is_read=rng.random(n) < read_fraction,
        offsets=_random_offsets(rng, n, item_size, io_size),
        sizes=np.full(n, io_size, dtype=np.int64),
    )


def scan_events(
    rng: np.random.Generator,
    item_id: str,
    item_size: int,
    scan_start: float,
    scan_duration: float,
    iops: float,
    io_size: int = 1 * units.MB,
    read: bool = True,
) -> EventStream:
    """One sequential scan phase: evenly paced I/O over the phase.

    Offsets advance monotonically (wrapping if the phase out-runs the
    item), and the records carry the sequential hint so the controller
    bills the sequential service rate.
    """
    if scan_duration <= 0 or iops <= 0:
        raise ValidationError("scan_duration and iops must be positive")
    count = max(1, int(scan_duration * iops))
    jitter = rng.uniform(-0.4, 0.4, size=count) / iops
    times = scan_start + (np.arange(count) + 0.5) / iops + jitter
    times = np.sort(np.clip(times, scan_start, scan_start + scan_duration))
    usable = max(io_size, (item_size // io_size) * io_size)
    offsets = (np.arange(count, dtype=np.int64) * io_size) % usable
    offsets = np.minimum(offsets, max(0, item_size - io_size))
    return EventStream(
        item_id=item_id,
        times=times,
        is_read=np.full(count, read),
        offsets=offsets,
        sizes=np.full(count, min(io_size, item_size), dtype=np.int64),
        sequential=True,
    )


def merge_streams(streams: list[EventStream]) -> list[LogicalIORecord]:
    """Merge per-item streams into one time-ordered logical trace."""
    streams = [s for s in streams if len(s.times)]
    if not streams:
        return []
    times = np.concatenate([s.times for s in streams])
    order = np.argsort(times, kind="stable")
    item_ids = np.concatenate(
        [np.full(len(s.times), i) for i, s in enumerate(streams)]
    )
    is_read = np.concatenate([s.is_read for s in streams])
    offsets = np.concatenate([s.offsets for s in streams])
    sizes = np.concatenate([s.sizes for s in streams])
    sequential = np.array([s.sequential for s in streams])
    names = [s.item_id for s in streams]

    records: list[LogicalIORecord] = []
    for index in order:
        stream_index = int(item_ids[index])
        records.append(
            LogicalIORecord(
                timestamp=float(times[index]),
                item_id=names[stream_index],
                offset=int(offsets[index]),
                size=int(sizes[index]),
                io_type=IOType.READ if is_read[index] else IOType.WRITE,
                sequential=bool(sequential[stream_index]),
            )
        )
    return records


def _random_offsets(
    rng: np.random.Generator, n: int, item_size: int, io_size: int
) -> np.ndarray:
    """Block-aligned random offsets that keep I/O inside the item."""
    span = max(1, (item_size - io_size) // units.BLOCK_SIZE)
    return rng.integers(0, span, size=n, dtype=np.int64) * units.BLOCK_SIZE
