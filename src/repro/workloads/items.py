"""Data items and workload containers.

A **data item** is the paper's unit of application data (§II-C.1): a
table or index for DBMS workloads, a file for file servers, always lying
wholly on one disk enclosure.  A :class:`Workload` bundles the item
catalog, the volume layout, and the generated logical I/O trace, and
knows how to install itself into a :class:`~repro.simulation.SimulationContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.simulation import SimulationContext, default_volume
from repro.trace.columnar import ColumnarTrace
from repro.trace.records import LogicalIORecord


@dataclass(frozen=True)
class DataItemSpec:
    """Catalog entry for one data item."""

    item_id: str
    size_bytes: int
    #: Index of the enclosure the item initially lives on.
    enclosure_index: int
    #: Optional volume name; defaults to the enclosure's default volume.
    volume: str | None = None
    #: Free-form kind tag ("table", "index", "file", "log", "work", ...).
    kind: str = "file"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise WorkloadError(
                f"item {self.item_id!r} must have positive size"
            )
        if self.enclosure_index < 0:
            raise WorkloadError(
                f"item {self.item_id!r} has negative enclosure index"
            )


@dataclass
class Workload:
    """A generated workload: items, volumes, trace, and metadata."""

    name: str
    duration: float
    enclosure_count: int
    items: list[DataItemSpec]
    records: list[LogicalIORecord]
    #: Extra volumes to create: (volume name, enclosure index).
    volumes: list[tuple[str, int]] = field(default_factory=list)
    description: str = ""
    #: Application-level reference metrics without power saving — e.g.
    #: ``{"tpmC": 1859.5}`` for OLTP — used by the §VII-A.5 conversions.
    app_metrics: dict[str, float] = field(default_factory=dict)
    #: Named time windows inside the run (e.g. TPC-H query executions):
    #: ``(name, start, end)``.  Used for per-query response reporting.
    phases: list[tuple[str, float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise WorkloadError("workload duration must be positive")
        if self.enclosure_count <= 0:
            raise WorkloadError("enclosure_count must be positive")
        for item in self.items:
            if item.enclosure_index >= self.enclosure_count:
                raise WorkloadError(
                    f"item {item.item_id!r} placed on enclosure "
                    f"{item.enclosure_index} but workload has only "
                    f"{self.enclosure_count}"
                )
        last = -1.0
        for record in self.records:
            if record.timestamp < last:
                raise WorkloadError("trace records are not time-ordered")
            last = record.timestamp

    @property
    def io_count(self) -> int:
        """Number of records in the generated trace."""
        return len(self.records)

    def columnar(self) -> ColumnarTrace:
        """The trace as a :class:`~repro.trace.columnar.ColumnarTrace`.

        Built once and cached on the instance; rebuilt if the record
        list was replaced or resized in the meantime.  Feed this to
        :meth:`repro.trace.replay.TraceReplayer.run` for the batched
        pump, or to :func:`repro.experiments.parallel.workload_fingerprint`
        for an allocation-free cache key.
        """
        cached = self.__dict__.get("_columnar_cache")
        if not isinstance(cached, ColumnarTrace) or len(cached) != len(
            self.records
        ):
            cached = ColumnarTrace.from_records(self.records)
            self.__dict__["_columnar_cache"] = cached
        return cached

    def item_ids(self) -> list[str]:
        """Ids of all data items in the set."""
        return [item.item_id for item in self.items]

    def install(self, context: SimulationContext) -> None:
        """Create volumes, place items, and register the logical mapping.

        The context must have at least ``enclosure_count`` enclosures.
        """
        names = context.enclosure_names()
        if len(names) < self.enclosure_count:
            raise WorkloadError(
                f"workload {self.name!r} needs {self.enclosure_count} "
                f"enclosures, context has {len(names)}"
            )
        for volume, index in self.volumes:
            context.virtualization.create_volume(volume, names[index])
        for item in self.items:
            volume = item.volume or default_volume(names[item.enclosure_index])
            context.virtualization.add_item(item.item_id, item.size_bytes, volume)
            context.app_monitor.register_item(item.item_id, volume)
