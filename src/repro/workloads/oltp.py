"""OLTP workload (the paper's TPC-C run, Table I row 2).

The paper executes TPC-C with 5000 warehouses and 1000 threads for
1.8 hours: a 500 GB database hash-distributed over 9 disk enclosures
plus a log on a tenth.  The measured pattern mix (Fig 6) is 76.2 % P3
and 23.3 % P1 with almost no P2 — master/working tables take sustained
random I/O, while a minority of read-mostly partitions (ITEM, HISTORY
indexes) see bursty reads with long intervals.

This generator reproduces that structure:

* per DB enclosure, ``P3_PER_ENCLOSURE`` table/index partitions with
  steady random I/O whose gaps never exceed the break-even time;
* per DB enclosure, ``P1_PER_ENCLOSURE`` read-mostly partitions with
  bursty access and long idle gaps;
* one log data item with continuous sequential writes (P3).

The aggregate P3 IOPS is sized so that the §IV-C hot/cold split frees a
couple of DB enclosures — the source of the paper's 15.7 % saving —
without saturating the hot enclosures' queues.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro import units
from repro.workloads.base import EventStream, burst_events, merge_streams, steady_events
from repro.workloads.items import DataItemSpec, Workload

#: Paper Table I: 1.8-hour run; DB on 9 enclosures, log on 1.
DEFAULT_DURATION = 1.8 * units.HOUR
DEFAULT_DB_ENCLOSURES = 9

P3_PER_ENCLOSURE = 11
P1_PER_ENCLOSURE = 3

#: Transaction throughput measured without power saving (the paper's
#: t_orig; back-derived from "1701.4 tpmC, a 8.5 % decrease").
TPMC_WITHOUT_POWER_SAVING = 1859.5

#: TPC-C table partition names cycled across the P3 slots.
_P3_TABLES = (
    "stock",
    "customer",
    "orders",
    "order_line",
    "new_order",
    "district",
    "warehouse",
    "stock_idx",
    "customer_idx",
    "orders_idx",
    "order_line_idx",
)
_P1_TABLES = ("item", "history", "item_idx")


def build_oltp_workload(
    seed: int = 2,
    duration: float = DEFAULT_DURATION,
    db_enclosure_count: int = DEFAULT_DB_ENCLOSURES,
    intensity: float = 1.0,
) -> Workload:
    """Generate the TPC-C-shaped OLTP workload.

    Enclosure 0 holds the log; enclosures 1..N hold the hash-distributed
    database partitions.
    """
    if intensity <= 0:
        raise ValidationError("intensity must be positive")
    rng = np.random.default_rng(seed)
    enclosure_count = db_enclosure_count + 1
    items: list[DataItemSpec] = []
    streams: list[EventStream] = []

    # --- log: continuous sequential writes (P3) on enclosure 0 --------
    log_id = "tpcc/log"
    log_size = 4 * units.GB
    items.append(DataItemSpec(log_id, log_size, 0, kind="log"))
    log_stream = steady_events(
        rng,
        log_id,
        log_size,
        duration,
        gap_low=0.5 / intensity,
        gap_high=1.5 / intensity,
        read_fraction=0.0,
        io_size=64 * units.KB,
    )
    streams.append(
        EventStream(
            item_id=log_stream.item_id,
            times=log_stream.times,
            is_read=log_stream.is_read,
            offsets=np.sort(log_stream.offsets),
            sizes=log_stream.sizes,
            sequential=True,
        )
    )

    # --- database partitions on enclosures 1..N ------------------------
    for db in range(db_enclosure_count):
        enclosure = db + 1
        for slot in range(P3_PER_ENCLOSURE):
            table = _P3_TABLES[slot % len(_P3_TABLES)]
            item_id = f"tpcc/{table}/p{db}"
            size = int(rng.uniform(600, 1100)) * units.MB  # size-scaled
            items.append(
                DataItemSpec(item_id, size, enclosure, kind="table")
            )
            # Steady random I/O, gaps bounded below break-even: pure P3.
            streams.append(
                steady_events(
                    rng,
                    item_id,
                    size,
                    duration,
                    gap_low=4.0 / intensity,
                    gap_high=40.0 / intensity,
                    read_fraction=0.55,
                    io_size=8 * units.KB,
                )
            )
        for slot in range(P1_PER_ENCLOSURE):
            table = _P1_TABLES[slot % len(_P1_TABLES)]
            item_id = f"tpcc/{table}/p{db}"
            size = int(rng.uniform(20, 60)) * units.MB
            items.append(
                DataItemSpec(item_id, size, enclosure, kind="read-mostly")
            )
            streams.append(
                burst_events(
                    rng,
                    item_id,
                    size,
                    duration,
                    mean_interburst=1200.0 / intensity,
                    min_interburst=300.0,
                    burst_size_low=10,
                    burst_size_high=25,
                    burst_duration_low=5.0,
                    burst_duration_high=20.0,
                    read_fraction=0.90,
                    io_size=8 * units.KB,
                )
            )

    records = merge_streams(streams)
    return Workload(
        name="tpcc",
        duration=duration,
        enclosure_count=enclosure_count,
        items=items,
        records=records,
        description=(
            "TPC-C-shaped OLTP: "
            f"{len(items)} partitions on {enclosure_count} enclosures "
            f"(log + {db_enclosure_count} DB), {len(records)} I/Os over "
            f"{units.format_duration(duration)}"
        ),
        app_metrics={"tpmC_without_power_saving": TPMC_WITHOUT_POWER_SAVING},
    )
