"""Synthetic workload generators for the three evaluated applications."""

from repro.workloads.dss import QUERY_TABLES, TABLE_SIZES, build_dss_workload
from repro.workloads.fileserver import build_fileserver_workload
from repro.workloads.items import DataItemSpec, Workload
from repro.workloads.oltp import build_oltp_workload

__all__ = [
    "DataItemSpec",
    "QUERY_TABLES",
    "TABLE_SIZES",
    "Workload",
    "build_dss_workload",
    "build_fileserver_workload",
    "build_oltp_workload",
]
