"""repro — Energy-efficient storage management (ICDE 2012 reproduction).

A faithful, simulator-backed reproduction of Nishikawa, Nakano &
Kitsuregawa, *Energy Efficient Storage Management Cooperated with Large
Data Intensive Applications* (ICDE 2012): an application-collaborative
storage power-management system that classifies each data item's logical
I/O into four patterns (P0-P3) every monitoring period and drives data
placement, preloading, and write delay accordingly.

Quick start::

    from repro import (
        DEFAULT_CONFIG,
        EnergyEfficientPolicy,
        build_context,
        build_fileserver_workload,
    )
    from repro.trace.replay import TraceReplayer

    workload = build_fileserver_workload(duration=3600.0)
    context = build_context(DEFAULT_CONFIG, workload.enclosure_count)
    workload.install(context)
    result = TraceReplayer(context, EnergyEfficientPolicy()).run(
        workload.records, duration=workload.duration
    )
    print(result.power.enclosure_watts, result.mean_response)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results.
"""

from repro.baselines import (
    DDRPolicy,
    NoPowerSavingPolicy,
    PDCPolicy,
    PowerPolicy,
)
from repro.config import (
    DEFAULT_CONFIG,
    DEFAULT_SCALE,
    PAPER_CONFIG,
    EcoStorConfig,
    SimulationScale,
)
from repro.core.manager import EnergyEfficientPolicy
from repro.core.patterns import IOPattern
from repro.simulation import SimulationContext, build_context
from repro.workloads import (
    build_dss_workload,
    build_fileserver_workload,
    build_oltp_workload,
)

__version__ = "1.0.0"

__all__ = [
    "DDRPolicy",
    "DEFAULT_CONFIG",
    "DEFAULT_SCALE",
    "EcoStorConfig",
    "EnergyEfficientPolicy",
    "IOPattern",
    "NoPowerSavingPolicy",
    "PAPER_CONFIG",
    "PDCPolicy",
    "PowerPolicy",
    "SimulationContext",
    "SimulationScale",
    "build_context",
    "build_dss_workload",
    "build_fileserver_workload",
    "build_oltp_workload",
    "__version__",
]
