"""Command-line interface: ``python -m repro`` / ``ecostor``.

Subcommands::

    ecostor experiments [--workloads ...] [--policies ...] [--jobs N]
                        [--cache-dir DIR] [--full] [--verify-serial]
    ecostor figures [--full] [--only fig06|fs|tpcc|tpch|intervals|tables]
    ecostor ablations [--full]
    ecostor run WORKLOAD POLICY [--full] [--audit]
                [--snapshot-every N --snapshot-dir DIR]
    ecostor tiers WORKLOAD [--full] [--flash N] [--archive N]
                  [--replicate-hot] [--audit] [--out PATH]
    ecostor resume SNAPSHOT
    ecostor crash-test [--workload W] [--policies P ...] [--trials N]
                       [--snapshot-every N] [--seed S] [--report PATH]
    ecostor patterns WORKLOAD [--full]
    ecostor ssd-study / ecostor scaling-study
    ecostor export-trace WORKLOAD PATH [--full]
    ecostor replay-trace PATH POLICY [--enclosures N] [--msr] [--ecot]
    ecostor trace pack INPUT OUTPUT [--msr]
    ecostor trace info PATH [--shards N [--router-seed S]]
    ecostor fleet run WORKLOAD POLICY [--arrays N] [--router-seed S]
                      [--audit] [--outage-arrays K ...] [--out PATH]
                      [--jobs N] [--cache-dir DIR]
    ecostor fleet report PATH
    ecostor intervals WORKLOAD POLICY [--full]
    ecostor bench [--workload W] [--repeats N] [--out BENCH_engine.json]
    ecostor lint [PATHS ...] [--format text|json] [--select RULE ...]
    ecostor analyze [PATHS ...] [--format text|json] [--select CHECK ...]
                    [--no-baseline] [--write-baseline]
    ecostor chaos [--workload W] [--seeds N ...] [--faults KIND ...]
                  [--policies P ...] [--tiers] [--full] [--jobs N]
                  [--cache-dir DIR]

``experiments`` runs a (workload × policy) sweep through the parallel
experiment engine — ``--jobs`` workers, results memoized on disk under
``--cache-dir``, per-cell failure isolation, and ``--verify-serial`` to
re-run serially and assert bit-identical results; ``figures``
regenerates every paper table/figure as text (``--jobs``/``--cache-dir``
route its sweeps through the same engine); ``run`` replays one workload
under one policy (``--audit`` verifies the energy / capacity / time
invariants every monitoring period; ``--snapshot-every`` writes
crash-safe ``.ecsn`` state snapshots that ``resume`` continues from
bit-identically, and ``crash-test`` proves that with a seeded
kill/resume sweep — see ``docs/snapshots.md``); ``export-trace`` /
``replay-trace`` round-trip logical traces through CSV (or ingest real
MSR-Cambridge block traces with ``--msr``, or packed ``.ecot`` columnar
traces — see ``docs/trace-format.md``); ``trace pack`` converts a CSV
or MSR trace into the ``.ecot`` binary format and ``trace info`` prints
a packed file's header (``--shards N`` adds the per-array histogram a
fleet router would produce); ``fleet run`` shards one workload across
``--arrays`` independent arrays with a deterministic router, merges the
per-array books, and audits global conservation — fleet energy exactly
equal to the sum of per-array energies (see ``docs/fleet.md``) —
while ``fleet report`` re-renders a saved fleet JSON; ``intervals``
draws a
Fig 17-19 curve in the terminal; ``lint`` runs the
:mod:`repro.devtools` domain linter; ``analyze`` runs the whole-program
dimensional & determinism analyzer (:mod:`repro.devtools.analysis`)
with the committed ``analysis-baseline.json`` applied; ``chaos`` sweeps
policies against
seeded fault plans (:mod:`repro.faults`) with the invariant auditor
armed and reports the energy-vs-availability frontier (``--tiers``
sweeps tier configurations instead and reports the
energy-vs-latency-vs-capacity-cost frontier); ``tiers`` replays one
workload on the multi-tier FLASH/HDD/ARCHIVE testbed under the
temperature-driven lifecycle policy and prints the per-tier
energy/capacity/latency books (see ``docs/tiers.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING

from repro import units
from repro.analysis.report import gigabytes, seconds, watts
from repro.experiments.runner import STANDARD_POLICIES, run_cell
from repro.experiments.testbed import WORKLOAD_NAMES, build_workload

if TYPE_CHECKING:
    from repro.workloads.items import Workload

_FIGURE_SECTIONS = ("tables", "fig06", "fs", "tpcc", "tpch", "intervals")


def _progress(line: str) -> None:
    """Engine progress callback: one line per finished cell, to stderr."""
    print(line, file=sys.stderr)


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """Attach the parallel-engine flags shared by the sweep commands."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for experiment cells (1 = run inline)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="directory for the on-disk result cache (default: no cache)",
    )


def _apply_engine_options(args: argparse.Namespace) -> None:
    """Route this process's sweeps through an engine built from the flags."""
    if args.jobs != 1 or args.cache_dir is not None:
        from repro.experiments import parallel

        parallel.configure(
            jobs=args.jobs, cache_dir=args.cache_dir, progress=_progress
        )


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_experiment_table
    from repro.experiments import parallel

    workloads = args.workloads or list(WORKLOAD_NAMES)
    policies = args.policies or list(STANDARD_POLICIES)
    cells = [
        parallel.ExperimentCell(
            workload=parallel.WorkloadSpec(name=workload, full=args.full),
            policy=parallel.PolicySpec(name=policy),
        )
        for workload in workloads
        for policy in policies
    ]
    engine = parallel.ExperimentEngine(
        jobs=args.jobs, cache_dir=args.cache_dir, progress=_progress
    )
    outcomes = engine.run_cells(cells)
    failed = [outcome for outcome in outcomes if not outcome.ok]
    for outcome in failed:
        print(f"FAILED {outcome.cell.label}:\n{outcome.error}", file=sys.stderr)
    for workload in workloads:
        results = {
            o.cell.policy.name: o.result
            for o in outcomes
            if o.ok and o.cell.workload.name == workload
        }
        if results:
            print(render_experiment_table(f"Experiments — {workload}", results))
            print()
    print(
        f"cells: {len(outcomes)} total, {engine.cache_hits} cached, "
        f"{engine.replays} replayed, {engine.failures} failed"
    )
    status = 1 if failed else 0
    if args.verify_serial:
        serial = parallel.ExperimentEngine(jobs=1)
        serial_outcomes = serial.run_cells(cells)
        mismatched = [
            o.cell.label
            for o, s in zip(outcomes, serial_outcomes)
            if o.ok != s.ok or (o.ok and o.result != s.result)
        ]
        if mismatched:
            print("verify-serial: MISMATCH in " + ", ".join(mismatched))
            status = 1
        else:
            print(
                "verify-serial: parallel results identical to serial replay "
                f"({len(serial_outcomes)} cells)"
            )
    return status


def _cmd_figures(args: argparse.Namespace) -> int:
    _apply_engine_options(args)
    from repro.experiments import (
        fig06_patterns,
        fig08_10_fileserver,
        fig11_13_tpcc,
        fig14_16_tpch,
        fig17_19_intervals,
        tables,
    )

    sections = {
        "tables": tables.run,
        "fig06": fig06_patterns.run,
        "fs": fig08_10_fileserver.run,
        "tpcc": fig11_13_tpcc.run,
        "tpch": fig14_16_tpch.run,
        "intervals": fig17_19_intervals.run,
    }
    chosen = args.only or list(_FIGURE_SECTIONS)
    for name in chosen:
        print(sections[name](full=args.full))
        print()
    return 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    from repro.experiments import ablations

    _apply_engine_options(args)
    print(ablations.run(full=args.full))
    return 0


def _print_replay_report(workload_label: str, replay: object) -> None:
    """Shared ``run``/``resume`` report over one ReplayResult."""
    print(f"workload:        {workload_label}")
    print(f"policy:          {replay.policy_name}")
    print(f"enclosure power: {watts(replay.power.enclosure_watts)}")
    print(f"controller:      {watts(replay.power.controller_watts)}")
    print(f"mean response:   {seconds(replay.mean_response)}")
    print(f"read response:   {seconds(replay.mean_read_response)}")
    print(f"migrated:        {gigabytes(replay.migrated_bytes)}")
    print(f"determinations:  {replay.determinations}")
    print(f"spin-ups:        {replay.spin_up_count}")
    print(f"cache hit ratio: {replay.cache_hit_ratio:.2f}")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.errors import UsageError

    if bool(args.snapshot_every) != (args.snapshot_dir is not None):
        raise UsageError(
            "--snapshot-every and --snapshot-dir must be given together"
        )
    if args.snapshot_every:
        # The durable path: route through a snapshot session so every
        # Nth record boundary lands an atomic .ecsn file that `ecostor
        # resume` can continue from (see docs/snapshots.md).
        from repro.persistence import RunSpec, SnapshotSession

        spec = RunSpec(
            workload=args.workload,
            policy=args.policy,
            full=args.full,
            audit=args.audit,
        )
        session = SnapshotSession(spec)
        replay = session.run(args.snapshot_every, args.snapshot_dir)
        _print_replay_report(
            f"{session.workload.name} ({session.workload.io_count} I/Os)",
            replay,
        )
        if args.audit:
            print(
                f"audit:           {session.auditor.checks_run} invariant "
                "checks, 0 violations"
            )
        print(
            f"snapshots:       {session.snapshots_written} written to "
            f"{args.snapshot_dir}"
        )
        return 0
    workload = build_workload(args.workload, args.full)
    policy = STANDARD_POLICIES[args.policy]()
    result = run_cell(workload, policy, audit=args.audit)
    print(f"workload:        {workload.name} ({workload.io_count} I/Os)")
    print(f"policy:          {result.policy_name}")
    print(f"enclosure power: {watts(result.enclosure_watts)}")
    print(f"controller:      {watts(result.controller_watts)}")
    print(f"mean response:   {seconds(result.mean_response)}")
    print(f"read response:   {seconds(result.mean_read_response)}")
    print(f"migrated:        {gigabytes(result.migrated_bytes)}")
    print(f"determinations:  {result.determinations}")
    print(f"spin-ups:        {result.replay.spin_up_count}")
    print(f"cache hit ratio: {result.replay.cache_hit_ratio:.2f}")
    if args.audit:
        print(
            f"audit:           {result.audit_checks} invariant checks, "
            "0 violations"
        )
    return 0


def _cmd_tiers(args: argparse.Namespace) -> int:
    import json

    from repro.baselines.tiered import TieredLifecyclePolicy
    from repro.experiments.runner import run_tiered_cell

    workload = build_workload(args.workload, args.full)
    policy = TieredLifecyclePolicy(replicate_hot=args.replicate_hot)
    cell = run_tiered_cell(
        workload,
        policy,
        audit=args.audit,
        flash_count=args.flash,
        archive_count=args.archive,
    )
    result = cell.result
    print(f"workload:        {workload.name} ({workload.io_count} I/Os)")
    print(f"policy:          {result.policy_name}")
    print(f"enclosure power: {watts(result.enclosure_watts)}")
    print(f"mean response:   {seconds(result.mean_response)}")
    print(f"read response:   {seconds(result.mean_read_response)}")
    print(f"capacity cost:   {cell.capacity_cost:.2f} units")
    if args.audit:
        print(
            f"audit:           {result.audit_checks} invariant checks, "
            "0 violations"
        )
    print()
    print(
        f"{'tier':<10} {'devices':>7} {'placed':>10} {'in':>10} "
        f"{'out':>10} {'energy kJ':>10} {'svc s':>8} {'I/Os':>8}"
    )
    for report in cell.tier_reports:
        print(
            f"{report.tier:<10} {len(report.devices):>7} "
            f"{gigabytes(report.placed_bytes):>10} "
            f"{gigabytes(report.bytes_in):>10} "
            f"{gigabytes(report.bytes_out):>10} "
            f"{report.energy_joules / 1e3:>10.1f} "
            f"{report.service_seconds:>8.1f} {report.serviced_ios:>8}"
        )
    if args.out is not None:
        document = {
            "format": 1,
            "workload": workload.name,
            "policy": result.policy_name,
            "io_count": workload.io_count,
            "audit_checks": result.audit_checks,
            "energy_joules": cell.energy_joules,
            "capacity_cost": cell.capacity_cost,
            "mean_read_response": result.mean_read_response,
            "tiers": [report.to_dict() for report in cell.tier_reports],
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote per-tier report to {args.out}", file=sys.stderr)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.persistence import RunSpec, SnapshotSession, load_snapshot

    payload = load_snapshot(args.snapshot)
    meta = payload["meta"]
    spec = RunSpec.from_dict(meta["spec"])
    print(
        f"resuming {spec.workload} / {spec.policy} from record "
        f"{meta['count']} (t={meta['ts']:,.1f} s)",
        file=sys.stderr,
    )
    session = SnapshotSession(spec)
    replay = session.resume(payload)
    _print_replay_report(
        f"{session.workload.name} ({session.workload.io_count} I/Os)",
        replay,
    )
    if session.auditor is not None:
        print(
            f"audit:           {session.auditor.checks_run} invariant "
            "checks, 0 violations"
        )
    return 0


def _cmd_crash_test(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.persistence import RunSpec, run_crash_sweep

    status = 0
    reports = []
    for policy in args.policies or sorted(STANDARD_POLICIES):
        spec = RunSpec(
            workload=args.workload,
            policy=policy,
            full=args.full,
            audit=True,
        )
        report = run_crash_sweep(
            spec,
            snapshot_every=args.snapshot_every,
            trials=args.trials,
            seed=args.seed,
        )
        print(report.render())
        print()
        reports.append(report)
        if not report.ok:
            status = 1
    if args.report is not None:
        document = "[\n" + ",\n".join(r.to_json() for r in reports) + "\n]\n"
        Path(args.report).write_text(document, encoding="utf-8")
        print(f"wrote recovery report to {args.report}", file=sys.stderr)
    return status


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import run_chaos

    if args.tiers:
        from repro.faults.chaos import run_tier_frontier

        frontier = run_tier_frontier(
            workload=args.workload,
            full=args.full,
            progress=_progress,
        )
        print(frontier.render())
        return 0 if frontier.ok else 1
    report = run_chaos(
        workload=args.workload,
        full=args.full,
        seeds=tuple(args.seeds),
        policies=args.policies,
        kinds=args.faults,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        progress=_progress,
    )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import main as bench_main

    return bench_main(
        workload_name=args.workload,
        full=args.full,
        repeats=args.repeats,
        out=args.out,
    )


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools import lint

    argv = list(args.paths)
    if args.format != "text":
        argv += ["--format", args.format]
    if args.select:
        argv += ["--select", *args.select]
    if args.list_rules:
        argv += ["--list-rules"]
    return lint.main(argv)


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.devtools.analysis import cli as analysis_cli

    argv = list(args.paths)
    if args.format != "text":
        argv += ["--format", args.format]
    if args.select:
        argv += ["--select", *args.select]
    if args.no_baseline:
        argv += ["--no-baseline"]
    if args.write_baseline:
        argv += ["--write-baseline"]
    if args.list_checks:
        argv += ["--list-checks"]
    return analysis_cli.main(argv)


def _cmd_patterns(args: argparse.Namespace) -> int:
    from repro.experiments.fig06_patterns import measure_pattern_mix

    workload = build_workload(args.workload, args.full)
    mix = measure_pattern_mix(workload)
    print(f"{workload.name}: {workload.io_count} I/Os, {len(workload.items)} items")
    for pattern, fraction in mix.items():
        print(f"  {pattern.value}: {fraction * 100:5.1f} %")
    return 0


def _cmd_ssd_study(args: argparse.Namespace) -> int:
    from repro.experiments import ssd_study

    print(ssd_study.run(full=args.full))
    return 0


def _cmd_scaling_study(args: argparse.Namespace) -> int:
    from repro.experiments import scaling

    _apply_engine_options(args)
    print(scaling.run())
    return 0


def _cmd_export_trace(args: argparse.Namespace) -> int:
    from repro.trace.writer import write_logical_trace

    workload = build_workload(args.workload, args.full)
    count = write_logical_trace(workload.records, args.path)
    print(f"wrote {count} records of {workload.name!r} to {args.path}")
    return 0


def _load_trace_workload(
    args: argparse.Namespace, enclosure_count: int
) -> "Workload":
    """Pick the right trace loader: ``.ecot``, MSR, or logical CSV."""
    from repro.workloads.from_trace import (
        workload_from_csv,
        workload_from_ecot,
        workload_from_msr,
    )

    if getattr(args, "ecot", False) or str(args.path).endswith(".ecot"):
        return workload_from_ecot(args.path, enclosure_count)
    if args.msr:
        return workload_from_msr(args.path, enclosure_count)
    return workload_from_csv(args.path, enclosure_count)


def _cmd_replay_trace(args: argparse.Namespace) -> int:
    workload = _load_trace_workload(args, args.enclosures)
    print(f"loaded: {workload.description}")
    policy = STANDARD_POLICIES[args.policy]()
    result = run_cell(workload, policy)
    print(f"enclosure power: {watts(result.enclosure_watts)}")
    print(f"mean response:   {seconds(result.mean_response)}")
    print(f"migrated:        {gigabytes(result.migrated_bytes)}")
    print(f"determinations:  {result.determinations}")
    return 0


def _cmd_intervals(args: argparse.Namespace) -> int:
    from repro.analysis.plot import curves_overlay_summary, step_curve
    from repro.experiments.testbed import comparison

    results = comparison(args.workload, args.full)
    curves = {name: r.interval_curve for name, r in results.items()}
    print(
        step_curve(
            curves[args.policy],
            title=(
                f"{args.workload} / {args.policy} — cumulative I/O "
                "intervals above break-even"
            ),
        )
    )
    print()
    print(curves_overlay_summary(curves))
    return 0


def _cmd_analyze_trace(args: argparse.Namespace) -> int:
    from repro.config import DEFAULT_CONFIG
    from repro.core.patterns import build_profiles, pattern_fractions
    from repro.trace.stats import summarize

    workload = _load_trace_workload(args, enclosure_count=1)
    summary = summarize(workload.records)
    print(f"records:      {summary.record_count}")
    print(f"items:        {summary.item_count}")
    print(f"duration:     {summary.duration:,.1f} s")
    print(f"read ratio:   {summary.read_ratio:.2f}")
    print(f"mean IOPS:    {summary.mean_iops:.3f}")
    print(f"total bytes:  {summary.total_bytes / units.GB:.2f} GB")
    sizes = {item.item_id: item.size_bytes for item in workload.items}
    locations = {item.item_id: "e0" for item in workload.items}
    mix = pattern_fractions(
        build_profiles(
            workload.records,
            0.0,
            workload.duration,
            DEFAULT_CONFIG.break_even_time,
            sizes,
            locations,
        )
    )
    print("pattern mix (whole-trace window, break-even "
          f"{DEFAULT_CONFIG.break_even_time:g} s):")
    for pattern, fraction in mix.items():
        print(f"  {pattern.value}: {fraction * 100:5.1f} %")
    return 0


def _cmd_trace_pack(args: argparse.Namespace) -> int:
    from repro.trace.columnar import ColumnarTrace
    from repro.trace.reader import read_logical_trace, read_msr_trace

    reader = read_msr_trace if args.msr else read_logical_trace
    trace = ColumnarTrace.from_records(reader(args.input))
    count = trace.save(args.output)
    print(
        f"packed {count} records over {len(trace.items)} items "
        f"into {args.output}"
    )
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    from repro.errors import UsageError
    from repro.trace.columnar import ECOT_VERSION, FLAG_READ, ColumnarTrace

    if args.shards is not None and args.shards <= 0:
        raise UsageError(
            f"--shards must be a positive array count, got {args.shards}"
        )
    trace = ColumnarTrace.load(args.path)
    reads = sum(1 for flag in trace.flags if flag & FLAG_READ)
    count = len(trace)
    print(f"format:    .ecot version {ECOT_VERSION}")
    print(f"records:   {count}")
    print(f"items:     {len(trace.items)}")
    if count:
        span = max(trace.timestamps) - min(trace.timestamps)
        print(f"span:      {span:,.1f} s")
        print(f"reads:     {reads} ({reads / count:.0%})")
    if args.shards is not None:
        from repro.fleet.routing import HashRouter, array_name

        router = HashRouter(args.shards, args.router_seed)
        owners = [router.shard_for(item_id) for item_id in trace.items]
        item_counts = [0] * args.shards
        record_counts = [0] * args.shards
        for owner in owners:
            item_counts[owner] += 1
        for index in trace.item_index:
            record_counts[owners[index]] += 1
        width = max(record_counts) if count else 0
        print(f"shards:    {args.shards} (router seed {args.router_seed})")
        for shard in range(args.shards):
            bar = "#" * (
                round(40 * record_counts[shard] / width) if width else 0
            )
            print(
                f"  {array_name(shard)}: {record_counts[shard]:>8} records "
                f"{item_counts[shard]:>6} items  {bar}"
            )
    return 0


def _render_fleet(data: dict) -> str:
    """Text table for a fleet report dict (:meth:`FleetResult.to_dict`)."""
    lines = [
        f"fleet — {data['workload']} / {data['policy']}, "
        f"{data['n_arrays']} arrays, router seed {data['router_seed']}",
        "",
        f"{'array':<10} {'I/Os':>8} {'encl W':>8} {'resp ms':>8} "
        f"{'migrated':>10} {'spin-ups':>8} {'denied':>6} {'unavail':>8}",
    ]
    for row in data["arrays"]:
        lines.append(
            f"{row['array']:<10} {row['io_count']:>8} "
            f"{row['enclosure_watts']:>8.0f} "
            f"{row['mean_response'] * 1e3:>8.1f} "
            f"{gigabytes(row['migrated_bytes']):>10} "
            f"{row['spin_up_count']:>8} {row['denied_ios']:>6} "
            f"{row['unavailability_seconds']:>7.0f}s"
        )
    lines += [
        "",
        f"fleet totals: {data['io_count']} I/Os, "
        f"{watts(data['enclosure_watts'])} enclosures + "
        f"{watts(data['controller_watts'])} controllers, "
        f"mean response {seconds(data['mean_response'])}",
        f"energy books: {data['enclosure_joules']:,.0f} J enclosures, "
        f"{data['controller_joules']:,.0f} J controllers "
        f"(exact per-array sums, audited)",
        f"migrations:   {gigabytes(data['migrated_bytes'])} in "
        f"{data['migration_count']} moves, "
        f"{data['determinations']} determinations",
    ]
    if data["actions_by_kind"]:
        kinds = ", ".join(
            f"{kind} x{count}"
            for kind, count in sorted(data["actions_by_kind"].items())
        )
        lines.append(f"actions:      {kinds}")
    if data["denied_ios"] or data["unavailability_seconds"]:
        lines.append(
            f"availability: {data['denied_ios']} denied, "
            f"{data['delayed_ios']} delayed, "
            f"{data['unavailability_seconds']:,.0f} s unavailable, "
            f"{data['outage_violations']} outage violations"
        )
    return "\n".join(lines)


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.parallel import (
        ExperimentEngine,
        PolicySpec,
        WorkloadSpec,
    )
    from repro.fleet import FleetRunner, array_outage_plans

    runner = FleetRunner(args.arrays, router_seed=args.router_seed)
    plans = None
    if args.outage_arrays:
        workload = build_workload(args.workload, args.full)
        plans = array_outage_plans(
            workload, runner.router(), args.outage_arrays, seed=args.chaos_seed
        )
    engine = ExperimentEngine(
        jobs=args.jobs, cache_dir=args.cache_dir, progress=_progress
    )
    fleet = runner.run(
        WorkloadSpec(name=args.workload, full=args.full),
        PolicySpec(name=args.policy),
        audit=args.audit,
        faults=plans,
        engine=engine,
    )
    print(_render_fleet(fleet.to_dict()))
    if args.out is not None:
        from pathlib import Path

        Path(args.out).write_text(
            json.dumps(fleet.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote fleet report to {args.out}", file=sys.stderr)
    return 0


def _cmd_fleet_report(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    data = json.loads(Path(args.path).read_text(encoding="utf-8"))
    print(_render_fleet(data))
    return 0


def _cmd_replication(args: argparse.Namespace) -> int:
    from repro.experiments import replication

    print(replication.run(tuple(args.seeds)))
    return 0


def _cmd_power_timeline(args: argparse.Namespace) -> int:
    from repro.analysis.plot import time_series_chart
    from repro.config import DEFAULT_CONFIG
    from repro.monitoring.timeline import PowerTimeline
    from repro.simulation import build_context
    from repro.trace.replay import TraceReplayer

    workload = build_workload(args.workload, args.full)
    context = build_context(DEFAULT_CONFIG, workload.enclosure_count)
    workload.install(context)
    timeline = PowerTimeline(
        context.enclosures, interval_seconds=args.interval
    )
    policy = STANDARD_POLICIES[args.policy]()
    TraceReplayer(context, policy, timeline).run(
        workload.records, duration=workload.duration
    )
    print(
        time_series_chart(
            timeline.total_series(),
            title=f"{args.workload} / {args.policy} — enclosure power",
        )
    )
    print(f"\nmean: {timeline.mean_watts():,.0f} W")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the ``ecostor`` argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="ecostor",
        description=(
            "Energy-efficient storage management (ICDE 2012 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiments = sub.add_parser(
        "experiments",
        help="parallel cached (workload x policy) sweep",
    )
    experiments.add_argument(
        "--workloads",
        nargs="+",
        choices=WORKLOAD_NAMES,
        help="workloads to sweep (default: all three)",
    )
    experiments.add_argument(
        "--policies",
        nargs="+",
        choices=sorted(STANDARD_POLICIES),
        help="policies to sweep (default: all four)",
    )
    experiments.add_argument("--full", action="store_true")
    _add_engine_options(experiments)
    experiments.add_argument(
        "--verify-serial",
        action="store_true",
        help="re-run the sweep serially and assert identical results",
    )
    experiments.set_defaults(func=_cmd_experiments)

    figures = sub.add_parser("figures", help="regenerate paper tables/figures")
    figures.add_argument("--full", action="store_true", help="paper-length runs")
    figures.add_argument(
        "--only",
        nargs="+",
        choices=_FIGURE_SECTIONS,
        help="subset of figure groups",
    )
    _add_engine_options(figures)
    figures.set_defaults(func=_cmd_figures)

    abl = sub.add_parser("ablations", help="run the mechanism ablations")
    abl.add_argument("--full", action="store_true")
    _add_engine_options(abl)
    abl.set_defaults(func=_cmd_ablations)

    run = sub.add_parser("run", help="replay one workload under one policy")
    run.add_argument("workload", choices=WORKLOAD_NAMES)
    run.add_argument("policy", choices=sorted(STANDARD_POLICIES))
    run.add_argument("--full", action="store_true")
    run.add_argument(
        "--audit",
        action="store_true",
        help="verify energy/capacity/time invariants every monitoring period",
    )
    run.add_argument(
        "--snapshot-every",
        type=int,
        default=0,
        metavar="N",
        help="write a crash-safe .ecsn snapshot every N records "
        "(requires --snapshot-dir)",
    )
    run.add_argument(
        "--snapshot-dir",
        default=None,
        metavar="DIR",
        help="directory for .ecsn snapshot files",
    )
    run.set_defaults(func=_cmd_run)

    tiers = sub.add_parser(
        "tiers",
        help="multi-tier lifecycle replay with per-tier books "
        "(docs/tiers.md)",
    )
    tiers.add_argument("workload", choices=WORKLOAD_NAMES)
    tiers.add_argument("--full", action="store_true")
    tiers.add_argument(
        "--flash", type=int, default=1, metavar="N",
        help="flash-tier device count (default: 1; 0 disables the tier)",
    )
    tiers.add_argument(
        "--archive", type=int, default=1, metavar="N",
        help="archive-tier device count (default: 1; 0 disables the tier)",
    )
    tiers.add_argument(
        "--replicate-hot",
        action="store_true",
        help="keep an HDD replica of the hottest flash-resident item",
    )
    tiers.add_argument(
        "--audit",
        action="store_true",
        help="arm the invariant auditor (incl. per-tier conservation)",
    )
    tiers.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the per-tier report as JSON here",
    )
    tiers.set_defaults(func=_cmd_tiers)

    resume = sub.add_parser(
        "resume",
        help="resume a crashed run from a .ecsn snapshot (bit-identical)",
    )
    resume.add_argument("snapshot", help="path to a snap-*.ecsn file")
    resume.set_defaults(func=_cmd_resume)

    crash_test = sub.add_parser(
        "crash-test",
        help="seeded kill/resume sweep proving snapshot resume bit-identity",
    )
    crash_test.add_argument(
        "--workload", choices=WORKLOAD_NAMES, default="fileserver"
    )
    crash_test.add_argument(
        "--policies",
        nargs="+",
        choices=sorted(STANDARD_POLICIES),
        default=None,
        help="policies to drill (default: all four)",
    )
    crash_test.add_argument("--full", action="store_true")
    crash_test.add_argument(
        "--snapshot-every", type=int, default=2000, metavar="N"
    )
    crash_test.add_argument(
        "--trials", type=int, default=2, help="kill points per policy"
    )
    crash_test.add_argument("--seed", type=int, default=11)
    crash_test.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the JSON recovery report here (CI artifact)",
    )
    crash_test.set_defaults(func=_cmd_crash_test)

    chaos = sub.add_parser(
        "chaos",
        help="policies x fault plans sweep with the invariant auditor armed",
    )
    chaos.add_argument(
        "--workload",
        choices=WORKLOAD_NAMES,
        default="tpcc",
        help="workload to replay under faults (default: tpcc)",
    )
    chaos.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[11],
        help="chaos seeds; each derives one full fault-plan grid",
    )
    chaos.add_argument(
        "--faults",
        nargs="+",
        metavar="KIND",
        default=None,
        help="fault-plan kinds to sweep (default: all, incl. baseline)",
    )
    chaos.add_argument(
        "--policies",
        nargs="+",
        choices=sorted(STANDARD_POLICIES),
        default=None,
        help="policies to stress (default: all four)",
    )
    chaos.add_argument("--full", action="store_true")
    chaos.add_argument(
        "--tiers",
        action="store_true",
        help="sweep tier configurations under the lifecycle policy "
        "instead of fault plans: energy vs latency vs capacity cost",
    )
    _add_engine_options(chaos)
    chaos.set_defaults(func=_cmd_chaos)

    bench = sub.add_parser(
        "bench", help="replay-throughput benchmark (BENCH_engine.json)"
    )
    bench.add_argument("--workload", choices=WORKLOAD_NAMES, default="tpcc")
    bench.add_argument("--full", action="store_true")
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument(
        "--out", default=None, help="write the JSON document here"
    )
    bench.set_defaults(func=_cmd_bench)

    lint = sub.add_parser(
        "lint", help="run the domain linter (repro.devtools)"
    )
    lint.add_argument("paths", nargs="*", default=["src"])
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--select", nargs="+", metavar="RULE")
    lint.add_argument("--list-rules", action="store_true")
    lint.set_defaults(func=_cmd_lint)

    analyze_prog = sub.add_parser(
        "analyze",
        help="whole-program dimensional & determinism analysis "
        "(repro.devtools.analysis)",
    )
    analyze_prog.add_argument("paths", nargs="*", default=["src/repro"])
    analyze_prog.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    analyze_prog.add_argument("--select", nargs="+", metavar="CHECK")
    analyze_prog.add_argument("--no-baseline", action="store_true")
    analyze_prog.add_argument("--write-baseline", action="store_true")
    analyze_prog.add_argument("--list-checks", action="store_true")
    analyze_prog.set_defaults(func=_cmd_analyze)

    patterns = sub.add_parser("patterns", help="classify a workload (Fig 6)")
    patterns.add_argument("workload", choices=WORKLOAD_NAMES)
    patterns.add_argument("--full", action="store_true")
    patterns.set_defaults(func=_cmd_patterns)

    ssd = sub.add_parser("ssd-study", help="HDD vs flash study (§VIII-D)")
    ssd.add_argument("--full", action="store_true")
    ssd.set_defaults(func=_cmd_ssd_study)

    scaling = sub.add_parser(
        "scaling-study", help="array-size sweep (§IX future work)"
    )
    _add_engine_options(scaling)
    scaling.set_defaults(func=_cmd_scaling_study)

    export = sub.add_parser(
        "export-trace", help="write a workload's logical trace to CSV"
    )
    export.add_argument("workload", choices=WORKLOAD_NAMES)
    export.add_argument("path")
    export.add_argument("--full", action="store_true")
    export.set_defaults(func=_cmd_export_trace)

    replay = sub.add_parser(
        "replay-trace", help="replay a recorded trace under a policy"
    )
    replay.add_argument("path")
    replay.add_argument("policy", choices=sorted(STANDARD_POLICIES))
    replay.add_argument("--enclosures", type=int, default=12)
    replay.add_argument(
        "--msr", action="store_true", help="input is MSR-Cambridge format"
    )
    replay.add_argument(
        "--ecot",
        action="store_true",
        help="input is a packed .ecot trace (auto-detected by suffix)",
    )
    replay.set_defaults(func=_cmd_replay_trace)

    trace = sub.add_parser(
        "trace", help="columnar .ecot trace utilities (pack / info)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    pack = trace_sub.add_parser(
        "pack", help="convert a CSV or MSR trace into a packed .ecot file"
    )
    pack.add_argument("input", help="source trace (logical CSV, or MSR)")
    pack.add_argument("output", help="destination .ecot path")
    pack.add_argument(
        "--msr", action="store_true", help="input is MSR-Cambridge format"
    )
    pack.set_defaults(func=_cmd_trace_pack)
    info = trace_sub.add_parser(
        "info", help="print the header and summary of a packed .ecot file"
    )
    info.add_argument("path")
    info.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="also print the per-array record/item histogram an N-array "
        "fleet router would produce (N must be positive)",
    )
    info.add_argument(
        "--router-seed",
        type=int,
        default=0,
        help="router seed for the --shards histogram",
    )
    info.set_defaults(func=_cmd_trace_info)

    fleet = sub.add_parser(
        "fleet", help="multi-array fleet runs (repro.fleet)"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_run = fleet_sub.add_parser(
        "run",
        help="shard one workload across N arrays, merge + audit the books",
    )
    fleet_run.add_argument("workload", choices=WORKLOAD_NAMES)
    fleet_run.add_argument("policy", choices=sorted(STANDARD_POLICIES))
    fleet_run.add_argument(
        "--arrays", type=int, default=3, metavar="N",
        help="fleet width (default: 3)",
    )
    fleet_run.add_argument(
        "--router-seed", type=int, default=0,
        help="seed of the deterministic item->array router",
    )
    fleet_run.add_argument("--full", action="store_true")
    fleet_run.add_argument(
        "--audit",
        action="store_true",
        help="arm the per-array invariant auditor (the global "
        "conservation audit always runs)",
    )
    fleet_run.add_argument(
        "--outage-arrays",
        type=int,
        nargs="+",
        default=None,
        metavar="K",
        help="inject a deterministic whole-array outage plan into "
        "these array indexes",
    )
    fleet_run.add_argument(
        "--chaos-seed", type=int, default=11,
        help="seed for --outage-arrays fault plans",
    )
    fleet_run.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the fleet report as JSON here",
    )
    _add_engine_options(fleet_run)
    fleet_run.set_defaults(func=_cmd_fleet_run)
    fleet_report = fleet_sub.add_parser(
        "report", help="render a saved fleet report JSON as text"
    )
    fleet_report.add_argument("path")
    fleet_report.set_defaults(func=_cmd_fleet_report)

    intervals = sub.add_parser(
        "intervals", help="draw a Fig 17-19 interval curve"
    )
    intervals.add_argument("workload", choices=WORKLOAD_NAMES)
    intervals.add_argument("policy", choices=sorted(STANDARD_POLICIES))
    intervals.add_argument("--full", action="store_true")
    intervals.set_defaults(func=_cmd_intervals)

    timeline = sub.add_parser(
        "power-timeline", help="power-over-time chart (§III-B samples)"
    )
    timeline.add_argument("workload", choices=WORKLOAD_NAMES)
    timeline.add_argument("policy", choices=sorted(STANDARD_POLICIES))
    timeline.add_argument("--full", action="store_true")
    timeline.add_argument("--interval", type=float, default=120.0)
    timeline.set_defaults(func=_cmd_power_timeline)

    analyze = sub.add_parser(
        "analyze-trace", help="summarize + classify a recorded trace"
    )
    analyze.add_argument("path")
    analyze.add_argument("--msr", action="store_true")
    analyze.add_argument(
        "--ecot",
        action="store_true",
        help="input is a packed .ecot trace (auto-detected by suffix)",
    )
    analyze.set_defaults(func=_cmd_analyze_trace)

    replication = sub.add_parser(
        "replication", help="seed-replication robustness study"
    )
    replication.add_argument(
        "--seeds", type=int, nargs="+", default=[11, 23, 47]
    )
    replication.set_defaults(func=_cmd_replication)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``ecostor`` command line interface.

    Domain errors — bad traces, invalid arguments, misuse of the
    simulation API, invariant-audit failures, unusable snapshots,
    unsatisfiable placements (``PlacementError``, incl. its
    ``HotSetTooSmall`` subclass) — exit with status 2 and a one-line
    diagnostic on stderr instead of a traceback.  Genuine bugs
    (anything else) still propagate loudly.
    """
    from repro.errors import (
        AuditError,
        PlacementError,
        SnapshotError,
        TraceError,
        UsageError,
        ValidationError,
    )

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (
        AuditError,
        PlacementError,
        SnapshotError,
        TraceError,
        UsageError,
        ValidationError,
    ) as exc:
        message = str(exc).splitlines()[0] if str(exc) else type(exc).__name__
        print(f"ecostor: error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
