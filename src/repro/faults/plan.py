"""Typed fault events and the :class:`FaultPlan` container.

A :class:`FaultPlan` is to fault injection what
:class:`~repro.experiments.parallel.WorkloadSpec` is to workloads: a
small, frozen, picklable value object that fully determines behaviour
and can be fingerprinted for the experiment cache.  It carries an
explicit tuple of scheduled events plus an optional seeded
:class:`~repro.faults.model.FaultModel` for probabilistic faults.

All times are virtual-time seconds from the start of the replay.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, ClassVar, Mapping, TypeVar, Union

from repro.errors import ValidationError
from repro.faults.model import FaultModel
from repro.units import Seconds

#: Version tag embedded in serialized plans (bump on schema change).
PLAN_FORMAT = 1


@dataclass(frozen=True)
class SpinUpFailure:
    """The next spin-up cycle of ``enclosure`` at or after ``after`` fails.

    The failure is transient: the enclosure fails ``failures``
    consecutive attempts (each one burning the full spin-up time and
    energy, ending back in OFF) and then succeeds, so controller retry
    loops always terminate.
    """

    kind: ClassVar[str] = "spin_up_failure"

    enclosure: str
    after: Seconds = 0.0
    failures: int = 1

    def __post_init__(self) -> None:
        if self.after < 0:
            raise ValidationError(
                f"SpinUpFailure.after must be >= 0, got {self.after!r}"
            )
        if not 1 <= self.failures <= 64:
            raise ValidationError(
                "SpinUpFailure.failures must be in [1, 64] so retry loops "
                f"terminate, got {self.failures!r}"
            )


@dataclass(frozen=True)
class EnclosureOutage:
    """``enclosure`` refuses to start new I/O during ``[start, end)``.

    The power state machine is untouched (the drives may even still be
    spinning); the *path* to the enclosure is down.  The controller
    waits the window out for reads it cannot serve from cache and
    buffers writes in the battery-backed write-delay partition.
    """

    kind: ClassVar[str] = "enclosure_outage"

    enclosure: str
    start: Seconds
    end: Seconds

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValidationError(
                "EnclosureOutage requires 0 <= start < end, got "
                f"start={self.start!r}, end={self.end!r}"
            )


@dataclass(frozen=True)
class CacheBatteryFailure:
    """The controller cache's battery backing fails at ``time``.

    From that moment on, dirty pages held under write delay are at risk:
    the controller immediately force-flushes every acknowledged write
    (spinning enclosures up even at energy cost) and stops absorbing new
    writes into the write-delay partition for the rest of the run.
    """

    kind: ClassVar[str] = "cache_battery_failure"

    time: Seconds

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValidationError(
                f"CacheBatteryFailure.time must be >= 0, got {self.time!r}"
            )


@dataclass(frozen=True)
class SlowSpinUp:
    """Spin-ups of ``enclosure`` started during ``[start, end)`` are slow.

    The nominal spin-up latency is multiplied by ``multiplier`` (energy
    is charged for the stretched duration too — a struggling motor draws
    spin-up power for longer).
    """

    kind: ClassVar[str] = "slow_spin_up"

    enclosure: str
    start: Seconds
    end: Seconds
    multiplier: float = 3.0

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValidationError(
                "SlowSpinUp requires 0 <= start < end, got "
                f"start={self.start!r}, end={self.end!r}"
            )
        if self.multiplier < 1.0:
            raise ValidationError(
                f"SlowSpinUp.multiplier must be >= 1.0, got {self.multiplier!r}"
            )


@dataclass(frozen=True)
class MigrationAbort:
    """The next migration of ``item_id`` at or after ``after`` aborts.

    The abort happens mid-transfer; the copy's partial writes are
    discarded and the books are rolled back, so placement maps,
    per-enclosure used-bytes and energy accounts all read exactly as if
    the move had never been attempted.  One-shot: a later retry of the
    same move succeeds.
    """

    kind: ClassVar[str] = "migration_abort"

    item_id: str
    after: Seconds = 0.0

    def __post_init__(self) -> None:
        if self.after < 0:
            raise ValidationError(
                f"MigrationAbort.after must be >= 0, got {self.after!r}"
            )


FaultEvent = Union[
    SpinUpFailure,
    EnclosureOutage,
    CacheBatteryFailure,
    SlowSpinUp,
    MigrationAbort,
]

#: Registry of event kinds for (de)serialization.
EVENT_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (
        SpinUpFailure,
        EnclosureOutage,
        CacheBatteryFailure,
        SlowSpinUp,
        MigrationAbort,
    )
}

_EventT = TypeVar("_EventT")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of fault events plus an optional model.

    An empty plan (``FaultPlan()``) is falsy and injects nothing; the
    simulation builder skips fault wiring entirely for falsy plans so a
    zero-fault run is *literally* the pre-fault code path.
    """

    events: tuple[FaultEvent, ...] = ()
    model: FaultModel | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if type(event) not in EVENT_TYPES.values():
                raise ValidationError(
                    f"unknown fault event type {type(event).__name__!r}; "
                    f"expected one of {sorted(EVENT_TYPES)}"
                )
        if self.model is not None and not isinstance(self.model, FaultModel):
            raise ValidationError(
                f"FaultPlan.model must be a FaultModel, got "
                f"{type(self.model).__name__!r}"
            )

    def __bool__(self) -> bool:
        return bool(self.events) or (
            self.model is not None and self.model.active
        )

    @property
    def label(self) -> str:
        """Short human tag for progress lines and cell labels."""
        parts = []
        if self.events:
            parts.append(f"{len(self.events)}ev")
        if self.model is not None and self.model.active:
            parts.append(f"model:{self.model.seed}")
        return "+".join(parts) if parts else "none"

    def events_of(self, cls: type[_EventT]) -> tuple[_EventT, ...]:
        """All scheduled events of one kind, in plan order."""
        return tuple(e for e in self.events if isinstance(e, cls))

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (stable key order under canonical JSON)."""
        return {
            "format": PLAN_FORMAT,
            "events": [
                {"kind": event.kind, **asdict(event)} for event in self.events
            ],
            "model": None if self.model is None else self.model.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        if data.get("format") != PLAN_FORMAT:
            raise ValidationError(
                f"unsupported fault-plan format {data.get('format')!r} "
                f"(expected {PLAN_FORMAT})"
            )
        events = []
        for raw in data.get("events", []):
            raw = dict(raw)
            kind = raw.pop("kind", None)
            event_cls = EVENT_TYPES.get(kind)
            if event_cls is None:
                raise ValidationError(f"unknown fault event kind {kind!r}")
            events.append(event_cls(**raw))
        model_data = data.get("model")
        model = None if model_data is None else FaultModel.from_dict(model_data)
        return cls(events=tuple(events), model=model)

    def to_json(self) -> str:
        """Canonical JSON encoding (sorted keys, no whitespace)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> str:
        """Content hash for experiment cache keys."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


#: The canonical empty plan (falsy: injects nothing).
EMPTY_PLAN = FaultPlan()
