"""Availability accounting attached to every replay result.

Energy numbers alone cannot rank policies once faults are in play: a
policy that powers off aggressively may save watts while racking up
spin-up retries and queue delay.  :class:`AvailabilityReport` is the
second axis — it summarises how much the injected faults actually hurt,
so the chaos harness can report an energy-vs-availability frontier.

A zero-fault run produces a report equal to ``AvailabilityReport()``
(all counters zero, empty series), which keeps
:class:`~repro.trace.replay.ReplayResult` equality bit-identical with
pre-fault replays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.baselines.base import PowerPolicy
    from repro.simulation import SimulationContext


@dataclass(frozen=True)
class AvailabilityReport:
    """How injected faults affected service during one replay.

    "I/Os" here are controller-issued operations: application requests
    plus maintenance transfers (flushes, preloads, migrations).
    """

    #: Operations refused at least once (outage window hit).
    denied_ios: int = 0
    #: Operations that completed late because of a fault.
    delayed_ios: int = 0
    #: Spin-up retry attempts performed by the controller.
    spin_up_retries: int = 0
    #: Failed spin-up attempts injected across all enclosures.
    spin_up_failures: int = 0
    #: Largest fault-imposed extra wait on a single operation (seconds).
    max_queue_delay: float = 0.0
    #: Total fault-imposed extra wait across all operations (seconds).
    fault_delay_seconds: float = 0.0
    #: Enclosure-seconds spent inside outage windows (merged, clipped).
    unavailability_seconds: float = 0.0
    #: Writes absorbed by the write-delay partition as an emergency
    #: buffer while their home enclosure was unavailable.
    emergency_buffered_ios: int = 0
    #: Forced flushes (battery failure, outage-end drains).
    emergency_flushes: int = 0
    #: Peak acknowledged-but-unflushed bytes held without battery backing.
    at_risk_peak_bytes: int = 0
    #: Integral of at-risk bytes over time (byte-seconds).
    at_risk_byte_seconds: float = 0.0
    #: Compacted ``(time, at_risk_bytes)`` samples (changes only).
    at_risk_series: tuple[tuple[float, int], ...] = ()
    #: Migrations aborted by fault injection.
    migration_aborts: int = 0
    #: Times degraded mode vetoed a policy's power-off enablement.
    degraded_cooldowns: int = 0
    #: I/Os whose service started inside an outage window (must be 0;
    #: the InvariantAuditor fails the run otherwise).
    outage_violations: int = 0

    @property
    def faulted(self) -> bool:
        """Whether any fault left a trace on this run."""
        return self != AvailabilityReport()


def availability_from_context(
    context: "SimulationContext",
    policy: "PowerPolicy",
    end: float,
) -> AvailabilityReport:
    """Assemble the report from controller / clock / policy counters."""
    controller = context.controller
    clock = context.fault_clock
    if clock is None:
        return AvailabilityReport()
    return AvailabilityReport(
        denied_ios=controller.fault_denied_ios,
        delayed_ios=controller.fault_delayed_ios,
        spin_up_retries=controller.fault_spin_up_retries,
        spin_up_failures=clock.spin_up_failures_injected,
        max_queue_delay=controller.fault_max_queue_delay,
        fault_delay_seconds=controller.fault_delay_seconds,
        unavailability_seconds=clock.unavailability_seconds(end),
        emergency_buffered_ios=controller.emergency_buffered_ios,
        emergency_flushes=controller.emergency_flushes,
        at_risk_peak_bytes=controller.at_risk_peak_bytes,
        at_risk_byte_seconds=controller.at_risk_byte_seconds,
        at_risk_series=tuple(controller.at_risk_samples),
        migration_aborts=controller.migration_aborts,
        degraded_cooldowns=getattr(policy, "degraded_cooldowns", 0),
        outage_violations=len(clock.outage_violations),
    )
