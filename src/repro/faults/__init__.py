"""Deterministic, seeded fault injection for the storage simulator.

The paper's three mechanisms — data placement, preload, write delay —
all trade availability and durability risk for energy: spin-down/up
cycles stress drives, write delay holds acknowledged writes in a
battery-backed cache, and migrations move data while the workload runs.
This package models the scenarios where that hardware misbehaves:

* :mod:`repro.faults.plan` — typed fault events
  (:class:`~repro.faults.plan.SpinUpFailure`,
  :class:`~repro.faults.plan.EnclosureOutage`,
  :class:`~repro.faults.plan.CacheBatteryFailure`,
  :class:`~repro.faults.plan.SlowSpinUp`,
  :class:`~repro.faults.plan.MigrationAbort`) collected into a
  picklable, JSON-round-trippable :class:`~repro.faults.plan.FaultPlan`;
* :mod:`repro.faults.model` — a seeded
  :class:`~repro.faults.model.FaultModel` drawing per-enclosure faults
  keyed off spin-cycle counts (aggressive power-off ⇒ more faults);
* :mod:`repro.faults.clock` — the runtime
  :class:`~repro.faults.clock.FaultClock` the storage layer consults;
* :mod:`repro.faults.report` — the
  :class:`~repro.faults.report.AvailabilityReport` attached to every
  :class:`~repro.trace.replay.ReplayResult`;
* :mod:`repro.faults.chaos` — the ``ecostor chaos`` harness sweeping
  policies × fault plans through the parallel experiment engine.

Everything is virtual-time deterministic: the same plan (or seed)
replayed over the same trace produces a bit-identical result.
"""

from repro.faults.clock import FaultClock, SpinUpVerdict
from repro.faults.model import FaultModel
from repro.faults.plan import (
    EMPTY_PLAN,
    CacheBatteryFailure,
    EnclosureOutage,
    FaultPlan,
    MigrationAbort,
    SlowSpinUp,
    SpinUpFailure,
)
from repro.faults.report import AvailabilityReport

__all__ = [
    "AvailabilityReport",
    "EMPTY_PLAN",
    "CacheBatteryFailure",
    "EnclosureOutage",
    "FaultClock",
    "FaultModel",
    "FaultPlan",
    "MigrationAbort",
    "SlowSpinUp",
    "SpinUpFailure",
    "SpinUpVerdict",
]
