"""Seeded probabilistic fault model.

The model draws per-enclosure faults from a seed without any mutable RNG
state: every draw is a pure SHA-256 hash of ``(seed, purpose, enclosure,
counter)`` mapped to a uniform float in ``[0, 1)``.  Two properties
follow:

* **Determinism** — the same seed over the same simulation replays the
  exact same fault sequence, independent of call order elsewhere.
* **Proportionality** — spin-up faults are keyed off the enclosure's
  spin-*cycle* index, so a policy that powers enclosures off more
  aggressively faces proportionally more spin-up faults.  An enclosure
  that never powers off never rolls the dice.

Failure streaks are bounded by :attr:`FaultModel.max_consecutive_failures`
so every retry loop in the controller is guaranteed to terminate: a
streak always ends in a successful attempt.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import Any, Mapping

from repro.errors import ValidationError


def _uniform(seed: int, *key: object) -> float:
    """Deterministic uniform draw in ``[0, 1)`` keyed by ``(seed, *key)``."""
    payload = "|".join([str(seed), *[str(part) for part in key]])
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultModel:
    """Per-enclosure fault probabilities drawn deterministically from a seed.

    ``spin_up_failure_prob`` is the probability that a given spin-up
    *cycle* (the first attempt after an OFF period) fails; a failing
    cycle draws a streak length in ``[1, max_consecutive_failures]`` and
    the enclosure fails that many consecutive attempts before the next
    one succeeds.  ``slow_spin_up_prob`` is the per-attempt probability
    that a (successful) spin-up takes ``slow_spin_up_multiplier`` times
    the nominal latency.
    """

    seed: int
    spin_up_failure_prob: float = 0.0
    max_consecutive_failures: int = 2
    slow_spin_up_prob: float = 0.0
    slow_spin_up_multiplier: float = 3.0

    def __post_init__(self) -> None:
        for name in ("spin_up_failure_prob", "slow_spin_up_prob"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValidationError(
                    f"{name} must be in [0, 1), got {value!r} — a probability "
                    "of 1.0 would make every spin-up cycle fail and starve "
                    "retry loops"
                )
        if self.max_consecutive_failures < 1:
            raise ValidationError(
                "max_consecutive_failures must be >= 1, got "
                f"{self.max_consecutive_failures!r}"
            )
        if self.slow_spin_up_multiplier < 1.0:
            raise ValidationError(
                "slow_spin_up_multiplier must be >= 1.0, got "
                f"{self.slow_spin_up_multiplier!r}"
            )

    @property
    def active(self) -> bool:
        """Whether the model can inject any fault at all."""
        return self.spin_up_failure_prob > 0.0 or self.slow_spin_up_prob > 0.0

    def spin_up_failures(self, enclosure: str, cycle: int) -> int:
        """Consecutive failures injected into spin-up cycle ``cycle``.

        Returns ``0`` for a clean cycle, otherwise a streak length in
        ``[1, max_consecutive_failures]``.
        """
        if self.spin_up_failure_prob <= 0.0:
            return 0
        if _uniform(self.seed, "spin-up", enclosure, cycle) >= (
            self.spin_up_failure_prob
        ):
            return 0
        span = _uniform(self.seed, "streak", enclosure, cycle)
        return 1 + int(span * self.max_consecutive_failures)

    def spin_up_multiplier(self, enclosure: str, attempt: int) -> float:
        """Latency multiplier for spin-up attempt number ``attempt``."""
        if self.slow_spin_up_prob <= 0.0:
            return 1.0
        if _uniform(self.seed, "slow", enclosure, attempt) < (
            self.slow_spin_up_prob
        ):
            return self.slow_spin_up_multiplier
        return 1.0

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form for JSON round-tripping."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultModel":
        """Rebuild a model from :meth:`to_dict` output."""
        return cls(**dict(data))
