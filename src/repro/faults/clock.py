"""Runtime fault oracle consulted by the storage layer.

One :class:`FaultClock` instance per simulation wraps a
:class:`~repro.faults.plan.FaultPlan` and answers, in virtual time, the
questions the storage layer asks at its injection points:

* :meth:`FaultClock.spin_up_attempt` — from
  :meth:`~repro.storage.enclosure.DiskEnclosure._ensure_on`: does this
  spin-up attempt fail, and how slow is it?
* :meth:`FaultClock.outage_at` — from enclosure ``submit``/``occupy``
  and the controller's routing logic: is this enclosure inside an
  injected outage window right now?
* :meth:`FaultClock.battery_failure_time` — from the controller's
  virtual-time hook (:meth:`~repro.storage.controller.StorageController.on_time`,
  driven as kernel :class:`~repro.engine.events.FaultBookkeepingEvent`
  occurrences paired with each policy checkpoint): has the cache
  battery failed yet?
* :meth:`FaultClock.migration_abort` — from
  :meth:`~repro.storage.controller.StorageController.migrate_item`:
  should this move abort?

The clock also keeps the audit trail for the fault-aware invariants:
:attr:`FaultClock.outage_violations` records any I/O whose service
*started* inside an outage window — the
:class:`~repro.devtools.audit.InvariantAuditor` asserts it stays empty.

All state transitions here are driven by explicit calls with virtual
timestamps, never wall-clock time, so replays are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import (
    CacheBatteryFailure,
    EnclosureOutage,
    FaultPlan,
    MigrationAbort,
    SlowSpinUp,
    SpinUpFailure,
)
from repro.units import Seconds


@dataclass(frozen=True)
class SpinUpVerdict:
    """Outcome of consulting the clock for one spin-up attempt."""

    fails: bool = False
    seconds_multiplier: float = 1.0


@dataclass
class _EnclosureFaultState:
    """Mutable per-enclosure counters for spin-up fault draws."""

    attempts: int = 0
    cycles: int = 0
    streak_remaining: int = 0


class FaultClock:
    """Deterministic per-run oracle over one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self._states: dict[str, _EnclosureFaultState] = {}
        self._consumed_spin_up_events: set[int] = set()
        self._consumed_aborts: set[int] = set()
        #: Audit trail: descriptions of I/Os whose service started inside
        #: an outage window.  Must stay empty; the InvariantAuditor checks.
        self.outage_violations: list[str] = []
        #: Total failed spin-up attempts injected so far.
        self.spin_up_failures_injected: int = 0
        #: Total migration aborts injected so far.
        self.migration_aborts_injected: int = 0

    def spin_up_attempt(self, enclosure: str, now: Seconds) -> SpinUpVerdict:
        """Consume one spin-up attempt and return its injected outcome.

        A new *cycle* starts whenever the previous attempt succeeded (or
        this is the first ever attempt).  Scheduled
        :class:`SpinUpFailure` events are one-shot and consumed by the
        first matching cycle; the probabilistic model is consulted only
        when no scheduled event fires.  Failure streaks are finite by
        construction, so callers may retry until success.
        """
        state = self._states.setdefault(enclosure, _EnclosureFaultState())
        state.attempts += 1
        if state.streak_remaining > 0:
            state.streak_remaining -= 1
            fails = True
        else:
            failures = 0
            for index, event in enumerate(self.plan.events):
                if (
                    isinstance(event, SpinUpFailure)
                    and index not in self._consumed_spin_up_events
                    and event.enclosure == enclosure
                    and now >= event.after
                ):
                    self._consumed_spin_up_events.add(index)
                    failures += event.failures
            if failures == 0 and self.plan.model is not None:
                failures = self.plan.model.spin_up_failures(
                    enclosure, state.cycles
                )
            state.cycles += 1
            if failures > 0:
                state.streak_remaining = failures - 1
                fails = True
            else:
                fails = False
        multiplier = 1.0
        for event in self.plan.events:
            if (
                isinstance(event, SlowSpinUp)
                and event.enclosure == enclosure
                and event.start <= now < event.end
            ):
                multiplier = max(multiplier, event.multiplier)
        if self.plan.model is not None:
            multiplier = max(
                multiplier,
                self.plan.model.spin_up_multiplier(enclosure, state.attempts),
            )
        if fails:
            self.spin_up_failures_injected += 1
        return SpinUpVerdict(fails=fails, seconds_multiplier=multiplier)

    def outage_at(self, enclosure: str, now: Seconds) -> EnclosureOutage | None:
        """The outage window covering ``now``, if any.

        With overlapping windows the one ending last wins, so a caller
        waiting until ``.end`` makes progress past the whole cluster.
        """
        found: EnclosureOutage | None = None
        for event in self.plan.events:
            if (
                isinstance(event, EnclosureOutage)
                and event.enclosure == enclosure
                and event.start <= now < event.end
            ):
                if found is None or event.end > found.end:
                    found = event
        return found

    @property
    def battery_failure_time(self) -> Seconds | None:
        """Virtual time of the earliest scheduled battery failure."""
        times = [
            event.time
            for event in self.plan.events
            if isinstance(event, CacheBatteryFailure)
        ]
        return min(times) if times else None

    def battery_failed(self, now: Seconds) -> bool:
        """Whether the cache battery has failed at or before ``now``."""
        time = self.battery_failure_time
        return time is not None and now >= time

    def migration_abort(self, item_id: str, now: Seconds) -> bool:
        """Consume a matching one-shot :class:`MigrationAbort`, if any."""
        for index, event in enumerate(self.plan.events):
            if (
                isinstance(event, MigrationAbort)
                and index not in self._consumed_aborts
                and event.item_id == item_id
                and now >= event.after
            ):
                self._consumed_aborts.add(index)
                self.migration_aborts_injected += 1
                return True
        return False

    # ------------------------------------------------------------------
    # Snapshot support (repro.persistence)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable draw cursors (:mod:`repro.persistence`).

        Captures every mutable counter and consumed-event set; the plan
        itself is immutable and travels separately (by fingerprint), so
        a restored clock replays the *remaining* one-shot events exactly
        as the uninterrupted run would.
        """
        return {
            "states": {
                name: (state.attempts, state.cycles, state.streak_remaining)
                for name, state in self._states.items()
            },
            "consumed_spin_up_events": sorted(self._consumed_spin_up_events),
            "consumed_aborts": sorted(self._consumed_aborts),
            "outage_violations": list(self.outage_violations),
            "spin_up_failures_injected": self.spin_up_failures_injected,
            "migration_aborts_injected": self.migration_aborts_injected,
        }

    def restore_state(self, state: dict) -> None:
        """Restore the cursors exactly as :meth:`snapshot_state` captured them."""
        self._states = {
            name: _EnclosureFaultState(attempts, cycles, streak)
            for name, (attempts, cycles, streak) in state["states"].items()
        }
        self._consumed_spin_up_events = set(state["consumed_spin_up_events"])
        self._consumed_aborts = set(state["consumed_aborts"])
        self.outage_violations = list(state["outage_violations"])
        self.spin_up_failures_injected = state["spin_up_failures_injected"]
        self.migration_aborts_injected = state["migration_aborts_injected"]

    def note_service(self, enclosure: str, start: Seconds) -> None:
        """Record an I/O service start for the outage-violation audit."""
        outage = self.outage_at(enclosure, start)
        if outage is not None:
            self.outage_violations.append(
                f"{enclosure}: I/O service started at t={start:.3f}s inside "
                f"outage [{outage.start:.3f}s, {outage.end:.3f}s)"
            )

    def unavailability_seconds(self, end: Seconds) -> Seconds:
        """Total enclosure-seconds of outage clipped to ``[0, end]``.

        Overlapping windows on the same enclosure are merged so they are
        not double-counted.
        """
        windows: dict[str, list[tuple[Seconds, Seconds]]] = {}
        for event in self.plan.events:
            if isinstance(event, EnclosureOutage):
                lo = max(0.0, event.start)
                hi = min(end, event.end)
                if hi > lo:
                    windows.setdefault(event.enclosure, []).append((lo, hi))
        total: Seconds = 0.0
        for spans in windows.values():
            spans.sort()
            merged_lo, merged_hi = spans[0]
            for lo, hi in spans[1:]:
                if lo > merged_hi:
                    total += merged_hi - merged_lo
                    merged_lo, merged_hi = lo, hi
                else:
                    merged_hi = max(merged_hi, hi)
            total += merged_hi - merged_lo
        return total
