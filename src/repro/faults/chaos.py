"""Chaos harness: policies × fault plans, invariants asserted everywhere.

The evaluation's robustness counterpart (§VIII): instead of asking *how
much energy* each power-management method saves, the harness asks what
the saving *costs in availability* when the hardware misbehaves — spin-up
motors that need several tries, enclosures that drop offline, a cache
battery that dies mid-run, migrations that abort.  Every cell of the
(policy × fault-plan × seed) grid replays with the
:class:`~repro.devtools.audit.InvariantAuditor` armed, so a run that
loses an acknowledged write or serves I/O from an offline enclosure is a
*failure*, not a statistic.

Fault plans are derived from the chaos seed alone (hash-based times, no
RNG state), so any cell — and any failure — is reproducible from its
``(workload, policy, kind, seed)`` coordinates; see ``docs/faults.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.errors import ValidationError
from repro.experiments.parallel import (
    ExperimentCell,
    ExperimentEngine,
    PolicySpec,
    ProgressFn,
    WorkloadSpec,
)
from repro.experiments.runner import STANDARD_POLICIES, ExperimentResult
from repro.experiments.testbed import WORKLOAD_NAMES, build_workload
from repro.faults.model import FaultModel, _uniform
from repro.faults.plan import (
    CacheBatteryFailure,
    EnclosureOutage,
    FaultPlan,
    MigrationAbort,
    SlowSpinUp,
    SpinUpFailure,
)

#: Named fault-plan shapes the harness sweeps.  ``baseline`` is the
#: zero-fault control cell every frontier comparison needs.
PLAN_KINDS = (
    "baseline",
    "spin-up",
    "outage",
    "battery",
    "slow-spin-up",
    "migration",
    "storm",
)


def _enclosure_names(count: int) -> list[str]:
    """The names :func:`repro.simulation.build_context` will assign."""
    return [f"enc-{i:02d}" for i in range(count)]


def build_fault_plan(
    kind: str,
    seed: int,
    duration: float,
    enclosure_names: Sequence[str],
    item_ids: Sequence[str],
) -> FaultPlan:
    """One named fault plan, derived deterministically from ``seed``.

    Event times are hash-draws (:func:`repro.faults.model._uniform`)
    over the run's middle — never the first 10 % (policies are still
    warming up) nor the last 10 % (so the post-fault behaviour is
    observable).  The same ``(kind, seed, duration, names, items)``
    always yields the same plan, byte for byte.
    """
    if kind not in PLAN_KINDS:
        raise ValidationError(
            f"unknown fault-plan kind {kind!r}; choose from {PLAN_KINDS}"
        )
    if kind == "baseline":
        return FaultPlan()

    names = list(enclosure_names)

    def at(*key: object) -> float:
        """A draw in the run's [10 %, 90 %] window."""
        return duration * (0.1 + 0.8 * _uniform(seed, kind, *key))

    def pick(sequence: Sequence[str], *key: object) -> str:
        index = int(_uniform(seed, kind, *key) * len(sequence))
        return sequence[min(index, len(sequence) - 1)]

    if kind == "spin-up":
        # Background failure probability plus two guaranteed incidents
        # on distinct enclosures, so short smoke runs exercise the
        # retry/backoff path even when the model draws quiet.
        events = tuple(
            SpinUpFailure(
                enclosure=names[i % len(names)],
                after=at("event", i),
                failures=1 + i % 2,
            )
            for i in range(2)
        )
        model = FaultModel(
            seed=seed, spin_up_failure_prob=0.25, max_consecutive_failures=2
        )
        return FaultPlan(events=events, model=model)
    if kind == "outage":
        # Two enclosures drop offline for ~5 % of the run each.
        events = tuple(
            EnclosureOutage(
                enclosure=pick(names, "victim", i),
                start=(start := at("start", i)),
                end=min(duration * 0.95, start + 0.05 * duration),
            )
            for i in range(2)
        )
        return FaultPlan(events=events)
    if kind == "battery":
        return FaultPlan(events=(CacheBatteryFailure(time=at("battery")),))
    if kind == "slow-spin-up":
        start = at("window")
        events = (
            SlowSpinUp(
                enclosure=pick(names, "victim"),
                start=start,
                end=min(duration * 0.95, start + 0.2 * duration),
                multiplier=4.0,
            ),
        )
        model = FaultModel(
            seed=seed, slow_spin_up_prob=0.5, slow_spin_up_multiplier=3.0
        )
        return FaultPlan(events=events, model=model)
    if kind == "migration":
        items = sorted(item_ids)
        chosen = {pick(items, "item", i) for i in range(4)}
        events = tuple(
            MigrationAbort(item_id=item, after=at("abort", item))
            for item in sorted(chosen)
        )
        return FaultPlan(events=events)
    # storm: everything at once — the all-mechanisms stress cell.
    storm_start = at("storm-outage")
    events = (
        SpinUpFailure(
            enclosure=names[0], after=at("storm-spin-up"), failures=2
        ),
        EnclosureOutage(
            enclosure=pick(names, "storm-victim"),
            start=storm_start,
            end=min(duration * 0.95, storm_start + 0.05 * duration),
        ),
        CacheBatteryFailure(time=at("storm-battery")),
    )
    model = FaultModel(
        seed=seed,
        spin_up_failure_prob=0.15,
        max_consecutive_failures=2,
        slow_spin_up_prob=0.25,
        slow_spin_up_multiplier=3.0,
    )
    return FaultPlan(events=events, model=model)


@dataclass(frozen=True)
class ChaosCell:
    """Outcome of one (policy × fault-plan × seed) grid cell."""

    policy: str
    kind: str
    seed: int
    plan: FaultPlan
    result: ExperimentResult | None = None
    #: Traceback when the cell failed (audit violation, crash); else None.
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the cell replayed with every invariant intact."""
        return self.error is None


@dataclass
class ChaosReport:
    """Everything one chaos sweep measured, renderable as text."""

    workload: str
    seeds: tuple[int, ...]
    cells: list[ChaosCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every cell passed its invariant audit."""
        return all(cell.ok for cell in self.cells)

    @property
    def failures(self) -> list[ChaosCell]:
        """Cells that crashed or violated an invariant."""
        return [cell for cell in self.cells if not cell.ok]

    def render(self) -> str:
        """Per-cell table plus the energy-vs-availability frontier."""
        lines = [
            f"chaos sweep — {self.workload}, "
            f"seeds {', '.join(str(s) for s in self.seeds)}",
            "",
            f"{'policy':<16} {'faults':<14} {'seed':>5} {'status':<7} "
            f"{'encl W':>8} {'denied':>6} {'delayed':>7} {'max delay':>10} "
            f"{'unavail':>8}",
        ]
        for cell in self.cells:
            if cell.result is None:
                lines.append(
                    f"{cell.policy:<16} {cell.kind:<14} {cell.seed:>5} "
                    f"{'FAILED':<7}"
                )
                continue
            a = cell.result.replay.availability
            lines.append(
                f"{cell.policy:<16} {cell.kind:<14} {cell.seed:>5} "
                f"{'ok':<7} {cell.result.enclosure_watts:>8.0f} "
                f"{a.denied_ios:>6} {a.delayed_ios:>7} "
                f"{a.max_queue_delay:>9.1f}s {a.unavailability_seconds:>7.0f}s"
            )
        lines += ["", self._render_frontier()]
        if not self.ok:
            lines.append("")
            for cell in self.failures:
                lines.append(
                    f"FAILED {cell.policy} x {cell.kind} seed={cell.seed}:"
                )
                lines.append(str(cell.error))
        return "\n".join(lines)

    def _render_frontier(self) -> str:
        """Energy saved vs availability lost, averaged over fault cells.

        Energy saving is measured against the same policy's *baseline*
        (zero-fault) cell; availability cost is the mean fault-induced
        queueing delay per I/O plus outright unavailability.
        """
        lines = [
            "energy vs availability (mean over fault cells, per policy):",
            f"  {'policy':<16} {'base W':>8} {'fault W':>8} "
            f"{'delay/IO':>10} {'denied':>7} {'cooldowns':>9}",
        ]
        for policy in sorted({cell.policy for cell in self.cells}):
            rows = [
                c for c in self.cells if c.policy == policy and c.ok
                and c.result is not None
            ]
            base = [c for c in rows if c.kind == "baseline"]
            faulted = [c for c in rows if c.kind != "baseline"]
            if not rows:
                lines.append(f"  {policy:<16} (no surviving cells)")
                continue
            base_watts = (
                sum(c.result.enclosure_watts for c in base) / len(base)
                if base
                else float("nan")
            )
            if not faulted:
                lines.append(f"  {policy:<16} {base_watts:>8.0f}")
                continue
            watts = sum(c.result.enclosure_watts for c in faulted) / len(
                faulted
            )
            delay = sum(
                c.result.replay.availability.fault_delay_seconds
                / max(1, c.result.replay.io_count)
                for c in faulted
            ) / len(faulted)
            denied = sum(
                c.result.replay.availability.denied_ios for c in faulted
            ) / len(faulted)
            cooldowns = sum(
                c.result.replay.availability.degraded_cooldowns
                for c in faulted
            ) / len(faulted)
            lines.append(
                f"  {policy:<16} {base_watts:>8.0f} {watts:>8.0f} "
                f"{delay:>9.4f}s {denied:>7.1f} {cooldowns:>9.1f}"
            )
        return "\n".join(lines)


#: Default (flash_count, archive_count) grid the tier frontier sweeps.
#: ``(0, 0)`` is the HDD-only control cell; the rest add flash and/or
#: archive devices so the three cost axes actually trade off.
TIER_CONFIGS = ((0, 0), (1, 0), (0, 1), (1, 1), (2, 1))


@dataclass(frozen=True)
class TierFrontierCell:
    """Outcome of one tier-configuration cell of the frontier sweep."""

    flash: int
    archive: int
    #: Total enclosure energy across every tier, in joules.
    energy_joules: float
    #: Mean read response time, in seconds.
    mean_read_response: float
    #: Total placed-byte capacity cost across tiers (docs/tiers.md).
    capacity_cost: float
    audit_checks: int
    #: Traceback when the cell failed (audit violation, crash); else None.
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the cell replayed with every invariant intact."""
        return self.error is None

    @property
    def label(self) -> str:
        """Compact ``flash/archive`` coordinates for tables."""
        return f"f{self.flash}a{self.archive}"


@dataclass
class TierFrontierReport:
    """Energy vs latency vs capacity cost across tier configurations."""

    workload: str
    cells: list[TierFrontierCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every configuration passed its invariant audit."""
        return all(cell.ok for cell in self.cells)

    def pareto(self) -> set[str]:
        """Labels of configurations not dominated on all three axes."""
        survivors = [cell for cell in self.cells if cell.ok]
        frontier = set()
        for cell in survivors:
            dominated = any(
                other is not cell
                and other.energy_joules <= cell.energy_joules
                and other.mean_read_response <= cell.mean_read_response
                and other.capacity_cost <= cell.capacity_cost
                and (
                    other.energy_joules < cell.energy_joules
                    or other.mean_read_response < cell.mean_read_response
                    or other.capacity_cost < cell.capacity_cost
                )
                for other in survivors
            )
            if not dominated:
                frontier.add(cell.label)
        return frontier

    def render(self) -> str:
        """Per-configuration table with Pareto-frontier markers."""
        frontier = self.pareto()
        lines = [
            f"tier frontier — {self.workload}, tiered-lifecycle, "
            "auditor armed",
            "",
            f"{'config':<8} {'flash':>5} {'archive':>7} {'energy kJ':>10} "
            f"{'read ms':>8} {'cap cost':>9} {'checks':>6}  frontier",
        ]
        for cell in self.cells:
            if not cell.ok:
                lines.append(
                    f"{cell.label:<8} {cell.flash:>5} {cell.archive:>7} "
                    f"{'FAILED':>10}"
                )
                continue
            marker = "*" if cell.label in frontier else ""
            lines.append(
                f"{cell.label:<8} {cell.flash:>5} {cell.archive:>7} "
                f"{cell.energy_joules / 1e3:>10.1f} "
                f"{cell.mean_read_response * 1e3:>8.2f} "
                f"{cell.capacity_cost:>9.2f} {cell.audit_checks:>6}  "
                f"{marker}"
            )
        lines.append("")
        lines.append(
            "* = Pareto-optimal: no other configuration is at least as "
            "good on energy, latency, and capacity cost at once"
        )
        if not self.ok:
            lines.append("")
            for cell in self.cells:
                if not cell.ok:
                    lines.append(f"FAILED {cell.label}:")
                    lines.append(str(cell.error))
        return "\n".join(lines)


def run_tier_frontier(
    workload: str = "fileserver",
    full: bool = False,
    configs: Sequence[tuple[int, int]] = TIER_CONFIGS,
    progress: ProgressFn | None = None,
) -> TierFrontierReport:
    """Sweep tier configurations under the lifecycle policy, audited.

    Each cell replays ``workload`` on a tiered testbed with the given
    ``(flash_count, archive_count)`` shape under
    :class:`~repro.baselines.tiered.TieredLifecyclePolicy` with the
    :class:`~repro.devtools.audit.InvariantAuditor` armed, then reads
    the closing per-tier books.  The report marks the Pareto frontier
    over (energy, read latency, capacity cost) — the tier-shape
    counterpart of the fault sweep's energy-vs-availability frontier.
    """
    import traceback

    from repro.baselines.tiered import TieredLifecyclePolicy
    from repro.errors import ReproError
    from repro.experiments.runner import run_tiered_cell

    if workload not in WORKLOAD_NAMES:
        raise ValidationError(
            f"unknown workload {workload!r}; choose from {WORKLOAD_NAMES}"
        )
    built = build_workload(workload, full)
    report = TierFrontierReport(workload=workload)
    for flash, archive in configs:
        label = f"f{flash}a{archive}"
        try:
            cell = run_tiered_cell(
                built,
                TieredLifecyclePolicy(),
                audit=True,
                flash_count=flash,
                archive_count=archive,
            )
        except ReproError:
            report.cells.append(
                TierFrontierCell(
                    flash=flash,
                    archive=archive,
                    energy_joules=0.0,
                    mean_read_response=0.0,
                    capacity_cost=0.0,
                    audit_checks=0,
                    error=traceback.format_exc(),
                )
            )
            if progress is not None:
                progress(f"tier-frontier {label}: FAILED")
            continue
        report.cells.append(
            TierFrontierCell(
                flash=flash,
                archive=archive,
                energy_joules=cell.energy_joules,
                mean_read_response=cell.result.mean_read_response,
                capacity_cost=cell.capacity_cost,
                audit_checks=cell.result.audit_checks,
            )
        )
        if progress is not None:
            progress(
                f"tier-frontier {label}: ok "
                f"({cell.result.audit_checks} checks)"
            )
    return report


def run_chaos(
    workload: str = "tpcc",
    full: bool = False,
    seeds: Sequence[int] = (11,),
    policies: Sequence[str] | None = None,
    kinds: Sequence[str] | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    progress: ProgressFn | None = None,
) -> ChaosReport:
    """Sweep policies × fault plans × seeds with the auditor armed.

    Cells run through the parallel :class:`ExperimentEngine` (``jobs``
    workers, optional on-disk cache — the cache key covers the fault
    plan, so chaos cells never collide with faultless sweeps).  Every
    cell replays with ``audit=True``; an invariant violation surfaces as
    that cell's failure and flips :attr:`ChaosReport.ok`.
    """
    if workload not in WORKLOAD_NAMES:
        raise ValidationError(
            f"unknown workload {workload!r}; choose from {WORKLOAD_NAMES}"
        )
    chosen_policies = (
        list(policies) if policies is not None else sorted(STANDARD_POLICIES)
    )
    chosen_kinds = list(kinds) if kinds is not None else list(PLAN_KINDS)
    built = build_workload(workload, full)
    names = _enclosure_names(built.enclosure_count)
    item_ids = [item.item_id for item in built.items]

    grid: list[tuple[str, str, int, FaultPlan]] = []
    for seed in seeds:
        for kind in chosen_kinds:
            plan = build_fault_plan(
                kind, seed, built.duration, names, item_ids
            )
            for policy in chosen_policies:
                grid.append((policy, kind, seed, plan))

    cells = [
        ExperimentCell(
            workload=WorkloadSpec(name=workload, full=full),
            policy=PolicySpec(name=policy),
            audit=True,
            faults=plan,
        )
        for policy, kind, seed, plan in grid
    ]
    engine = ExperimentEngine(
        jobs=jobs, cache_dir=cache_dir, progress=progress
    )
    outcomes = engine.run_cells(cells)

    report = ChaosReport(workload=workload, seeds=tuple(seeds))
    for (policy, kind, seed, plan), outcome in zip(grid, outcomes):
        report.cells.append(
            ChaosCell(
                policy=policy,
                kind=kind,
                seed=seed,
                plan=plan,
                result=outcome.result,
                error=outcome.error,
            )
        )
    return report
