"""Per-tier energy / capacity / latency books.

:class:`TierBooks` is a *stateless reader*: it owns no counters of its
own, but projects the books the storage layer already keeps — enclosure
energy integration, the virtualization layer's placement and
:class:`~repro.storage.tiers.TierLedger` byte books, the controller's
per-device service accumulators — onto the tier structure.  Because
nothing is accumulated twice, the tier report can never drift from the
underlying books, and the invariant auditor checks the same numbers.

A :class:`TierReport` is one tier's row: what it holds, what flowed
through it, what it cost (capacity cost units = placed bytes × the
tier's per-byte cost), and how much physical service time its devices
delivered.  Reports serialize to plain dicts for the CLI and the fleet
aggregator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ValidationError
from repro.storage.controller import StorageController
from repro.storage.virtualization import BlockVirtualization

__all__ = ["TierBooks", "TierReport"]


@dataclass(frozen=True)
class TierReport:
    """One tier's energy / capacity / latency book entries."""

    tier: str
    kind: str
    devices: tuple[str, ...]
    capacity_bytes: int
    used_bytes: int
    replica_bytes: int
    bytes_in: int
    bytes_out: int
    energy_joules: float
    cost_units: float
    service_seconds: float
    serviced_ios: int

    @property
    def placed_bytes(self) -> int:
        """Bytes currently occupying the tier (primaries + replicas)."""
        return self.used_bytes + self.replica_bytes

    @property
    def net_bytes(self) -> int:
        """What the ledger says the tier holds: ``bytes_in − bytes_out``."""
        return self.bytes_in - self.bytes_out

    @property
    def mean_service_seconds(self) -> float:
        """Mean physical response time of I/Os served by this tier."""
        if self.serviced_ios == 0:
            return 0.0
        return self.service_seconds / self.serviced_ios

    def to_dict(self) -> dict[str, Any]:
        """Flatten to plain JSON types (derived fields included)."""
        return {
            "tier": self.tier,
            "kind": self.kind,
            "devices": list(self.devices),
            "capacity_bytes": self.capacity_bytes,
            "used_bytes": self.used_bytes,
            "replica_bytes": self.replica_bytes,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "energy_joules": self.energy_joules,
            "cost_units": self.cost_units,
            "service_seconds": self.service_seconds,
            "serviced_ios": self.serviced_ios,
            "placed_bytes": self.placed_bytes,
            "net_bytes": self.net_bytes,
            "mean_service_seconds": self.mean_service_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TierReport":
        """Rebuild a report row from :meth:`to_dict` output."""
        return cls(
            tier=data["tier"],
            kind=data["kind"],
            devices=tuple(data["devices"]),
            capacity_bytes=data["capacity_bytes"],
            used_bytes=data["used_bytes"],
            replica_bytes=data["replica_bytes"],
            bytes_in=data["bytes_in"],
            bytes_out=data["bytes_out"],
            energy_joules=data["energy_joules"],
            cost_units=data["cost_units"],
            service_seconds=data["service_seconds"],
            serviced_ios=data["serviced_ios"],
        )


class TierBooks:
    """Project the storage layer's books onto the tier structure."""

    def __init__(
        self,
        virtualization: BlockVirtualization,
        controller: StorageController,
    ) -> None:
        if controller.virtualization is not virtualization:
            raise ValidationError(
                "tier books need the controller of the same virtualization"
            )
        self._virtualization = virtualization
        self._controller = controller

    def report(self) -> list[TierReport]:
        """One :class:`TierReport` per tier, fastest tier first."""
        virt = self._virtualization
        controller = self._controller
        ledger = virt.tier_ledger
        tracking = controller.tier_tracking_enabled
        reports = []
        for tier in sorted(
            virt.tiers(), key=lambda t: (t.kind.rank, t.name)
        ):
            used = 0
            replicas = 0
            capacity = 0
            energy = 0.0
            service_seconds = 0.0
            serviced_ios = 0
            for device in tier.devices:
                used += virt.used_bytes(device)
                replicas += virt.replica_bytes_on(device)
                capacity += virt.enclosure(device).capacity_bytes
                energy += virt.enclosure(device).energy_joules()
                if tracking:
                    service_seconds += controller.device_service_seconds(
                        device
                    )
                    serviced_ios += controller.device_service_ios(device)
            reports.append(
                TierReport(
                    tier=tier.name,
                    kind=tier.kind.value,
                    devices=tier.devices,
                    capacity_bytes=capacity,
                    used_bytes=used,
                    replica_bytes=replicas,
                    bytes_in=ledger.bytes_in[tier.name],
                    bytes_out=ledger.bytes_out[tier.name],
                    energy_joules=energy,
                    cost_units=(used + replicas) * tier.cost_per_byte,
                    service_seconds=service_seconds,
                    serviced_ios=serviced_ios,
                )
            )
        return reports
