"""Application Monitor: logical I/O trace and mapping information.

Paper §III-A.  The Application Monitor sits at the file/record layer and
collects (i) **logical mapping information** — which data item lives on
which volume — and (ii) the **logical I/O trace**.  The power-management
function reads the current monitoring window's records from here to
classify data items into logical I/O patterns.

The monitor also accumulates the response-time statistics that the
paper's evaluation reports ("The I/O response time and I/O throughput
were measured using the application monitor in the trace replay tool",
§VII-A.4).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import UsageError
from repro.monitoring.repository import TraceRepository
from repro.trace.records import IOType, LogicalIORecord


class WindowColumns:
    """One monitoring window's logical I/Os as parallel columns.

    The Application Monitor buffers the current window here instead of
    as a list of record objects: the classification pass
    (:func:`repro.core.patterns.build_profiles`) consumes plain columns,
    so neither pump mode has to materialize
    :class:`~repro.trace.records.LogicalIORecord` objects per window.
    """

    __slots__ = (
        "timestamps",
        "item_ids",
        "offsets",
        "sizes",
        "reads",
        "sequentials",
    )

    def __init__(self) -> None:
        self.timestamps: list[float] = []
        self.item_ids: list[str] = []
        self.offsets: list[int] = []
        self.sizes: list[int] = []
        self.reads: list[bool] = []
        self.sequentials: list[bool] = []

    def __len__(self) -> int:
        return len(self.timestamps)

    def append(
        self,
        timestamp: float,
        item_id: str,
        offset: int,
        size: int,
        is_read: bool,
        sequential: bool,
    ) -> None:
        """Append one I/O's fields."""
        self.timestamps.append(timestamp)
        self.item_ids.append(item_id)
        self.offsets.append(offset)
        self.sizes.append(size)
        self.reads.append(is_read)
        self.sequentials.append(sequential)

    def clear(self) -> None:
        """Drop all buffered I/Os."""
        self.timestamps.clear()
        self.item_ids.clear()
        self.offsets.clear()
        self.sizes.clear()
        self.reads.clear()
        self.sequentials.clear()

    def profile_arrays(self) -> tuple[list[float], list[str], list[int], list[bool]]:
        """The ``(timestamps, item ids, sizes, reads)`` columns that the
        access-pattern classifier consumes (same shape as
        :meth:`repro.trace.columnar.ColumnarTrace.profile_arrays`)."""
        return self.timestamps, self.item_ids, self.sizes, self.reads

    def to_records(self) -> list[LogicalIORecord]:
        """Materialize the buffered window as record objects."""
        return [
            LogicalIORecord(
                timestamp=self.timestamps[i],
                item_id=self.item_ids[i],
                offset=self.offsets[i],
                size=self.sizes[i],
                io_type=IOType.READ if self.reads[i] else IOType.WRITE,
                sequential=self.sequentials[i],
            )
            for i in range(len(self.timestamps))
        ]


@dataclass(frozen=True)
class ResponseStats:
    """Response-time aggregates measured at the application monitor."""

    io_count: int
    read_count: int
    response_sum: float
    read_response_sum: float
    max_response: float

    @property
    def mean_response(self) -> float:
        """Mean response time across all I/Os, in seconds."""
        return self.response_sum / self.io_count if self.io_count else 0.0

    @property
    def mean_read_response(self) -> float:
        """Mean response time of read I/Os, in seconds."""
        return self.read_response_sum / self.read_count if self.read_count else 0.0


class ApplicationMonitor:
    """Collects the logical I/O trace and per-window item activity.

    ``repository`` (optional) receives every captured record — the
    paper's §III-A store: "stored into memory in the application
    monitor.  If the memory becomes full, the I/O trace is stored in
    the repository" (:class:`~repro.monitoring.repository.TraceRepository`
    implements exactly that bounded-memory/spill contract).
    """

    def __init__(
        self,
        keep_full_trace: bool = False,
        repository: TraceRepository[LogicalIORecord] | None = None,
    ) -> None:
        #: I/Os of the *current* monitoring window, in arrival order,
        #: buffered as parallel columns (no record objects).
        self._window = WindowColumns()
        self._window_start = 0.0
        #: Logical mapping information: item → volume name.
        self._item_volume: dict[str, str] = {}
        self._keep_full_trace = keep_full_trace
        self._full_trace: list[LogicalIORecord] = []
        self.repository = repository

        self.io_count = 0
        self.read_count = 0
        self.response_sum = 0.0
        self.read_response_sum = 0.0
        self.max_response = 0.0
        #: Per-item totals over the whole run (used by reports).
        self.ios_per_item: defaultdict[str, int] = defaultdict(int)
        #: Compact per-I/O samples ``(timestamp, response, is_read)`` for
        #: time-windowed analysis (e.g. per-query response, paper Fig 15).
        self.response_samples: list[tuple[float, float, bool]] = []

    # ------------------------------------------------------------------
    # logical mapping information
    # ------------------------------------------------------------------
    def register_item(self, item_id: str, volume: str) -> None:
        """Record that a data item was created on a volume."""
        self._item_volume[item_id] = volume

    def unregister_item(self, item_id: str) -> None:
        """Forget the item's volume mapping, if known."""
        self._item_volume.pop(item_id, None)

    def volume_of(self, item_id: str) -> str | None:
        """Volume the item was registered on, or ``None``."""
        return self._item_volume.get(item_id)

    def known_items(self) -> set[str]:
        """Ids of all items registered with the monitor."""
        return set(self._item_volume)

    # ------------------------------------------------------------------
    # logical I/O trace
    # ------------------------------------------------------------------
    def record(self, record: LogicalIORecord, response_time: float) -> None:
        """Capture one application I/O and its measured response."""
        if self._keep_full_trace:
            self._full_trace.append(record)
        if self.repository is not None:
            self.repository.append(record)
        self._capture(
            record.timestamp,
            record.item_id,
            record.offset,
            record.size,
            record.io_type is IOType.READ,
            record.sequential,
            response_time,
        )

    def record_fast(
        self,
        timestamp: float,
        item_id: str,
        offset: int,
        size: int,
        is_read: bool,
        sequential: bool,
        response_time: float,
    ) -> None:
        """Capture one application I/O given as plain fields.

        The batched replay pump's entry point: identical statistics to
        :meth:`record` without constructing a record object.  When full
        tracing or a repository needs real records, the call falls back
        to :meth:`record` with a materialized one.
        """
        if self._keep_full_trace or self.repository is not None:
            self.record(
                LogicalIORecord(
                    timestamp=timestamp,
                    item_id=item_id,
                    offset=offset,
                    size=size,
                    io_type=IOType.READ if is_read else IOType.WRITE,
                    sequential=sequential,
                ),
                response_time,
            )
            return
        # _capture and the window append, unrolled: one call per logical
        # I/O on the batched hot path, so the two extra frames are
        # measurable.  Keep in lockstep with :meth:`_capture` and
        # :meth:`WindowColumns.append`.
        window = self._window
        window.timestamps.append(timestamp)
        window.item_ids.append(item_id)
        window.offsets.append(offset)
        window.sizes.append(size)
        window.reads.append(is_read)
        window.sequentials.append(sequential)
        self.io_count += 1
        self.response_sum += response_time
        self.response_samples.append((timestamp, response_time, is_read))
        if response_time > self.max_response:
            self.max_response = response_time
        if is_read:
            self.read_count += 1
            self.read_response_sum += response_time
        self.ios_per_item[item_id] += 1

    def _capture(
        self,
        timestamp: float,
        item_id: str,
        offset: int,
        size: int,
        is_read: bool,
        sequential: bool,
        response_time: float,
    ) -> None:
        self._window.append(timestamp, item_id, offset, size, is_read, sequential)
        self.io_count += 1
        self.response_sum += response_time
        self.response_samples.append((timestamp, response_time, is_read))
        if response_time > self.max_response:
            self.max_response = response_time
        if is_read:
            self.read_count += 1
            self.read_response_sum += response_time
        self.ios_per_item[item_id] += 1

    @property
    def window_start(self) -> float:
        """Start time of the current monitoring window."""
        return self._window_start

    def window_records(self) -> list[LogicalIORecord]:
        """Records captured since the window began (arrival order).

        Materializes record objects from the columnar buffer; the
        classification hot path uses :meth:`window_columns` instead.
        """
        return self._window.to_records()

    def window_columns(self) -> WindowColumns:
        """The current window's I/Os as parallel columns (no copy)."""
        return self._window

    def begin_window(self, now: float) -> None:
        """Start a new monitoring window, discarding the old buffer."""
        self._window.clear()
        self._window_start = now

    def full_trace(self) -> list[LogicalIORecord]:
        """All retained logical records (requires retention enabled)."""
        if not self._keep_full_trace:
            raise UsageError(
                "full trace retention is disabled; construct with "
                "keep_full_trace=True"
            )
        return list(self._full_trace)

    # ------------------------------------------------------------------
    # Snapshot support (repro.persistence)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable monitor state (:mod:`repro.persistence`).

        Captures the current window's columns, the mapping information,
        and every response accumulator.  The full trace (when retention
        is on) rides along; an attached spill repository is *not*
        captured — snapshot sessions run without one.
        """
        window = self._window
        return {
            "window": {
                "timestamps": list(window.timestamps),
                "item_ids": list(window.item_ids),
                "offsets": list(window.offsets),
                "sizes": list(window.sizes),
                "reads": list(window.reads),
                "sequentials": list(window.sequentials),
            },
            "window_start": self._window_start,
            "item_volume": list(self._item_volume.items()),
            "full_trace": list(self._full_trace),
            "io_count": self.io_count,
            "read_count": self.read_count,
            "response_sum": self.response_sum,
            "read_response_sum": self.read_response_sum,
            "max_response": self.max_response,
            "ios_per_item": list(self.ios_per_item.items()),
            "response_samples": list(self.response_samples),
        }

    def restore_state(self, state: dict) -> None:
        """Restore the monitor exactly as :meth:`snapshot_state` captured it."""
        window = state["window"]
        self._window.timestamps = list(window["timestamps"])
        self._window.item_ids = list(window["item_ids"])
        self._window.offsets = list(window["offsets"])
        self._window.sizes = list(window["sizes"])
        self._window.reads = list(window["reads"])
        self._window.sequentials = list(window["sequentials"])
        self._window_start = state["window_start"]
        self._item_volume = dict(state["item_volume"])
        self._full_trace = list(state["full_trace"])
        self.io_count = state["io_count"]
        self.read_count = state["read_count"]
        self.response_sum = state["response_sum"]
        self.read_response_sum = state["read_response_sum"]
        self.max_response = state["max_response"]
        self.ios_per_item = defaultdict(int, state["ios_per_item"])
        self.response_samples = [
            (timestamp, response, is_read)
            for timestamp, response, is_read in state["response_samples"]
        ]

    # ------------------------------------------------------------------
    # measurements
    # ------------------------------------------------------------------
    def response_stats(self) -> ResponseStats:
        """Snapshot of the response-time accumulators."""
        return ResponseStats(
            io_count=self.io_count,
            read_count=self.read_count,
            response_sum=self.response_sum,
            read_response_sum=self.read_response_sum,
            max_response=self.max_response,
        )
