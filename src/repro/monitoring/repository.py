"""Bounded trace repository with disk spill.

Paper §III-A: "A logical I/O trace is captured when I/O is issued from
the application and stored into memory in the application monitor.  If
the memory becomes full, the I/O trace is stored in the repository of the
monitor."  :class:`TraceRepository` implements exactly that contract for
either record type: an in-memory buffer of bounded size that spills to a
CSV file when full, while still supporting full iteration (spilled
records first, then the in-memory tail).
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Generic, Iterator, TypeVar

from repro.errors import ValidationError
from repro.trace import reader as trace_reader
from repro.trace import writer as trace_writer
from repro.trace.records import LogicalIORecord, PhysicalIORecord

RecordT = TypeVar("RecordT", LogicalIORecord, PhysicalIORecord)


class TraceRepository(Generic[RecordT]):
    """Append-only record store: bounded memory, CSV spill file.

    Parameters
    ----------
    record_type:
        ``LogicalIORecord`` or ``PhysicalIORecord`` — selects the spill
        serialization.
    max_memory_records:
        In-memory buffer size; when exceeded the buffer is appended to
        the spill file and cleared.
    spill_dir:
        Directory for the spill file; a temporary directory by default.
    """

    def __init__(
        self,
        record_type: type[RecordT],
        max_memory_records: int = 100_000,
        spill_dir: str | Path | None = None,
    ) -> None:
        if max_memory_records <= 0:
            raise ValidationError("max_memory_records must be positive")
        self.record_type = record_type
        self.max_memory_records = max_memory_records
        self._memory: list[RecordT] = []
        self._spilled_count = 0
        self._spill_dir = Path(spill_dir) if spill_dir else None
        self._spill_path: Path | None = None

    def __len__(self) -> int:
        return self._spilled_count + len(self._memory)

    def append(self, record: RecordT) -> None:
        """Store one record, spilling to disk when memory fills up."""
        self._memory.append(record)
        if len(self._memory) >= self.max_memory_records:
            self._spill()

    def extend(self, records: list[RecordT]) -> None:
        """Store each record in order via :meth:`append`."""
        for record in records:
            self.append(record)

    def _spill(self) -> None:
        if self._spill_path is None:
            directory = self._spill_dir or Path(tempfile.mkdtemp(prefix="repro-trace-"))
            directory.mkdir(parents=True, exist_ok=True)
            suffix = "logical" if self.record_type is LogicalIORecord else "physical"
            self._spill_path = directory / f"spill-{suffix}-{id(self):x}.csv"
            self._write_header()
        with open(self._spill_path, "a", newline="") as handle:
            import csv

            writer = csv.writer(handle)
            for record in self._memory:
                writer.writerow(self._serialize(record))
        self._spilled_count += len(self._memory)
        self._memory.clear()

    def _write_header(self) -> None:
        assert self._spill_path is not None
        header = (
            trace_writer.LOGICAL_HEADER
            if self.record_type is LogicalIORecord
            else trace_writer.PHYSICAL_HEADER
        )
        with open(self._spill_path, "w", newline="") as handle:
            import csv

            csv.writer(handle).writerow(header)

    def _serialize(self, record: RecordT) -> list[str]:
        if isinstance(record, LogicalIORecord):
            return [
                f"{record.timestamp:.6f}",
                record.item_id,
                str(record.offset),
                str(record.size),
                record.io_type.value,
                "1" if record.sequential else "0",
            ]
        return [
            f"{record.timestamp:.6f}",
            record.enclosure,
            str(record.block_address),
            str(record.count),
            record.io_type.value,
            record.item_id or "",
        ]

    def __iter__(self) -> Iterator[RecordT]:
        """Iterate all records: spilled (from disk) first, then memory."""
        if self._spill_path is not None:
            if self.record_type is LogicalIORecord:
                yield from trace_reader.iter_logical_trace(self._spill_path)  # type: ignore[misc]
            else:
                yield from trace_reader.iter_physical_trace(self._spill_path)  # type: ignore[misc]
        yield from list(self._memory)

    def clear(self) -> None:
        """Drop every stored record (and the spill file's contents)."""
        self._memory.clear()
        self._spilled_count = 0
        if self._spill_path is not None and self._spill_path.exists():
            self._spill_path.unlink()
        self._spill_path = None
