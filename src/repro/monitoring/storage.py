"""Storage Monitor: physical I/O trace, power status, power consumption.

Paper §III-B.  The Storage Monitor sits at the block-virtualization layer
and records the physical I/O trace issued to the disk enclosures, plus
the enclosures' power status transitions and power consumption.  In the
simulator it subscribes to the storage controller's physical tap and
reads power data straight off the enclosures' exact energy timelines.

It is also the data source for the I/O-interval analysis behind the
paper's Figs 17–19: per-enclosure inter-arrival gaps of physical I/O.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.monitoring.repository import TraceRepository
from repro.storage.enclosure import DiskEnclosure
from repro.trace.records import (
    IOType,
    PhysicalIORecord,
    PowerSample,
    PowerStatusRecord,
)


@dataclass(frozen=True)
class EnclosureWindowStats:
    """Physical I/O activity of one enclosure over one window."""

    enclosure: str
    io_count: int
    read_count: int
    window_seconds: float

    @property
    def iops(self) -> float:
        """Mean I/O rate over the window, in operations per second."""
        return self.io_count / self.window_seconds if self.window_seconds > 0 else 0.0


class StorageMonitor:
    """Collects physical traces and per-enclosure interval statistics."""

    #: Gaps shorter than this are not retained individually (they can
    #: never be Long Intervals and would bloat memory on busy runs).
    MIN_RETAINED_GAP = 0.1

    def __init__(
        self,
        enclosures: list[DiskEnclosure],
        repository: TraceRepository[PhysicalIORecord] | None = None,
    ) -> None:
        self.enclosures = {enc.name: enc for enc in enclosures}
        #: Optional §III-B store for the physical trace (a
        #: :class:`~repro.monitoring.repository.TraceRepository`).
        self.repository = repository
        self._window_counts: defaultdict[str, int] = defaultdict(int)
        self._window_reads: defaultdict[str, int] = defaultdict(int)
        self._window_start = 0.0
        self._last_io: dict[str, float] = {}
        #: Per-enclosure retained physical I/O gaps (>= MIN_RETAINED_GAP).
        self._gaps: defaultdict[str, list[float]] = defaultdict(list)
        self._short_gap_total: defaultdict[str, float] = defaultdict(float)
        self.physical_io_count = 0
        self._finished_at: float | None = None

    # ------------------------------------------------------------------
    # physical I/O trace
    # ------------------------------------------------------------------
    def on_physical(self, record: PhysicalIORecord) -> None:
        """Physical-tap callback from the storage controller."""
        if self.repository is not None:
            self.repository.append(record)
        self._note_physical(
            record.timestamp, record.enclosure, record.count, record.is_read
        )

    def on_physical_fast(
        self,
        timestamp: float,
        enclosure: str,
        block: int,
        count: int,
        io_type: IOType,
        item_id: str | None,
    ) -> None:
        """Scalar physical-tap callback for the batched hot path.

        Same statistics as :meth:`on_physical`; a
        :class:`~repro.trace.records.PhysicalIORecord` is materialized
        only when a repository actually stores the trace.
        """
        if self.repository is not None:
            self.repository.append(
                PhysicalIORecord(
                    timestamp=timestamp,
                    enclosure=enclosure,
                    block_address=block,
                    count=count,
                    io_type=io_type,
                    item_id=item_id,
                )
            )
        # _note_physical, unrolled: this callback fires once per physical
        # I/O on the batched hot path, so the extra frame is measurable.
        self.physical_io_count += count
        self._window_counts[enclosure] += count
        if io_type is IOType.READ:
            self._window_reads[enclosure] += count
        prev = self._last_io.get(enclosure)
        if prev is not None:
            gap = timestamp - prev
            if gap >= self.MIN_RETAINED_GAP:
                self._gaps[enclosure].append(gap)
            elif gap > 0:
                self._short_gap_total[enclosure] += gap
        self._last_io[enclosure] = timestamp

    def _note_physical(
        self, timestamp: float, name: str, count: int, is_read: bool
    ) -> None:
        self.physical_io_count += count
        self._window_counts[name] += count
        if is_read:
            self._window_reads[name] += count
        prev = self._last_io.get(name)
        if prev is not None:
            gap = timestamp - prev
            if gap >= self.MIN_RETAINED_GAP:
                self._gaps[name].append(gap)
            elif gap > 0:
                self._short_gap_total[name] += gap
        self._last_io[name] = timestamp

    def begin_window(self, now: float) -> None:
        """Reset per-window counters and mark the window start."""
        self._window_counts.clear()
        self._window_reads.clear()
        self._window_start = now

    def window_stats(self, now: float) -> dict[str, EnclosureWindowStats]:
        """Per-enclosure activity in the current window."""
        window = now - self._window_start
        return {
            name: EnclosureWindowStats(
                enclosure=name,
                io_count=self._window_counts.get(name, 0),
                read_count=self._window_reads.get(name, 0),
                window_seconds=window,
            )
            for name in self.enclosures
        }

    def finish(self, now: float) -> None:
        """Close the final gap of every enclosure (last I/O → end of run)."""
        if self._finished_at is not None:
            return
        for name in self.enclosures:
            last = self._last_io.get(name)
            final_gap = now - last if last is not None else now
            if final_gap >= self.MIN_RETAINED_GAP:
                self._gaps[name].append(final_gap)
        self._finished_at = now

    def intervals(self, enclosure: str) -> list[float]:
        """Retained physical I/O gaps of one enclosure (unordered)."""
        if enclosure not in self.enclosures:
            raise KeyError(f"unknown enclosure {enclosure!r}")
        return list(self._gaps.get(enclosure, []))

    def all_intervals(self) -> list[float]:
        """Retained gaps across all enclosures (Figs 17–19 input)."""
        merged: list[float] = []
        for gaps in self._gaps.values():
            merged.extend(gaps)
        return merged

    def last_io_time(self, enclosure: str) -> float | None:
        """Timestamp of the enclosure's most recent I/O, if any."""
        return self._last_io.get(enclosure)

    # ------------------------------------------------------------------
    # Snapshot support (repro.persistence)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable monitor state (:mod:`repro.persistence`).

        Window counters, gap books, and the finish marker; the enclosure
        objects themselves snapshot separately, and a spill repository
        is not captured (snapshot sessions run without one).
        """
        return {
            "window_counts": dict(self._window_counts),
            "window_reads": dict(self._window_reads),
            "window_start": self._window_start,
            "last_io": dict(self._last_io),
            "gaps": {name: list(gaps) for name, gaps in self._gaps.items()},
            "short_gap_total": dict(self._short_gap_total),
            "physical_io_count": self.physical_io_count,
            "finished_at": self._finished_at,
        }

    def restore_state(self, state: dict) -> None:
        """Restore the monitor exactly as :meth:`snapshot_state` captured it."""
        self._window_counts = defaultdict(int, state["window_counts"])
        self._window_reads = defaultdict(int, state["window_reads"])
        self._window_start = state["window_start"]
        self._last_io = dict(state["last_io"])
        self._gaps = defaultdict(list)
        for name, gaps in state["gaps"].items():
            self._gaps[name] = list(gaps)
        self._short_gap_total = defaultdict(float, state["short_gap_total"])
        self.physical_io_count = state["physical_io_count"]
        self._finished_at = state["finished_at"]

    # ------------------------------------------------------------------
    # power status and consumption (read from the enclosures)
    # ------------------------------------------------------------------
    def power_status(self, now: float) -> list[PowerStatusRecord]:
        """Current on/off status of every enclosure."""
        records = []
        for name, enc in self.enclosures.items():
            enc.settle(now)
            records.append(
                PowerStatusRecord(
                    timestamp=now, enclosure=name, powered_on=enc.state.is_on
                )
            )
        return records

    def power_consumption(self, now: float) -> list[PowerSample]:
        """Average power per enclosure from time 0 to ``now``."""
        samples = []
        for name, enc in self.enclosures.items():
            enc.settle(now)
            samples.append(
                PowerSample(timestamp=now, enclosure=name, watts=enc.average_watts())
            )
        return samples

    def spin_up_count(self, enclosure: str) -> int:
        """Number of spin-ups recorded for the enclosure."""
        return self.enclosures[enclosure].spin_up_count

    def spin_ups_since(self, enclosure: str, since: float) -> int:
        """Spin-up events after ``since`` (for the §V-D trigger)."""
        return sum(
            1 for t in self.enclosures[enclosure].spin_up_events if t >= since
        )
