"""Power timeline: periodic power sampling over a run (paper §III-B).

The Storage Monitor's specification includes "Power Consumption of the
Storage Device ... a timestamp of when power consumption of the disk
enclosure is collected, and power consumption".  :class:`PowerTimeline`
implements that collection: sampled at a fixed cadence during replay,
it yields per-enclosure *interval* power (energy difference over the
sampling interval — what a physical power meter logs), enabling
power-over-time analysis rather than only run-level averages.

Under the :mod:`repro.engine` kernel each interval boundary is a
first-class recurring :class:`~repro.engine.events.TimelineSampleEvent`
that fires at the boundary's exact time, *before* any same-instant
mutation (lowest priority class) — nothing outside the kernel should
call :meth:`PowerTimeline.sample` during a run (lint rule R8 flags such
calls).  Boundaries after the last policy checkpoint are settled by
:meth:`PowerTimeline.finish` once the end-of-run flush has landed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.storage.enclosure import DiskEnclosure
from repro.trace.records import PowerSample
from repro.units import Joules, Seconds, Watts


@dataclass(frozen=True)
class TimelinePoint:
    """One sampling instant: total and per-enclosure interval watts."""

    timestamp: Seconds
    total_watts: Watts
    per_enclosure: dict[str, Watts]


class PowerTimeline:
    """Samples enclosure power at a fixed cadence."""

    def __init__(
        self, enclosures: list[DiskEnclosure], interval_seconds: Seconds = 60.0
    ) -> None:
        if interval_seconds <= 0:
            raise ValidationError("interval_seconds must be positive")
        if not enclosures:
            raise ValidationError("at least one enclosure is required")
        self.enclosures = list(enclosures)
        self.interval_seconds = interval_seconds
        self.points: list[TimelinePoint] = []
        self._last_energy: dict[str, Joules] = {
            enc.name: 0.0 for enc in self.enclosures
        }
        self._last_time: Seconds = 0.0
        self._next_sample: Seconds = interval_seconds

    @property
    def next_sample_time(self) -> Seconds:
        """Time at which the next power sample is due."""
        return self._next_sample

    def sample_due(self, now: Seconds) -> bool:
        """Whether a power sample is due at time ``now``."""
        return now >= self._next_sample

    def sample(self, now: Seconds) -> TimelinePoint | None:
        """Record every interval boundary up to ``now``.

        Returns the latest new point, or None when called early.  Sparse
        callers (quiet traces) still get one point per boundary — the
        enclosures' energy timelines are settled to each boundary in
        order, so the per-interval powers are exact, not span averages.
        """
        point = None
        while self._next_sample <= now:
            point = self._record_point(self._next_sample)
            self._next_sample += self.interval_seconds
        return point

    def _record_point(self, at: Seconds) -> TimelinePoint:
        elapsed = at - self._last_time
        per_enclosure: dict[str, Watts] = {}
        total: Watts = 0.0
        for enclosure in self.enclosures:
            enclosure.settle(at)
            energy = enclosure.energy_joules()
            delta = energy - self._last_energy[enclosure.name]
            watts = delta / elapsed if elapsed > 0 else 0.0
            per_enclosure[enclosure.name] = watts
            total += watts
            self._last_energy[enclosure.name] = energy
        point = TimelinePoint(
            timestamp=at, total_watts=total, per_enclosure=per_enclosure
        )
        self.points.append(point)
        self._last_time = at
        return point

    def finish(self, now: Seconds) -> None:
        """Record remaining boundaries plus a final tail point."""
        self.sample(now)
        if now > self._last_time:
            self._record_point(now)

    # ------------------------------------------------------------------
    # Snapshot support (repro.persistence)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable timeline state (:mod:`repro.persistence`).

        Points are stored as plain ``(timestamp, total, per-enclosure)``
        tuples, not :class:`TimelinePoint` instances, so the payload
        stays decoupled from the class definition.
        """
        return {
            "points": [
                (p.timestamp, p.total_watts, dict(p.per_enclosure))
                for p in self.points
            ],
            "last_energy": dict(self._last_energy),
            "last_time": self._last_time,
            "next_sample": self._next_sample,
        }

    def restore_state(self, state: dict) -> None:
        """Restore the timeline exactly as :meth:`snapshot_state` captured it."""
        self.points = [
            TimelinePoint(
                timestamp=timestamp,
                total_watts=total,
                per_enclosure=dict(per_enclosure),
            )
            for timestamp, total, per_enclosure in state["points"]
        ]
        self._last_energy = dict(state["last_energy"])
        self._last_time = state["last_time"]
        self._next_sample = state["next_sample"]

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def total_series(self) -> list[tuple[Seconds, Watts]]:
        """(timestamp, total watts) pairs in time order."""
        return [(p.timestamp, p.total_watts) for p in self.points]

    def samples_for(self, enclosure: str) -> list[PowerSample]:
        """§III-B power-consumption records for one enclosure."""
        return [
            PowerSample(
                timestamp=p.timestamp,
                enclosure=enclosure,
                watts=p.per_enclosure[enclosure],
            )
            for p in self.points
        ]

    def mean_watts(self) -> Watts:
        """Time-weighted mean of the recorded series."""
        if not self.points:
            return 0.0
        total_energy: Joules = 0.0
        total_time: Seconds = 0.0
        last: Seconds = 0.0
        for point in self.points:
            span = point.timestamp - last
            total_energy += point.total_watts * span
            total_time += span
            last = point.timestamp
        return total_energy / total_time if total_time > 0 else 0.0
