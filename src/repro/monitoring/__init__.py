"""Monitoring subsystem: application and storage monitors (paper §III)."""

from repro.monitoring.application import ApplicationMonitor, ResponseStats
from repro.monitoring.repository import TraceRepository
from repro.monitoring.storage import EnclosureWindowStats, StorageMonitor
from repro.monitoring.tiers import TierBooks, TierReport
from repro.monitoring.timeline import PowerTimeline, TimelinePoint

__all__ = [
    "ApplicationMonitor",
    "EnclosureWindowStats",
    "PowerTimeline",
    "ResponseStats",
    "StorageMonitor",
    "TierBooks",
    "TierReport",
    "TimelinePoint",
    "TraceRepository",
]
