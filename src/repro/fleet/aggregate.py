"""Fleet-level books: merge per-array results, audit global conservation.

A fleet run produces one :class:`~repro.experiments.runner.ExperimentResult`
per array.  :func:`merge_results` folds them into a :class:`FleetResult`
— fleet-wide energy, latency, availability, migration, and action books
— and :func:`audit_fleet` re-derives every book independently and
checks the fleet's conservation laws:

* **energy** — fleet joules are *exactly* the sum of per-array joules
  (enclosure and controller separately; no averaging, no tolerance);
* **I/O** — fleet I/O, read, and response-sum books equal the sums of
  the per-array books;
* **ownership** — no array's action log ever names an item the router
  assigns to a different array, and (for N > 1) every enclosure an
  action touches carries that array's namespace prefix.

Violations raise :class:`~repro.errors.AuditError`, the same failure
mode the per-array :class:`~repro.devtools.audit.InvariantAuditor`
uses, so a fleet whose books do not add up is a test failure, not a
statistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import AuditError, ValidationError
from repro.experiments.runner import ExperimentResult
from repro.faults.report import AvailabilityReport
from repro.fleet.routing import ARRAY_SEPARATOR, HashRouter, array_name
from repro.monitoring.application import ResponseStats
from repro.monitoring.tiers import TierReport

__all__ = [
    "FleetResult",
    "audit_fleet",
    "audit_tier_books",
    "merge_results",
    "merge_tier_reports",
]


def _merge_response(parts: Sequence[ResponseStats]) -> ResponseStats:
    """Sum the counters, take the max of the maxima."""
    return ResponseStats(
        io_count=sum(p.io_count for p in parts),
        read_count=sum(p.read_count for p in parts),
        response_sum=sum(p.response_sum for p in parts),
        read_response_sum=sum(p.read_response_sum for p in parts),
        max_response=max((p.max_response for p in parts), default=0.0),
    )


def _merge_availability(
    parts: Sequence[AvailabilityReport],
) -> AvailabilityReport:
    """Fleet availability: counters sum, peaks max, series dropped.

    Per-array ``at_risk_series`` samples are not combinable into one
    fleet series without resampling (each array changes at its own
    times), so the merged report carries the integral books
    (``at_risk_byte_seconds``, peaks) and leaves the series empty; the
    per-array reports keep theirs.
    """
    return AvailabilityReport(
        denied_ios=sum(p.denied_ios for p in parts),
        delayed_ios=sum(p.delayed_ios for p in parts),
        spin_up_retries=sum(p.spin_up_retries for p in parts),
        spin_up_failures=sum(p.spin_up_failures for p in parts),
        max_queue_delay=max((p.max_queue_delay for p in parts), default=0.0),
        fault_delay_seconds=sum(p.fault_delay_seconds for p in parts),
        unavailability_seconds=sum(p.unavailability_seconds for p in parts),
        emergency_buffered_ios=sum(p.emergency_buffered_ios for p in parts),
        emergency_flushes=sum(p.emergency_flushes for p in parts),
        at_risk_peak_bytes=max(
            (p.at_risk_peak_bytes for p in parts), default=0
        ),
        at_risk_byte_seconds=sum(p.at_risk_byte_seconds for p in parts),
        at_risk_series=(),
        migration_aborts=sum(p.migration_aborts for p in parts),
        degraded_cooldowns=sum(p.degraded_cooldowns for p in parts),
        outage_violations=sum(p.outage_violations for p in parts),
    )


@dataclass(frozen=True)
class FleetResult:
    """Merged books of one fleet run (one workload × policy × router)."""

    workload_name: str
    policy_name: str
    n_arrays: int
    router_seed: int
    duration_seconds: float
    #: Per-array results, in array order (index == array index).
    arrays: tuple[ExperimentResult, ...]
    #: Fleet-wide I/O count (sum of per-array counts).
    io_count: int
    #: Fleet-wide response books (sums; max of maxima).
    response: ResponseStats
    #: Fleet-wide availability books (sums; maxima; no merged series).
    availability: AvailabilityReport
    #: Exact sum of per-array enclosure energy, in joules.
    enclosure_joules: float
    #: Exact sum of per-array controller energy, in joules.
    controller_joules: float
    migrated_bytes: int
    migration_count: int
    determinations: int
    spin_up_count: int
    spin_down_count: int
    #: Actions applied fleet-wide, by action kind (sorted keys).
    actions_by_kind: tuple[tuple[str, int], ...]
    #: Per-array invariant-audit checks that ran (0 without audit).
    audit_checks: int = 0

    @property
    def total_joules(self) -> float:
        """Fleet energy, enclosures plus controllers, in joules."""
        return self.enclosure_joules + self.controller_joules

    @property
    def enclosure_watts(self) -> float:
        """Mean fleet enclosure power over the run, in watts."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.enclosure_joules / self.duration_seconds

    @property
    def controller_watts(self) -> float:
        """Mean fleet controller power over the run, in watts."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.controller_joules / self.duration_seconds

    @property
    def mean_response(self) -> float:
        """Mean response time across all fleet I/Os, in seconds."""
        return self.response.mean_response

    @property
    def mean_read_response(self) -> float:
        """Mean response time of fleet read I/Os, in seconds."""
        return self.response.mean_read_response

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready fleet report: global books plus per-array rows.

        Carries the *books*, not the raw per-array payloads (action
        logs and timelines stay on :attr:`arrays`); this is what
        ``ecostor fleet run --out`` writes and ``ecostor fleet report``
        renders.
        """
        return {
            "workload": self.workload_name,
            "policy": self.policy_name,
            "n_arrays": self.n_arrays,
            "router_seed": self.router_seed,
            "duration_seconds": self.duration_seconds,
            "io_count": self.io_count,
            "enclosure_joules": self.enclosure_joules,
            "controller_joules": self.controller_joules,
            "enclosure_watts": self.enclosure_watts,
            "controller_watts": self.controller_watts,
            "mean_response": self.mean_response,
            "mean_read_response": self.mean_read_response,
            "migrated_bytes": self.migrated_bytes,
            "migration_count": self.migration_count,
            "determinations": self.determinations,
            "spin_up_count": self.spin_up_count,
            "spin_down_count": self.spin_down_count,
            "denied_ios": self.availability.denied_ios,
            "delayed_ios": self.availability.delayed_ios,
            "unavailability_seconds": (
                self.availability.unavailability_seconds
            ),
            "outage_violations": self.availability.outage_violations,
            "actions_by_kind": dict(self.actions_by_kind),
            "audit_checks": self.audit_checks,
            "arrays": [
                {
                    "array": array_name(index),
                    "io_count": result.replay.io_count,
                    "enclosure_joules": result.replay.power.enclosure_joules,
                    "controller_joules": (
                        result.replay.power.controller_joules
                    ),
                    "enclosure_watts": result.enclosure_watts,
                    "mean_response": result.mean_response,
                    "migrated_bytes": result.migrated_bytes,
                    "spin_up_count": result.replay.spin_up_count,
                    "actions": len(result.replay.actions),
                    "denied_ios": result.replay.availability.denied_ios,
                    "unavailability_seconds": (
                        result.replay.availability.unavailability_seconds
                    ),
                }
                for index, result in enumerate(self.arrays)
            ],
        }


def merge_results(
    results: Sequence[ExperimentResult],
    n_arrays: int,
    router_seed: int = 0,
) -> FleetResult:
    """Fold per-array results (array order) into one :class:`FleetResult`.

    Requires exactly one result per array, all from the same workload
    and policy over the same measurement window.  Energy books are
    plain left-to-right sums of the per-array joules — the exact sums
    :func:`audit_fleet` re-derives.
    """
    if len(results) != n_arrays:
        raise ValidationError(
            f"fleet of {n_arrays} arrays needs {n_arrays} results, "
            f"got {len(results)}"
        )
    if len({r.workload_name for r in results}) != 1:
        raise ValidationError(
            "fleet results mix workloads: "
            f"{sorted({r.workload_name for r in results})}"
        )
    if len({r.policy_name for r in results}) != 1:
        raise ValidationError(
            "fleet results mix policies: "
            f"{sorted({r.policy_name for r in results})}"
        )
    # Every array replays the same measurement window; a set collapses
    # the (exactly equal) durations without a float == comparison.
    durations = {r.replay.duration_seconds for r in results}
    if len(durations) != 1:
        raise ValidationError(
            f"fleet results span different durations: {sorted(durations)}"
        )
    kinds: dict[str, int] = {}
    for result in results:
        for record in result.replay.actions:
            kind = record.action.kind
            kinds[kind] = kinds.get(kind, 0) + 1
    return FleetResult(
        workload_name=results[0].workload_name,
        policy_name=results[0].policy_name,
        n_arrays=n_arrays,
        router_seed=router_seed,
        duration_seconds=durations.pop(),
        arrays=tuple(results),
        io_count=sum(r.replay.io_count for r in results),
        response=_merge_response([r.replay.response for r in results]),
        availability=_merge_availability(
            [r.replay.availability for r in results]
        ),
        enclosure_joules=sum(
            r.replay.power.enclosure_joules for r in results
        ),
        controller_joules=sum(
            r.replay.power.controller_joules for r in results
        ),
        migrated_bytes=sum(r.replay.migrated_bytes for r in results),
        migration_count=sum(r.replay.migration_count for r in results),
        determinations=sum(r.replay.determinations for r in results),
        spin_up_count=sum(r.replay.spin_up_count for r in results),
        spin_down_count=sum(r.replay.spin_down_count for r in results),
        actions_by_kind=tuple(sorted(kinds.items())),
        audit_checks=sum(r.audit_checks for r in results),
    )


def merge_tier_reports(
    per_array: Sequence[Sequence[TierReport]],
) -> tuple[TierReport, ...]:
    """Fold per-array tier reports into fleet-wide per-tier rows.

    Rows merge by tier *name* (every array builds the same tier layout,
    so names line up); byte and I/O books are exact integer sums,
    energy/cost/service books plain float sums, and the merged row's
    ``devices`` concatenates the per-array device names in array order.
    A tier name appearing with two different kinds is a wiring error
    and raises :class:`~repro.errors.ValidationError`.
    """
    order: list[str] = []
    rows: dict[str, list[TierReport]] = {}
    for reports in per_array:
        for report in reports:
            if report.tier not in rows:
                order.append(report.tier)
                rows[report.tier] = []
            elif rows[report.tier][0].kind != report.kind:
                raise ValidationError(
                    f"tier {report.tier!r} appears as kind "
                    f"{rows[report.tier][0].kind!r} and {report.kind!r}"
                )
            rows[report.tier].append(report)
    merged = []
    for tier in order:
        parts = rows[tier]
        merged.append(
            TierReport(
                tier=tier,
                kind=parts[0].kind,
                devices=tuple(
                    device for part in parts for device in part.devices
                ),
                capacity_bytes=sum(p.capacity_bytes for p in parts),
                used_bytes=sum(p.used_bytes for p in parts),
                replica_bytes=sum(p.replica_bytes for p in parts),
                bytes_in=sum(p.bytes_in for p in parts),
                bytes_out=sum(p.bytes_out for p in parts),
                energy_joules=sum(p.energy_joules for p in parts),
                cost_units=sum(p.cost_units for p in parts),
                service_seconds=sum(p.service_seconds for p in parts),
                serviced_ios=sum(p.serviced_ios for p in parts),
            )
        )
    return tuple(merged)


def audit_tier_books(
    merged: Sequence[TierReport],
    per_array: Sequence[Sequence[TierReport]],
) -> int:
    """Verify fleet tier books conserve exactly; returns checks run.

    Every merged row's integer books must equal the sum of the
    per-array rows for that tier (bytes in/out, placement, capacity,
    serviced I/Os — no tolerance), its float books must equal the plain
    left-to-right sums, and the ledger identity ``bytes_in − bytes_out
    == placed bytes`` must hold on the merged row itself.  Raises
    :class:`~repro.errors.AuditError` on the first violation.
    """
    checks = 0
    parts_by_tier: dict[str, list[TierReport]] = {}
    for reports in per_array:
        for report in reports:
            parts_by_tier.setdefault(report.tier, []).append(report)
    for row in merged:
        parts = parts_by_tier.get(row.tier, [])
        books: list[tuple[str, float, float]] = [
            ("bytes_in", row.bytes_in, sum(p.bytes_in for p in parts)),
            ("bytes_out", row.bytes_out, sum(p.bytes_out for p in parts)),
            ("used_bytes", row.used_bytes, sum(p.used_bytes for p in parts)),
            (
                "replica_bytes",
                row.replica_bytes,
                sum(p.replica_bytes for p in parts),
            ),
            (
                "capacity_bytes",
                row.capacity_bytes,
                sum(p.capacity_bytes for p in parts),
            ),
            (
                "serviced_ios",
                row.serviced_ios,
                sum(p.serviced_ios for p in parts),
            ),
            (
                "energy_joules",
                row.energy_joules,
                sum(p.energy_joules for p in parts),
            ),
            ("cost_units", row.cost_units, sum(p.cost_units for p in parts)),
            (
                "service_seconds",
                row.service_seconds,
                sum(p.service_seconds for p in parts),
            ),
        ]
        for label, value, derived in books:
            checks += 1
            if value != derived:
                raise AuditError(
                    f"fleet tier {row.tier!r} {label} book broken: merged "
                    f"{value!r} != sum of arrays {derived!r}"
                )
        checks += 1
        if row.net_bytes != row.placed_bytes:
            raise AuditError(
                f"fleet tier {row.tier!r} conservation broken: ledger net "
                f"{row.net_bytes} bytes != placed {row.placed_bytes} bytes"
            )
    return checks


def _action_item_ids(action: Any) -> tuple[str, ...]:
    """Item ids an action references (empty for item-less actions)."""
    single = getattr(action, "item_id", None)
    if single is not None:
        return (str(single),)
    many = getattr(action, "item_ids", None)
    if many is not None:
        return tuple(str(item) for item in many)
    return ()


def _action_enclosures(action: Any) -> tuple[str, ...]:
    """Enclosure names an action references (may be empty)."""
    names = []
    for attribute in ("enclosure", "source_enclosure", "target_enclosure"):
        value = getattr(action, attribute, None)
        if value is not None:
            names.append(str(value))
    return tuple(names)


def audit_fleet(fleet: FleetResult, router: HashRouter) -> int:
    """Verify the fleet's global conservation laws; returns checks run.

    Raises :class:`~repro.errors.AuditError` on the first violation.
    Checks: energy conservation (fleet joules exactly equal the sum of
    per-array joules, enclosure and controller books separately), I/O
    conservation (fleet I/O / read / response-sum books equal the
    per-array sums), and ownership (no array's action log names an item
    the router routes elsewhere, and every enclosure an action touches
    belongs to that array's namespace).
    """
    if router.n_arrays != fleet.n_arrays:
        raise AuditError(
            f"router is {router.n_arrays}-wide but the fleet result has "
            f"{fleet.n_arrays} arrays"
        )
    checks = 1
    books: list[tuple[str, float, float]] = [
        (
            "enclosure energy (J)",
            fleet.enclosure_joules,
            sum(r.replay.power.enclosure_joules for r in fleet.arrays),
        ),
        (
            "controller energy (J)",
            fleet.controller_joules,
            sum(r.replay.power.controller_joules for r in fleet.arrays),
        ),
        (
            "I/O count",
            float(fleet.io_count),
            float(sum(r.replay.io_count for r in fleet.arrays)),
        ),
        (
            "response count",
            float(fleet.response.io_count),
            float(sum(r.replay.response.io_count for r in fleet.arrays)),
        ),
        (
            "response sum (s)",
            fleet.response.response_sum,
            sum(r.replay.response.response_sum for r in fleet.arrays),
        ),
        (
            "migrated bytes",
            float(fleet.migrated_bytes),
            float(sum(r.replay.migrated_bytes for r in fleet.arrays)),
        ),
    ]
    for label, merged, derived in books:
        checks += 1
        delta = merged - derived
        if delta != 0.0:
            raise AuditError(
                f"fleet {label} book broken: merged {merged!r} != "
                f"sum of arrays {derived!r} (delta {delta!r})"
            )
    for index, result in enumerate(fleet.arrays):
        prefix = (
            f"{array_name(index)}{ARRAY_SEPARATOR}"
            if fleet.n_arrays > 1
            else ""
        )
        for record in result.replay.actions:
            checks += 1
            for item_id in _action_item_ids(record.action):
                owner = router.shard_for(item_id)
                if owner != index:
                    raise AuditError(
                        f"{array_name(index)} applied "
                        f"{record.action.kind!r} to item {item_id!r}, "
                        f"which the router assigns to {array_name(owner)}"
                    )
            for enclosure in _action_enclosures(record.action):
                if prefix and not enclosure.startswith(prefix):
                    raise AuditError(
                        f"{array_name(index)} applied "
                        f"{record.action.kind!r} to enclosure "
                        f"{enclosure!r} outside its own namespace "
                        f"{prefix!r}"
                    )
    return checks
