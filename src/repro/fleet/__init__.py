"""Fleet-scale sharded simulation: many arrays, one set of global books.

The paper manages a single 12-enclosure array; this package scales the
reproduction out to a *fleet* of N independent arrays.  Data items are
routed to arrays by a deterministic, seed-stable hash
(:mod:`repro.fleet.routing`), any workload is partitioned into per-array
sub-traces with order- and bit-stable slicing (:mod:`repro.fleet.split`),
the per-array replays fan out through the existing parallel experiment
engine (:class:`~repro.fleet.runner.FleetRunner`), and the per-array
results merge into fleet-level energy / availability / latency / action
books whose conservation laws hold globally
(:mod:`repro.fleet.aggregate`).

The bit-identity contract: a 1-array fleet takes the exact legacy code
paths (no name namespacing, the workload passes through unchanged), so
it reproduces the golden single-array replay results byte for byte.
See ``docs/fleet.md``.
"""

from repro.fleet.aggregate import (
    FleetResult,
    audit_fleet,
    audit_tier_books,
    merge_results,
    merge_tier_reports,
)
from repro.fleet.chaos import array_outage_plans
from repro.fleet.routing import (
    ARRAY_SEPARATOR,
    HashRouter,
    array_name,
    shard_for,
)
from repro.fleet.runner import FleetRunner
from repro.fleet.split import shard_columnar, shard_workload, split_workload

__all__ = [
    "ARRAY_SEPARATOR",
    "FleetResult",
    "FleetRunner",
    "HashRouter",
    "array_name",
    "array_outage_plans",
    "audit_fleet",
    "audit_tier_books",
    "merge_results",
    "merge_tier_reports",
    "shard_columnar",
    "shard_for",
    "shard_workload",
    "split_workload",
]
