"""FleetRunner: fan per-array replays through the experiment engine.

One fleet run is ``n_arrays`` independent cells — same workload spec,
same policy, same config, each carrying a
:class:`~repro.experiments.parallel.ShardSpec` naming its array.  The
cells go through the ordinary
:class:`~repro.experiments.parallel.ExperimentEngine`, so a fleet run
gets the engine's process pool, its content-addressed on-disk result
cache (the shard is part of every cache key), its JSON serialization,
and its per-cell failure isolation for free.  The finished per-array
results merge into a :class:`~repro.fleet.aggregate.FleetResult`, and
the global conservation audit (:func:`~repro.fleet.aggregate.audit_fleet`)
runs on every fleet run — it is cheap, pure bookkeeping over the merged
books and action logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.config import DEFAULT_CONFIG, EcoStorConfig
from repro.errors import ValidationError
from repro.experiments.parallel import (
    ExperimentCell,
    ExperimentEngine,
    PolicySpec,
    ShardSpec,
    WorkloadSpec,
    default_engine,
)
from repro.faults.plan import FaultPlan
from repro.fleet.aggregate import FleetResult, audit_fleet, merge_results
from repro.fleet.routing import HashRouter

__all__ = ["FleetRunner"]


@dataclass(frozen=True)
class FleetRunner:
    """Runs one workload × policy across an ``n_arrays``-wide fleet."""

    n_arrays: int
    router_seed: int = 0
    #: Pinning overrides, ``(item_id, array_index)`` pairs.
    pins: tuple[tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        # Building the router validates n_arrays and every pin.
        self.router()

    def router(self) -> HashRouter:
        """The fleet's item→array router."""
        return HashRouter(self.n_arrays, self.router_seed, self.pins)

    def cells(
        self,
        workload: WorkloadSpec,
        policy: PolicySpec,
        config: EcoStorConfig = DEFAULT_CONFIG,
        audit: bool = False,
        faults: Mapping[int, FaultPlan] | None = None,
    ) -> list[ExperimentCell]:
        """One engine cell per array, in array order.

        ``faults`` maps array indexes to the :class:`FaultPlan` injected
        into that array only (array-level chaos — see
        :func:`repro.fleet.chaos.array_outage_plans`); arrays without an
        entry run faultless.
        """
        plans = dict(faults) if faults is not None else {}
        for index in plans:
            if not 0 <= index < self.n_arrays:
                raise ValidationError(
                    f"fault plan targets array {index}, but the fleet "
                    f"has arrays 0..{self.n_arrays - 1}"
                )
        return [
            ExperimentCell(
                workload=workload,
                policy=policy,
                config=config,
                audit=audit,
                faults=plans.get(index),
                shard=ShardSpec(
                    n_arrays=self.n_arrays,
                    array_index=index,
                    router_seed=self.router_seed,
                    pins=self.pins,
                ),
            )
            for index in range(self.n_arrays)
        ]

    def run(
        self,
        workload: WorkloadSpec,
        policy: PolicySpec,
        config: EcoStorConfig = DEFAULT_CONFIG,
        audit: bool = False,
        faults: Mapping[int, FaultPlan] | None = None,
        engine: ExperimentEngine | None = None,
    ) -> FleetResult:
        """Replay every array, merge the books, audit them globally.

        ``audit=True`` additionally arms the per-array
        :class:`~repro.devtools.audit.InvariantAuditor` inside each
        cell; the *global* conservation audit runs unconditionally.
        Any failed array raises
        :class:`~repro.errors.ExperimentError` with that cell's
        traceback.
        """
        chosen = engine if engine is not None else default_engine()
        outcomes = chosen.run_cells(
            self.cells(workload, policy, config, audit, faults)
        )
        results = [outcome.require() for outcome in outcomes]
        fleet = merge_results(
            results, n_arrays=self.n_arrays, router_seed=self.router_seed
        )
        audit_fleet(fleet, self.router())
        return fleet
