"""Deterministic item→array routing for fleet-scale simulation.

The fleet's placement rule is ``shard = f(item_id)``: every data item is
owned by exactly one array, decided by a seed-stable hash of the item id
alone.  The hash is SHA-256 (the same draw primitive the fault model
uses), never Python's process-randomized ``hash()``, so the routing is
identical across runs, processes, and platforms — a property the
parallel result cache and the golden bit-identity tests both depend on.

**Router contract** (pinned by tests and documented in
``docs/fleet.md``)::

    shard_for(item_id, n, seed)
        = int.from_bytes(sha256(f"{seed}|{item_id}")[:8], "big") % n

:class:`HashRouter` wraps the hash with explicit pinning overrides
(operators may force specific items onto specific arrays, e.g. to
co-locate a table with its index) and with the fleet's array naming:
array ``k`` of an N-array fleet is namespaced ``array-NN``, and every
component name inside it carries the ``"array-NN:"`` prefix.  A 1-array
fleet uses *no* namespace at all — its names, and therefore its results,
are bit-identical to a standalone single-array run.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping

from repro.errors import ValidationError

__all__ = ["ARRAY_SEPARATOR", "HashRouter", "array_name", "shard_for"]

#: Separator between an array id and a component name
#: (``"array-01:enc-03"``).  ``":"`` because ``"/"`` already structures
#: volume and item names (``"vol/enc-00"``, ``"fs/fsvol-00/hot-1"``).
ARRAY_SEPARATOR = ":"

#: Number of digest bytes turned into the routing integer.  Eight bytes
#: (64 bits) keep the modulo bias unmeasurable for any realistic fleet.
_DIGEST_BYTES = 8


def array_name(index: int) -> str:
    """Canonical id of the fleet array at ``index`` (``"array-NN"``)."""
    if index < 0:
        raise ValidationError(f"array index must be non-negative: {index}")
    return f"array-{index:02d}"


def shard_for(item_id: str, n_arrays: int, seed: int = 0) -> int:
    """Owning array index for ``item_id`` in an ``n_arrays``-wide fleet.

    Deterministic and platform-stable: the same ``(item_id, n_arrays,
    seed)`` always yields the same shard, in every process and on every
    machine.  ``n_arrays == 1`` short-circuits to ``0`` without hashing.
    """
    if n_arrays < 1:
        raise ValidationError(f"n_arrays must be >= 1, got {n_arrays}")
    if n_arrays == 1:
        return 0
    digest = hashlib.sha256(f"{seed}|{item_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:_DIGEST_BYTES], "big") % n_arrays


class HashRouter:
    """Seed-stable hash router with explicit pinning overrides.

    ``pins`` maps item ids to forced array indexes (a mapping or an
    iterable of ``(item_id, index)`` pairs); pinned items bypass the
    hash entirely.  Conflicting pins for the same item are rejected at
    construction, as are pins outside ``[0, n_arrays)``.
    """

    def __init__(
        self,
        n_arrays: int,
        seed: int = 0,
        pins: "Mapping[str, int] | Iterable[tuple[str, int]]" = (),
    ) -> None:
        if n_arrays < 1:
            raise ValidationError(f"n_arrays must be >= 1, got {n_arrays}")
        self.n_arrays = n_arrays
        self.seed = seed
        pairs = pins.items() if isinstance(pins, Mapping) else pins
        lookup: dict[str, int] = {}
        for item_id, index in pairs:
            if not 0 <= index < n_arrays:
                raise ValidationError(
                    f"pin for {item_id!r} targets array {index}, but the "
                    f"fleet has arrays 0..{n_arrays - 1}"
                )
            if lookup.get(item_id, index) != index:
                raise ValidationError(
                    f"conflicting pins for {item_id!r}: "
                    f"{lookup[item_id]} vs {index}"
                )
            lookup[item_id] = index
        self.pins: dict[str, int] = lookup

    def shard_for(self, item_id: str) -> int:
        """Owning array index for ``item_id`` (pins win over the hash)."""
        pinned = self.pins.get(item_id)
        if pinned is not None:
            return pinned
        return shard_for(item_id, self.n_arrays, self.seed)

    def array_id(self, index: int) -> str | None:
        """Namespace id of array ``index``; ``None`` for 1-array fleets.

        ``None`` means "no namespacing": a 1-array fleet keeps the
        legacy unprefixed component names, which is what makes it
        bit-identical to a standalone run.
        """
        if not 0 <= index < self.n_arrays:
            raise ValidationError(
                f"array index {index} outside fleet of {self.n_arrays}"
            )
        return None if self.n_arrays == 1 else array_name(index)

    def histogram(self, item_ids: Iterable[str]) -> list[int]:
        """Items owned per array, in array order (``ecostor trace info``)."""
        counts = [0] * self.n_arrays
        for item_id in item_ids:
            counts[self.shard_for(item_id)] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HashRouter(n_arrays={self.n_arrays}, seed={self.seed}, "
            f"pins={len(self.pins)})"
        )
