"""Partition workloads into per-array sub-workloads, bit-stably.

A fleet run replays N independent kernels, each over exactly the slice
of the workload its array owns.  The slicing here is **order- and
bit-stable**: filtered records keep their original relative order (the
trace stays time-ordered), item catalogs keep catalog order, and the
columnar path (:func:`shard_columnar`) produces byte-for-byte the same
columns as packing the filtered record objects would — so object and
``.ecot`` traces shard identically.

The conservation law the fleet auditor later checks is established
here: every record of the source workload lands in **exactly one**
sub-workload (the router is a total function of the item id), and a
1-array split returns the source workload unchanged — same object, no
renaming — which is what keeps 1-array fleets bit-identical to the
golden single-array replay.

For N > 1 every component name is namespaced with the owning array's
id: enclosures are renamed by :func:`repro.simulation.build_context`
(``array_id`` parameter), and the workload's *explicit* volumes are
renamed here (``"array-01:fsvol-07"``), so no name collides fleet-wide
and the global action/fault books stay unambiguous.
"""

from __future__ import annotations

from array import array
from dataclasses import replace

from repro.errors import ValidationError
from repro.fleet.routing import ARRAY_SEPARATOR, HashRouter
from repro.trace.columnar import ColumnarTrace
from repro.trace.records import LogicalIORecord
from repro.workloads.items import Workload

__all__ = ["shard_columnar", "shard_workload", "split_workload"]


def shard_columnar(
    trace: ColumnarTrace, router: HashRouter, array_index: int
) -> ColumnarTrace:
    """The columnar slice of ``trace`` owned by array ``array_index``.

    One pass over the columns; the kept records preserve their original
    order and item ids are re-interned in first-appearance order, so
    the result is bit-identical to
    ``ColumnarTrace.from_records(filtered record objects)``.
    """
    if not 0 <= array_index < router.n_arrays:
        raise ValidationError(
            f"array index {array_index} outside fleet of {router.n_arrays}"
        )
    owners = [router.shard_for(item_id) for item_id in trace.items]
    timestamps = array("d")
    item_index = array("I")
    offsets = array("q")
    sizes = array("q")
    flags = bytearray()
    intern: dict[int, int] = {}
    items: list[str] = []
    source_index = trace.item_index
    for i in range(len(trace)):
        old = source_index[i]
        if owners[old] != array_index:
            continue
        new = intern.get(old)
        if new is None:
            new = len(items)
            intern[old] = new
            items.append(trace.items[old])
        timestamps.append(trace.timestamps[i])
        item_index.append(new)
        offsets.append(trace.offsets[i])
        sizes.append(trace.sizes[i])
        flags.append(trace.flags[i])
    return ColumnarTrace(
        items=tuple(items),
        timestamps=timestamps,
        item_index=item_index,
        offsets=offsets,
        sizes=sizes,
        flags=bytes(flags),
    )


def _namespace(array_id: str, name: str) -> str:
    """Prefix a component name with its owning array's namespace."""
    return f"{array_id}{ARRAY_SEPARATOR}{name}"


def shard_workload(
    workload: Workload, router: HashRouter, array_index: int
) -> Workload:
    """The sub-workload array ``array_index`` owns.

    For a 1-array fleet the source workload is returned **unchanged**
    (same object — no renaming, no copying), preserving bit-identity
    with standalone runs.  For N > 1 the result keeps the source's
    duration, enclosure count, phases, and app metrics; owns exactly
    the items the router assigns to this array (catalog order
    preserved) plus their trace records (trace order preserved); and
    namespaces every explicit volume name with the array id.  Items and
    records the array does not own appear in exactly one *other*
    array's sub-workload.
    """
    if not 0 <= array_index < router.n_arrays:
        raise ValidationError(
            f"array index {array_index} outside fleet of {router.n_arrays}"
        )
    if router.n_arrays == 1:
        return workload
    array_id = router.array_id(array_index)
    assert array_id is not None  # n_arrays > 1
    owned = [
        item
        for item in workload.items
        if router.shard_for(item.item_id) == array_index
    ]
    items = [
        item
        if item.volume is None
        else replace(item, volume=_namespace(array_id, item.volume))
        for item in owned
    ]
    volumes = [
        (_namespace(array_id, name), index)
        for name, index in workload.volumes
    ]
    records: "list[LogicalIORecord] | ColumnarTrace"
    columnar: ColumnarTrace | None = None
    if isinstance(workload.records, ColumnarTrace):
        columnar = shard_columnar(workload.records, router, array_index)
        records = columnar
    else:
        owned_ids = {item.item_id for item in owned}
        records = [
            record
            for record in workload.records
            if record.item_id in owned_ids
        ]
    sub = Workload(
        name=workload.name,
        duration=workload.duration,
        enclosure_count=workload.enclosure_count,
        items=items,
        records=records,  # type: ignore[arg-type]
        volumes=volumes,
        description=(
            f"{workload.description} [{array_id} of {router.n_arrays}]"
            if workload.description
            else f"{array_id} of {router.n_arrays}"
        ),
        app_metrics=dict(workload.app_metrics),
        phases=list(workload.phases),
    )
    if columnar is not None:
        # The shard *is* its columnar form already; seed the cache so
        # Workload.columnar() need not re-intern the whole slice.
        sub.__dict__["_columnar_cache"] = columnar
    return sub


def split_workload(
    workload: Workload, router: HashRouter
) -> list[Workload]:
    """Every array's sub-workload, in array order.

    The partition is exact: each item (and each of its trace records)
    appears in exactly one element of the returned list.
    """
    return [
        shard_workload(workload, router, index)
        for index in range(router.n_arrays)
    ]
