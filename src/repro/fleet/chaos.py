"""Array-level chaos: whole-array fault plans for fleet runs.

Single-array chaos (:mod:`repro.faults.chaos`) injects faults into *one*
testbed.  A fleet adds a coarser failure domain: an entire array's
enclosures dropping offline while the rest of the fleet keeps serving.
:func:`array_outage_plans` derives exactly that — one deterministic
``"outage"`` :class:`~repro.faults.plan.FaultPlan` per victim array,
with every event name already in the victim's fleet namespace
(``"array-01:enc-03"``) so the plan targets the right testbed and the
merged fleet books stay unambiguous.

Plans are seed-derived (victim ``k`` uses ``seed + k``), so a fleet
chaos cell is reproducible from ``(workload, n_arrays, victims, seed)``
alone, exactly like the single-array harness.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ValidationError
from repro.faults.chaos import _enclosure_names, build_fault_plan
from repro.faults.plan import FaultPlan
from repro.fleet.routing import ARRAY_SEPARATOR, HashRouter
from repro.workloads.items import Workload

__all__ = ["array_outage_plans"]


def array_outage_plans(
    workload: Workload,
    router: HashRouter,
    victims: Sequence[int],
    seed: int = 11,
) -> Mapping[int, FaultPlan]:
    """Per-array outage plans for the victim arrays of a fleet run.

    Each victim index maps to a deterministic ``"outage"`` plan (two of
    the victim's enclosures offline for ~5 % of the run each) built
    against the *namespaced* enclosure names its testbed will actually
    carry and the item ids the router assigns to it.  Feed the result
    straight to :meth:`repro.fleet.runner.FleetRunner.run` — non-victim
    arrays get no plan and run faultless.
    """
    plans: dict[int, FaultPlan] = {}
    for k in victims:
        if not 0 <= k < router.n_arrays:
            raise ValidationError(
                f"victim array {k} outside fleet of {router.n_arrays}"
            )
        if k in plans:
            raise ValidationError(f"victim array {k} listed twice")
        array_id = router.array_id(k)
        prefix = (
            f"{array_id}{ARRAY_SEPARATOR}" if array_id is not None else ""
        )
        names = [
            f"{prefix}{name}"
            for name in _enclosure_names(workload.enclosure_count)
        ]
        owned = [
            item.item_id
            for item in workload.items
            if router.shard_for(item.item_id) == k
        ]
        plans[k] = build_fault_plan(
            "outage", seed + k, workload.duration, names, owned
        )
    return plans
