"""Terminal plots: step curves and bar charts without matplotlib.

Used by the CLI to render the paper's figures as text — the cumulative
interval curves of Figs 17–19 and the grouped power bars of
Figs 8/11/14 — so a full paper-vs-measured report works in any shell.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro import units
from repro.analysis.intervals import IntervalCurve

#: Characters for horizontal bars.
_BAR = "█"
_HALF = "▌"


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per labelled value.

    >>> print(bar_chart({"a": 2.0, "b": 1.0}, width=4))  # doctest: +SKIP
    a  ████ 2.0
    b  ██   1.0
    """
    if not values:
        return title
    label_w = max(len(label) for label in values)
    peak = max(values.values())
    scale = (width / peak) if peak > 0 else 0.0
    lines = [title] if title else []
    for label, value in values.items():
        cells = value * scale
        bar = _BAR * int(cells)
        if cells - int(cells) >= 0.5:
            bar += _HALF
        lines.append(
            f"{label:<{label_w}}  {bar:<{width}} {value:,.1f}{unit}"
        )
    return "\n".join(lines)


def step_curve(
    curve: IntervalCurve,
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """ASCII rendering of one cumulative interval curve.

    X axis: interval length (log scale); Y axis: cumulative seconds.
    """
    if not curve.lengths:
        return f"{title}\n  (no intervals above the break-even time)"
    x_min = math.log10(max(curve.lengths[0], 1e-3))
    x_max = math.log10(curve.lengths[-1] + 1e-9)
    span = max(x_max - x_min, 1e-9)
    y_max = curve.total_length

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(curve.lengths, curve.cumulative):
        col = int((math.log10(x) - x_min) / span * (width - 1))
        row = int(y / y_max * (height - 1))
        for r in range(row + 1):
            grid[height - 1 - r][col] = _BAR
    lines = [title] if title else []
    for index, row in enumerate(grid):
        y_label = y_max * (height - index) / height
        lines.append(f"{y_label:10,.0f} |{''.join(row)}")
    lines.append(
        " " * 10
        + " +"
        + "-" * width
    )
    lines.append(
        " " * 12
        + f"{10 ** x_min:<10.3g}"
        + " " * max(0, width - 22)
        + f"{10 ** x_max:>10.3g}  (interval length, s)"
    )
    return "\n".join(lines)


def time_series_chart(
    series: Sequence[tuple[float, float]],
    width: int = 72,
    height: int = 14,
    title: str = "",
    unit: str = "W",
) -> str:
    """Filled time-series chart, e.g. a power-over-time view.

    ``series`` is (timestamp, value) in time order; the x axis spans
    [0, last timestamp].
    """
    if not series:
        return f"{title}\n  (no samples)"
    peak = max(value for _, value in series)
    end = series[-1][0]
    if peak <= 0 or end <= 0:
        return f"{title}\n  (flat zero series)"
    # Step interpolation: each column shows the value of the sample
    # covering that instant, so sparse series render as filled steps.
    grid = [[" "] * width for _ in range(height)]
    index = 0
    for col in range(width):
        t = (col + 0.5) / width * end
        while index < len(series) - 1 and series[index][0] < t:
            index += 1
        value = series[index][1]
        row = int(value / peak * (height - 1))
        for r in range(row + 1):
            grid[height - 1 - r][col] = _BAR
    lines = [title] if title else []
    for index, row in enumerate(grid):
        level = peak * (height - index) / height
        lines.append(f"{level:10,.0f} {unit} |{''.join(row)}")
    lines.append(" " * 13 + "+" + "-" * width)
    lines.append(" " * 14 + f"0 s{'':<{width - 18}}{end:,.0f} s")
    return "\n".join(lines)


def curves_overlay_summary(
    curves: Mapping[str, IntervalCurve],
    probes: Sequence[float] = (60.0, 120.0, 600.0, units.HOUR),
) -> str:
    """Compact multi-policy comparison: totals and probe points."""
    lines = [
        f"{'policy':18s} {'total':>12s} "
        + " ".join(f"<={probe:>6g}s" for probe in probes)
    ]
    for name, curve in curves.items():
        cells = " ".join(
            f"{curve.cumulative_at(probe):>8,.0f}" for probe in probes
        )
        lines.append(f"{name:18s} {curve.total_length:>12,.0f} {cells}")
    return "\n".join(lines)
