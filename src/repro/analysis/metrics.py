"""Evaluation metrics: power savings, application-level conversions.

Implements the paper's §VII-A.4/§VII-A.5 measurement pipeline:

* power-saving percentages relative to the no-power-saving run;
* the TPC-C transaction-throughput conversion from read response times;
* the TPC-H query-response conversion, per query window.

Note on the throughput formula: the paper prints
``t = t_orig × (r / r_orig)``, under which a *slower* storage would
report *higher* throughput.  Throughput is inversely proportional to
response time, so we implement ``t = t_orig × (r_orig / r)`` — the form
consistent with the paper's own numbers (slower reads ⇒ fewer tpmC) —
and record the discrepancy in EXPERIMENTS.md.  The query-response
formula ``q = q_orig × Σr / Σr_orig`` is used as printed.
"""

from __future__ import annotations

from repro.errors import ValidationError

from dataclasses import dataclass
from typing import Iterable, Sequence


def power_saving_percent(baseline_watts: float, policy_watts: float) -> float:
    """Percent reduction in average power versus the baseline run."""
    if baseline_watts <= 0:
        raise ValidationError("baseline_watts must be positive")
    return 100.0 * (baseline_watts - policy_watts) / baseline_watts


def transaction_throughput(
    t_orig: float, r_orig: float, r: float
) -> float:
    """TPC-C throughput from read response times (§VII-A.5, sign fixed).

    ``t_orig`` is the throughput measured without power saving,
    ``r_orig`` its average read response time, and ``r`` the average
    read response under the evaluated policy.
    """
    if t_orig <= 0 or r_orig <= 0:
        raise ValidationError("t_orig and r_orig must be positive")
    if r <= 0:
        raise ValidationError("r must be positive")
    return t_orig * (r_orig / r)


def query_response_time(
    q_orig: float, sum_r: float, sum_r_orig: float
) -> float:
    """TPC-H query response from summed read responses (§VII-A.5)."""
    if q_orig <= 0:
        raise ValidationError("q_orig must be positive")
    if sum_r_orig <= 0:
        raise ValidationError("sum_r_orig must be positive")
    if sum_r < 0:
        raise ValidationError("sum_r must be non-negative")
    return q_orig * (sum_r / sum_r_orig)


@dataclass(frozen=True)
class WindowResponse:
    """Read-response aggregate over one named time window."""

    name: str
    start: float
    end: float
    read_count: int
    read_response_sum: float

    @property
    def mean_read_response(self) -> float:
        """Mean response time of read I/Os, in seconds."""
        if self.read_count == 0:
            return 0.0
        return self.read_response_sum / self.read_count


def window_read_responses(
    samples: Iterable[tuple[float, float, bool]],
    windows: Sequence[tuple[str, float, float]],
) -> list[WindowResponse]:
    """Aggregate read responses into named windows (e.g. query spans).

    ``samples`` are ``(timestamp, response, is_read)`` triples from the
    application monitor; ``windows`` are ``(name, start, end)``.
    Windows may not overlap; samples outside every window are ignored.
    """
    ordered = sorted(windows, key=lambda w: w[1])
    for (_, _, prev_end), (name, start, _) in zip(ordered, ordered[1:]):
        if start < prev_end:
            raise ValidationError(f"window {name!r} overlaps its predecessor")
    counts = [0] * len(ordered)
    sums = [0.0] * len(ordered)
    starts = [w[1] for w in ordered]
    ends = [w[2] for w in ordered]
    import bisect

    for timestamp, response, is_read in samples:
        if not is_read:
            continue
        index = bisect.bisect_right(starts, timestamp) - 1
        if index >= 0 and timestamp < ends[index]:
            counts[index] += 1
            sums[index] += response
    return [
        WindowResponse(
            name=name,
            start=start,
            end=end,
            read_count=counts[i],
            read_response_sum=sums[i],
        )
        for i, (name, start, end) in enumerate(ordered)
    ]


def relative_query_responses(
    policy_windows: Sequence[WindowResponse],
    baseline_windows: Sequence[WindowResponse],
    q_orig_by_name: dict[str, float] | None = None,
) -> dict[str, float]:
    """Per-query response under a policy, scaled per §VII-A.5.

    ``q_orig`` defaults to each window's own duration (the query ran
    wall-to-wall in the baseline), giving responses in seconds on the
    baseline's scale.
    """
    baseline = {w.name: w for w in baseline_windows}
    out: dict[str, float] = {}
    for window in policy_windows:
        ref = baseline.get(window.name)
        if ref is None or ref.read_response_sum <= 0:
            continue
        q_orig = (
            q_orig_by_name.get(window.name, window.end - window.start)
            if q_orig_by_name
            else window.end - window.start
        )
        out[window.name] = query_response_time(
            q_orig, window.read_response_sum, ref.read_response_sum
        )
    return out
