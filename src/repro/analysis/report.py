"""Plain-text report rendering for the experiment harness.

Every benchmark prints the same row format: the paper's reported value
next to the measured one, so EXPERIMENTS.md and the bench logs read the
same way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - layering: annotation only
    from repro.experiments.runner import ExperimentResult


@dataclass(frozen=True)
class PaperRow:
    """One paper-vs-measured comparison line."""

    label: str
    paper: str
    measured: str
    note: str = ""


def render_table(title: str, rows: Sequence[PaperRow]) -> str:
    """Render comparison rows as a fixed-width text table."""
    label_w = max([len(r.label) for r in rows] + [len("metric")])
    paper_w = max([len(r.paper) for r in rows] + [len("paper")])
    meas_w = max([len(r.measured) for r in rows] + [len("measured")])
    lines = [
        title,
        f"{'metric':<{label_w}}  {'paper':>{paper_w}}  {'measured':>{meas_w}}  note",
        "-" * (label_w + paper_w + meas_w + 12),
    ]
    for row in rows:
        lines.append(
            f"{row.label:<{label_w}}  {row.paper:>{paper_w}}  "
            f"{row.measured:>{meas_w}}  {row.note}"
        )
    return "\n".join(lines)


def render_simple(title: str, rows: dict[str, str]) -> str:
    """Render a name → value mapping as a small text table."""
    width = max(len(k) for k in rows) if rows else 0
    lines = [title]
    for key, value in rows.items():
        lines.append(f"  {key:<{width}}  {value}")
    return "\n".join(lines)


def experiment_rows(
    results: Mapping[str, "ExperimentResult"],
) -> list[PaperRow]:
    """Measured-only summary rows for a policy → result mapping.

    Consumes :class:`~repro.experiments.runner.ExperimentResult` values
    regardless of provenance — run inline, in a worker, or
    reconstructed from the parallel engine's JSON cache — since the
    serialized form round-trips losslessly.
    """
    rows = []
    for policy, result in results.items():
        rows.append(
            PaperRow(
                label=f"{result.workload_name} {policy}",
                paper="-",
                measured=watts(result.enclosure_watts),
                note=(
                    f"response {seconds(result.mean_response)}, "
                    f"migrated {gigabytes(result.migrated_bytes)}, "
                    f"{result.determinations} determinations"
                ),
            )
        )
    return rows


def render_experiment_table(
    title: str, results: Mapping[str, "ExperimentResult"]
) -> str:
    """Render one workload's policy results as a text table."""
    return render_table(title, experiment_rows(results))


def watts(value: float) -> str:
    """Format a power value for report tables, e.g. ``'270.0 W'``."""
    return f"{value:.1f} W"


def percent(value: float) -> str:
    """Format a percentage for report tables, e.g. ``'12.5 %'``."""
    return f"{value:.1f} %"


def seconds(value: float) -> str:
    """Format a duration, using milliseconds below one second."""
    if value < 1.0:
        return f"{value * 1000:.1f} ms"
    return f"{value:.2f} s"


def gigabytes(value_bytes: float) -> str:
    """Format a byte count in gigabytes, e.g. ``'23.10 GB'``."""
    return f"{value_bytes / units.GB:.2f} GB"
