"""Analysis: metrics, interval curves, and report rendering."""

from repro.analysis.intervals import (
    IntervalCurve,
    interval_curve,
    total_long_interval_length,
)
from repro.analysis.metrics import (
    WindowResponse,
    power_saving_percent,
    query_response_time,
    relative_query_responses,
    transaction_throughput,
    window_read_responses,
)
from repro.analysis.report import PaperRow, render_table

__all__ = [
    "IntervalCurve",
    "PaperRow",
    "WindowResponse",
    "interval_curve",
    "power_saving_percent",
    "query_response_time",
    "relative_query_responses",
    "render_table",
    "total_long_interval_length",
    "transaction_throughput",
    "window_read_responses",
]
