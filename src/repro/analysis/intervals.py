"""Physical I/O-interval analysis (paper §VII-E, Figs 17–19).

The paper compares policies by the *cumulative length of disk-enclosure
I/O intervals*: for each interval length ``x`` (x-axis), the total time
covered by intervals of length ≥ the break-even time up to ``x``.  A
policy that creates more/longer intervals accumulates a higher curve —
that is the power-saving opportunity it actually realized.
"""

from __future__ import annotations

from repro.errors import ValidationError

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class IntervalCurve:
    """One policy's cumulative interval curve."""

    #: Interval lengths in ascending order (seconds).
    lengths: tuple[float, ...]
    #: Cumulative total length at each point (seconds).
    cumulative: tuple[float, ...]

    @cached_property
    def _lengths_array(self) -> np.ndarray:
        """Lengths as an ndarray, built once per curve for probe calls.

        ``cumulative_at`` used to rebuild this array on every probe —
        O(n) per call on curves with thousands of intervals.  The
        instance is frozen, so the cache can never go stale; equality
        and hashing still use only the dataclass fields.
        """
        return np.asarray(self.lengths)

    @property
    def total_length(self) -> float:
        """Total accumulated long-interval length in seconds."""
        return self.cumulative[-1] if self.cumulative else 0.0

    @property
    def max_length(self) -> float:
        """Length of the longest interval observed, in seconds."""
        return self.lengths[-1] if self.lengths else 0.0

    def cumulative_at(self, length: float) -> float:
        """Total interval time from intervals no longer than ``length``."""
        if not self.lengths:
            return 0.0
        index = np.searchsorted(self._lengths_array, length, side="right")
        if index == 0:
            return 0.0
        return self.cumulative[index - 1]


def interval_curve(
    gaps: Iterable[float], break_even_time: float
) -> IntervalCurve:
    """Build the Fig 17–19 curve from raw enclosure I/O gaps.

    Only gaps longer than the break-even time contribute (the paper's
    y-axis is "total lengths of I/O intervals longer than the break-even
    time").
    """
    if break_even_time <= 0:
        raise ValidationError("break_even_time must be positive")
    longs = sorted(g for g in gaps if g > break_even_time)
    cumulative: list[float] = []
    total = 0.0
    for gap in longs:
        total += gap
        cumulative.append(total)
    return IntervalCurve(lengths=tuple(longs), cumulative=tuple(cumulative))


def total_long_interval_length(
    gaps: Iterable[float], break_even_time: float
) -> float:
    """Σ of interval lengths above the break-even time."""
    return sum(g for g in gaps if g > break_even_time)


def curve_summary_rows(
    curves: dict[str, IntervalCurve],
    probe_lengths: Sequence[float] = (60.0, 120.0, 300.0, 600.0, 1800.0),
) -> list[dict[str, float | str]]:
    """Tabular view of several policies' curves at probe lengths."""
    rows: list[dict[str, float | str]] = []
    for name, curve in curves.items():
        row: dict[str, float | str] = {
            "policy": name,
            "total": curve.total_length,
            "max": curve.max_length,
        }
        for probe in probe_lengths:
            row[f"<= {probe:g}s"] = curve.cumulative_at(probe)
        rows.append(row)
    return rows
