"""Figs 8–10 — File Server evaluation (power, response, migration).

Paper §VII-D.1: the proposed method cuts disk-enclosure power 25.8 %
(versus 3.5 % for PDC and 3.6 % for DDR), keeps the best I/O response of
the power-saving methods thanks to preloading, and migrates orders of
magnitude less data than PDC (23.1 GB versus > 3 TB).
"""

from __future__ import annotations

from repro.analysis.report import PaperRow, render_table
from repro.experiments.comparisons import (
    determination_rows,
    migration_rows,
    power_rows,
    response_rows,
)
from repro.experiments.paper_values import FIG9_RESPONSE_SECONDS
from repro.experiments.runner import ExperimentResult
from repro.experiments.testbed import comparison

WORKLOAD = "fileserver"


def results(full: bool = True) -> dict[str, ExperimentResult]:
    """Run the File Server comparison across all policies."""
    return comparison(WORKLOAD, full)


def fig8_rows(full: bool = True) -> list[PaperRow]:
    """Fig 8: average power of the disk enclosures."""
    return power_rows(WORKLOAD, results(full))


def fig9_rows(full: bool = True) -> list[PaperRow]:
    """Fig 9: average I/O response time at the application monitor."""
    return response_rows(WORKLOAD, results(full), FIG9_RESPONSE_SECONDS)


def fig10_rows(full: bool = True) -> list[PaperRow]:
    """Fig 10: total migrated data size, plus §VII-D.1 determinations."""
    res = results(full)
    return migration_rows(WORKLOAD, res) + determination_rows(WORKLOAD, res)


def run(full: bool = True) -> str:
    """Render the Fig 8-10 File Server tables."""
    return "\n\n".join(
        [
            render_table("Fig 8 — File Server power", fig8_rows(full)),
            render_table("Fig 9 — File Server response", fig9_rows(full)),
            render_table("Fig 10 — File Server migration", fig10_rows(full)),
        ]
    )
