"""Seed-replication robustness study.

The paper reports single measurements; a simulator can do better.  This
study re-generates each workload with independent seeds and re-runs the
headline comparison, reporting the mean and spread of the proposed
method's saving — evidence that the reproduction's shape claims are not
one lucky trace.
"""

from __future__ import annotations

import statistics
from functools import lru_cache

from repro.analysis.metrics import power_saving_percent
from repro.analysis.report import PaperRow, render_table
from repro.baselines.nopower import NoPowerSavingPolicy
from repro.config import DEFAULT_CONFIG
from repro.core.manager import EnergyEfficientPolicy
from repro.experiments.runner import run_cell
from repro.workloads import (
    build_dss_workload,
    build_fileserver_workload,
    build_oltp_workload,
)

DEFAULT_SEEDS = (11, 23, 47)

#: Shortened durations: the study multiplies run count by seed count.
_BUILDERS = {
    "fileserver": lambda seed: build_fileserver_workload(
        seed=seed, duration=5400.0
    ),
    "tpcc": lambda seed: build_oltp_workload(seed=seed, duration=4000.0),
    "tpch": lambda seed: build_dss_workload(
        seed=seed,
        duration=5400.0,
        queries=("Q1", "Q2", "Q6", "Q9", "Q14", "Q21"),
    ),
}


@lru_cache(maxsize=None)
def saving_for_seed(workload_name: str, seed: int) -> float:
    """The proposed method's saving (%) on one seeded replicate."""
    workload = _BUILDERS[workload_name](seed)
    base = run_cell(workload, NoPowerSavingPolicy(), DEFAULT_CONFIG)
    ours = run_cell(workload, EnergyEfficientPolicy(), DEFAULT_CONFIG)
    return power_saving_percent(base.enclosure_watts, ours.enclosure_watts)


def replicate(
    workload_name: str, seeds: tuple[int, ...] = DEFAULT_SEEDS
) -> tuple[float, float, list[float]]:
    """(mean, standard deviation, per-seed savings)."""
    values = [saving_for_seed(workload_name, seed) for seed in seeds]
    spread = statistics.stdev(values) if len(values) > 1 else 0.0
    return statistics.mean(values), spread, values


def rows(seeds: tuple[int, ...] = DEFAULT_SEEDS) -> list[PaperRow]:
    """Replication rows: mean and spread over independent seeds."""
    out = []
    for name in _BUILDERS:
        mean, spread, values = replicate(name, seeds)
        out.append(
            PaperRow(
                label=f"{name} proposed saving",
                paper="single measurement",
                measured=f"{mean:.1f} % ± {spread:.1f}",
                note="seeds "
                + ", ".join(f"{v:.1f}" for v in values),
            )
        )
    return out


def run(seeds: tuple[int, ...] = DEFAULT_SEEDS) -> str:
    """Render the multi-seed replication table."""
    return render_table(
        f"Replication study — {len(seeds)} independent seeds", rows(seeds)
    )
