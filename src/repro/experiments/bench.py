"""Replay-throughput benchmark: records/sec through the engine kernel.

The :mod:`repro.engine` refactor carries a hard perf bar — replay
throughput within 5 % of the pre-kernel hand-threaded loop — and the
ROADMAP wants the perf trajectory to have actual data points.  This
module measures end-to-end replay throughput (wall-clock seconds for a
full :class:`~repro.trace.replay.TraceReplayer` run, best of N repeats
to suppress scheduler noise) for the no-power-saving baseline and the
proposed policy — in both pump modes, the per-record object loop and
the batched :class:`~repro.trace.columnar.ColumnarTrace` pump, with the
two interleaved per round so machine drift cannot masquerade as a
pump-mode difference — and serializes the result as
``BENCH_engine.json``:

* locally via ``ecostor bench --out BENCH_engine.json``;
* in CI's smoke mode (see ``.github/workflows/ci.yml``), so every
  change leaves a comparable throughput record next to its test run.

Since the :mod:`repro.actions` layer routed every storage mutation
through the recording :class:`~repro.actions.executor.ActionExecutor`,
the document also carries an ``action_layer`` section: the proposed
policy timed with action-record logging on (the default) versus off
(``executor.record_log = False``), and the resulting overhead: the
signed ``overhead_fraction_raw`` as measured, plus the zero-clamped
``overhead_fraction`` (a negative measurement means the residual noise
floor exceeded the real logging cost — there is nothing to gate).
``benchmarks/test_action_overhead.py`` holds the clamped fraction to
≤ 2 %.

Since the multi-tier refactor generalized placement to ``(tier,
device)``, the document also carries a ``tier_layer`` section: the
legacy HDD-only columnar pump timed on a plain context versus the
tiered single-HDD-tier equivalent (same clamping convention;
``benchmarks/test_tier_overhead.py`` holds it to ≤ 5 %), plus a
``tier_lifecycle`` throughput metric — a full FLASH/HDD/ARCHIVE replay
under :class:`~repro.baselines.tiered.TieredLifecyclePolicy`.

Wall-clock timing lives here, *outside* the kernel: virtual time inside
the simulation never touches ``perf_counter``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.config import DEFAULT_CONFIG
from repro.experiments.runner import ALL_POLICIES, STANDARD_POLICIES
from repro.experiments.testbed import build_workload
from repro.simulation import build_context, build_tiered_context
from repro.trace.replay import TraceReplayer

__all__ = ["BENCH_FORMAT", "DEFAULT_BENCH_POLICIES", "run_bench", "main"]

#: Schema version of the emitted JSON document.  Format 2 added the
#: ``action_layer`` overhead section.  Format 3 benchmarks both pump
#: modes per policy (``object`` / ``columnar`` sub-documents plus
#: ``columnar_speedup``; the headline ``records_per_second`` is the
#: columnar pump's) and splits the action-layer fraction into
#: ``overhead_fraction_raw`` (signed, as measured) and
#: ``overhead_fraction`` (clamped at zero for gating).  Format 4 adds
#: the ``tier_layer`` section: a ``tier_lifecycle`` throughput metric
#: (full FLASH/HDD/ARCHIVE replay under the lifecycle policy) and the
#: generalized-placement overhead — the legacy HDD-only columnar pump
#: on a plain context vs the same replay on a tiered single-HDD-tier
#: context with per-device tier metering armed, gated at ≤ 5 % by
#: ``benchmarks/test_tier_overhead.py``.
BENCH_FORMAT = 4

#: Policies benchmarked by default: the do-nothing floor and the paper's
#: method (the heaviest per-I/O and per-checkpoint work).
DEFAULT_BENCH_POLICIES = ("no-power-saving", "proposed")


def _time_one_replay(
    workload_name: str,
    full: bool,
    policy_name: str,
    record_actions: bool = True,
    columnar: bool = False,
) -> float:
    workload = build_workload(workload_name, full)
    context = build_context(DEFAULT_CONFIG, workload.enclosure_count)
    workload.install(context)
    context.require_executor().record_log = record_actions
    policy = STANDARD_POLICIES[policy_name]()
    replayer = TraceReplayer(context, policy)
    # The columnar trace is built (and cached on the workload) outside
    # the timed region: the benchmark measures the pump, and a real
    # pipeline builds/loads the columns once, then replays many times.
    records = workload.columnar() if columnar else workload.records
    # Wall-clock reads are the *product* here, not simulation state;
    # the replay itself never touches perf_counter.
    started = time.perf_counter()  # analysis: ignore[D203]
    replayer.run(records, duration=workload.duration)
    return time.perf_counter() - started  # analysis: ignore[D203]


def _time_tiered_replay(
    workload_name: str,
    full: bool,
    policy_name: str,
    flash_count: int,
    archive_count: int,
) -> float:
    """Wall-clock one columnar replay on a tiered testbed."""
    workload = build_workload(workload_name, full)
    context = build_tiered_context(
        DEFAULT_CONFIG,
        workload.enclosure_count,
        flash_count=flash_count,
        archive_count=archive_count,
    )
    workload.install(context)
    policy = ALL_POLICIES[policy_name]()
    replayer = TraceReplayer(context, policy)
    records = workload.columnar()
    started = time.perf_counter()  # analysis: ignore[D203]
    replayer.run(records, duration=workload.duration)
    return time.perf_counter() - started  # analysis: ignore[D203]


def _bench_tier_layer(
    workload_name: str, full: bool, record_count: int, rounds: int
) -> dict:
    """The ``tier_layer`` section: lifecycle throughput + path overhead.

    The overhead half re-runs the legacy HDD-only columnar pump
    (no-power-saving, the pump's fastest consumer) on a plain context
    and on a tiered context shaped to be its single-HDD-tier equivalent
    (``flash_count=0, archive_count=0`` — same devices, but placement
    runs through the generalized ``(tier, device)`` path with per-device
    tier metering armed).  Interleaved per round like the action-layer
    comparison, so machine drift cannot masquerade as path cost.
    """
    legacy_times: list[float] = []
    tiered_times: list[float] = []
    for round_index in range(rounds):
        order = (False, True) if round_index % 2 == 0 else (True, False)
        for tiered in order:
            if tiered:
                seconds = _time_tiered_replay(
                    workload_name,
                    full,
                    "no-power-saving",
                    flash_count=0,
                    archive_count=0,
                )
                tiered_times.append(seconds)
            else:
                seconds = _time_one_replay(
                    workload_name, full, "no-power-saving", columnar=True
                )
                legacy_times.append(seconds)
    legacy = min(legacy_times)
    tiered = min(tiered_times)
    raw_fraction = (tiered - legacy) / legacy
    lifecycle_times = [
        _time_tiered_replay(
            workload_name,
            full,
            "tiered-lifecycle",
            flash_count=1,
            archive_count=1,
        )
        for _ in range(rounds)
    ]
    lifecycle_best = min(lifecycle_times)
    return {
        "policy": "no-power-saving",
        "legacy_seconds": legacy,
        "tiered_seconds": tiered,
        "overhead_fraction_raw": raw_fraction,
        "overhead_fraction": max(0.0, raw_fraction),
        "tier_lifecycle": {
            "policy": "tiered-lifecycle",
            "flash_count": 1,
            "archive_count": 1,
            "best_seconds": lifecycle_best,
            "records_per_second": record_count / lifecycle_best,
        },
        "repeats": rounds,
    }


def run_bench(
    workload_name: str = "tpcc",
    full: bool = False,
    policies: tuple[str, ...] = DEFAULT_BENCH_POLICIES,
    repeats: int = 3,
) -> dict:
    """Measure replay throughput; returns the ``BENCH_engine`` document.

    Each policy replays the whole workload ``repeats`` times against a
    fresh context and the *best* wall-clock time wins — benchmarking
    convention for a deterministic workload, where every slowdown is
    external noise.
    """
    workload = build_workload(workload_name, full)
    record_count = len(workload.records)
    rounds = max(repeats, 1)
    results: dict[str, dict] = {}
    for policy_name in policies:
        # Object and columnar pumps are interleaved (alternating order
        # each round) so machine-speed drift between batches hits both
        # equally instead of masquerading as a pump-mode difference.
        object_times: list[float] = []
        columnar_times: list[float] = []
        for round_index in range(rounds):
            order = (False, True) if round_index % 2 == 0 else (True, False)
            for columnar in order:
                seconds = _time_one_replay(
                    workload_name, full, policy_name, columnar=columnar
                )
                (columnar_times if columnar else object_times).append(seconds)
        object_best = min(object_times)
        columnar_best = min(columnar_times)
        results[policy_name] = {
            # Headline numbers are the columnar pump's: it is the replay
            # path everything downstream (sharding, online serving) uses.
            "best_seconds": columnar_best,
            "records_per_second": record_count / columnar_best,
            "object": {
                "best_seconds": object_best,
                "records_per_second": record_count / object_best,
            },
            "columnar": {
                "best_seconds": columnar_best,
                "records_per_second": record_count / columnar_best,
            },
            "columnar_speedup": object_best / columnar_best,
            "repeats": rounds,
        }
    # Action-layer overhead: the proposed policy (the heaviest planner,
    # so the densest action log) with record logging on vs off.  Both
    # sides use the best-of-N convention above; the fraction is what
    # appending ActionRecords costs relative to the same replay
    # without the log.
    # The two sides are interleaved (alternating order each round) so
    # machine-speed drift between batches hits both equally instead of
    # masquerading as logging cost.
    overhead_policy = "proposed" if "proposed" in policies else policies[0]
    logged_times: list[float] = []
    unlogged_times: list[float] = []
    for round_index in range(rounds):
        order = (True, False) if round_index % 2 == 0 else (False, True)
        for record_actions in order:
            seconds = _time_one_replay(
                workload_name,
                full,
                overhead_policy,
                record_actions,
                columnar=True,
            )
            (logged_times if record_actions else unlogged_times).append(seconds)
    logged = min(logged_times)
    unlogged = min(unlogged_times)
    # Even interleaved, best-of-N on two near-equal sides can come out a
    # hair negative (logging measured "faster") — that residual is
    # scheduler noise, not a real speedup.  The raw signed value is
    # reported for honesty; the gate in
    # ``benchmarks/test_action_overhead.py`` consumes the clamped one.
    raw_fraction = (logged - unlogged) / unlogged
    action_layer = {
        "policy": overhead_policy,
        "logged_seconds": logged,
        "unlogged_seconds": unlogged,
        "overhead_fraction_raw": raw_fraction,
        "overhead_fraction": max(0.0, raw_fraction),
        "repeats": rounds,
    }
    tier_layer = _bench_tier_layer(workload_name, full, record_count, rounds)
    return {
        "format": BENCH_FORMAT,
        "benchmark": "replay-throughput",
        "workload": workload.name,
        "full": full,
        "records": record_count,
        "duration_seconds": workload.duration,
        "python": platform.python_version(),
        "policies": results,
        "action_layer": action_layer,
        "tier_layer": tier_layer,
    }


def main(
    workload_name: str = "tpcc",
    full: bool = False,
    repeats: int = 3,
    out: str | None = None,
) -> int:
    """Run the benchmark, print a summary, optionally write the JSON."""
    document = run_bench(workload_name, full=full, repeats=repeats)
    for policy_name, row in document["policies"].items():
        print(
            f"{policy_name:>16}: "
            f"{row['columnar']['records_per_second']:,.0f} records/s "
            f"columnar vs {row['object']['records_per_second']:,.0f} object "
            f"({row['columnar_speedup']:.2f}x, best of {row['repeats']})"
        )
    overhead = document["action_layer"]
    print(
        f"    action layer: {overhead['overhead_fraction_raw']:+.2%} raw "
        f"({overhead['overhead_fraction']:.2%} gated) logging overhead on "
        f"{overhead['policy']} ({overhead['logged_seconds']:.4f} s logged, "
        f"{overhead['unlogged_seconds']:.4f} s unlogged)"
    )
    tier_layer = document["tier_layer"]
    lifecycle = tier_layer["tier_lifecycle"]
    print(
        f"    tier layer:   {tier_layer['overhead_fraction_raw']:+.2%} raw "
        f"({tier_layer['overhead_fraction']:.2%} gated) generalized-"
        f"placement overhead ({tier_layer['legacy_seconds']:.4f} s legacy, "
        f"{tier_layer['tiered_seconds']:.4f} s tiered); tier_lifecycle "
        f"{lifecycle['records_per_second']:,.0f} records/s"
    )
    if out is not None:
        path = Path(out)
        path.write_text(
            json.dumps(document, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {path}")
    return 0
