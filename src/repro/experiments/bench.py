"""Replay-throughput benchmark: records/sec through the engine kernel.

The :mod:`repro.engine` refactor carries a hard perf bar — replay
throughput within 5 % of the pre-kernel hand-threaded loop — and the
ROADMAP wants the perf trajectory to have actual data points.  This
module measures end-to-end replay throughput (wall-clock seconds for a
full :class:`~repro.trace.replay.TraceReplayer` run, best of N repeats
to suppress scheduler noise) for the no-power-saving baseline and the
proposed policy, and serializes the result as ``BENCH_engine.json``:

* locally via ``ecostor bench --out BENCH_engine.json``;
* in CI's smoke mode (see ``.github/workflows/ci.yml``), so every
  change leaves a comparable throughput record next to its test run.

Since the :mod:`repro.actions` layer routed every storage mutation
through the recording :class:`~repro.actions.executor.ActionExecutor`,
the document also carries an ``action_layer`` section: the proposed
policy timed with action-record logging on (the default) versus off
(``executor.record_log = False``), and the resulting
``overhead_fraction`` — the action log's logging cost relative to the
same replay without it.  ``benchmarks/test_action_overhead.py`` holds
that fraction to ≤ 2 %.

Wall-clock timing lives here, *outside* the kernel: virtual time inside
the simulation never touches ``perf_counter``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.config import DEFAULT_CONFIG
from repro.experiments.runner import STANDARD_POLICIES
from repro.experiments.testbed import build_workload
from repro.simulation import build_context
from repro.trace.replay import TraceReplayer

__all__ = ["BENCH_FORMAT", "DEFAULT_BENCH_POLICIES", "run_bench", "main"]

#: Schema version of the emitted JSON document.  Format 2 added the
#: ``action_layer`` overhead section.
BENCH_FORMAT = 2

#: Policies benchmarked by default: the do-nothing floor and the paper's
#: method (the heaviest per-I/O and per-checkpoint work).
DEFAULT_BENCH_POLICIES = ("no-power-saving", "proposed")


def _time_one_replay(
    workload_name: str,
    full: bool,
    policy_name: str,
    record_actions: bool = True,
) -> float:
    workload = build_workload(workload_name, full)
    context = build_context(DEFAULT_CONFIG, workload.enclosure_count)
    workload.install(context)
    context.require_executor().record_log = record_actions
    policy = STANDARD_POLICIES[policy_name]()
    replayer = TraceReplayer(context, policy)
    # Wall-clock reads are the *product* here, not simulation state;
    # the replay itself never touches perf_counter.
    started = time.perf_counter()  # analysis: ignore[D203]
    replayer.run(workload.records, duration=workload.duration)
    return time.perf_counter() - started  # analysis: ignore[D203]


def run_bench(
    workload_name: str = "tpcc",
    full: bool = False,
    policies: tuple[str, ...] = DEFAULT_BENCH_POLICIES,
    repeats: int = 3,
) -> dict:
    """Measure replay throughput; returns the ``BENCH_engine`` document.

    Each policy replays the whole workload ``repeats`` times against a
    fresh context and the *best* wall-clock time wins — benchmarking
    convention for a deterministic workload, where every slowdown is
    external noise.
    """
    workload = build_workload(workload_name, full)
    record_count = len(workload.records)
    results: dict[str, dict[str, float | int]] = {}
    for policy_name in policies:
        best = min(
            _time_one_replay(workload_name, full, policy_name)
            for _ in range(max(repeats, 1))
        )
        results[policy_name] = {
            "best_seconds": best,
            "records_per_second": record_count / best,
            "repeats": max(repeats, 1),
        }
    # Action-layer overhead: the proposed policy (the heaviest planner,
    # so the densest action log) with record logging on vs off.  Both
    # sides use the best-of-N convention above; the fraction is what
    # appending ActionRecords costs relative to the same replay
    # without the log.
    # The two sides are interleaved (alternating order each round) so
    # machine-speed drift between batches hits both equally instead of
    # masquerading as logging cost.
    overhead_policy = "proposed" if "proposed" in policies else policies[0]
    logged_times: list[float] = []
    unlogged_times: list[float] = []
    for round_index in range(max(repeats, 1)):
        order = (True, False) if round_index % 2 == 0 else (False, True)
        for record_actions in order:
            seconds = _time_one_replay(
                workload_name, full, overhead_policy, record_actions
            )
            (logged_times if record_actions else unlogged_times).append(seconds)
    logged = min(logged_times)
    unlogged = min(unlogged_times)
    action_layer = {
        "policy": overhead_policy,
        "logged_seconds": logged,
        "unlogged_seconds": unlogged,
        "overhead_fraction": (logged - unlogged) / unlogged,
        "repeats": max(repeats, 1),
    }
    return {
        "format": BENCH_FORMAT,
        "benchmark": "replay-throughput",
        "workload": workload.name,
        "full": full,
        "records": record_count,
        "duration_seconds": workload.duration,
        "python": platform.python_version(),
        "policies": results,
        "action_layer": action_layer,
    }


def main(
    workload_name: str = "tpcc",
    full: bool = False,
    repeats: int = 3,
    out: str | None = None,
) -> int:
    """Run the benchmark, print a summary, optionally write the JSON."""
    document = run_bench(workload_name, full=full, repeats=repeats)
    for policy_name, row in document["policies"].items():
        print(
            f"{policy_name:>16}: {row['best_seconds']:.4f} s best of "
            f"{row['repeats']} ({row['records_per_second']:,.0f} records/s)"
        )
    overhead = document["action_layer"]
    print(
        f"    action layer: {overhead['overhead_fraction']:+.2%} logging "
        f"overhead on {overhead['policy']} "
        f"({overhead['logged_seconds']:.4f} s logged, "
        f"{overhead['unlogged_seconds']:.4f} s unlogged)"
    )
    if out is not None:
        path = Path(out)
        path.write_text(
            json.dumps(document, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {path}")
    return 0
