"""Lossless JSON serialization for :class:`ExperimentResult`.

The parallel experiment engine moves results across process boundaries
and persists them in its on-disk cache, so every measured quantity must
round-trip *exactly*: ``result_from_json(result_to_json(r)) == r`` for
any result the runner can produce.  Floats survive because
:func:`json.dumps` emits ``repr``-shortest representations, which Python
parses back to the identical IEEE-754 value; everything else in a result
is ints, strings, and containers of those.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any, Mapping

from repro.actions.records import ActionRecord
from repro.analysis.intervals import IntervalCurve
from repro.analysis.metrics import WindowResponse
from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentResult
from repro.faults.report import AvailabilityReport
from repro.monitoring.application import ResponseStats
from repro.storage.meter import PowerReading
from repro.trace.replay import ReplayResult

#: Bump when the serialized layout changes; stale cache entries with a
#: different format are treated as misses, never mis-parsed.
#: Format 2 added the per-run :class:`AvailabilityReport`; format 3 the
#: :mod:`repro.actions` log.
RESULT_FORMAT = 3


def result_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """Flatten a result (and every nested dataclass) to plain JSON types.

    The replay's action log rides along explicitly: it is a non-field
    attribute on :class:`~repro.trace.replay.ReplayResult` (invisible to
    ``asdict`` by design), yet must survive the parallel engine's
    process boundary and cache losslessly.
    """
    data = asdict(result)
    data["actions"] = [record.to_dict() for record in result.replay.actions]
    data["format"] = RESULT_FORMAT
    return data


def result_from_dict(data: Mapping[str, Any]) -> ExperimentResult:
    """Rebuild a result from :func:`result_to_dict` output.

    Raises :class:`~repro.errors.ExperimentError` when the payload's
    format marker is missing or from a different serializer version.
    """
    if data.get("format") != RESULT_FORMAT:
        raise ExperimentError(
            f"unsupported result format {data.get('format')!r}; "
            f"this serializer reads format {RESULT_FORMAT}"
        )
    replay = data["replay"]
    curve = data["interval_curve"]
    availability = replay["availability"]
    replay_result = ReplayResult(
        policy_name=replay["policy_name"],
        duration_seconds=replay["duration_seconds"],
        io_count=replay["io_count"],
        response=ResponseStats(**replay["response"]),
        power=PowerReading(**replay["power"]),
        migrated_bytes=replay["migrated_bytes"],
        migration_count=replay["migration_count"],
        determinations=replay["determinations"],
        cache_hit_ratio=replay["cache_hit_ratio"],
        spin_up_count=replay["spin_up_count"],
        spin_down_count=replay["spin_down_count"],
        availability=AvailabilityReport(
            **{
                **availability,
                "at_risk_series": tuple(
                    tuple(point) for point in availability["at_risk_series"]
                ),
            }
        ),
    )
    object.__setattr__(
        replay_result,
        "actions",
        tuple(
            ActionRecord.from_dict(record)
            for record in data.get("actions", [])
        ),
    )
    return ExperimentResult(
        workload_name=data["workload_name"],
        policy_name=data["policy_name"],
        replay=replay_result,
        interval_curve=IntervalCurve(
            lengths=tuple(curve["lengths"]),
            cumulative=tuple(curve["cumulative"]),
        ),
        window_responses=[
            WindowResponse(**window) for window in data["window_responses"]
        ],
        enclosure_watts=data["enclosure_watts"],
        controller_watts=data["controller_watts"],
        audit_checks=data["audit_checks"],
    )


def result_to_json(result: ExperimentResult) -> str:
    """Serialize a result to a deterministic JSON string."""
    return json.dumps(result_to_dict(result), sort_keys=True)


def result_from_json(text: str) -> ExperimentResult:
    """Parse a result serialized by :func:`result_to_json`."""
    return result_from_dict(json.loads(text))
