"""Figs 14–16 — TPC-H evaluation (power, query response, migration).

Paper §VII-D.3: every method saves more than 50 % on the scan-and-
compute DSS workload (proposed 70.8 %, DDR 69.9 %, PDC 55.9 %); query
responses degrade for all methods but least for the proposed one (DDR is
about 3× worse), and DDR migrates almost nothing because the striped
data never leaves an enclosure cold while a query runs.
"""

from __future__ import annotations

from repro.analysis.metrics import relative_query_responses
from repro.analysis.report import PaperRow, render_table, seconds
from repro.experiments.comparisons import (
    determination_rows,
    migration_rows,
    power_rows,
)
from repro.experiments.paper_values import (
    FIG15_DDR_OVER_PROPOSED,
    FIG15_QUERIES,
)
from repro.experiments.runner import ExperimentResult
from repro.experiments.testbed import comparison

WORKLOAD = "tpch"


def results(full: bool = True) -> dict[str, ExperimentResult]:
    """Run the TPC-H comparison across all policies."""
    return comparison(WORKLOAD, full)


def fig14_rows(full: bool = True) -> list[PaperRow]:
    """Fig 14: average power of the disk enclosures."""
    return power_rows(WORKLOAD, results(full))


def query_responses(
    full: bool = True, queries: tuple[str, ...] = FIG15_QUERIES
) -> dict[str, dict[str, float]]:
    """Fig 15: per-query response per policy (§VII-A.5 conversion).

    Returns ``{policy: {query: seconds}}`` on the baseline's time scale.
    """
    res = results(full)
    baseline = res["no-power-saving"].window_responses
    out: dict[str, dict[str, float]] = {}
    for policy, result in res.items():
        relative = relative_query_responses(
            result.window_responses, baseline
        )
        out[policy] = {q: relative[q] for q in queries if q in relative}
    return out


def fig15_rows(full: bool = True) -> list[PaperRow]:
    """Fig 15 rows: per-query response times per policy."""
    responses = query_responses(full)
    rows = []
    for query in FIG15_QUERIES:
        for policy in ("no-power-saving", "proposed", "pdc", "ddr"):
            value = responses.get(policy, {}).get(query)
            if value is None:
                continue
            note = ""
            if policy == "ddr":
                proposed = responses["proposed"].get(query)
                if proposed:
                    note = (
                        f"ddr/proposed = {value / proposed:.2f} "
                        f"(paper ~{FIG15_DDR_OVER_PROPOSED:.0f}x)"
                    )
            rows.append(
                PaperRow(
                    label=f"tpch {query} response {policy}",
                    paper="-",
                    measured=seconds(value),
                    note=note,
                )
            )
    return rows


def fig16_rows(full: bool = True) -> list[PaperRow]:
    """Fig 16: total migrated data size, plus §VII-D.3 determinations."""
    res = results(full)
    return migration_rows(WORKLOAD, res) + determination_rows(WORKLOAD, res)


def run(full: bool = True) -> str:
    """Render the Fig 14-16 TPC-H tables."""
    return "\n\n".join(
        [
            render_table("Fig 14 — TPC-H power", fig14_rows(full)),
            render_table("Fig 15 — TPC-H query response", fig15_rows(full)),
            render_table("Fig 16 — TPC-H migration", fig16_rows(full)),
        ]
    )
