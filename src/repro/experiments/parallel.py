"""Parallel experiment engine with a deterministic on-disk result cache.

Every paper figure is a grid of independent (workload × policy × config)
cells, replayed serially before this module existed.  The engine fans
cells out across :class:`concurrent.futures.ProcessPoolExecutor` workers
and memoizes finished cells on disk, keyed by a content hash of the
workload's trace, the policy (name + options), and every config field —
so re-running a figure after an unrelated code change is a cache hit,
and a parameter sweep only recomputes the cells whose inputs changed.

Design constraints:

* **Cells are self-describing and picklable.**  A cell carries
  :class:`WorkloadSpec` / :class:`PolicySpec` value objects, not live
  ``Workload`` / ``PowerPolicy`` instances; each worker rebuilds both
  from the spec (same seeds), so a parallel run is bit-identical to the
  serial one.
* **Results round-trip through JSON** (:mod:`repro.experiments.serialize`)
  on *every* path — inline, worker, and cache — so the three can never
  drift numerically.
* **One crashed cell never kills the sweep.**  Worker failures are
  captured as per-cell tracebacks in :class:`CellOutcome`; callers that
  need the result call :meth:`CellOutcome.require`.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.config import DEFAULT_CONFIG, EcoStorConfig
from repro.errors import ExperimentError, ValidationError
from repro.experiments.runner import (
    STANDARD_POLICIES,
    ExperimentResult,
    run_cell,
)
from repro.experiments.serialize import result_from_dict, result_to_dict
from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.baselines.base import PowerPolicy
    from repro.workloads.items import Workload

#: Bump to invalidate every existing cache entry (key-scheme changes).
#: Format 2 added the fault-plan fingerprint to the key.  Format 3
#: tracks serializer format 3 (the :mod:`repro.actions` log rides in
#: every cached result).  Format 4 added the fleet shard (router seed +
#: array count + array index + pins) to the key, so per-array cells of
#: a fleet run can never collide with whole-workload cells.
CACHE_FORMAT = 4

#: Option value types allowed in specs: JSON-representable scalars.
SpecValue = bool | int | float | str

#: Progress callback: receives one human-readable line per finished cell.
ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class WorkloadSpec:
    """Self-describing, picklable recipe for one evaluation workload.

    Without ``overrides`` the spec names a catalog workload
    (:func:`repro.experiments.testbed.build_workload`): ``name`` in
    ``WORKLOAD_NAMES``, smoke or ``full`` duration, optional replicate
    ``seed`` (0 = the workload's shipped default).  With ``overrides``
    the spec parameterizes the underlying generator directly (e.g.
    ``(("duration", 5400.0), ("enclosure_count", 6))`` for the scaling
    sweep) and ``full`` is ignored.
    """

    name: str
    full: bool = False
    seed: int = 0
    overrides: tuple[tuple[str, SpecValue], ...] = ()

    @property
    def label(self) -> str:
        """Short human-readable tag used in progress lines and errors."""
        parts = [self.name, "full" if self.full else "smoke"]
        if self.seed:
            parts.append(f"seed={self.seed}")
        parts += [f"{key}={value}" for key, value in self.overrides]
        return f"{parts[0]}[{','.join(parts[1:])}]"

    def build(self) -> "Workload":
        """Materialize the workload (deterministic: same spec, same trace)."""
        from repro.experiments.testbed import build_workload

        if not self.overrides:
            return build_workload(self.name, self.full, self.seed)
        from repro.workloads import (
            build_dss_workload,
            build_fileserver_workload,
            build_oltp_workload,
        )

        builders: dict[str, Callable[..., "Workload"]] = {
            "fileserver": build_fileserver_workload,
            "tpcc": build_oltp_workload,
            "tpch": build_dss_workload,
        }
        if self.name not in builders:
            raise ExperimentError(
                f"unknown workload {self.name!r}; choose from {sorted(builders)}"
            )
        kwargs: dict[str, Any] = dict(self.overrides)
        if self.seed:
            kwargs.setdefault("seed", self.seed)
        return builders[self.name](**kwargs)


@lru_cache(maxsize=None)
def workload_fingerprint(spec: WorkloadSpec) -> str:
    """Content hash of the workload a spec builds (trace + layout).

    Covers everything replay consumes — every trace record, the item
    catalog, extra volumes, phases, duration, and enclosure count — so
    any change to workload generation changes every affected cache key.
    Memoized per process: one fingerprint serves all policies of a grid.
    """
    workload = spec.build()
    digest = hashlib.sha256()

    def feed(*parts: object) -> None:
        digest.update("|".join(repr(p) for p in parts).encode("utf-8"))
        digest.update(b"\n")

    feed(workload.name, workload.duration, workload.enclosure_count)
    for item in workload.items:
        feed(item.item_id, item.size_bytes, item.enclosure_index,
             item.volume, item.kind)
    for volume, index in workload.volumes:
        feed(volume, index)
    for phase in workload.phases:
        feed(*phase)
    # Fed via the columnar representation: identical field tuples (and
    # therefore identical digests — CACHE_FORMAT is unchanged) without
    # per-record attribute access over the whole trace.
    for fields in workload.columnar().iter_field_tuples():
        feed(*fields)
    return digest.hexdigest()


@dataclass(frozen=True)
class PolicySpec:
    """Picklable recipe for one power policy.

    ``name`` indexes :data:`~repro.experiments.runner.STANDARD_POLICIES`;
    ``options`` are keyword arguments for the factory (the ablations pass
    e.g. ``(("enable_migration", False),)`` to the proposed method).
    """

    name: str
    options: tuple[tuple[str, SpecValue], ...] = ()

    @property
    def label(self) -> str:
        """Short human-readable tag used in progress lines and errors."""
        if not self.options:
            return self.name
        rendered = ",".join(f"{key}={value}" for key, value in self.options)
        return f"{self.name}({rendered})"

    def build(self) -> "PowerPolicy":
        """Instantiate a fresh, unbound policy."""
        factory = STANDARD_POLICIES.get(self.name)
        if factory is None:
            raise ExperimentError(
                f"unknown policy {self.name!r}; "
                f"choose from {sorted(STANDARD_POLICIES)}"
            )
        return factory(**dict(self.options))


@dataclass(frozen=True)
class ShardSpec:
    """One array's slice of a fleet run (:mod:`repro.fleet`).

    Attached to an :class:`ExperimentCell`, it makes the worker build
    the full workload, keep only the records the deterministic router
    assigns to ``array_index``, and replay them on a context namespaced
    with that array's id.  Everything that decides the slice — router
    seed, fleet width, array index, pinning overrides — is part of the
    cell's cache key.
    """

    n_arrays: int
    array_index: int
    router_seed: int = 0
    #: Pinning overrides, ``(item_id, array_index)`` pairs (sorted for
    #: a canonical cache key).
    pins: tuple[tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.n_arrays < 1:
            raise ValidationError(
                f"n_arrays must be >= 1, got {self.n_arrays}"
            )
        if not 0 <= self.array_index < self.n_arrays:
            raise ValidationError(
                f"array index {self.array_index} outside fleet of "
                f"{self.n_arrays}"
            )
        for item_id, target in self.pins:
            if not 0 <= target < self.n_arrays:
                raise ValidationError(
                    f"pin {item_id!r} -> array {target} outside fleet "
                    f"of {self.n_arrays}"
                )
        object.__setattr__(self, "pins", tuple(sorted(self.pins)))

    @property
    def array_id(self) -> str | None:
        """Namespace id for this shard; ``None`` for 1-array fleets."""
        if self.n_arrays == 1:
            return None
        from repro.fleet.routing import array_name

        return array_name(self.array_index)

    @property
    def label(self) -> str:
        """Short tag used in progress lines (``array 2/3``)."""
        return f"array {self.array_index + 1}/{self.n_arrays}"


@dataclass(frozen=True)
class ExperimentCell:
    """One independently runnable (workload × policy × config) cell."""

    workload: WorkloadSpec
    policy: PolicySpec
    config: EcoStorConfig = DEFAULT_CONFIG
    audit: bool = False
    #: Fault plan injected into the run; ``None`` means zero faults.
    faults: FaultPlan | None = None
    #: Fleet shard this cell replays; ``None`` runs the whole workload
    #: on one unnamespaced array (the legacy single-array path).
    shard: ShardSpec | None = None

    @property
    def label(self) -> str:
        """``workload × policy`` tag used in progress lines and errors."""
        base = f"{self.workload.label} x {self.policy.label}"
        if self.shard is not None:
            base = f"{base} @ {self.shard.label}"
        if self.faults is not None and self.faults:
            return f"{base} + faults[{self.faults.label}]"
        return base

    def _faults_fingerprint(self) -> str | None:
        """Content hash of the cell's fault plan (``None`` when faultless).

        A cached result is only valid for the exact fault schedule that
        produced it, so anything that cannot be fingerprinted losslessly
        must never silently share a key with the faultless run — reject
        it instead of guessing.
        """
        if self.faults is None:
            return None
        if not isinstance(self.faults, FaultPlan):
            raise ExperimentError(
                f"cell {self.workload.label} x {self.policy.label} has an "
                f"un-fingerprintable fault plan of type "
                f"{type(self.faults).__name__}; pass a repro.faults.FaultPlan"
            )
        if not self.faults:
            return None
        return self.faults.fingerprint()

    def cache_key(self) -> str:
        """Deterministic content hash identifying this cell's result.

        Mixes the workload fingerprint (trace content, not just its
        name), the policy name and options, every config field, the
        audit flag, and the fault-plan fingerprint (``None`` for the
        faultless cell — an empty plan and no plan replay identically,
        so they share a key).  Any input change yields a new key;
        unrelated code changes do not.
        """
        payload = {
            "format": CACHE_FORMAT,
            "workload": {
                "name": self.workload.name,
                "fingerprint": workload_fingerprint(self.workload),
            },
            "policy": {
                "name": self.policy.name,
                "options": [list(pair) for pair in self.policy.options],
            },
            "config": asdict(self.config),
            "audit": self.audit,
            "faults": self._faults_fingerprint(),
            "shard": None
            if self.shard is None
            else {
                "n_arrays": self.shard.n_arrays,
                "array_index": self.shard.array_index,
                "router_seed": self.shard.router_seed,
                "pins": [list(pair) for pair in self.shard.pins],
            },
        }
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CellOutcome:
    """What happened to one cell: a result, a cache hit, or a failure."""

    cell: ExperimentCell
    result: ExperimentResult | None = None
    #: Formatted traceback of the failure, or ``None`` on success.
    error: str | None = None
    from_cache: bool = False
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the cell produced a result."""
        return self.error is None

    def require(self) -> ExperimentResult:
        """The cell's result, or :class:`ExperimentError` if it failed."""
        if self.result is None:
            raise ExperimentError(
                f"cell {self.cell.label} failed:\n{self.error}"
            )
        return self.result


def _execute_cell(cell: ExperimentCell) -> dict[str, Any]:
    """Run one cell and return its serialized result (worker body)."""
    workload = cell.workload.build()
    array_id = None
    if cell.shard is not None:
        from repro.fleet.routing import HashRouter
        from repro.fleet.split import shard_workload

        shard = cell.shard
        router = HashRouter(shard.n_arrays, shard.router_seed, shard.pins)
        workload = shard_workload(workload, router, shard.array_index)
        array_id = shard.array_id
    result = run_cell(
        workload, cell.policy.build(), cell.config,
        audit=cell.audit, faults=cell.faults, array_id=array_id,
    )
    return result_to_dict(result)


def _execute_cell_safe(
    cell: ExperimentCell,
) -> tuple[bool, dict[str, Any] | str, float]:
    """:func:`_execute_cell` with failure isolation and timing.

    Returns ``(True, payload, seconds)`` on success or
    ``(False, traceback, seconds)`` when the cell raised — never
    propagates, so one bad cell cannot take a worker (or the sweep)
    down with it.
    """
    started = time.perf_counter()
    try:
        payload = _execute_cell(cell)
        return True, payload, time.perf_counter() - started
    except Exception:  # lint: ignore[R7] - worker isolation boundary
        return False, traceback.format_exc(), time.perf_counter() - started


class ExperimentEngine:
    """Runs experiment cells, multiprocess-parallel and cached.

    ``jobs`` is the worker count (1 = run inline in this process, still
    with caching and failure isolation).  ``cache_dir`` enables the
    on-disk result cache; ``None`` disables it.  ``progress`` (optional)
    receives one line per finished cell, in completion order.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        progress: ProgressFn | None = None,
    ) -> None:
        if jobs < 1:
            raise ValidationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.progress = progress
        #: Cells answered from the on-disk cache (cumulative).
        self.cache_hits = 0
        #: Cells actually replayed (cumulative) — the warm-cache
        #: invariant is ``replays == 0`` on a second identical run.
        self.replays = 0
        #: Cells that raised (cumulative).
        self.failures = 0

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------
    def _cache_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.json"

    def _cache_load(self, key: str) -> ExperimentResult | None:
        """Cached result for ``key``, or ``None`` (corrupt entries miss)."""
        path = self._cache_path(key)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            if entry.get("format") != CACHE_FORMAT or entry.get("key") != key:
                return None
            return result_from_dict(entry["result"])
        except (OSError, ValueError, KeyError, TypeError, ExperimentError):
            return None

    def _cache_store(
        self, key: str, cell: ExperimentCell, payload: dict[str, Any]
    ) -> None:
        """Persist one finished cell atomically (tmp file + rename)."""
        assert self.cache_dir is not None
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT,
            "key": key,
            "cell": cell.label,
            "workload_fingerprint": workload_fingerprint(cell.workload),
            "result": payload,
        }
        path = self._cache_path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _report(self, done: int, total: int, outcome: CellOutcome) -> None:
        if self.progress is None:
            return
        if outcome.from_cache:
            status = "cached"
        elif outcome.ok:
            status = f"ok ({outcome.elapsed_seconds:.1f} s)"
        else:
            status = "FAILED"
        self.progress(f"[{done}/{total}] {outcome.cell.label}: {status}")

    def _finish(
        self,
        index_cell_key: tuple[int, ExperimentCell, str | None],
        ok: bool,
        payload: dict[str, Any] | str,
        elapsed: float,
    ) -> tuple[int, CellOutcome]:
        """Turn one executed cell's raw payload into a recorded outcome."""
        index, cell, key = index_cell_key
        self.replays += 1
        if ok:
            assert isinstance(payload, dict)
            if key is not None:
                self._cache_store(key, cell, payload)
            outcome = CellOutcome(
                cell=cell,
                result=result_from_dict(payload),
                elapsed_seconds=elapsed,
            )
        else:
            assert isinstance(payload, str)
            self.failures += 1
            outcome = CellOutcome(cell=cell, error=payload,
                                  elapsed_seconds=elapsed)
        return index, outcome

    def run_cells(
        self, cells: Sequence[ExperimentCell]
    ) -> list[CellOutcome]:
        """Run every cell; outcomes come back in the cells' order.

        Cached cells are answered without replaying anything; the rest
        run inline (``jobs == 1``) or across the worker pool.  Failures
        are isolated per cell — inspect :attr:`CellOutcome.error` or call
        :meth:`CellOutcome.require`.
        """
        cells = list(cells)
        total = len(cells)
        outcomes: dict[int, CellOutcome] = {}
        pending: list[tuple[int, ExperimentCell, str | None]] = []
        done = 0
        for index, cell in enumerate(cells):
            key = cell.cache_key() if self.cache_dir is not None else None
            cached = self._cache_load(key) if key is not None else None
            if cached is not None:
                self.cache_hits += 1
                outcomes[index] = CellOutcome(
                    cell=cell, result=cached, from_cache=True
                )
                done += 1
                self._report(done, total, outcomes[index])
            else:
                pending.append((index, cell, key))

        if self.jobs == 1 or len(pending) <= 1:
            for item in pending:
                ok, payload, elapsed = _execute_cell_safe(item[1])
                index, outcome = self._finish(item, ok, payload, elapsed)
                outcomes[index] = outcome
                done += 1
                self._report(done, total, outcome)
        elif pending:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_execute_cell_safe, item[1]): item
                    for item in pending
                }
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(
                        remaining, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        item = futures[future]
                        try:
                            ok, payload, elapsed = future.result()
                        except Exception:  # lint: ignore[R7] - pool boundary
                            # Worker died (pool broken, unpicklable
                            # payload, ...): isolate as a cell failure.
                            ok, payload, elapsed = (
                                False, traceback.format_exc(), 0.0,
                            )
                        index, outcome = self._finish(
                            item, ok, payload, elapsed
                        )
                        outcomes[index] = outcome
                        done += 1
                        self._report(done, total, outcome)

        return [outcomes[index] for index in range(total)]


# ---------------------------------------------------------------------------
# grid helpers
# ---------------------------------------------------------------------------
def standard_cells(
    workload: WorkloadSpec,
    config: EcoStorConfig = DEFAULT_CONFIG,
    policies: Sequence[str] | None = None,
) -> list[ExperimentCell]:
    """Cells for one workload under the standard policies (figure order)."""
    chosen = list(policies) if policies is not None else list(STANDARD_POLICIES)
    return [
        ExperimentCell(workload=workload, policy=PolicySpec(name), config=config)
        for name in chosen
    ]


def comparison_results(
    name: str,
    full: bool = True,
    config: EcoStorConfig = DEFAULT_CONFIG,
    engine: "ExperimentEngine | None" = None,
) -> dict[str, ExperimentResult]:
    """All standard policies over one catalog workload, via the engine.

    The engine-routed equivalent of
    :func:`repro.experiments.runner.run_comparison`; results are
    numerically identical to the serial path.  Raises
    :class:`~repro.errors.ExperimentError` if any cell failed.
    """
    chosen = engine if engine is not None else default_engine()
    cells = standard_cells(WorkloadSpec(name=name, full=full), config)
    outcomes = chosen.run_cells(cells)
    return {o.cell.policy.name: o.require() for o in outcomes}


# ---------------------------------------------------------------------------
# process-wide engine defaults (set once by the CLI, read by the drivers)
# ---------------------------------------------------------------------------
@dataclass
class _EngineDefaults:
    """Mutable engine defaults shared by every figure driver."""

    jobs: int = 1
    cache_dir: Path | None = None
    progress: ProgressFn | None = None


_DEFAULTS = _EngineDefaults()


def configure(
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    progress: ProgressFn | None = None,
) -> None:
    """Set process-wide defaults for :func:`default_engine`.

    Called by the CLI before any figure driver runs, so every
    ``comparison`` / ablation / scaling sweep in the process picks up
    ``--jobs`` and ``--cache-dir``.  Configure *before* the first sweep:
    finished comparisons are memoized and will not re-run.
    """
    if jobs is not None:
        if jobs < 1:
            raise ValidationError(f"jobs must be >= 1, got {jobs}")
        _DEFAULTS.jobs = jobs
    if cache_dir is not None:
        _DEFAULTS.cache_dir = Path(cache_dir)
    if progress is not None:
        _DEFAULTS.progress = progress


def default_engine() -> ExperimentEngine:
    """A fresh engine built from the :func:`configure` defaults."""
    return ExperimentEngine(
        jobs=_DEFAULTS.jobs,
        cache_dir=_DEFAULTS.cache_dir,
        progress=_DEFAULTS.progress,
    )
