"""Configuration-scaling study (paper §IX future work).

"The proposed methods will be applied to petabyte-scale databases to
examine the effectiveness of the system on different configurations."
This study sweeps the File Server deployment across enclosure counts
(the array growing with the data) and checks that the proposed method's
relative saving holds as the configuration scales — the property a
datacenter operator actually needs.
"""

from __future__ import annotations

from functools import lru_cache

from repro.analysis.metrics import power_saving_percent
from repro.analysis.report import PaperRow, render_table, watts
from repro.config import DEFAULT_CONFIG

#: Array sizes swept (enclosures); 12 is the paper's Table I layout.
ENCLOSURE_SWEEP = (6, 12, 18)

#: Shortened duration: the sweep triples the work of one cell.
SWEEP_DURATION = 5400.0


@lru_cache(maxsize=None)
def run_point(enclosure_count: int) -> tuple[float, float]:
    """(baseline watts, proposed watts) for one array size.

    Both cells of the point go through the parallel experiment engine
    as one batch, so a configured engine replays them concurrently and
    caches each under its own (trace-fingerprint, policy) key.
    """
    from repro.experiments import parallel

    workload = parallel.WorkloadSpec(
        name="fileserver",
        overrides=(
            ("duration", SWEEP_DURATION),
            ("enclosure_count", enclosure_count),
        ),
    )
    cells = parallel.standard_cells(
        workload, DEFAULT_CONFIG, policies=("no-power-saving", "proposed")
    )
    base, ours = (
        outcome.require()
        for outcome in parallel.default_engine().run_cells(cells)
    )
    return base.enclosure_watts, ours.enclosure_watts


def sweep() -> dict[int, float]:
    """Proposed-method saving (%) per array size."""
    out = {}
    for count in ENCLOSURE_SWEEP:
        base, ours = run_point(count)
        out[count] = power_saving_percent(base, ours)
    return out


def rows() -> list[PaperRow]:
    """Scaling rows: power saving at each array size."""
    result = []
    for count in ENCLOSURE_SWEEP:
        base, ours = run_point(count)
        saving = power_saving_percent(base, ours)
        result.append(
            PaperRow(
                label=f"fileserver x{count} enclosures",
                paper="§IX: effectiveness across configurations",
                measured=f"{watts(base)} -> {watts(ours)}",
                note=f"saving {saving:.1f} %",
            )
        )
    return result


def run() -> str:
    """Render the array-size scaling table."""
    return render_table("Scaling study — array size sweep (§IX)", rows())
