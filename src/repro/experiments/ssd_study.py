"""SSD extension study (paper §VIII-D).

The paper argues the approach transfers to SSD storage because it works
from application I/O behaviour, not device mechanics.  This study runs
the same workload on two hardware models:

* the default HDD enclosures (break-even 52 s), and
* all-flash enclosures (:data:`repro.storage.power.SSD_POWER_MODEL`,
  break-even ≈ 4 s — transitions are nearly free),

each with the classification/placement parameters re-derived from the
hardware's actual break-even time, exactly as §II-B prescribes.

Finding (see the benchmark): the mechanism *transfers* but its leverage
shifts.  With a ~4 s break-even almost every inter-access gap is a Long
Interval, so nearly all items classify P1/P2, the P3 class — and with
it the consolidation lever of Algorithms 2-3 — disappears, and the
residual saving comes from preload/write-delay alone.  The absolute
power is of course far lower on flash to begin with.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache

from repro.analysis.metrics import power_saving_percent
from repro.analysis.report import PaperRow, render_table, watts
from repro.baselines.nopower import NoPowerSavingPolicy
from repro.config import DEFAULT_CONFIG, EcoStorConfig
from repro.core.manager import EnergyEfficientPolicy
from repro.experiments.runner import ExperimentResult, run_cell
from repro.experiments.testbed import build_workload
from repro.storage.power import SSD_POWER_MODEL


def ssd_config(base: EcoStorConfig = DEFAULT_CONFIG) -> EcoStorConfig:
    """The evaluation config re-targeted at all-flash enclosures.

    Every break-even-derived parameter follows the hardware: the
    algorithmic break-even time, the spin-down timeout (paper: equal to
    break-even), and the initial monitoring period (ten break-evens).
    """
    break_even = SSD_POWER_MODEL.break_even_time
    return replace(
        base,
        enclosure_power=SSD_POWER_MODEL,
        break_even_time=break_even,
        spin_down_timeout=break_even,
        initial_monitoring_period=10.0 * break_even,
    )


@lru_cache(maxsize=None)
def run_study(
    workload_name: str = "fileserver", full: bool = False
) -> dict[str, ExperimentResult]:
    """Four cells: {hdd, ssd} × {no-power-saving, proposed}."""
    workload = build_workload(workload_name, full)
    flash = ssd_config()
    return {
        "hdd/none": run_cell(workload, NoPowerSavingPolicy(), DEFAULT_CONFIG),
        "hdd/proposed": run_cell(
            workload, EnergyEfficientPolicy(), DEFAULT_CONFIG
        ),
        "ssd/none": run_cell(workload, NoPowerSavingPolicy(), flash),
        "ssd/proposed": run_cell(workload, EnergyEfficientPolicy(), flash),
    }


def savings(results: dict[str, ExperimentResult]) -> dict[str, float]:
    """Proposed-method saving per hardware tier."""
    return {
        tier: power_saving_percent(
            results[f"{tier}/none"].enclosure_watts,
            results[f"{tier}/proposed"].enclosure_watts,
        )
        for tier in ("hdd", "ssd")
    }


def rows_for(workload_name: str = "fileserver", full: bool = False) -> list[PaperRow]:
    """SSD-study rows comparing HDD and flash break-even."""
    results = run_study(workload_name, full)
    pct = savings(results)
    rows = []
    for cell, result in results.items():
        tier = cell.split("/")[0]
        note = (
            f"saving {pct[tier]:.1f} %" if cell.endswith("proposed") else ""
        )
        rows.append(
            PaperRow(
                label=f"{workload_name} {cell}",
                paper="§VIII-D: applies to SSDs",
                measured=watts(result.enclosure_watts),
                note=note,
            )
        )
    return rows


def run(workload_name: str = "fileserver", full: bool = False) -> str:
    """Render the SSD-vs-HDD break-even study table."""
    return render_table(
        "SSD study — same method, flash break-even (§VIII-D)",
        rows_for(workload_name, full),
    )
