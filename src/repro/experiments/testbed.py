"""Workload catalog for the evaluation (the Fig 5 testbed's three runs).

``build_workload`` returns either the **full** configuration — the
paper's Table I durations — or a **smoke** configuration (shortened) for
tests and quick checks.  The full comparisons are expensive (10^5 I/Os ×
4 policies), so :func:`comparison` memoizes them per process; benchmarks
and report generation share one set of runs.
"""

from __future__ import annotations

from functools import lru_cache

from repro import units
from repro.errors import ValidationError
from repro.config import DEFAULT_CONFIG, EcoStorConfig
from repro.experiments.runner import ExperimentResult
from repro.workloads import (
    build_dss_workload,
    build_fileserver_workload,
    build_oltp_workload,
)
from repro.workloads.items import Workload

WORKLOAD_NAMES = ("fileserver", "tpcc", "tpch")

#: Query subset used by the smoke TPC-H run: covers a single-table scan
#: (Q1/Q6), wide joins (Q9), and the Fig 15 queries (Q2, Q21).
SMOKE_QUERIES = ("Q1", "Q2", "Q6", "Q9", "Q21")


@lru_cache(maxsize=None)
def build_workload(name: str, full: bool = True, seed: int = 0) -> Workload:
    """Build one of the three evaluation workloads.

    ``seed=0`` means "the workload's own default seed" (the shipped
    experiment); other seeds give independent replicates.
    """
    if name == "fileserver":
        kwargs = {} if full else {"duration": units.HOUR}
        return build_fileserver_workload(**kwargs, **_seed(1, seed))
    if name == "tpcc":
        kwargs = {} if full else {"duration": 2400.0}
        return build_oltp_workload(**kwargs, **_seed(2, seed))
    if name == "tpch":
        kwargs = (
            {}
            if full
            else {"duration": 5400.0, "queries": SMOKE_QUERIES}
        )
        return build_dss_workload(**kwargs, **_seed(3, seed))
    raise ValidationError(f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}")


def _seed(default: int, seed: int) -> dict[str, int]:
    return {"seed": default if seed == 0 else seed}


@lru_cache(maxsize=None)
def comparison(
    name: str, full: bool = True, config: EcoStorConfig = DEFAULT_CONFIG
) -> dict[str, ExperimentResult]:
    """All four policies over one workload, memoized per process.

    Routed through the parallel experiment engine: with the default
    engine configuration (one job, no cache) the cells replay inline
    and the results are numerically identical to
    :func:`~repro.experiments.runner.run_comparison`; after
    ``repro.experiments.parallel.configure(jobs=..., cache_dir=...)``
    the same call fans out across workers and reuses cached cells.
    """
    from repro.experiments import parallel

    return parallel.comparison_results(name, full=full, config=config)


def clear_cache() -> None:
    """Drop memoized workloads and comparisons (tests use this)."""
    build_workload.cache_clear()
    comparison.cache_clear()
