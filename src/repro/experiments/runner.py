"""Experiment runner: one (workload × policy) cell of the evaluation.

Builds a fresh simulated storage system (the Fig 5 testbed), installs
the workload, replays its trace under the chosen policy, and packages
the measurements every figure of §VII needs.  :func:`run_comparison`
runs all four methods on the same workload, which is exactly one column
group of the paper's bar charts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.intervals import IntervalCurve, interval_curve
from repro.analysis.metrics import WindowResponse, window_read_responses
from repro.baselines.base import PowerPolicy
from repro.baselines.ddr import DDRPolicy
from repro.baselines.nopower import NoPowerSavingPolicy
from repro.baselines.pdc import PDCPolicy
from repro.baselines.tiered import TieredLifecyclePolicy
from repro.config import DEFAULT_CONFIG, EcoStorConfig
from repro.core.manager import EnergyEfficientPolicy
from repro.faults.plan import FaultPlan
from repro.monitoring.tiers import TierBooks, TierReport
from repro.simulation import build_context, build_tiered_context
from repro.trace.replay import ReplayResult, TraceReplayer
from repro.workloads.items import Workload

PolicyFactory = Callable[[], PowerPolicy]

#: The paper's four evaluated methods, in figure order.
STANDARD_POLICIES: dict[str, PolicyFactory] = {
    "no-power-saving": NoPowerSavingPolicy,
    "proposed": EnergyEfficientPolicy,
    "pdc": PDCPolicy,
    "ddr": DDRPolicy,
}

#: Every runnable policy: the paper's four plus the multi-tier
#: extensions.  Policies here but not in :data:`STANDARD_POLICIES`
#: need a tiered testbed (:func:`repro.simulation.build_tiered_context`)
#: and are excluded from the figure-reproduction comparisons.
ALL_POLICIES: dict[str, PolicyFactory] = {
    **STANDARD_POLICIES,
    "tiered-lifecycle": TieredLifecyclePolicy,
}

#: Policies whose testbed must be built with tiers.
TIERED_POLICIES = frozenset({"tiered-lifecycle"})


@dataclass(frozen=True)
class ExperimentResult:
    """Everything measured from one (workload, policy) run."""

    workload_name: str
    policy_name: str
    replay: ReplayResult
    #: Cumulative I/O-interval curve across all enclosures (Figs 17–19).
    interval_curve: IntervalCurve
    #: Per-phase read responses (TPC-H query windows; empty otherwise).
    window_responses: list[WindowResponse]
    #: Average power of the disk enclosures only, in watts.
    enclosure_watts: float
    #: Average power of the storage controller, in watts.
    controller_watts: float
    #: Invariant-audit checks that ran (0 unless ``run_cell(audit=True)``).
    audit_checks: int = 0

    @property
    def migrated_bytes(self) -> int:
        """Bytes migrated between enclosures during the run."""
        return self.replay.migrated_bytes

    @property
    def determinations(self) -> int:
        """Number of placement determinations the policy made."""
        return self.replay.determinations

    @property
    def mean_response(self) -> float:
        """Mean response time across all I/Os, in seconds."""
        return self.replay.mean_response

    @property
    def mean_read_response(self) -> float:
        """Mean response time of read I/Os, in seconds."""
        return self.replay.mean_read_response

    def to_dict(self) -> dict:
        """Lossless plain-JSON-types view of this result.

        Round-trips exactly through :meth:`from_dict` — the parallel
        engine relies on this to keep worker and cache results
        bit-identical to the serial path.
        """
        from repro.experiments.serialize import result_to_dict

        return result_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        """Rebuild a result serialized by :meth:`to_dict`."""
        from repro.experiments.serialize import result_from_dict

        return result_from_dict(data)


def run_cell(
    workload: Workload,
    policy: PowerPolicy,
    config: EcoStorConfig = DEFAULT_CONFIG,
    audit: bool = False,
    faults: FaultPlan | None = None,
    array_id: str | None = None,
) -> ExperimentResult:
    """Replay one workload under one policy on a fresh testbed.

    With ``audit=True`` an :class:`~repro.devtools.audit.InvariantAuditor`
    rides along: every monitoring period the run's energy, capacity, and
    time accounting is re-derived and any drift raises
    :class:`~repro.errors.AuditError` instead of silently corrupting the
    reported numbers.

    ``faults`` injects a :class:`~repro.faults.plan.FaultPlan` into the
    testbed (spin-up failures, outages, battery loss, ...); ``None`` or
    an empty plan replays bit-identically to the pre-fault engine.

    ``array_id`` namespaces the testbed's component names for fleet
    runs (:mod:`repro.fleet`); ``None`` keeps the legacy names and the
    legacy bit-identical results.
    """
    context = build_context(
        config, workload.enclosure_count, faults=faults, array_id=array_id
    )
    workload.install(context)
    auditor = None
    if audit:
        from repro.devtools.audit import InvariantAuditor

        auditor = InvariantAuditor(context)
    replayer = TraceReplayer(context, policy, auditor=auditor)
    replay = replayer.run(workload.records, duration=workload.duration)
    curve = interval_curve(
        context.storage_monitor.all_intervals(), config.break_even_time
    )
    windows = (
        window_read_responses(context.app_monitor.response_samples, workload.phases)
        if workload.phases
        else []
    )
    return ExperimentResult(
        workload_name=workload.name,
        policy_name=policy.name,
        replay=replay,
        interval_curve=curve,
        window_responses=windows,
        enclosure_watts=replay.power.enclosure_watts,
        controller_watts=replay.power.controller_watts,
        audit_checks=auditor.checks_run if auditor is not None else 0,
    )


@dataclass(frozen=True)
class TieredCellResult:
    """One tiered (workload, policy) run plus its closing per-tier books."""

    result: ExperimentResult
    #: Per-tier energy/capacity/latency books at end of run, in
    #: ``(kind.rank, name)`` order (flash, hdd, archive).
    tier_reports: tuple[TierReport, ...]

    @property
    def energy_joules(self) -> float:
        """Total enclosure energy across every tier, in joules."""
        return sum(report.energy_joules for report in self.tier_reports)

    @property
    def capacity_cost(self) -> float:
        """Total placed-byte capacity cost across tiers (docs/tiers.md)."""
        return sum(report.cost_units for report in self.tier_reports)


def run_tiered_cell(
    workload: Workload,
    policy: PowerPolicy,
    config: EcoStorConfig = DEFAULT_CONFIG,
    audit: bool = False,
    flash_count: int = 1,
    archive_count: int = 1,
    faults: FaultPlan | None = None,
    array_id: str | None = None,
) -> TieredCellResult:
    """Replay one workload under a tier-aware policy on a tiered testbed.

    Mirrors :func:`run_cell` but builds the multi-tier Fig 5 variant
    (:func:`repro.simulation.build_tiered_context`): the workload's
    enclosures become the HDD tier and ``flash_count``/``archive_count``
    extra devices form the flash and archive tiers (either may be 0).
    The returned :class:`TieredCellResult` carries the closing per-tier
    books next to the usual :class:`ExperimentResult`, so callers can
    draw the energy-vs-latency-vs-capacity-cost frontier without
    re-deriving anything.
    """
    context = build_tiered_context(
        config,
        workload.enclosure_count,
        flash_count=flash_count,
        archive_count=archive_count,
        faults=faults,
        array_id=array_id,
    )
    workload.install(context)
    auditor = None
    if audit:
        from repro.devtools.audit import InvariantAuditor

        auditor = InvariantAuditor(context)
    replayer = TraceReplayer(context, policy, auditor=auditor)
    replay = replayer.run(workload.records, duration=workload.duration)
    curve = interval_curve(
        context.storage_monitor.all_intervals(), config.break_even_time
    )
    windows = (
        window_read_responses(context.app_monitor.response_samples, workload.phases)
        if workload.phases
        else []
    )
    books = TierBooks(context.virtualization, context.controller)
    result = ExperimentResult(
        workload_name=workload.name,
        policy_name=policy.name,
        replay=replay,
        interval_curve=curve,
        window_responses=windows,
        enclosure_watts=replay.power.enclosure_watts,
        controller_watts=replay.power.controller_watts,
        audit_checks=auditor.checks_run if auditor is not None else 0,
    )
    return TieredCellResult(result=result, tier_reports=tuple(books.report()))


def run_comparison(
    workload: Workload,
    policies: dict[str, PolicyFactory] | None = None,
    config: EcoStorConfig = DEFAULT_CONFIG,
) -> dict[str, ExperimentResult]:
    """Run several policies over the same workload (one figure group)."""
    chosen = policies or STANDARD_POLICIES
    return {
        name: run_cell(workload, factory(), config)
        for name, factory in chosen.items()
    }
