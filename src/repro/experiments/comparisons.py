"""Shared paper-vs-measured row builders for the §VII figures.

Each evaluated workload gets the same three figure kinds (power,
application performance, migrated data) plus the placement-determination
counts from the §VII-D text; this module builds the common rows from a
memoized :func:`repro.experiments.testbed.comparison`.
"""

from __future__ import annotations

from repro.analysis.metrics import power_saving_percent
from repro.analysis.report import PaperRow, gigabytes, percent, seconds, watts
from repro.experiments.paper_values import (
    DETERMINATIONS,
    MIGRATED_BYTES,
    POWER_SAVING_PERCENT,
    POWER_WATTS,
)
from repro.experiments.runner import ExperimentResult

POLICY_ORDER = ("no-power-saving", "proposed", "pdc", "ddr")


def power_rows(
    workload_name: str, results: dict[str, ExperimentResult]
) -> list[PaperRow]:
    """Figs 8/11/14: average disk-enclosure power per policy."""
    baseline = results["no-power-saving"].enclosure_watts
    rows = []
    for policy in POLICY_ORDER:
        result = results[policy]
        note = ""
        if policy != "no-power-saving":
            paper_pct = POWER_SAVING_PERCENT[workload_name][policy]
            measured_pct = power_saving_percent(
                baseline, result.enclosure_watts
            )
            note = f"saving: paper {percent(paper_pct)}, measured {percent(measured_pct)}"
        rows.append(
            PaperRow(
                label=f"{workload_name} power {policy}",
                paper=watts(POWER_WATTS[workload_name][policy]),
                measured=watts(result.enclosure_watts),
                note=note,
            )
        )
    return rows


def saving_percentages(
    results: dict[str, ExperimentResult],
) -> dict[str, float]:
    """Measured power-saving percentage per policy."""
    baseline = results["no-power-saving"].enclosure_watts
    return {
        policy: power_saving_percent(baseline, result.enclosure_watts)
        for policy, result in results.items()
        if policy != "no-power-saving"
    }


def migration_rows(
    workload_name: str, results: dict[str, ExperimentResult]
) -> list[PaperRow]:
    """Figs 10/13/16: total migrated data per policy."""
    rows = []
    for policy in ("proposed", "pdc", "ddr"):
        rows.append(
            PaperRow(
                label=f"{workload_name} migrated {policy}",
                paper=gigabytes(MIGRATED_BYTES[workload_name][policy]),
                measured=gigabytes(results[policy].migrated_bytes),
                note="paper value approximate where only a bound is given",
            )
        )
    return rows


def determination_rows(
    workload_name: str, results: dict[str, ExperimentResult]
) -> list[PaperRow]:
    """§VII-D text: number of data-placement determinations."""
    rows = []
    for policy in ("proposed", "pdc", "ddr"):
        rows.append(
            PaperRow(
                label=f"{workload_name} determinations {policy}",
                paper=str(DETERMINATIONS[workload_name][policy]),
                measured=str(results[policy].determinations),
            )
        )
    return rows


def response_rows(
    workload_name: str,
    results: dict[str, ExperimentResult],
    paper_values: dict[str, float] | None = None,
) -> list[PaperRow]:
    """Average I/O response per policy (Fig 9 for the File Server)."""
    rows = []
    for policy in POLICY_ORDER:
        paper = (
            seconds(paper_values[policy])
            if paper_values and policy in paper_values
            else "-"
        )
        rows.append(
            PaperRow(
                label=f"{workload_name} response {policy}",
                paper=paper,
                measured=seconds(results[policy].mean_response),
                note="absolute values are at simulation scale",
            )
        )
    return rows
