"""Figs 17–19 — cumulative I/O-interval analysis (§VII-E).

For each workload and policy, the curve of cumulative length of disk-
enclosure I/O intervals longer than the break-even time.  The paper's
claims:

* Fig 17 (File Server): the proposed method accumulates roughly twice
  the total long-interval length of PDC/DDR;
* Fig 18 (TPC-C): DDR has *no* interval longer than the break-even
  time; the proposed method's intervals are the longest;
* Fig 19 (TPC-H): all methods accumulate long intervals, the proposed
  method the most.
"""

from __future__ import annotations

from repro.analysis.intervals import IntervalCurve
from repro.analysis.report import PaperRow, render_table
from repro.experiments.testbed import comparison

FIGURE_BY_WORKLOAD = {"fileserver": 17, "tpcc": 18, "tpch": 19}


def curves(
    workload_name: str, full: bool = True
) -> dict[str, IntervalCurve]:
    """Per-policy interval curves for one workload."""
    results = comparison(workload_name, full)
    return {
        policy: result.interval_curve for policy, result in results.items()
    }


def total_lengths(
    workload_name: str, full: bool = True
) -> dict[str, float]:
    """Σ of long-interval lengths per policy (the curves' endpoints)."""
    return {
        policy: curve.total_length
        for policy, curve in curves(workload_name, full).items()
    }


def rows_for(workload_name: str, full: bool = True) -> list[PaperRow]:
    """Cumulative long-interval rows for one workload's figure."""
    fig = FIGURE_BY_WORKLOAD[workload_name]
    totals = total_lengths(workload_name, full)
    rows = []
    for policy, total in totals.items():
        note = ""
        if workload_name == "fileserver" and policy == "proposed":
            note = "paper: ~2x the other methods"
        if workload_name == "tpcc" and policy == "ddr":
            note = "paper: no intervals above break-even"
        rows.append(
            PaperRow(
                label=f"fig{fig} {workload_name} total long intervals {policy}",
                paper="-",
                measured=f"{total:,.0f} s",
                note=note,
            )
        )
    return rows


def run(full: bool = True) -> str:
    """Render the Fig 17-19 cumulative long-interval tables."""
    sections = []
    for name, fig in FIGURE_BY_WORKLOAD.items():
        sections.append(
            render_table(
                f"Fig {fig} — {name} cumulative long intervals",
                rows_for(name, full),
            )
        )
    return "\n\n".join(sections)
