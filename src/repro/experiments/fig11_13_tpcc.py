"""Figs 11–13 — TPC-C evaluation (power, throughput, migration).

Paper §VII-D.2: 15.7 % power saving for the proposed method (PDC 10.7 %,
DDR none), with the smallest throughput loss (1701.4 tpmC, −8.5 %)
because preloading keeps read responses short, and far less migration
than PDC's > 1 TB.
"""

from __future__ import annotations

from repro.analysis.metrics import transaction_throughput
from repro.analysis.report import PaperRow, render_table
from repro.experiments.comparisons import (
    determination_rows,
    migration_rows,
    power_rows,
)
from repro.experiments.paper_values import FIG12_TPMC
from repro.experiments.runner import ExperimentResult
from repro.experiments.testbed import comparison

WORKLOAD = "tpcc"


def results(full: bool = True) -> dict[str, ExperimentResult]:
    """Run the TPC-C comparison across all policies."""
    return comparison(WORKLOAD, full)


def fig11_rows(full: bool = True) -> list[PaperRow]:
    """Fig 11: average power of the disk enclosures."""
    return power_rows(WORKLOAD, results(full))


def measured_tpmc(full: bool = True) -> dict[str, float]:
    """Fig 12: transaction throughput per policy (§VII-A.5 conversion)."""
    res = results(full)
    r_orig = res["no-power-saving"].mean_read_response
    t_orig = FIG12_TPMC["no-power-saving"]
    return {
        policy: transaction_throughput(
            t_orig, r_orig, result.mean_read_response
        )
        for policy, result in res.items()
    }


def fig12_rows(full: bool = True) -> list[PaperRow]:
    """Fig 12 rows: measured tpmC throughput per policy."""
    tpmc = measured_tpmc(full)
    rows = []
    for policy in ("no-power-saving", "proposed", "pdc", "ddr"):
        paper = (
            f"{FIG12_TPMC[policy]:.1f}" if policy in FIG12_TPMC else "-"
        )
        rows.append(
            PaperRow(
                label=f"tpcc tpmC {policy}",
                paper=paper,
                measured=f"{tpmc[policy]:.1f}",
                note="t = t_orig x r_orig / r (sign-fixed, see DESIGN.md)",
            )
        )
    return rows


def fig13_rows(full: bool = True) -> list[PaperRow]:
    """Fig 13: total migrated data size, plus §VII-D.2 determinations."""
    res = results(full)
    return migration_rows(WORKLOAD, res) + determination_rows(WORKLOAD, res)


def run(full: bool = True) -> str:
    """Render the Fig 11-13 TPC-C tables."""
    return "\n\n".join(
        [
            render_table("Fig 11 — TPC-C power", fig11_rows(full)),
            render_table("Fig 12 — TPC-C throughput", fig12_rows(full)),
            render_table("Fig 13 — TPC-C migration", fig13_rows(full)),
        ]
    )
