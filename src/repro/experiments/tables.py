"""Tables I and II — configuration reproduction.

Table I describes the three applications (data sizes, workload shapes,
durations, enclosure layout); Table II the parameter values of the
proposed method and the baselines.  This module renders both from the
living configuration so drift between code and documentation is
impossible, and records the paper's values alongside.
"""

from __future__ import annotations

from repro import units
from repro.analysis.report import PaperRow, render_table
from repro.config import DEFAULT_CONFIG, PAPER_CONFIG, EcoStorConfig
from repro.experiments.testbed import build_workload


def table1_rows(full: bool = True) -> list[PaperRow]:
    """Table I: configuration of the data-intensive applications."""
    rows = []
    paper = {
        "fileserver": ("6 hr, 36 volumes / 12 enclosures", "19.8M records"),
        "tpcc": ("1.8 hr, log + 9 DB enclosures", "500 GB"),
        "tpch": ("6 hr, log/work + 8 DB enclosures", "100 GB (SF=100)"),
    }
    for name, (paper_shape, paper_size) in paper.items():
        workload = build_workload(name, full)
        total_bytes = sum(item.size_bytes for item in workload.items)
        rows.append(
            PaperRow(
                label=f"{name} layout",
                paper=paper_shape,
                measured=(
                    f"{units.format_duration(workload.duration)}, "
                    f"{workload.enclosure_count} enclosures, "
                    f"{len(workload.items)} items"
                ),
            )
        )
        rows.append(
            PaperRow(
                label=f"{name} data size",
                paper=paper_size,
                measured=units.format_bytes(total_bytes),
                note="sizes at 1/8 simulation scale (DESIGN.md §2)",
            )
        )
    return rows


def table2_rows(config: EcoStorConfig = PAPER_CONFIG) -> list[PaperRow]:
    """Table II: parameter values for the evaluation."""

    def row(label: str, paper: str, measured: str, note: str = "") -> PaperRow:
        return PaperRow(label, paper, measured, note)

    return [
        row("break-even time", "52 sec", f"{config.break_even_time:g} sec"),
        row(
            "spin-down time-out",
            "52 sec (equal to break-even)",
            f"{config.spin_down_timeout:g} sec",
        ),
        row(
            "max IOPS of enclosure (random)",
            "900",
            f"{config.max_iops_random:g}",
        ),
        row(
            "max IOPS of enclosure (sequential)",
            "2800",
            f"{config.max_iops_sequential:g}",
        ),
        row(
            "size of volumes on enclosure",
            "1.7 TB",
            units.format_bytes(config.enclosure_size_bytes),
        ),
        row(
            "storage cache size",
            "2 GB",
            units.format_bytes(config.storage_cache_bytes),
        ),
        row(
            "cache for write delay",
            "500 MB",
            units.format_bytes(config.write_delay_cache_bytes),
        ),
        row(
            "cache for preload",
            "500 MB",
            units.format_bytes(config.preload_cache_bytes),
        ),
        row(
            "dirty block rate",
            "50 %",
            f"{config.dirty_block_rate * 100:g} %",
        ),
        row("alpha", "1.2", f"{config.monitoring_alpha:g}"),
        row(
            "initial monitoring period",
            "520 sec",
            f"{config.initial_monitoring_period:g} sec",
        ),
        row(
            "PDC monitoring period",
            "30 min",
            units.format_duration(config.pdc_monitoring_period),
        ),
        row("DDR TargetTH", "450 IOPS", f"{config.ddr_target_th:g} IOPS"),
        row(
            "physical break-even of power model",
            "(calibrated)",
            f"{config.enclosure_power.break_even_time:.1f} sec",
            "must agree with the configured 52 s",
        ),
    ]


def run(full: bool = True) -> str:
    """Render Tables I-III (configuration and testbed parameters)."""
    scaled = DEFAULT_CONFIG
    return "\n\n".join(
        [
            render_table("Table I — application configuration", table1_rows(full)),
            render_table(
                "Table II — parameter values (paper magnitude)", table2_rows()
            ),
            render_table(
                "Table II — parameter values (simulation scale)",
                table2_rows(scaled),
            ),
        ]
    )
