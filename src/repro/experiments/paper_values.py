"""The paper's reported numbers, transcribed from §VI–§VII.

These constants feed the paper-vs-measured tables in EXPERIMENTS.md and
the shape assertions in the benchmark suite.  Where the paper gives only
a percentage or a qualitative statement, the derived/approximate value
is marked in comments.
"""

from __future__ import annotations

from repro import units

# --- Fig 6: logical I/O pattern mix (% of data items) -------------------
FIG6_PATTERN_MIX: dict[str, dict[str, float]] = {
    "fileserver": {"P0": 0.0, "P1": 89.6, "P2": 0.5, "P3": 9.9},
    "tpcc": {"P0": 0.0, "P1": 23.3, "P2": 0.5, "P3": 76.2},
    "tpch": {"P0": 0.0, "P1": 61.5, "P2": 38.5, "P3": 0.0},
}

# --- Figs 8/11/14: disk-enclosure average power (watts) ------------------
POWER_WATTS: dict[str, dict[str, float]] = {
    "fileserver": {
        "no-power-saving": 2977.9,
        "proposed": 2209.2,  # -25.8 %
        "pdc": 2873.9,  # -3.5 %
        "ddr": 2869.7,  # -3.6 %
    },
    "tpcc": {
        "no-power-saving": 2656.4,
        "proposed": 2238.1,  # -15.7 %
        "pdc": 2372.2,  # "a decrease of 10.7%" (watts derived)
        "ddr": 2656.4,  # "could not reduce the power consumption"
    },
    "tpch": {
        "no-power-saving": 2191.2,
        "proposed": 638.8,  # -70.8 %
        "pdc": 965.2,  # -55.9 %
        "ddr": 657.9,  # -69.9 %
    },
}

POWER_SAVING_PERCENT: dict[str, dict[str, float]] = {
    "fileserver": {"proposed": 25.8, "pdc": 3.5, "ddr": 3.6},
    "tpcc": {"proposed": 15.7, "pdc": 10.7, "ddr": 0.0},
    "tpch": {"proposed": 70.8, "pdc": 55.9, "ddr": 69.9},
}

# --- Fig 9: File Server average I/O response (seconds) -------------------
FIG9_RESPONSE_SECONDS: dict[str, float] = {
    "proposed": 0.0171,
    "pdc": 0.0226,
    "ddr": 0.0270,
}

# --- Fig 10/13/16: migrated data (bytes; paper gives points/els bounds) --
MIGRATED_BYTES: dict[str, dict[str, float]] = {
    "fileserver": {
        "proposed": 23.1 * units.GB,
        "pdc": 3.0 * units.TB,  # "exceeds 3 TB"
        "ddr": 1.3 * units.GB,
    },
    "tpcc": {
        "proposed": 100.0 * units.GB,  # figure-read approximation
        "pdc": 1.0 * units.TB,  # "exceeds 1 TB"
        "ddr": 0.1 * units.GB,  # "a minimum"
    },
    "tpch": {
        "proposed": 80.0 * units.GB,  # figure-read approximation
        "pdc": 100.0 * units.GB,  # "many data compared with DDR"
        "ddr": 5.0 * units.GB,  # "small"
    },
}

# --- §VII-D text: placement determinations --------------------------------
DETERMINATIONS: dict[str, dict[str, int]] = {
    "fileserver": {"proposed": 5, "pdc": 11, "ddr": 91_000},
    "tpcc": {"proposed": 7, "pdc": 3, "ddr": 90_000},
    "tpch": {"proposed": 10, "pdc": 8, "ddr": 205_000},
}

# --- Fig 12: TPC-C throughput -------------------------------------------
FIG12_TPMC: dict[str, float] = {
    "no-power-saving": 1859.5,  # derived from "1701.4 tpmC, a 8.5% decrease"
    "proposed": 1701.4,
}

# --- Fig 15: TPC-H query responses (relative; DDR ≈ 3x proposed) ---------
FIG15_QUERIES: tuple[str, ...] = ("Q2", "Q7", "Q21")
FIG15_DDR_OVER_PROPOSED: float = 3.0

# --- Figs 17-19: cumulative long-interval length (relative statements) ----
#: "the total length of I/O intervals in the proposed method is
#: approximately twice as long as that compared with other methods"
FIG17_FS_PROPOSED_OVER_OTHERS: float = 2.0
#: Fig 18: "There are no I/O intervals longer than the break-even time in
#: DDR" (TPC-C).
FIG18_TPCC_DDR_TOTAL: float = 0.0
