"""Experiment harness: one module per paper table/figure group."""

from repro.experiments.runner import (
    ExperimentResult,
    STANDARD_POLICIES,
    run_cell,
    run_comparison,
)
from repro.experiments.testbed import build_workload, comparison

__all__ = [
    "ExperimentResult",
    "STANDARD_POLICIES",
    "build_workload",
    "comparison",
    "run_cell",
    "run_comparison",
]
