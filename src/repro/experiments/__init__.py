"""Experiment harness: one module per paper table/figure group.

:mod:`repro.experiments.parallel` is the execution substrate: every
comparison, ablation, and sweep routes its (workload × policy × config)
cells through an :class:`~repro.experiments.parallel.ExperimentEngine`,
which can fan them out across worker processes and memoize finished
cells in an on-disk content-addressed cache.
"""

from repro.experiments.parallel import (
    CellOutcome,
    ExperimentCell,
    ExperimentEngine,
    PolicySpec,
    WorkloadSpec,
    configure,
    default_engine,
    workload_fingerprint,
)
from repro.experiments.runner import (
    ALL_POLICIES,
    ExperimentResult,
    STANDARD_POLICIES,
    TIERED_POLICIES,
    TieredCellResult,
    run_cell,
    run_comparison,
    run_tiered_cell,
)
from repro.experiments.serialize import (
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)
from repro.experiments.testbed import build_workload, comparison

__all__ = [
    "ALL_POLICIES",
    "CellOutcome",
    "ExperimentCell",
    "ExperimentEngine",
    "ExperimentResult",
    "PolicySpec",
    "STANDARD_POLICIES",
    "TIERED_POLICIES",
    "TieredCellResult",
    "WorkloadSpec",
    "build_workload",
    "comparison",
    "configure",
    "default_engine",
    "result_from_dict",
    "result_from_json",
    "result_to_dict",
    "result_to_json",
    "run_cell",
    "run_comparison",
    "run_tiered_cell",
    "workload_fingerprint",
]
