"""Ablations of the proposed method's mechanisms.

The paper motivates four design choices; each ablation switches one off
and reruns the evaluation, quantifying its contribution:

* ``no-migration`` — classification and cache control only (is data
  placement (Algorithms 2–3) doing the work?);
* ``no-preload`` — paper §IV-F's read-side cache assist;
* ``no-write-delay`` — paper §IV-E's write-side cache assist;
* ``fixed-period`` — disable the §IV-H adaptive monitoring period;
* ``no-triggers`` — disable the §V-D pattern-change triggers.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import ValidationError
from repro.analysis.report import PaperRow, render_table, seconds, watts
from repro.config import DEFAULT_CONFIG
from repro.experiments.runner import ExperimentResult

ABLATIONS: dict[str, dict[str, bool]] = {
    "full": {},
    "no-migration": {"enable_migration": False},
    "no-preload": {"enable_preload": False},
    "no-write-delay": {"enable_write_delay": False},
    "fixed-period": {"adaptive_period": False},
    "no-triggers": {"enable_triggers": False},
}


@lru_cache(maxsize=None)
def _ablation_results(
    workload_name: str, full: bool
) -> dict[str, ExperimentResult]:
    """Every ablation of one workload, in one engine sweep (memoized).

    Running all six variants as one cell batch lets a configured
    parallel engine replay them concurrently and cache each variant
    under its own (workload, policy-options) key.
    """
    from repro.experiments import parallel

    cells = [
        parallel.ExperimentCell(
            workload=parallel.WorkloadSpec(name=workload_name, full=full),
            policy=parallel.PolicySpec(
                name="proposed", options=tuple(sorted(overrides.items()))
            ),
            config=DEFAULT_CONFIG,
        )
        for overrides in ABLATIONS.values()
    ]
    outcomes = parallel.default_engine().run_cells(cells)
    return {
        name: outcome.require()
        for name, outcome in zip(ABLATIONS, outcomes)
    }


def run_ablation(
    workload_name: str, ablation: str, full: bool = False
) -> ExperimentResult:
    """One ablated run (memoized; smoke-sized workloads by default)."""
    if ablation not in ABLATIONS:
        raise ValidationError(
            f"unknown ablation {ablation!r}; choose from {sorted(ABLATIONS)}"
        )
    return _ablation_results(workload_name, full)[ablation]


def rows_for(workload_name: str, full: bool = False) -> list[PaperRow]:
    """Ablation table rows for one workload."""
    reference = run_ablation(workload_name, "full", full)
    rows = [
        PaperRow(
            label=f"{workload_name} full method",
            paper="-",
            measured=watts(reference.enclosure_watts),
            note=f"response {seconds(reference.mean_response)}",
        )
    ]
    for name in ABLATIONS:
        if name == "full":
            continue
        result = run_ablation(workload_name, name, full)
        delta = result.enclosure_watts - reference.enclosure_watts
        rows.append(
            PaperRow(
                label=f"{workload_name} {name}",
                paper="-",
                measured=watts(result.enclosure_watts),
                note=(
                    f"{delta:+.1f} W vs full; "
                    f"response {seconds(result.mean_response)}"
                ),
            )
        )
    return rows


def run(full: bool = False) -> str:
    """Render the ablation tables for all three workloads."""
    sections = []
    for name in ("fileserver", "tpcc", "tpch"):
        sections.append(
            render_table(f"Ablations — {name}", rows_for(name, full))
        )
    return "\n\n".join(sections)
