"""Fig 6 — logical I/O patterns of the three applications.

The paper classifies every data item over the *whole* application run
(one monitoring period from start to completion; no P0 items can exist
because every item is accessed at least once).  This module repeats that
measurement on the generated workloads.
"""

from __future__ import annotations

from repro.analysis.report import PaperRow, render_table
from repro.config import DEFAULT_CONFIG, EcoStorConfig
from repro.core.patterns import IOPattern, build_profiles, pattern_fractions
from repro.experiments.paper_values import FIG6_PATTERN_MIX
from repro.experiments.testbed import build_workload
from repro.workloads.items import Workload


def measure_pattern_mix(
    workload: Workload, config: EcoStorConfig = DEFAULT_CONFIG
) -> dict[IOPattern, float]:
    """Classify the whole trace as a single monitoring window."""
    sizes = {item.item_id: item.size_bytes for item in workload.items}
    locations = {
        item.item_id: f"enc-{item.enclosure_index:02d}"
        for item in workload.items
    }
    profiles = build_profiles(
        workload.records,
        0.0,
        workload.duration,
        config.break_even_time,
        sizes,
        locations,
    )
    return pattern_fractions(profiles)


def rows_for(workload_name: str, full: bool = True) -> list[PaperRow]:
    """Paper-vs-measured rows for one application's pattern mix."""
    workload = build_workload(workload_name, full)
    measured = measure_pattern_mix(workload)
    paper = FIG6_PATTERN_MIX[workload_name]
    return [
        PaperRow(
            label=f"{workload_name} {pattern.value}",
            paper=f"{paper[pattern.value]:.1f} %",
            measured=f"{measured[pattern] * 100:.1f} %",
        )
        for pattern in IOPattern
    ]


def run(full: bool = True) -> str:
    """Render the whole Fig 6 comparison."""
    rows: list[PaperRow] = []
    for name in ("fileserver", "tpcc", "tpch"):
        rows.extend(rows_for(name, full))
    return render_table("Fig 6 — logical I/O pattern mix", rows)
