"""Unit constants, dimension aliases, and small conversion helpers.

The simulator works in SI base units throughout: **seconds** for time,
**bytes** for data sizes, **watts** for power, and **joules** for energy.
These constants exist so that call sites read naturally
(``5 * units.MINUTE``, ``500 * units.MB``) instead of sprinkling magic
numbers — and ``repro.devtools`` rule R2 enforces exactly that.

Types are deliberately consistent: data-size constants are ``int``
(byte counts are exact), while time and power constants are ``float``
(they scale continuous quantities).  All are :data:`typing.Final`.

The module also defines the **dimension aliases** :data:`Seconds`,
:data:`Joules`, :data:`Watts`, :data:`Bytes`, and :data:`Rate`.  At
runtime (and to mypy) they are plain ``float``/``int`` — annotating with
them costs nothing — but the :mod:`repro.devtools.analysis` static pass
reads them as *dimensions* and flags mixed-dimension arithmetic,
comparisons, returns, and arguments across the whole program (check ids
D101–D104).  Annotate any quantity-carrying signature with the alias of
its unit and the analyzer propagates it everywhere the value flows.
"""

from __future__ import annotations

from typing import Final, TypeAlias

from repro.errors import ValidationError

# --- dimension aliases (read by repro.devtools.analysis) -----------------
#: Virtual time / durations, in SI seconds.
Seconds: TypeAlias = float
#: Energy, in joules (integrated watts × seconds).
Joules: TypeAlias = float
#: Power, in watts (joules per second).
Watts: TypeAlias = float
#: Data sizes, in exact bytes.
Bytes: TypeAlias = int
#: Throughput, in bytes per second.
Rate: TypeAlias = float

# --- data sizes (binary multiples, as storage vendors use for cache) ----
KB: Final[int] = 1024
MB: Final[int] = 1024 * KB
GB: Final[int] = 1024 * MB
TB: Final[int] = 1024 * GB

#: Size of one I/O block in the block-virtualization layer.  Enterprise
#: storage commonly exposes 4 KiB blocks; all offsets/sizes in physical
#: records are multiples of this.
BLOCK_SIZE: Final[int] = 4 * KB

# --- time ----------------------------------------------------------------
SECOND: Final[float] = 1.0
MINUTE: Final[float] = 60.0
HOUR: Final[float] = 60.0 * MINUTE
DAY: Final[float] = 24.0 * HOUR

# --- power / energy -------------------------------------------------------
WATT: Final[float] = 1.0
KILOWATT: Final[float] = 1000.0

#: Suffix → byte multiplier accepted by :func:`parse_size`.  Decimal-SI
#: spellings (``KB``) and explicit binary spellings (``KiB``) both map to
#: the binary multiples used throughout the simulator.
_SIZE_SUFFIXES: Final[dict[str, int]] = {
    "B": 1,
    "KB": KB,
    "KIB": KB,
    "K": KB,
    "MB": MB,
    "MIB": MB,
    "M": MB,
    "GB": GB,
    "GIB": GB,
    "G": GB,
    "TB": TB,
    "TIB": TB,
    "T": TB,
}


def bytes_to_blocks(size: Bytes) -> int:
    """Return the number of blocks needed to hold ``size`` bytes.

    Rounds up, so a single byte still occupies one block.

    >>> bytes_to_blocks(1)
    1
    >>> bytes_to_blocks(4096)
    1
    >>> bytes_to_blocks(4097)
    2
    >>> bytes_to_blocks(8192)
    2
    >>> bytes_to_blocks(0)
    0
    >>> bytes_to_blocks(-1)
    Traceback (most recent call last):
        ...
    repro.errors.ValidationError: size must be non-negative, got -1
    """
    if size < 0:
        raise ValidationError(f"size must be non-negative, got {size}")
    return -(-size // BLOCK_SIZE)


def blocks_to_bytes(blocks: int) -> Bytes:
    """Return the byte size of ``blocks`` whole blocks.

    >>> blocks_to_bytes(2)
    8192
    """
    if blocks < 0:
        raise ValidationError(f"blocks must be non-negative, got {blocks}")
    return blocks * BLOCK_SIZE


def parse_size(text: str) -> Bytes:
    """Parse a human-readable size (``'500 MB'``, ``'2GiB'``) into bytes.

    Multipliers are binary (``1 KB == 1024 B``), matching the constants
    above; a bare number means bytes.  Fractional values are allowed and
    rounded to whole bytes.

    >>> parse_size("500 MB")
    524288000
    >>> parse_size("2GiB")
    2147483648
    >>> parse_size("4 KiB") == BLOCK_SIZE
    True
    >>> parse_size("1.5 KB")
    1536
    >>> parse_size("512")
    512
    >>> parse_size("ten MB")
    Traceback (most recent call last):
        ...
    repro.errors.ValidationError: unparseable size 'ten MB'
    >>> parse_size("12 QB")
    Traceback (most recent call last):
        ...
    repro.errors.ValidationError: unknown size suffix 'QB' in '12 QB'
    """
    stripped = text.strip()
    number = stripped
    suffix = ""
    for index, char in enumerate(stripped):
        if char.isalpha():
            number, suffix = stripped[:index], stripped[index:]
            break
    try:
        value = float(number)
    except ValueError:
        raise ValidationError(f"unparseable size {text!r}") from None
    suffix = suffix.strip().upper()
    if suffix and suffix not in _SIZE_SUFFIXES:
        raise ValidationError(f"unknown size suffix {suffix!r} in {text!r}")
    multiplier = _SIZE_SUFFIXES.get(suffix, 1)
    if value < 0:
        raise ValidationError(f"size must be non-negative, got {text!r}")
    return round(value * multiplier)


def format_bytes(size: float) -> str:
    """Human-readable byte count, e.g. ``'23.1 GB'``.

    >>> format_bytes(23.1 * GB)
    '23.1 GB'
    >>> format_bytes(512)
    '512 B'
    """
    value = float(size)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_duration(seconds: Seconds) -> str:
    """Human-readable duration, e.g. ``'1.8 hr'`` or ``'52 sec'``.

    >>> format_duration(52)
    '52 sec'
    >>> format_duration(6480)
    '1.8 hr'
    >>> format_duration(23 * HOUR)
    '23 hr'
    >>> format_duration(2 * DAY)
    '2 day'
    >>> format_duration(1.5 * DAY)
    '1.5 day'
    >>> format_duration(14 * DAY)
    '14 day'
    """
    if seconds < MINUTE:
        return f"{seconds:g} sec"
    if seconds < HOUR:
        return f"{seconds / MINUTE:g} min"
    if seconds < DAY:
        return f"{seconds / HOUR:g} hr"
    return f"{seconds / DAY:g} day"
