"""Unit constants and small conversion helpers.

The simulator works in SI base units throughout: **seconds** for time,
**bytes** for data sizes, **watts** for power, and **joules** for energy.
These constants exist so that call sites read naturally
(``5 * units.MINUTE``, ``500 * units.MB``) instead of sprinkling magic
numbers.
"""

from __future__ import annotations

# --- data sizes (binary multiples, as storage vendors use for cache) ----
KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB
TB: int = 1024 * GB

#: Size of one I/O block in the block-virtualization layer.  Enterprise
#: storage commonly exposes 4 KiB blocks; all offsets/sizes in physical
#: records are multiples of this.
BLOCK_SIZE: int = 4 * KB

# --- time ----------------------------------------------------------------
SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0

# --- power / energy -------------------------------------------------------
WATT: float = 1.0
KILOWATT: float = 1000.0


def bytes_to_blocks(size: int) -> int:
    """Return the number of blocks needed to hold ``size`` bytes.

    Rounds up, so a single byte still occupies one block.

    >>> bytes_to_blocks(1)
    1
    >>> bytes_to_blocks(8192)
    2
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    return -(-size // BLOCK_SIZE)


def blocks_to_bytes(blocks: int) -> int:
    """Return the byte size of ``blocks`` whole blocks."""
    if blocks < 0:
        raise ValueError(f"blocks must be non-negative, got {blocks}")
    return blocks * BLOCK_SIZE


def format_bytes(size: float) -> str:
    """Human-readable byte count, e.g. ``'23.1 GB'``.

    >>> format_bytes(23.1 * GB)
    '23.1 GB'
    >>> format_bytes(512)
    '512 B'
    """
    value = float(size)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_duration(seconds: float) -> str:
    """Human-readable duration, e.g. ``'1.8 hr'`` or ``'52 sec'``.

    >>> format_duration(52)
    '52 sec'
    >>> format_duration(6480)
    '1.8 hr'
    """
    if seconds < MINUTE:
        return f"{seconds:g} sec"
    if seconds < HOUR:
        return f"{seconds / MINUTE:g} min"
    return f"{seconds / HOUR:g} hr"
