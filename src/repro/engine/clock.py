"""Virtual time primitives: the simulation clock and a check throttle.

Everything in the simulator runs against *virtual* time — timestamps
carried by trace records and events, never the wall clock — so replays
are deterministic and virtual hours cost only CPU.  :class:`SimClock`
is the single authority for "now" inside a
:class:`~repro.engine.kernel.SimulationKernel`: it only moves forward,
and a backwards move raises immediately instead of silently corrupting
the energy books (the invariant the auditor re-checks after the fact).

:class:`Throttle` packages the "earliest next allowed time" arithmetic
that recurring cheap checks need (the §V-D pattern-change triggers
evaluate per I/O but should only *act* a few times per break-even
period).  Callers used to hand-roll this with ad-hoc ``_next_check``
fields; routing it through one primitive keeps the comparison direction
and rearm convention identical everywhere.
"""

from __future__ import annotations

from repro.errors import ReplayError, ValidationError
from repro.units import Seconds

__all__ = ["SimClock", "Throttle"]


class SimClock:
    """Monotonic virtual clock owned by the simulation kernel."""

    __slots__ = ("_now",)

    def __init__(self, start: Seconds = 0.0) -> None:
        if start < 0.0:
            raise ValidationError(
                f"clock cannot start before t=0, got {start!r}"
            )
        self._now = start

    @property
    def now(self) -> Seconds:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, to: Seconds) -> Seconds:
        """Move the clock forward to ``to`` and return it.

        Raises :class:`~repro.errors.ReplayError` if ``to`` lies in the
        past — virtual time never rewinds; an event or record arriving
        out of order is a bug at the source, not something to clamp.
        """
        if to < self._now:
            raise ReplayError(
                f"virtual time moved backwards: {to} after {self._now}"
            )
        self._now = to
        return to

    def snapshot_state(self) -> dict:
        """Serializable clock state (:mod:`repro.persistence`)."""
        return {"now": self._now}

    def restore_state(self, state: dict) -> None:
        """Restore the clock exactly as :meth:`snapshot_state` captured it."""
        self._now = state["now"]


class Throttle:
    """Virtual-time rate limiter for recurring cheap checks.

    A throttled check runs its guard (:meth:`ready`) on every
    opportunity but is expected to :meth:`arm` the throttle only when it
    actually acts, so at most one action happens per ``interval_seconds``
    of virtual time.  :meth:`defer_until` pushes the next opportunity to
    an explicit time (e.g. "not before the next scheduled checkpoint"),
    and :meth:`reset` re-opens the gate at ``now``.
    """

    __slots__ = ("interval_seconds", "_next_allowed")

    def __init__(self, interval_seconds: Seconds) -> None:
        if interval_seconds <= 0.0:
            raise ValidationError(
                f"throttle interval must be positive, got {interval_seconds!r}"
            )
        self.interval_seconds = interval_seconds
        self._next_allowed = 0.0

    @property
    def next_allowed(self) -> Seconds:
        """Earliest virtual time at which :meth:`ready` returns True."""
        return self._next_allowed

    def ready(self, now: Seconds) -> bool:
        """Whether an action is allowed at virtual time ``now``."""
        return now >= self._next_allowed

    def arm(self, now: Seconds) -> None:
        """Record an action at ``now``; the gate re-opens one interval later."""
        self._next_allowed = now + self.interval_seconds

    def defer_until(self, time: Seconds) -> None:
        """Hold the gate closed until an explicit virtual ``time``."""
        self._next_allowed = time

    def reset(self, now: Seconds) -> None:
        """Re-open the gate at ``now`` (used at window starts)."""
        self._next_allowed = now

    def snapshot_state(self) -> dict:
        """Serializable throttle state (:mod:`repro.persistence`)."""
        return {
            "interval_seconds": self.interval_seconds,
            "next_allowed": self._next_allowed,
        }

    def restore_state(self, state: dict) -> None:
        """Restore the throttle exactly as captured."""
        self.interval_seconds = state["interval_seconds"]
        self._next_allowed = state["next_allowed"]
