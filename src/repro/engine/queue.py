"""Deterministic heap-based event queue with lazy cancellation.

Heap entries are ``(time, priority, seq, event)`` tuples, so ordering
is total and explicit: ascending virtual time, then ascending priority
class (see :mod:`repro.engine.events` for the table), then insertion
order.  No comparison ever reaches the event objects themselves, and
two runs that push the same events in the same order pop them in the
same order on any platform.

Cancellation is lazy — :meth:`EventQueue.cancel` flags the event and
pops skip it — because rescheduling a policy checkpoint is far more
common than draining the heap, and lazy flags keep both cancel and
push at O(log n) worst case without an entry-finder map.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.engine.events import Event
from repro.errors import UsageError

__all__ = ["EventQueue"]


class EventQueue:
    """Priority queue of :class:`~repro.engine.events.Event` objects."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, event: Event) -> Event:
        """Schedule ``event`` and return it.

        An event instance lives in the queue at most once; re-pushing a
        queued or cancelled instance raises
        :class:`~repro.errors.UsageError` (create a fresh event
        instead — identity is what makes lazy cancellation sound).
        """
        if event.queued or event.cancelled:
            state = "queued" if event.queued else "cancelled"
            raise UsageError(f"cannot push {state} event {event!r}")
        event.queued = True
        heappush(self._heap, (event.time, event.priority, self._seq, event))
        self._seq += 1
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Lazily cancel a queued event; no-op if it already left the queue."""
        if event.queued and not event.cancelled:
            event.cancelled = True
            event.queued = False
            self._live -= 1

    def peek_key(self) -> tuple[float, int, int] | None:
        """Return ``(time, priority, seq)`` of the next live event, if any.

        Cancelled entries reaching the heap top are discarded here so
        the returned key always describes what :meth:`pop` would yield.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3].cancelled:
                heappop(heap)
                continue
            return entry[:3]
        return None

    def pop(self) -> Event | None:
        """Remove and return the next live event, or None when empty."""
        heap = self._heap
        while heap:
            event = heappop(heap)[3]
            if event.cancelled:
                continue
            event.queued = False
            self._live -= 1
            return event
        return None

    # ------------------------------------------------------------------
    # Snapshot support (repro.persistence)
    # ------------------------------------------------------------------

    def live_entries(self) -> list[tuple[float, int, int, Event]]:
        """Live ``(time, priority, seq, event)`` entries in pop order.

        Cancelled entries are omitted — they can never fire, so a
        restored queue without them behaves identically.  The sequence
        numbers are the originals: restoring them verbatim (together
        with :attr:`next_seq`) keeps FIFO tie-breaks bit-identical
        across a snapshot/resume seam.
        """
        return sorted(
            entry for entry in self._heap if not entry[3].cancelled
        )

    @property
    def next_seq(self) -> int:
        """The sequence number the next pushed event would receive."""
        return self._seq

    def restore_entries(
        self,
        entries: list[tuple[float, int, int, Event]],
        next_seq: int,
    ) -> None:
        """Rebuild the queue from :meth:`live_entries` output.

        Bypasses :meth:`push` so the stored sequence numbers (and with
        them same-key pop order) are preserved exactly; the events must
        be fresh un-queued instances.
        """
        self._heap = []
        for time, priority, seq, event in sorted(entries):
            event.queued = True
            heappush(self._heap, (time, priority, seq, event))
        self._live = len(self._heap)
        self._seq = next_seq
