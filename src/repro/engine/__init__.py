"""repro.engine: the deterministic discrete-event kernel.

The simulator's single source of virtual time.  See ``docs/engine.md``
for the event taxonomy, the tie-break table, and how to add an event
source; :mod:`repro.engine.kernel` for the pump itself.
"""

from repro.engine.clock import SimClock, Throttle
from repro.engine.events import (
    FAULT_BOOKKEEPING,
    FLUSH_DEADLINE,
    POLICY_CHECKPOINT,
    TIMELINE_SAMPLE,
    TRACE_RECORD,
    Event,
    FaultBookkeepingEvent,
    FlushDeadlineEvent,
    PolicyCheckpointEvent,
    TimelineSampleEvent,
    TraceRecordEvent,
)
from repro.engine.kernel import ReplayOutcome, SimulationKernel
from repro.engine.queue import EventQueue

__all__ = [
    "SimClock",
    "Throttle",
    "TIMELINE_SAMPLE",
    "FAULT_BOOKKEEPING",
    "POLICY_CHECKPOINT",
    "TRACE_RECORD",
    "FLUSH_DEADLINE",
    "Event",
    "TimelineSampleEvent",
    "FaultBookkeepingEvent",
    "PolicyCheckpointEvent",
    "TraceRecordEvent",
    "FlushDeadlineEvent",
    "EventQueue",
    "ReplayOutcome",
    "SimulationKernel",
]
