"""The discrete-event simulation kernel.

:class:`SimulationKernel` is the one dispatch site through which virtual
time passes.  Every time consumer that the pre-kernel ``TraceReplayer``
hand-threaded — power-timeline boundary samples, fault-clock
bookkeeping, policy monitoring-period checkpoints, trace records,
write-delay flush deadlines — is an :class:`~repro.engine.events.Event`
popped off one deterministic :class:`~repro.engine.queue.EventQueue`
and fired in ``(time, priority class, insertion order)`` order.

Two entry points:

* :meth:`SimulationKernel.replay` — batch mode.  Trace records arrive
  as a pre-sorted stream, so the pump *merges* the record iterator with
  the event heap instead of pushing every record through it: the heap
  only ever holds the handful of live recurring events, which keeps the
  hot loop allocation-free and the throughput at parity with the old
  hand-threaded loop.
* :meth:`SimulationKernel.post` + :meth:`SimulationKernel.run_until` —
  online mode.  Events (including
  :class:`~repro.engine.events.TraceRecordEvent` I/O arrivals) are
  scheduled as they become known and the clock is pumped forward
  incrementally, the formulation the online/streaming roadmap items
  need.

Checkpoint scheduling is *synchronized polling*: policies still expose
``next_checkpoint()`` (see :class:`repro.baselines.base.PowerPolicy`),
and the kernel keeps exactly one live
:class:`~repro.engine.events.PolicyCheckpointEvent` in the queue that
mirrors it, re-synced at the only points the value can change — after
each ``after_io`` and after each ``on_checkpoint``.  When a fault clock
is installed, every checkpoint is paired with a
:class:`~repro.engine.events.FaultBookkeepingEvent` at the same time
(lower priority class ⇒ fires first), preserving the pre-kernel call
order ``controller.on_time(t)`` then ``policy.on_checkpoint(t)``.

The golden regression test (``tests/trace/test_replay_golden.py``)
pins this kernel bit-identical to the pre-kernel replayer for every
policy, with and without faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import TYPE_CHECKING, Callable, Iterable

from repro.actions.plan import ActionPlan
from repro.actions.records import FlushWriteDelay
from repro.engine.clock import SimClock
from repro.engine.events import (
    ACTION_APPLY,
    TRACE_RECORD,
    ActionApplyEvent,
    Event,
    FaultBookkeepingEvent,
    FlushDeadlineEvent,
    PolicyCheckpointEvent,
    TimelineSampleEvent,
    TraceRecordEvent,
)
from repro.engine.queue import EventQueue
from repro.errors import ReplayError, SnapshotError, UsageError
from repro.trace.columnar import FLAG_READ, FLAG_SEQUENTIAL, ColumnarTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.baselines.base import PowerPolicy
    from repro.monitoring.timeline import PowerTimeline
    from repro.simulation import SimulationContext
    from repro.trace.records import LogicalIORecord

__all__ = ["ReplayOutcome", "SimulationKernel"]

#: Priority bound one past the last class; ``run_until`` uses it so a
#: pump to time ``t`` includes every event class scheduled at ``t``.
_PAST_LAST_CLASS = ACTION_APPLY + 1

#: Event-kind tags used by the kernel snapshot (:mod:`repro.persistence`).
#: Snapshots never pickle :class:`~repro.engine.events.Event` instances —
#: their ``queued``/``cancelled`` flags and kernel back-references are
#: runtime identity, not state — so live queue entries are serialized as
#: ``(seq, kind, time, payload)`` tuples and rebuilt on restore.
_EVENT_KINDS: dict[type[Event], str] = {
    TimelineSampleEvent: "timeline_sample",
    FaultBookkeepingEvent: "fault_bookkeeping",
    PolicyCheckpointEvent: "policy_checkpoint",
    TraceRecordEvent: "trace_record",
    FlushDeadlineEvent: "flush_deadline",
    ActionApplyEvent: "action_apply",
}


def _encode_event(event: Event) -> tuple[str, float, object]:
    """Serialize one live event as a ``(kind, time, payload)`` tuple."""
    kind = _EVENT_KINDS.get(type(event))
    if kind is None:
        raise UsageError(
            f"cannot snapshot unknown event type {type(event).__name__!r}"
        )
    payload: object = None
    if isinstance(event, TraceRecordEvent):
        payload = event.record
    elif isinstance(event, ActionApplyEvent):
        payload = event.plan
    return (kind, event.time, payload)


def _decode_event(kind: str, time: float, payload: object) -> Event:
    """Rebuild a fresh event instance from its snapshot tuple."""
    if kind == "timeline_sample":
        return TimelineSampleEvent(time)
    if kind == "fault_bookkeeping":
        return FaultBookkeepingEvent(time)
    if kind == "policy_checkpoint":
        return PolicyCheckpointEvent(time)
    if kind == "flush_deadline":
        return FlushDeadlineEvent(time)
    if kind == "trace_record":
        return TraceRecordEvent(payload)  # type: ignore[arg-type]
    if kind == "action_apply":
        return ActionApplyEvent(time, payload)  # type: ignore[arg-type]
    raise SnapshotError(f"unknown event kind {kind!r} in snapshot")


@dataclass(frozen=True)
class ReplayOutcome:
    """What :meth:`SimulationKernel.replay` measured about the window."""

    #: Number of trace records served.
    io_count: int
    #: Declared (or inferred) end of the measurement window, seconds.
    end: float
    #: Final settlement time — ``end`` or later if the tail flush ran past it.
    final: float


class SimulationKernel:
    """Deterministic event pump over one simulation context.

    A kernel drives one measurement window and is single-use for
    :meth:`replay` (exactly like the pre-kernel replayer, whose loop
    state lived in locals).  The caller is expected to have bound
    ``policy`` to ``context`` already; :class:`repro.trace.replay.TraceReplayer`
    does so and remains the public batch entry point.
    """

    def __init__(
        self,
        context: SimulationContext,
        policy: PowerPolicy,
        timeline: PowerTimeline | None = None,
    ) -> None:
        self.context = context
        self.policy = policy
        self.timeline = timeline
        self.clock = SimClock()
        self.queue = EventQueue()
        self._checkpoint_event: PolicyCheckpointEvent | None = None
        self._bookkeeping_event: FaultBookkeepingEvent | None = None
        self._scheduled_checkpoint: float | None = None
        self._checkpoint_hooks: list[Callable[[float], None]] = []
        self._finish_hooks: list[Callable[[float], None]] = []
        self._record_hook: Callable[[int, float], None] | None = None
        self._finished = False

    # ------------------------------------------------------------------
    # Hook + scheduling surface
    # ------------------------------------------------------------------

    def add_checkpoint_hook(self, hook: Callable[[float], None]) -> None:
        """Call ``hook(time)`` after every policy checkpoint fires.

        Hooks run after ``policy.on_checkpoint`` and before the
        advancement guard — the slot the invariant auditor occupied in
        the pre-kernel replayer.
        """
        self._checkpoint_hooks.append(hook)

    def add_finish_hook(self, hook: Callable[[float], None]) -> None:
        """Call ``hook(final)`` once after end-of-run settlement."""
        self._finish_hooks.append(hook)

    def set_record_hook(
        self, hook: Callable[[int, float], None] | None
    ) -> None:
        """Call ``hook(count, time)`` after each trace record completes.

        The hook fires at *record boundaries* — after the record's
        submit/observe/policy chain and the checkpoint re-sync — which
        is exactly where :mod:`repro.persistence` takes snapshots (and
        where its crash harness injects kills).  The hook must not
        mutate simulation state; it observes the cursor, nothing more.
        """
        self._record_hook = hook

    @property
    def finished(self) -> bool:
        """Whether this kernel's run has settled (kernels are single-use)."""
        return self._finished

    def post(self, event: Event) -> Event:
        """Schedule ``event`` on the kernel's queue and return it.

        The online entry point: arrivals, deadlines, or custom event
        sources go in here and fire when :meth:`run_until` (or the
        batch pump) reaches their time.  Raises
        :class:`~repro.errors.UsageError` once the run has finished —
        a settled kernel's books are final and an event posted after
        settlement could never fire.
        """
        if self._finished:
            raise UsageError(
                "cannot post events to a finished kernel: the run has "
                "settled; build a fresh kernel for a new window"
            )
        return self.queue.push(event)

    # ------------------------------------------------------------------
    # Batch replay
    # ------------------------------------------------------------------

    def replay(
        self,
        records: Iterable[LogicalIORecord],
        duration: float | None = None,
    ) -> ReplayOutcome:
        """Pump a time-ordered record stream through the simulation.

        Semantics (validation errors, boundary convention, end-of-run
        settlement order) are exactly those documented on
        :meth:`repro.trace.replay.TraceReplayer.run`; the golden test
        holds this method bit-identical to the pre-kernel loop.

        A :class:`~repro.trace.columnar.ColumnarTrace` takes the batched
        pump (:meth:`_replay_columnar`) — same simulation, no per-record
        object materialization.
        """
        if duration is not None and duration <= 0.0:
            raise ReplayError(
                f"declared duration must be positive, got {duration}"
            )
        self._begin_replay()
        if isinstance(records, ColumnarTrace):
            return self._replay_columnar(records, duration)
        return self._replay_objects(records, duration, 0, 0.0)

    def resume_replay(
        self,
        records: Iterable[LogicalIORecord],
        duration: float | None,
        start_count: int,
        start_ts: float,
    ) -> ReplayOutcome:
        """Continue a replay from a restored snapshot boundary.

        The caller has already rebuilt the context/policy wiring and
        restored every component's state (including this kernel's, via
        :meth:`restore_state`) from a :mod:`repro.persistence` snapshot
        taken after record ``start_count`` at timestamp ``start_ts``.
        Those first ``start_count`` records of ``records`` are skipped —
        their effects live in the restored state — and the pump resumes
        with the cursor seeded at the boundary.  The replay prologue
        (``policy.on_start``, window begins, the first timeline sample)
        is deliberately **not** re-run: the restored queue and monitors
        already reflect it.  Epilogue semantics match :meth:`replay`,
        so the outcome is bit-identical to an uninterrupted run.
        """
        if self._finished:
            raise UsageError(
                "cannot resume a finished kernel: build a fresh kernel "
                "and restore the snapshot into it"
            )
        if duration is not None and duration <= 0.0:
            raise ReplayError(
                f"declared duration must be positive, got {duration}"
            )
        if start_count < 0 or start_ts < 0.0:
            raise ReplayError(
                "resume cursor must be non-negative, got "
                f"count={start_count}, ts={start_ts}"
            )
        if isinstance(records, ColumnarTrace):
            return self._replay_columnar(
                records[start_count:], duration, start_count, start_ts
            )
        remaining = islice(iter(records), start_count, None)
        return self._replay_objects(remaining, duration, start_count, start_ts)

    def _replay_objects(
        self,
        records: Iterable[LogicalIORecord],
        duration: float | None,
        count: int,
        last_ts: float,
    ) -> ReplayOutcome:
        """The per-record-object pump, starting from an explicit cursor."""
        context = self.context
        policy = self.policy
        app = context.app_monitor
        controller = context.controller
        clock = self.clock
        hook = self._record_hook

        for record in records:
            ts = record.timestamp
            if ts < last_ts:
                raise ReplayError(
                    f"trace not time-ordered: {ts} after {last_ts}"
                )
            last_ts = ts
            self._dispatch_until((ts, TRACE_RECORD))
            clock.advance(ts)
            response = controller.submit(record)
            app.record(record, response)
            policy.after_io(record, response)
            count += 1
            self._sync_checkpoint()
            if hook is not None:
                hook(count, ts)

        return self._finish_replay(count, last_ts, duration)

    def _replay_columnar(
        self,
        trace: ColumnarTrace,
        duration: float | None,
        count: int = 0,
        last_ts: float = 0.0,
    ) -> ReplayOutcome:
        """The batched pump: drive the simulation straight off columns.

        Column slices between queued events go through the scalar fast
        paths (``submit_fast`` / ``record_fast`` / ``after_io_fast``) —
        no :class:`~repro.trace.records.LogicalIORecord` exists anywhere
        on the loop.  Every decision and float operation matches the
        record pump; the golden bit-identity test holds the two equal.
        """
        from repro.baselines.base import PowerPolicy

        context = self.context
        policy = self.policy
        clock = self.clock
        queue = self.queue
        hook = self._record_hook

        timestamps = trace.timestamps
        item_index = trace.item_index
        offsets = trace.offsets
        sizes = trace.sizes
        flags = trace.flags
        items = trace.items
        # Flag bits decoded through tables instead of per-record bool()
        # calls; the flags column is u1, so 256 entries cover it.
        read_lut = [bool(value & FLAG_READ) for value in range(256)]
        sequential_lut = [bool(value & FLAG_SEQUENTIAL) for value in range(256)]

        submit_fast = context.controller.submit_fast
        record_fast = context.app_monitor.record_fast
        sync = self._sync_checkpoint
        dispatch = self._dispatch_until
        peek = queue.peek_key
        advance = clock.advance

        # Policies that override neither after-I/O hook (no-power-saving
        # and friends) are skipped entirely: a no-op cannot move the
        # checkpoint, so the per-record re-sync is dropped with it.
        after_fast = policy.after_io_fast
        policy_cls = type(policy)
        if (
            policy_cls.after_io is PowerPolicy.after_io
            and policy_cls.after_io_fast is PowerPolicy.after_io_fast
        ):
            after_fast = None

        trace_record = TRACE_RECORD
        for ts, idx, offset, size, flag in zip(
            timestamps, item_index, offsets, sizes, flags
        ):
            if ts < last_ts:
                raise ReplayError(
                    f"trace not time-ordered: {ts} after {last_ts}"
                )
            last_ts = ts
            # Re-peek per record: any after-I/O hook may have queued new
            # events (e.g. a management cycle posting flush deadlines).
            # The key is compared field-wise to avoid building a tuple
            # per record.
            key = peek()
            if key is not None:
                key_ts = key[0]
                if key_ts < ts or (key_ts == ts and key[1] < trace_record):
                    dispatch((ts, trace_record))
            advance(ts)
            item = items[idx]
            is_read = read_lut[flag]
            sequential = sequential_lut[flag]
            response = submit_fast(ts, item, offset, size, is_read, sequential)
            record_fast(ts, item, offset, size, is_read, sequential, response)
            count += 1
            if after_fast is not None:
                after_fast(ts, item, offset, size, is_read, sequential, response)
                sync()
            if hook is not None:
                hook(count, ts)

        return self._finish_replay(count, last_ts, duration)

    def _begin_replay(self) -> None:
        """Shared replay prologue: window starts, first timeline sample,
        initial checkpoint sync."""
        self.policy.on_start(0.0)
        self.context.app_monitor.begin_window(0.0)
        self.context.storage_monitor.begin_window(0.0)
        if self.timeline is not None:
            self.queue.push(
                TimelineSampleEvent(self.timeline.next_sample_time)
            )
        self._sync_checkpoint()

    def _finish_replay(
        self, count: int, last_ts: float, duration: float | None
    ) -> ReplayOutcome:
        """Shared replay epilogue: tail drain, settlement, finish hooks."""
        context = self.context
        if count == 0 and duration is None:
            raise ReplayError(
                "cannot replay an empty trace without an explicit "
                "duration: there is no measurement window"
            )
        end = duration if duration is not None else last_ts
        if end < last_ts:
            raise ReplayError(
                f"declared duration {end} ends before last record at {last_ts}"
            )
        self._drain_tail(end)
        self.policy.on_end(end)
        completion = context.controller.finish(end)
        final = max(end, completion)
        self.clock.advance(final)
        context.storage_monitor.finish(final)
        for enclosure in context.enclosures:
            enclosure.finish(final)
        if self.timeline is not None:
            # Boundaries past the last fired checkpoint are settled here,
            # *after* the tail flush mutations — the pre-kernel ordering.
            self.timeline.finish(final)
        for hook in self._finish_hooks:
            hook(final)
        self._finished = True
        return ReplayOutcome(io_count=count, end=end, final=final)

    # ------------------------------------------------------------------
    # Online pump
    # ------------------------------------------------------------------

    def run_until(self, time: float) -> float:
        """Fire every queued event scheduled at or before ``time``.

        Advances the clock to ``time`` even if nothing fires, and
        returns it.  This is the incremental pump for online operation;
        it performs no end-of-run settlement.

        Raises :class:`~repro.errors.UsageError` for a ``time`` behind
        the current clock (virtual time never rewinds — clamping would
        silently skip the events between ``time`` and now) and for any
        pump attempt after the run has finished.
        """
        if self._finished:
            raise UsageError(
                "cannot pump a finished kernel: the run has settled; "
                "build a fresh kernel for a new window"
            )
        if time < self.clock.now:
            raise UsageError(
                f"run_until({time}) is in the past: the clock is at "
                f"{self.clock.now}"
            )
        self._dispatch_until((time, _PAST_LAST_CLASS))
        if self.clock.now < time:
            self.clock.advance(time)
        return time

    # ------------------------------------------------------------------
    # Event dispatch (called by Event.fire)
    # ------------------------------------------------------------------

    def serve_record(self, record: LogicalIORecord) -> None:
        """Serve one I/O record: submit, observe, let the policy react."""
        response = self.context.controller.submit(record)
        self.context.app_monitor.record(record, response)
        self.policy.after_io(record, response)
        self._sync_checkpoint()

    def fire_timeline_sample(self, now: float) -> None:
        """Record the due timeline boundary and schedule the next one."""
        timeline = self.timeline
        if timeline is None:
            return
        timeline.sample(now)
        self.queue.push(TimelineSampleEvent(timeline.next_sample_time))

    def fire_fault_bookkeeping(self, now: float) -> None:
        """Run controller fault bookkeeping ahead of the checkpoint at ``now``."""
        self._bookkeeping_event = None
        self.context.controller.on_time(now)

    def fire_policy_checkpoint(self, now: float) -> None:
        """Run a policy checkpoint, its hooks, and re-sync the schedule."""
        self._checkpoint_event = None
        self._bookkeeping_event = None
        self._scheduled_checkpoint = None
        policy = self.policy
        policy.on_checkpoint(now)
        for hook in self._checkpoint_hooks:
            hook(now)
        follow_up = policy.next_checkpoint()
        if follow_up is not None and follow_up <= now:
            raise ReplayError(
                f"policy {policy.name!r} did not advance its "
                f"checkpoint past {now}"
            )
        self._sync_checkpoint()

    def fire_flush_deadline(self, now: float) -> None:
        """Flush delayed writes whose deadline arrived at ``now``.

        Routed through the action executor so deadline flushes appear in
        the action log like every other mutation.
        """
        self.context.require_executor().apply(
            now, ActionPlan([FlushWriteDelay()])
        )

    def fire_action_apply(self, now: float, plan: ActionPlan) -> None:
        """Apply a deferred action plan through the context executor."""
        self.context.require_executor().apply(now, plan)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _dispatch_until(self, bound: tuple[float, int]) -> None:
        """Fire queued events whose ``(time, priority)`` key is < ``bound``."""
        queue = self.queue
        clock = self.clock
        while True:
            key = queue.peek_key()
            if key is None or key >= bound:
                return
            event = queue.pop()
            if event is None:  # pragma: no cover - peek guarantees liveness
                return
            clock.advance(event.time)
            event.fire(self)

    def _drain_tail(self, end: float) -> None:
        """Fire every remaining checkpoint scheduled at or before ``end``.

        Timeline boundaries *beyond* the last fired checkpoint stay
        queued on purpose: the pre-kernel engine recorded them inside
        ``timeline.finish`` after the tail flush, and so does
        :meth:`replay`.
        """
        while (
            self._scheduled_checkpoint is not None
            and self._scheduled_checkpoint <= end
        ):
            self._dispatch_until((self._scheduled_checkpoint, TRACE_RECORD))

    def _sync_checkpoint(self) -> None:
        """Mirror ``policy.next_checkpoint()`` as the one live checkpoint event.

        Called at every point the policy may have moved its checkpoint.
        Unchanged targets are a fast no-op; a moved target lazily
        cancels the stale event pair and schedules a fresh one.
        """
        target = self.policy.next_checkpoint()
        if target is not None and target is self._scheduled_checkpoint:
            return
        if target is None:
            self._cancel_checkpoint()
            return
        if self._scheduled_checkpoint is not None:
            if target == self._scheduled_checkpoint:
                return
            self._cancel_checkpoint()
        if self.context.fault_clock is not None:
            self._bookkeeping_event = FaultBookkeepingEvent(target)
            self.queue.push(self._bookkeeping_event)
        self._checkpoint_event = PolicyCheckpointEvent(target)
        self.queue.push(self._checkpoint_event)
        self._scheduled_checkpoint = target

    def _cancel_checkpoint(self) -> None:
        """Lazily cancel the scheduled checkpoint event pair, if any."""
        if self._checkpoint_event is not None:
            self.queue.cancel(self._checkpoint_event)
            self._checkpoint_event = None
        if self._bookkeeping_event is not None:
            self.queue.cancel(self._bookkeeping_event)
            self._bookkeeping_event = None
        self._scheduled_checkpoint = None

    # ------------------------------------------------------------------
    # Snapshot support (repro.persistence)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Serializable kernel state: clock, live events, checkpoint link.

        Captured strictly read-only at a record boundary.  Events are
        stored as ``(seq, (kind, time, payload))`` tuples — see
        :func:`_encode_event` — with the queue's sequence counter, so a
        restore reproduces same-timestamp FIFO tie-breaks exactly.
        """
        entries = [
            (seq, _encode_event(event))
            for _, _, seq, event in self.queue.live_entries()
        ]
        return {
            "clock": self.clock.snapshot_state(),
            "queue_entries": entries,
            "queue_next_seq": self.queue.next_seq,
            "scheduled_checkpoint": self._scheduled_checkpoint,
            "finished": self._finished,
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild clock, queue, and checkpoint linkage from a snapshot.

        The one live :class:`PolicyCheckpointEvent` (and its paired
        :class:`FaultBookkeepingEvent`, when present) is re-linked to
        the kernel's identity fields so lazy cancellation keeps working
        across the resume seam.
        """
        self.clock.restore_state(state["clock"])
        entries: list[tuple[float, int, int, Event]] = []
        checkpoint_event: PolicyCheckpointEvent | None = None
        bookkeeping_event: FaultBookkeepingEvent | None = None
        for seq, (kind, time, payload) in state["queue_entries"]:
            event = _decode_event(kind, time, payload)
            if isinstance(event, PolicyCheckpointEvent):
                checkpoint_event = event
            elif isinstance(event, FaultBookkeepingEvent):
                bookkeeping_event = event
            entries.append((event.time, event.priority, seq, event))
        self.queue.restore_entries(entries, state["queue_next_seq"])
        self._checkpoint_event = checkpoint_event
        self._bookkeeping_event = bookkeeping_event
        self._scheduled_checkpoint = state["scheduled_checkpoint"]
        self._finished = state["finished"]
