"""Typed simulation events and their deterministic priority classes.

Every "thing that happens at a virtual time" in the simulator is one of
the event classes below.  When several events share a timestamp the
kernel fires them in ascending *priority class* — the table is the
single place the boundary convention lives:

======================== ===== =====================================
event                    class fires at equal timestamps…
======================== ===== =====================================
timeline sample          0     first: a sample at a boundary reads
                               the books *before* any mutation there
fault bookkeeping        1     before the checkpoint it is paired
                               with (battery/outage accounting must
                               precede the policy's decision)
policy checkpoint        2     before any I/O at the same instant
trace record             3     after checkpoints, before flushes
flush deadline           4     deadlines settle what the
                               instant's I/O left behind
action apply             5     last: deferred action plans run after
                               every observation at the instant
======================== ===== =====================================

Ties *within* a class break by insertion order (FIFO), enforced by the
queue's sequence number — so replays are deterministic regardless of
heap internals.  Events are dumb carriers: :meth:`Event.fire` just
routes back into the kernel, which owns all semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar

from repro.errors import ValidationError

if TYPE_CHECKING:
    from repro.actions.plan import ActionPlan
    from repro.engine.kernel import SimulationKernel
    from repro.trace.records import LogicalIORecord

__all__ = [
    "TIMELINE_SAMPLE",
    "FAULT_BOOKKEEPING",
    "POLICY_CHECKPOINT",
    "TRACE_RECORD",
    "FLUSH_DEADLINE",
    "ACTION_APPLY",
    "Event",
    "TimelineSampleEvent",
    "FaultBookkeepingEvent",
    "PolicyCheckpointEvent",
    "TraceRecordEvent",
    "FlushDeadlineEvent",
    "ActionApplyEvent",
]

#: Priority class: recurring power-timeline boundary samples.
TIMELINE_SAMPLE = 0
#: Priority class: fault-clock bookkeeping (battery drain, outage exit).
FAULT_BOOKKEEPING = 1
#: Priority class: policy monitoring-period checkpoints.
POLICY_CHECKPOINT = 2
#: Priority class: trace records (I/O arrivals).
TRACE_RECORD = 3
#: Priority class: write-delay flush deadlines.
FLUSH_DEADLINE = 4
#: Priority class: deferred :mod:`repro.actions` plan applications.
ACTION_APPLY = 5


class Event:
    """One scheduled occurrence at a virtual time.

    Subclasses set :attr:`priority` (one of the module's priority-class
    constants) and implement :meth:`fire`.  The ``cancelled`` flag
    supports lazy cancellation: the queue skips cancelled entries on pop
    instead of rebuilding the heap.
    """

    __slots__ = ("time", "cancelled", "queued")

    priority: ClassVar[int] = TRACE_RECORD

    def __init__(self, time: float) -> None:
        if time < 0.0:
            raise ValidationError(
                f"events cannot be scheduled before t=0, got {time!r}"
            )
        self.time = time
        self.cancelled = False
        self.queued = False

    def fire(self, kernel: SimulationKernel) -> None:
        """Dispatch this event against the kernel that popped it."""
        raise NotImplementedError

    def __repr__(self) -> str:
        flag = " cancelled" if self.cancelled else ""
        return f"<{type(self).__name__} t={self.time}{flag}>"


class TimelineSampleEvent(Event):
    """Recurring power-timeline boundary sample; reschedules itself."""

    __slots__ = ()

    priority = TIMELINE_SAMPLE

    def fire(self, kernel: SimulationKernel) -> None:
        """Record the boundary point and schedule the next one."""
        kernel.fire_timeline_sample(self.time)


class FaultBookkeepingEvent(Event):
    """Fault-clock bookkeeping paired with a policy checkpoint.

    Runs :meth:`repro.storage.controller.StorageController.on_time` —
    battery-death force-flush and outage accounting — strictly before
    the checkpoint at the same instant, exactly as the pre-kernel
    replayer ordered the two calls.
    """

    __slots__ = ()

    priority = FAULT_BOOKKEEPING

    def fire(self, kernel: SimulationKernel) -> None:
        """Run controller fault bookkeeping at this instant."""
        kernel.fire_fault_bookkeeping(self.time)


class PolicyCheckpointEvent(Event):
    """A policy monitoring-period checkpoint; reschedules via the policy."""

    __slots__ = ()

    priority = POLICY_CHECKPOINT

    def fire(self, kernel: SimulationKernel) -> None:
        """Run the policy checkpoint and sync the follow-up schedule."""
        kernel.fire_policy_checkpoint(self.time)


class TraceRecordEvent(Event):
    """A single trace record served as an event (online operation).

    Batch replay streams records through the kernel's merged pump
    without heap traffic; this event type exists for online/incremental
    feeds that :meth:`~repro.engine.kernel.SimulationKernel.post`
    records as they arrive.
    """

    __slots__ = ("record",)

    priority = TRACE_RECORD

    def __init__(self, record: LogicalIORecord) -> None:
        super().__init__(record.timestamp)
        self.record = record

    def fire(self, kernel: SimulationKernel) -> None:
        """Serve the carried I/O record."""
        kernel.serve_record(self.record)


class FlushDeadlineEvent(Event):
    """A write-delay flush deadline (§V-C) as an explicit event."""

    __slots__ = ()

    priority = FLUSH_DEADLINE

    def fire(self, kernel: SimulationKernel) -> None:
        """Flush delayed writes whose deadline has arrived."""
        kernel.fire_flush_deadline(self.time)


class ActionApplyEvent(Event):
    """A deferred :class:`~repro.actions.plan.ActionPlan` application.

    Lets online callers schedule a plan for a future instant; it is
    applied through the context's
    :class:`~repro.actions.executor.ActionExecutor` (the sole mutation
    path) after every other event class at the same timestamp, so the
    instant's observations see pre-mutation books.
    """

    __slots__ = ("plan",)

    priority = ACTION_APPLY

    def __init__(self, time: float, plan: ActionPlan) -> None:
        super().__init__(time)
        self.plan = plan

    def fire(self, kernel: SimulationKernel) -> None:
        """Apply the carried plan through the context executor."""
        kernel.fire_action_apply(self.time, self.plan)
